"""Integration tests for the adaptive repartitioning loop (§3.4)."""

import numpy as np
import pytest

from repro.core import Controller, ControllerConfig
from repro.engine import EngineConfig, QGraphEngine, Query, SyncMode
from repro.graph import generate_road_network
from repro.partitioning import HashPartitioner
from repro.queries import SsspProgram
from repro.simulation.cluster import make_cluster
from repro.workload import WorkloadGenerator, PhaseSpec


@pytest.fixture(scope="module")
def rn():
    # 2 cities per worker, window mass well below graph size: the regime in
    # which consolidation is balance-feasible (see EXPERIMENTS.md)
    return generate_road_network(
        num_cities=8,
        num_urban_vertices=8000,
        seed=21,
        region_size=100.0,
        zipf_exponent=0.45,
    )


def adaptive_engine(rn, k=4, adaptive=True):
    assignment = HashPartitioner(seed=0).partition(rn.graph, k)
    controller = Controller(
        k,
        ControllerConfig(
            mu=10.0,
            phi=0.7,
            delta=0.25,
            # keep the windowed scope mass below the graph size so
            # consolidation stays balance-feasible — the regime of §4
            max_tracked_queries=32,
            qcut_compute_time=0.002,
            ils_rounds=60,
            qcut_cooldown=0.01,
            min_queries_for_qcut=4,
        ),
    )
    return QGraphEngine(
        rn.graph,
        make_cluster("M2", k),
        assignment,
        controller=controller,
        config=EngineConfig(adaptive=adaptive),
    )


def hotspot_workload(rn, n, seed=5):
    gen = WorkloadGenerator(rn, seed=seed)
    return gen.generate([PhaseSpec(num_queries=n, kind="sssp", label="t")])


class TestAdaptation:
    def test_repartitioning_happens(self, rn):
        eng = adaptive_engine(rn)
        hotspot_workload(rn, 48).submit_all(eng)
        trace = eng.run()
        assert len(trace.repartitions) >= 1
        assert all(r.moved_vertices > 0 for r in trace.repartitions)

    def test_locality_improves_over_run(self, rn):
        eng = adaptive_engine(rn)
        hotspot_workload(rn, 128).submit_all(eng)
        trace = eng.run()
        recs = sorted(trace.finished_queries(), key=lambda q: q.end_time)
        first = np.mean([q.locality for q in recs[: len(recs) // 4]])
        last = np.mean([q.locality for q in recs[-len(recs) // 4 :]])
        assert last > first + 0.15

    def test_queries_correct_across_repartitioning(self, rn):
        """Answers must be identical with and without adaptation."""
        static = adaptive_engine(rn, adaptive=False)
        wl = hotspot_workload(rn, 32)
        wl.submit_all(static)
        static.run()
        expected = {
            q.query_id: static.query_result(q.query_id)["distance"]
            for q, _t in wl.entries
        }

        adaptive = adaptive_engine(rn, adaptive=True)
        wl2 = hotspot_workload(rn, 32)  # same seed => same queries
        wl2.submit_all(adaptive)
        trace = adaptive.run()
        assert len(trace.repartitions) >= 1, "test needs at least one Q-cut"
        for q, _t in wl2.entries:
            got = adaptive.query_result(q.query_id)["distance"]
            want = expected[q.query_id]
            if want is None:
                assert got is None
            else:
                assert got == pytest.approx(want)

    def test_assignment_changes_but_stays_valid(self, rn):
        eng = adaptive_engine(rn)
        before = eng.assignment.copy()
        hotspot_workload(rn, 48).submit_all(eng)
        eng.run()
        after = eng.assignment
        assert not np.array_equal(before, after)
        assert after.min() >= 0 and after.max() < 4
        assert after.shape == before.shape

    def test_no_repartitions_when_disabled(self, rn):
        eng = adaptive_engine(rn, adaptive=False)
        hotspot_workload(rn, 32).submit_all(eng)
        trace = eng.run()
        assert len(trace.repartitions) == 0

    def test_repartition_cost_decreases(self, rn):
        """Each Q-cut's ILS must improve (or keep) its snapshot cost."""
        eng = adaptive_engine(rn)
        hotspot_workload(rn, 64).submit_all(eng)
        trace = eng.run()
        for rec in trace.repartitions:
            assert rec.cost_after <= rec.cost_before

    def test_all_queries_finish_despite_pauses(self, rn):
        eng = adaptive_engine(rn)
        wl = hotspot_workload(rn, 48)
        wl.submit_all(eng)
        trace = eng.run()
        assert len(trace.finished_queries()) == 48
