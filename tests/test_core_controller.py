"""Tests for the MAPE controller (§3.4)."""

import numpy as np
import pytest

from repro.core import Controller, ControllerConfig
from repro.errors import ControllerError


def make_controller(**overrides):
    cfg = dict(
        mu=100.0,
        phi=0.7,
        delta=0.25,
        qcut_compute_time=1.0,
        ils_rounds=20,
        qcut_cooldown=5.0,
        min_queries_for_qcut=2,
        seed=0,
    )
    cfg.update(overrides)
    return Controller(4, ControllerConfig(**cfg))


def feed_scattered_queries(ctrl, assignment, n=4, per_query=8):
    """Simulate n queries each activating vertices spread over all workers."""
    rng = np.random.default_rng(1)
    v = 0
    for qid in range(n):
        ctrl.on_query_started(qid, float(qid))
        vertices = list(range(v, v + per_query))
        v += per_query
        ctrl.on_iteration(qid, 4, vertices, float(qid) + 0.5)
        ctrl.on_iteration(qid, 4, [], float(qid) + 0.6)


class TestTrigger:
    def test_no_trigger_without_queries(self):
        ctrl = make_controller()
        assert not ctrl.should_trigger_qcut(10.0)

    def test_triggers_on_low_locality(self):
        ctrl = make_controller()
        assignment = np.arange(64) % 4
        feed_scattered_queries(ctrl, assignment)
        assert ctrl.average_locality() < 0.7
        assert ctrl.should_trigger_qcut(10.0)

    def test_no_trigger_when_local(self):
        ctrl = make_controller()
        for qid in range(4):
            ctrl.on_query_started(qid, 0.0)
            ctrl.on_iteration(qid, 1, [qid], 0.5)
        assert not ctrl.should_trigger_qcut(10.0)

    def test_imbalance_trigger(self):
        """High workload skew triggers even at perfect locality (Domain case)."""
        ctrl = make_controller()
        # all queries hammer worker 0's vertices
        for qid in range(4):
            ctrl.on_query_started(qid, 0.0)
            ctrl.on_iteration(qid, 1, list(range(16)), 0.5)
        assignment = np.zeros(64, dtype=np.int64)
        assignment[16:] = np.arange(48) % 3 + 1
        assert ctrl.average_locality() == 1.0
        assert ctrl.should_trigger_qcut(10.0, assignment)

    def test_cooldown(self):
        ctrl = make_controller()
        assignment = np.arange(64) % 4
        feed_scattered_queries(ctrl, assignment)
        ctrl.begin_qcut(assignment, 10.0)
        ctrl.complete_qcut(11.0)
        assert not ctrl.should_trigger_qcut(12.0)  # inside cooldown
        assert ctrl.should_trigger_qcut(20.0)

    def test_no_double_begin(self):
        ctrl = make_controller()
        assignment = np.arange(64) % 4
        feed_scattered_queries(ctrl, assignment)
        ctrl.begin_qcut(assignment, 10.0)
        assert not ctrl.should_trigger_qcut(10.5)
        with pytest.raises(ControllerError):
            ctrl.begin_qcut(assignment, 11.0)


class TestQcutPlan:
    def test_plan_moves_reduce_cost(self):
        ctrl = make_controller()
        assignment = np.arange(64) % 4
        feed_scattered_queries(ctrl, assignment, n=6)
        duration = ctrl.begin_qcut(assignment, 10.0)
        assert duration == pytest.approx(1.0)
        plan = ctrl.complete_qcut(11.0)
        assert plan.cost_after <= plan.cost_before
        assert plan.moves  # scattered scopes => something to consolidate

    def test_moves_reference_scope_vertices(self):
        ctrl = make_controller()
        assignment = np.arange(64) % 4
        feed_scattered_queries(ctrl, assignment, n=4)
        ctrl.begin_qcut(assignment, 10.0)
        plan = ctrl.complete_qcut(11.0)
        tracked = set()
        for qid in ctrl.scopes.queries():
            tracked |= ctrl.scopes.global_scope(qid)
        for move in plan.moves:
            assert set(move.vertices.tolist()) <= tracked
            # src must match the assignment at snapshot time
            assert np.all(assignment[move.vertices] == move.src)

    def test_plan_annotates_involved_workers(self):
        """The plan's involved-worker annotation is exactly the moves'
        sources/destinations, and a subset of the ILS solution's
        relocation workers (empty-vertex fragments are dropped)."""
        ctrl = make_controller()
        assignment = np.arange(64) % 4
        feed_scattered_queries(ctrl, assignment, n=6)
        ctrl.begin_qcut(assignment, 10.0)
        plan = ctrl.complete_qcut(11.0)
        assert plan.moves
        expected = {w for m in plan.moves for w in (m.src, m.dst)}
        assert plan.involved_workers == frozenset(expected)
        assert plan.involved_workers <= plan.ils_result.best_state.relocation_workers()

    def test_complete_without_begin(self):
        ctrl = make_controller()
        with pytest.raises(ControllerError):
            ctrl.complete_qcut(1.0)

    def test_empty_window_gives_empty_plan(self):
        ctrl = make_controller(min_queries_for_qcut=0)
        assignment = np.zeros(8, dtype=np.int64)
        ctrl.begin_qcut(assignment, 0.0)
        plan = ctrl.complete_qcut(1.0)
        assert not plan
        assert plan.moved_vertices == 0

    def test_qcut_count_increments(self):
        ctrl = make_controller()
        assignment = np.arange(64) % 4
        feed_scattered_queries(ctrl, assignment)
        ctrl.begin_qcut(assignment, 0.0)
        ctrl.complete_qcut(1.0)
        assert ctrl.qcut_count == 1


class TestEstimateImbalance:
    def test_balanced_zero(self):
        ctrl = make_controller()
        assignment = np.arange(16) % 4
        assert ctrl.estimate_imbalance(assignment) == pytest.approx(0.0, abs=1e-9)

    def test_skewed_scopes_detected(self):
        ctrl = make_controller()
        ctrl.on_query_started(0, 0.0)
        ctrl.on_iteration(0, 1, list(range(8)), 0.5)
        assignment = np.zeros(16, dtype=np.int64)
        assignment[8:] = np.arange(8) % 3 + 1
        assert ctrl.estimate_imbalance(assignment) > 0.25


def canonical_plan(plan):
    """Order-insensitive MovePlan fingerprint."""
    return (
        plan.cost_before,
        plan.cost_after,
        sorted(
            (m.src, m.dst, tuple(sorted(m.vertices.tolist()))) for m in plan.moves
        ),
    )


class TestPlanningBackendEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_identical_move_plans(self, seed):
        rng = np.random.default_rng(seed)
        n, k, num_queries = 400, 4, 12
        assignment = rng.integers(0, k, size=n).astype(np.int64)
        plans = {}
        for backend in ("vectorized", "reference"):
            ctrl = make_controller(planning_backend=backend, seed=5)
            feeder = np.random.default_rng(seed + 50)
            for qid in range(num_queries):
                ctrl.on_query_started(qid, float(qid))
                center = int(feeder.integers(0, n))
                scope = (center + feeder.integers(0, 80, size=30)) % n
                ctrl.on_iteration(qid, k, scope.tolist(), float(qid) + 0.5)
            ctrl.begin_qcut(assignment, 100.0)
            plans[backend] = ctrl.complete_qcut(101.0)
        assert canonical_plan(plans["vectorized"]) == canonical_plan(
            plans["reference"]
        )

    def test_estimate_imbalance_matches_reference(self):
        assignment = np.zeros(32, dtype=np.int64)
        assignment[8:] = np.arange(24) % 3 + 1
        values = []
        for backend in ("vectorized", "reference"):
            ctrl = make_controller(planning_backend=backend)
            for qid in range(3):
                ctrl.on_query_started(qid, 0.0)
                ctrl.on_iteration(qid, 1, list(range(qid, qid + 10)), 0.5)
            values.append(ctrl.estimate_imbalance(assignment))
        assert values[0] == pytest.approx(values[1])

    def test_backend_selects_store_type(self):
        from repro.core import QueryScopes, ScopeStore

        assert isinstance(make_controller().scopes, ScopeStore)
        assert isinstance(
            make_controller(planning_backend="reference").scopes, QueryScopes
        )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ControllerError):
            make_controller(planning_backend="bogus")


class TestLifecycle:
    def test_finish_evicts_stale(self):
        ctrl = make_controller(mu=1.0)
        ctrl.on_query_started(0, 0.0)
        ctrl.on_iteration(0, 1, [1, 2], 0.1)
        ctrl.on_query_finished(0, 0.2)
        # a much later finish triggers eviction of the stale query
        ctrl.on_query_started(1, 50.0)
        ctrl.on_query_finished(1, 50.1)
        assert 0 not in ctrl.monitor.tracked_queries()
        assert ctrl.scopes.global_scope(0) == set()

    def test_worker_count_validation(self):
        with pytest.raises(ControllerError):
            Controller(0)

    def test_cap_eviction_drops_scopes(self):
        """Regression: cap-evicted queries must not leak scope arrays."""
        ctrl = make_controller(max_tracked_queries=4)
        for qid in range(50):
            ctrl.on_query_started(qid, float(qid))
            ctrl.on_iteration(qid, 1, [qid], float(qid) + 0.1)
            ctrl.on_query_finished(qid, float(qid) + 0.2)
        assert len(ctrl.monitor) == 4
        assert set(ctrl.scopes.queries()) == set(ctrl.monitor.tracked_queries())
