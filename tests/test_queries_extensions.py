"""Tests for the extension query programs (BFS, PPR, k-hop, reach, WCC)."""

from collections import deque

import numpy as np
import pytest

from repro.core import Controller
from repro.engine import EngineConfig, QGraphEngine, Query
from repro.errors import QueryError
from repro.graph import GraphBuilder, barabasi_albert, grid_graph, watts_strogatz
from repro.partitioning import HashPartitioner
from repro.queries import (
    BfsProgram,
    KHopProgram,
    LocalPageRankProgram,
    LocalWccProgram,
    ReachabilityProgram,
)
from repro.simulation.cluster import make_cluster


def run_query(graph, program, initial, k=3):
    assignment = HashPartitioner(seed=1).partition(graph, k)
    eng = QGraphEngine(
        graph,
        make_cluster("M2", k),
        assignment,
        controller=Controller(k),
        config=EngineConfig(adaptive=False),
    )
    eng.submit(Query(0, program, initial))
    eng.run()
    return eng.query_result(0)


def reference_bfs(graph, source):
    depth = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in graph.out_neighbors(u):
            if int(v) not in depth:
                depth[int(v)] = depth[u] + 1
                queue.append(int(v))
    return depth


class TestBfs:
    def test_depths_match_reference(self):
        g = grid_graph(6, 6)
        result = run_query(g, BfsProgram(0), (0,))
        assert result["depths"] == reference_bfs(g, 0)

    def test_target_depth(self):
        g = grid_graph(6, 6)
        result = run_query(g, BfsProgram(0, target=35), (0,))
        assert result["depth"] == 10

    def test_max_depth_bounds_exploration(self):
        g = grid_graph(8, 8)
        result = run_query(g, BfsProgram(0, max_depth=2), (0,))
        assert all(d <= 2 for d in result["depths"].values())
        assert result["reached"] == 6  # 1 + 2 + 3 vertices within 2 hops

    def test_validation(self):
        with pytest.raises(QueryError):
            BfsProgram(-1)
        with pytest.raises(QueryError):
            BfsProgram(0, max_depth=-1)


class TestReachability:
    def chain_with_branch(self):
        b = GraphBuilder(6)
        b.add_edge(0, 1, 1.0)
        b.add_edge(1, 2, 1.0)
        b.add_edge(2, 3, 1.0)
        b.add_edge(4, 5, 1.0)  # disconnected pair
        return b.build()

    def test_reachable(self):
        g = self.chain_with_branch()
        result = run_query(g, ReachabilityProgram(0, 3), (0,), k=2)
        assert result["reachable"] is True

    def test_unreachable(self):
        g = self.chain_with_branch()
        result = run_query(g, ReachabilityProgram(0, 5), (0,), k=2)
        assert result["reachable"] is False

    def test_direction_matters(self):
        g = self.chain_with_branch()
        result = run_query(g, ReachabilityProgram(3, 0), (3,), k=2)
        assert result["reachable"] is False

    def test_early_stop_limits_visits(self):
        g = grid_graph(8, 8)
        near = run_query(g, ReachabilityProgram(0, 1), (0,), k=2)
        assert near["reachable"]
        assert near["visited"] < 64


class TestKHop:
    def test_khop_members(self):
        g = grid_graph(5, 5)
        result = run_query(g, KHopProgram(12, 1), (12,), k=2)
        assert sorted(result["members"]) == sorted([12, 7, 11, 13, 17])
        assert result["size"] == 5

    def test_khop_zero(self):
        g = grid_graph(5, 5)
        result = run_query(g, KHopProgram(12, 0), (12,), k=2)
        assert result["members"] == [12]

    def test_khop_matches_bfs_ball(self):
        g = watts_strogatz(50, 4, 0.1, seed=2)
        ref = reference_bfs(g, 0)
        result = run_query(g, KHopProgram(0, 3), (0,))
        expected = sorted(v for v, d in ref.items() if d <= 3)
        assert result["members"] == expected


class TestLocalPageRank:
    def test_mass_conservation(self):
        g = barabasi_albert(120, 2, seed=5)
        result = run_query(g, LocalPageRankProgram(0, epsilon=1e-4), (0,))
        total = sum(result["scores"].values()) + result["residual_mass"]
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_seed_has_highest_score(self):
        g = barabasi_albert(120, 2, seed=5)
        result = run_query(g, LocalPageRankProgram(0, epsilon=1e-4), (0,))
        top_vertex, _ = result["top"][0]
        assert top_vertex == 0

    def test_localized(self):
        g = barabasi_albert(400, 2, seed=6)
        result = run_query(g, LocalPageRankProgram(3, epsilon=1e-3), (3,))
        assert len(result["scores"]) < 400  # does not touch the whole graph

    def test_residual_below_epsilon_degree(self):
        g = grid_graph(6, 6)
        result = run_query(g, LocalPageRankProgram(0, epsilon=1e-3), (0,))
        # every vertex stopped pushing: r < eps * deg
        for v, p in result["scores"].items():
            assert p >= 0.0

    def test_validation(self):
        with pytest.raises(QueryError):
            LocalPageRankProgram(0, alpha=1.5)
        with pytest.raises(QueryError):
            LocalPageRankProgram(0, epsilon=0.0)


class TestLocalWcc:
    def test_labels_within_budget(self):
        g = grid_graph(6, 6)
        result = run_query(g, LocalWccProgram(max_hops=2), (0, 35), k=2)
        labels = result["labels"]
        # both seeds present with their own labels (too far to merge in 2 hops)
        assert labels[0] == 0
        assert labels[35] == 35
        assert result["visited"] < 36

    def test_connected_seeds_merge(self):
        g = grid_graph(4, 4)
        result = run_query(g, LocalWccProgram(max_hops=8), (0, 15), k=2)
        labels = result["labels"]
        # with enough hops the smaller label wins everywhere reachable
        assert set(labels.values()) == {0}

    def test_component_sizes(self):
        g = grid_graph(4, 4)
        result = run_query(g, LocalWccProgram(max_hops=8), (0,), k=2)
        assert result["component_sizes"] == {0: 16}
