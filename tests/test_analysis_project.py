"""Whole-program analysis tests: call graph, RNG stream flow, races.

The state-lifecycle rules (checkpoint-gap, restore-asymmetry, finish-leak,
atomic-mutation) have their own unit suite in
``tests/test_analysis_lifecycle.py``; this module covers their CLI /
baseline / catalog integration alongside the PR 8 analyses.

Fixture convention: multi-file layouts go through
:func:`repro.analysis.lint_sources` (in-memory, paths carry the role and
subsystem), single-file distilled historical bugs are checked in under
``tests/fixtures/analysis/`` and driven through the real CLI so the
acceptance contract — naming a fixture exits 1, the repository exits 0 —
is what the suite actually asserts.
"""

import json
import subprocess
from pathlib import Path

import pytest

from repro.analysis import lint_sources
from repro.analysis.baseline import (
    BASELINE_NAME,
    diff_effects,
    diff_manifest,
    load_baseline,
    render_baseline,
    render_manifest,
)
from repro.analysis.callgraph import project_graph, subsystem_of
from repro.analysis.cli import DEFAULT_PATHS, main as cli_main
from repro.analysis.effects import EffectAnalysis
from repro.analysis.visitor import (
    FileContext,
    ProjectContext,
    all_project_rules,
    infer_role,
    lint_project,
    load_project,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "analysis"


def _project(sources):
    return ProjectContext(
        [
            FileContext.parse(text, path, infer_role(Path(path)))
            for path, text in sorted(sources.items())
        ]
    )


def _rules_of(findings):
    return sorted({v.rule for v in findings})


# ----------------------------------------------------------------------
# call graph: symbol resolution
# ----------------------------------------------------------------------
class TestCallGraph:
    def test_import_alias_edge(self):
        project = _project(
            {
                "src/pkga/util.py": "def helper():\n    return 1\n",
                "src/pkga/main.py": (
                    "from pkga.util import helper as h\n"
                    "def run():\n"
                    "    return h()\n"
                ),
            }
        )
        _table, graph = project_graph(project)
        assert "pkga.util.helper" in graph.edges["pkga.main.run"]

    def test_module_alias_edge(self):
        project = _project(
            {
                "src/pkga/util.py": "def helper():\n    return 1\n",
                "src/pkga/main.py": (
                    "import pkga.util as u\n"
                    "def run():\n"
                    "    return u.helper()\n"
                ),
            }
        )
        _table, graph = project_graph(project)
        assert "pkga.util.helper" in graph.edges["pkga.main.run"]

    def test_self_dispatch(self):
        project = _project(
            {
                "src/pkga/eng.py": (
                    "class Engine:\n"
                    "    def run(self):\n"
                    "        self.step()\n"
                    "    def step(self):\n"
                    "        pass\n"
                ),
            }
        )
        _table, graph = project_graph(project)
        assert "pkga.eng.Engine.step" in graph.edges["pkga.eng.Engine.run"]

    def test_inherited_method_resolution(self):
        project = _project(
            {
                "src/pkga/base.py": (
                    "class Base:\n"
                    "    def shared(self):\n"
                    "        pass\n"
                ),
                "src/pkga/sub.py": (
                    "from pkga.base import Base\n"
                    "class Derived(Base):\n"
                    "    def run(self):\n"
                    "        self.shared()\n"
                ),
            }
        )
        _table, graph = project_graph(project)
        assert "pkga.base.Base.shared" in graph.edges["pkga.sub.Derived.run"]

    def test_typed_attribute_call(self):
        project = _project(
            {
                "src/pkga/parts.py": (
                    "class Worker:\n"
                    "    def tick(self):\n"
                    "        pass\n"
                ),
                "src/pkga/eng.py": (
                    "from pkga.parts import Worker\n"
                    "class Engine:\n"
                    "    def __init__(self):\n"
                    "        self.worker = Worker()\n"
                    "    def run(self):\n"
                    "        self.worker.tick()\n"
                ),
            }
        )
        _table, graph = project_graph(project)
        assert "pkga.parts.Worker.tick" in graph.edges["pkga.eng.Engine.run"]

    def test_transitive_closure(self):
        project = _project(
            {
                "src/pkga/chain.py": (
                    "def a():\n    b()\n"
                    "def b():\n    c()\n"
                    "def c():\n    pass\n"
                ),
            }
        )
        _table, graph = project_graph(project)
        assert graph.transitive("pkga.chain.a") >= {
            "pkga.chain.a",
            "pkga.chain.b",
            "pkga.chain.c",
        }

    def test_unresolvable_call_has_no_edge(self):
        # under-approximation: an unknown callee must not invent edges
        project = _project(
            {
                "src/pkga/ext.py": (
                    "import os\n"
                    "def run(cb):\n"
                    "    cb()\n"
                    "    os.getpid()\n"
                ),
            }
        )
        _table, graph = project_graph(project)
        assert graph.edges["pkga.ext.run"] == set()

    def test_subsystem_of(self):
        assert subsystem_of("repro.workload.generator") == "workload"
        assert subsystem_of("repro.engine.engine") == "engine"
        assert subsystem_of("tests.fixtures.analysis.x") == "tests"

    def test_real_engine_dispatch_table_is_complete(self):
        project = load_project([REPO_ROOT / "src"], root=REPO_ROOT)
        analysis = EffectAnalysis(project)
        table = analysis.handlers["repro.engine.engine.QGraphEngine"]
        # every _on_* method of the engine is reachable from the
        # getattr-dispatch — a missing kind here means the race detector
        # silently stopped seeing a handler
        assert {
            "arrival",
            "task_ready",
            "compute_done",
            "barrier_ack",
            "ack_task_ready",
            "graph_update",
            "bsp_compute",
            "bsp_next",
            "qcut_done",
            "global_stop",
            "global_start",
            "worker_crash",
            "worker_recover",
            "controller_crash",
            "controller_recover",
            "heartbeat",
        } <= set(table)


# ----------------------------------------------------------------------
# RNG stream flow
# ----------------------------------------------------------------------
_SCHED_SINK = "def jitter(rng):\n    return rng.random()\n"


class TestRngFlow:
    def test_stream_crossing_flagged(self):
        findings = lint_sources(
            {
                "src/repro/workload/gen.py": (
                    "import numpy as np\n"
                    "from repro.simulation.sched import jitter\n"
                    "def build(seed):\n"
                    "    rng = np.random.default_rng([seed, 0x51C])\n"
                    "    return rng.random() + jitter(rng)\n"
                ),
                "src/repro/simulation/sched.py": _SCHED_SINK,
            },
            select=["rng-stream-crossing"],
        )
        assert _rules_of(findings) == ["rng-stream-crossing"]
        assert "workload" in findings[0].message
        assert "simulation" in findings[0].message

    def test_stream_within_subsystem_clean(self):
        findings = lint_sources(
            {
                "src/repro/workload/gen.py": (
                    "import numpy as np\n"
                    "from repro.workload.shape import jitter\n"
                    "def build(seed):\n"
                    "    rng = np.random.default_rng([seed, 0x51C])\n"
                    "    return rng.random() + jitter(rng)\n"
                ),
                "src/repro/workload/shape.py": _SCHED_SINK,
            },
            select=["rng-stream-crossing"],
        )
        assert findings == []

    def test_crossing_without_foreign_draw_clean(self):
        # handing the generator across is fine as long as the other
        # subsystem never draws from it (e.g. plumbing through a config)
        findings = lint_sources(
            {
                "src/repro/workload/gen.py": (
                    "import numpy as np\n"
                    "from repro.simulation.sched import hold\n"
                    "def build(seed):\n"
                    "    rng = np.random.default_rng([seed, 0x51C])\n"
                    "    hold(rng)\n"
                    "    return rng.random()\n"
                ),
                "src/repro/simulation/sched.py": (
                    "def hold(rng):\n    return rng\n"
                ),
            },
            select=["rng-stream-crossing"],
        )
        assert findings == []

    def test_unseeded_escape_flagged_and_seeded_clean(self):
        dirty = lint_sources(
            {
                "src/repro/workload/gen.py": (
                    "import numpy as np\n"
                    "def make():\n"
                    "    rng = np.random.default_rng()\n"
                    "    return rng\n"
                ),
            },
            select=["rng-unseeded-escape"],
        )
        assert _rules_of(dirty) == ["rng-unseeded-escape"]
        clean = lint_sources(
            {
                "src/repro/workload/gen.py": (
                    "import numpy as np\n"
                    "def make(seed):\n"
                    "    rng = np.random.default_rng([seed, 0x51C])\n"
                    "    return rng\n"
                ),
            },
            select=["rng-unseeded-escape"],
        )
        assert clean == []

    def test_unseeded_local_draw_clean(self):
        # nondeterministic but contained: the module-rng/seed policy rules
        # own that judgement, escape analysis only polices the boundary
        findings = lint_sources(
            {
                "src/repro/workload/gen.py": (
                    "import numpy as np\n"
                    "def make():\n"
                    "    return float(np.random.default_rng().random())\n"
                ),
            },
            select=["rng-unseeded-escape"],
        )
        assert findings == []

    def test_generator_in_signature_flagged(self):
        findings = lint_sources(
            {
                "src/repro/workload/gen.py": (
                    "import numpy as np\n"
                    "def sample(rng=np.random.default_rng(0)):\n"
                    "    return rng.random()\n"
                ),
            },
            select=["rng-in-library-signature"],
        )
        assert _rules_of(findings) == ["rng-in-library-signature"]


# ----------------------------------------------------------------------
# virtual-time races
# ----------------------------------------------------------------------
_DISPATCH = (
    "    def step(self):\n"
    "        event = self.queue.pop()\n"
    '        handler = getattr(self, f"_on_{event.kind}", None)\n'
    "        if handler is not None:\n"
    "            handler(event.time, event.payload)\n"
)


def _engine_module(handler_a, handler_b):
    return (
        "class Mini:\n"
        "    def __init__(self, queue):\n"
        "        self.queue = queue\n"
        "        self.state = {}\n"
        "        self.paused = False\n"
        + _DISPATCH
        + handler_a
        + handler_b
    )


class TestRaces:
    def test_unguarded_overlap_flagged(self):
        src = _engine_module(
            "    def _on_alpha(self, now, payload):\n"
            "        self.state[payload['k']] = payload['v']\n"
            "        self.queue.schedule(now, 'alpha', k=1, v=2)\n",
            "    def _on_beta(self, now, payload):\n"
            "        self.state = {}\n",
        )
        findings = lint_sources(
            {"src/repro/engine/mini.py": src}, select=["virtual-time-race"]
        )
        assert _rules_of(findings) == ["virtual-time-race"]
        assert "_on_alpha" in findings[0].message

    def test_one_guarded_side_clean(self):
        # protocol ordering: the later handler fences on the pause flag
        src = _engine_module(
            "    def _on_alpha(self, now, payload):\n"
            "        self.state[payload['k']] = payload['v']\n"
            "        self.queue.schedule(now, 'alpha', k=1, v=2)\n",
            "    def _on_beta(self, now, payload):\n"
            "        if self.paused:\n"
            "            return\n"
            "        self.state = {}\n",
        )
        findings = lint_sources(
            {"src/repro/engine/mini.py": src}, select=["virtual-time-race"]
        )
        assert findings == []

    def test_delayed_only_kinds_clean(self):
        # both kinds scheduled exclusively now + delay: tie-free
        src = _engine_module(
            "    def _on_alpha(self, now, payload):\n"
            "        self.state[payload['k']] = payload['v']\n"
            "        self.queue.schedule(now + 1, 'beta', k=1)\n",
            "    def _on_beta(self, now, payload):\n"
            "        self.state = {}\n"
            "        self.queue.schedule(now + 2, 'alpha', k=1, v=2)\n",
        )
        findings = lint_sources(
            {"src/repro/engine/mini.py": src}, select=["virtual-time-race"]
        )
        assert findings == []

    def test_disjoint_write_sets_clean(self):
        src = _engine_module(
            "    def _on_alpha(self, now, payload):\n"
            "        self.state[payload['k']] = payload['v']\n"
            "        self.queue.schedule(now, 'alpha', k=1, v=2)\n",
            "    def _on_beta(self, now, payload):\n"
            "        self.other = payload['v']\n",
        )
        findings = lint_sources(
            {"src/repro/engine/mini.py": src}, select=["virtual-time-race"]
        )
        assert findings == []

    def test_suppression_on_handler_def_line(self):
        src = _engine_module(
            "    def _on_alpha(self, now, payload):"
            "  # repro-lint: disable=virtual-time-race -- distilled fixture\n"
            "        self.state[payload['k']] = payload['v']\n"
            "        self.queue.schedule(now, 'alpha', k=1, v=2)\n",
            "    def _on_beta(self, now, payload):\n"
            "        self.state = {}\n",
        )
        findings = lint_sources(
            {"src/repro/engine/mini.py": src}, select=["virtual-time-race"]
        )
        assert findings == []

    def test_effect_after_schedule_flagged_then_hoisted_clean(self):
        dirty = _engine_module(
            "    def _on_alpha(self, now, payload):\n"
            "        self.queue.schedule(now + 1, 'beta', k=1)\n"
            "        self.state = {}\n",
            "    def _on_beta(self, now, payload):\n"
            "        if self.paused:\n"
            "            return\n"
            "        self.state[payload['k']] = 1\n",
        )
        findings = lint_sources(
            {"src/repro/engine/mini.py": dirty}, select=["effect-after-schedule"]
        )
        assert _rules_of(findings) == ["effect-after-schedule"]
        hoisted = _engine_module(
            "    def _on_alpha(self, now, payload):\n"
            "        self.state = {}\n"
            "        self.queue.schedule(now + 1, 'beta', k=1)\n",
            "    def _on_beta(self, now, payload):\n"
            "        if self.paused:\n"
            "            return\n"
            "        self.state[payload['k']] = 1\n",
        )
        assert (
            lint_sources(
                {"src/repro/engine/mini.py": hoisted},
                select=["effect-after-schedule"],
            )
            == []
        )

    def test_write_after_schedule_in_returning_branch_clean(self):
        # control-flow awareness: the schedule's branch returns, so the
        # lexically-later write can never follow it
        src = _engine_module(
            "    def _on_alpha(self, now, payload):\n"
            "        if payload['fast']:\n"
            "            self.queue.schedule(now + 1, 'beta', k=1)\n"
            "            return\n"
            "        self.state = {}\n",
            "    def _on_beta(self, now, payload):\n"
            "        if self.paused:\n"
            "            return\n"
            "        self.state[payload['k']] = 1\n",
        )
        findings = lint_sources(
            {"src/repro/engine/mini.py": src}, select=["effect-after-schedule"]
        )
        assert findings == []


# ----------------------------------------------------------------------
# distilled historical bugs: the acceptance contract, through the CLI
# ----------------------------------------------------------------------
class TestHistoricalBugFixtures:
    @pytest.mark.parametrize(
        "fixture, rule",
        [
            ("midbsp_stop_bug.py", "virtual-time-race"),
            ("stale_barrier_ack_bug.py", "effect-after-schedule"),
            ("rng_unseeded_escape_bug.py", "rng-unseeded-escape"),
            ("checkpoint_gap_bug.py", "checkpoint-gap"),
            ("restore_asymmetry_bug.py", "restore-asymmetry"),
            ("finish_leak_bug.py", "finish-leak"),
            ("atomic_mutation_bug.py", "atomic-mutation"),
            ("barrier_liveness_bug.py", "barrier-liveness"),
            ("ack_completeness_bug.py", "ack-completeness"),
            ("epoch_fence_bug.py", "epoch-fence"),
            ("event_kind_closure_bug.py", "event-kind-closure"),
        ],
    )
    def test_fixture_exits_dirty(self, fixture, rule, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        path = FIXTURES / fixture
        assert path.is_file()
        code = cli_main([str(path.relative_to(REPO_ROOT)), "--select", rule])
        out = capsys.readouterr().out
        assert code == 1
        assert rule in out

    def test_fixtures_are_skipped_by_directory_walks(self):
        findings = lint_project([REPO_ROOT / "tests"], root=REPO_ROOT)
        assert [v for v in findings if "fixtures" in v.path] == []


# ----------------------------------------------------------------------
# repository gates: clean at HEAD, baseline stability, hygiene
# ----------------------------------------------------------------------
def _repo_paths():
    return [REPO_ROOT / p for p in DEFAULT_PATHS]


def test_repository_is_clean_under_project_rules():
    baseline = load_baseline(REPO_ROOT / BASELINE_NAME)
    findings = lint_project(
        _repo_paths(),
        root=REPO_ROOT,
        accepted=baseline.accepted,
        manifest=baseline.state_manifest,
    )
    assert findings == [], [f"{v.path}:{v.line}: {v.rule}" for v in findings]


def test_checked_in_baseline_is_current():
    baseline_path = REPO_ROOT / BASELINE_NAME
    baseline = load_baseline(baseline_path)
    project = load_project(_repo_paths(), root=REPO_ROOT)
    regenerated = render_baseline(
        project,
        accepted=baseline.accepted,
        state_manifest=baseline.state_manifest,
    )
    fresh = json.loads(regenerated)
    drift = diff_effects(baseline.effects, fresh["effects"]) + diff_manifest(
        baseline.state_manifest, fresh["state_manifest"]
    )
    assert regenerated == baseline_path.read_text(encoding="utf-8"), (
        "analysis_baseline.json is stale; regenerate with "
        "`python -m repro.analysis --write-baseline`:\n" + "\n".join(drift)
    )


def test_state_manifest_is_current_and_fully_classified():
    """A stale or unclassified ``state_manifest`` fails tier-1.

    Byte-stability above already catches *rotted* entries; this gate makes
    the two manifest-specific failure modes legible on their own: a newly
    handler-written attribute missing from the manifest, and a generated
    ``unclassified`` placeholder that was committed without a human
    classification + reason.
    """
    baseline = load_baseline(REPO_ROOT / BASELINE_NAME)
    project = load_project(_repo_paths(), root=REPO_ROOT)
    fresh = render_manifest(project, curated=baseline.state_manifest)
    drift = diff_manifest(baseline.state_manifest, fresh)
    assert baseline.state_manifest == fresh, (
        "state_manifest is stale; regenerate with "
        "`python -m repro.analysis --write-baseline` and classify the new "
        "entries:\n" + "\n".join(drift)
    )
    unclassified = sorted(
        attr
        for attr, entry in baseline.state_manifest.items()
        if entry["kind"] == "unclassified" or not entry["reason"].strip()
    )
    assert unclassified == [], (
        "state_manifest entries need a kind + reason: "
        + ", ".join(unclassified)
    )


def test_parallel_loading_is_order_stable():
    serial = load_project(_repo_paths(), root=REPO_ROOT, jobs=1)
    threaded = load_project(_repo_paths(), root=REPO_ROOT, jobs=4)
    assert [c.path for c in serial.files] == [c.path for c in threaded.files]
    assert [c.role for c in serial.files] == [c.role for c in threaded.files]


def test_project_rule_catalog():
    assert set(all_project_rules()) == {
        "rng-stream-crossing",
        "rng-unseeded-escape",
        "rng-in-library-signature",
        "virtual-time-race",
        "effect-after-schedule",
        "checkpoint-gap",
        "restore-asymmetry",
        "finish-leak",
        "atomic-mutation",
        "barrier-liveness",
        "ack-completeness",
        "epoch-fence",
        "event-kind-closure",
    }
    for rule in all_project_rules().values():
        assert rule.description
        assert tuple(rule.roles) == ("src",)


def test_no_bytecode_is_tracked():
    try:
        tracked = subprocess.run(
            ["git", "ls-files"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
            timeout=30,
        ).stdout.splitlines()
    except (OSError, subprocess.SubprocessError):
        pytest.skip("git unavailable")
    dirty = [
        f for f in tracked if f.endswith(".pyc") or "__pycache__" in f
    ]
    assert dirty == [], dirty


def test_cli_rejects_unknown_rule(monkeypatch, capsys):
    monkeypatch.chdir(REPO_ROOT)
    assert cli_main(["--select", "no-such-rule"]) == 2
    err = capsys.readouterr().err
    assert "unknown rule(s): no-such-rule" in err
    # a typo'd --select must not read as "clean"; the error names the
    # catalog so the caller can self-correct
    assert "valid rules:" in err
    for name in ("barrier-liveness", "module-rng", "virtual-time-race"):
        assert name in err


def test_cli_rejects_mixed_known_and_unknown_rules(monkeypatch, capsys):
    monkeypatch.chdir(REPO_ROOT)
    assert cli_main(["--select", "barrier-liveness,epoch-fnce"]) == 2
    err = capsys.readouterr().err
    assert "unknown rule(s): epoch-fnce" in err
    assert "barrier-liveness" not in err.split("valid rules:")[0]
