"""Equivalence tests: array-backed ScopeStore vs set-based QueryScopes.

Seeded-random property tests proving the vectorized paths (incidence-CSR
aggregates, encoded-pair intersection counting) reproduce the reference
implementations exactly, across the edge cases named in the PR issue:
empty scopes, single query, all-overlapping queries, and k=1.
"""

import numpy as np
import pytest

from repro.core import (
    QueryScopes,
    ScopeStore,
    pairwise_intersections,
    pairwise_intersections_arrays,
    scope_worker_counts,
)
from repro.core.scopes import _count_pair_overlaps


def random_workload(seed):
    """A random activation trace: (query, vertices-chunk) events."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(4, 200))
    num_queries = int(rng.integers(1, 14))
    events = []
    for qid in range(num_queries):
        for _ in range(int(rng.integers(1, 4))):
            size = int(rng.integers(0, max(2, n // 2)))
            events.append((qid, rng.integers(0, n, size=size).tolist()))
    return n, events


def build_both(events):
    ref, store = QueryScopes(), ScopeStore()
    for qid, chunk in events:
        ref.add_activations(qid, chunk)
        store.add_activations(qid, chunk)
    return ref, store


class TestStoreEquivalence:
    @pytest.mark.parametrize("seed", range(15))
    def test_random_traces(self, seed):
        n, events = random_workload(seed)
        ref, store = build_both(events)
        rng = np.random.default_rng(seed + 100)
        k = int(rng.integers(1, 6))
        assignment = rng.integers(0, k, size=n).astype(np.int64)

        assert store.queries() == ref.queries()
        for qid in ref.queries():
            assert store.global_scope(qid) == ref.global_scope(qid)
            assert store.global_scope_size(qid) == ref.global_scope_size(qid)
            assert np.array_equal(
                store.local_scope_sizes(qid, assignment, k),
                ref.local_scope_sizes(qid, assignment, k),
            )
            assert store.spanning_workers(qid, assignment) == ref.spanning_workers(
                qid, assignment
            )
            for w in range(k):
                assert store.local_scope(qid, w, assignment) == ref.local_scope(
                    qid, w, assignment
                )
        assert store.query_cut(assignment) == ref.query_cut(assignment)
        assert store.query_cut_excess(assignment) == ref.query_cut_excess(assignment)

        # the one-pass matrix equals the per-query reference rows
        sizes, qids = store.local_size_matrix(assignment, k)
        assert qids.tolist() == ref.queries()
        for row, qid in zip(sizes, qids):
            assert np.array_equal(row, ref.local_scope_sizes(int(qid), assignment, k))
        expected_mass = sizes.sum(axis=0)
        assert np.array_equal(store.scope_mass(assignment, k), expected_mass)

    @pytest.mark.parametrize("seed", range(15))
    def test_drop_consistency(self, seed):
        n, events = random_workload(seed)
        ref, store = build_both(events)
        rng = np.random.default_rng(seed + 200)
        for qid in list(ref.queries()):
            if rng.random() < 0.5:
                ref.drop(qid)
                store.drop(qid)
        assignment = rng.integers(0, 3, size=n).astype(np.int64)
        assert store.queries() == ref.queries()
        assert store.query_cut(assignment) == ref.query_cut(assignment)
        scope_map = {q: ref.global_scope(q) for q in ref.queries()}
        assert store.pairwise_intersections() == pairwise_intersections(scope_map)

    def test_empty_store(self):
        store = ScopeStore()
        assignment = np.zeros(4, dtype=np.int64)
        assert store.queries() == []
        assert store.global_scope(3) == set()
        assert store.query_cut(assignment) == 0
        assert store.query_cut_excess(assignment) == 0
        assert store.pairwise_intersections() == {}
        assert np.array_equal(store.scope_mass(assignment, 2), np.zeros(2, np.int64))

    def test_empty_scope_query(self):
        """A query registered with no activations behaves like the reference."""
        ref, store = build_both([(7, [])])
        assignment = np.zeros(4, dtype=np.int64)
        assert store.queries() == ref.queries() == [7]
        assert store.global_scope_size(7) == 0
        assert store.query_cut(assignment) == ref.query_cut(assignment) == 0

    def test_single_query(self):
        ref, store = build_both([(1, [0, 2, 2, 3])])
        assignment = np.array([0, 0, 1, 1])
        assert store.global_scope(1) == {0, 2, 3}
        assert store.query_cut(assignment) == ref.query_cut(assignment) == 2
        assert store.pairwise_intersections() == {}

    def test_all_overlapping(self):
        events = [(q, [0, 1, 2]) for q in range(5)]
        ref, store = build_both(events)
        assignment = np.array([0, 1, 0])
        assert store.query_cut(assignment) == ref.query_cut(assignment)
        expected = {(a, b): 3 for a in range(5) for b in range(a + 1, 5)}
        assert store.pairwise_intersections() == expected

    def test_k_equals_one(self):
        ref, store = build_both([(0, [0, 1]), (1, [1, 2])])
        assignment = np.zeros(3, dtype=np.int64)
        assert store.query_cut(assignment) == ref.query_cut(assignment) == 2
        assert store.query_cut_excess(assignment) == 0
        assert np.array_equal(
            store.local_size_matrix(assignment, 1)[0], np.array([[2], [2]])
        )

    def test_query_id_subset_selection(self):
        ref, store = build_both([(0, [0, 1]), (1, [1, 2]), (2, [3])])
        assignment = np.array([0, 0, 1, 1])
        sizes, qids = store.local_size_matrix(assignment, 2, query_ids=[2, 0, 99])
        assert qids.tolist() == [2, 0]  # order preserved, unknown dropped
        assert np.array_equal(sizes[0], ref.local_scope_sizes(2, assignment, 2))
        assert np.array_equal(sizes[1], ref.local_scope_sizes(0, assignment, 2))
        mass = store.scope_mass(assignment, 2, query_ids=[0, 2])
        assert np.array_equal(
            mass,
            ref.local_scope_sizes(0, assignment, 2)
            + ref.local_scope_sizes(2, assignment, 2),
        )

    def test_incremental_ingestion_matches_bulk(self):
        bulk = ScopeStore()
        bulk.add_activations(0, range(50))
        inc = ScopeStore()
        for lo in range(0, 50, 7):
            inc.add_activations(0, range(lo, min(lo + 7, 50)))
            # interleave reads to force consolidation mid-stream
            inc.global_scope_size(0)
        assert np.array_equal(inc.scope_array(0), bulk.scope_array(0))

    def test_accepts_numpy_arrays(self):
        store = ScopeStore()
        store.add_activations(0, np.array([3, 1, 1, 2]))
        assert store.scope_array(0).tolist() == [1, 2, 3]

    def test_caller_buffer_mutation_does_not_leak(self):
        """Ingested arrays are copied, not aliased."""
        store = ScopeStore()
        buffer = np.array([1, 2, 3], dtype=np.int64)
        store.add_activations(0, buffer)
        buffer[:] = 99  # caller reuses its buffer before the next read
        assert store.global_scope(0) == {1, 2, 3}

    def test_incidence_alignment(self):
        _, store = build_both([(3, [5, 6]), (1, [7])])
        verts, counts, qids = store.incidence()
        assert qids.tolist() == [1, 3]
        assert counts.tolist() == [1, 2]
        assert verts.tolist() == [7, 5, 6]


class TestPairwiseEquivalence:
    @pytest.mark.parametrize("seed", range(25))
    def test_random_scopes(self, seed):
        rng = np.random.default_rng(seed)
        scopes = {
            q: set(rng.integers(0, 60, size=rng.integers(0, 50)).tolist())
            for q in range(rng.integers(0, 15))
        }
        for min_overlap in (1, 2, 5):
            assert pairwise_intersections_arrays(
                scopes, min_overlap
            ) == pairwise_intersections(scopes, min_overlap)

    def test_store_restricted_to_query_subset(self):
        _, store = build_both([(0, [0, 1]), (1, [0, 2]), (2, [0])])
        full = store.pairwise_intersections()
        assert full == {(0, 1): 1, (0, 2): 1, (1, 2): 1}
        assert store.pairwise_intersections(query_ids=[0, 1]) == {(0, 1): 1}

    def test_unsorted_query_subset_keeps_reference_orientation(self):
        """Pair keys stay (qi < qj) even for an unsorted id selection."""
        events = [(11, [0, 1]), (3, [0, 2]), (7, [0, 1, 2])]
        ref, store = build_both(events)
        scope_map = {q: ref.global_scope(q) for q in (11, 3, 7)}
        expected = pairwise_intersections(scope_map)
        assert store.pairwise_intersections(query_ids=[11, 3, 7]) == expected
        assert all(a < b for a, b in expected)

    def test_chunked_expansion_matches_single_chunk(self):
        """Tiny chunk budget exercises the multi-chunk merge path."""
        rng = np.random.default_rng(3)
        scopes = {q: set(rng.integers(0, 30, size=25).tolist()) for q in range(10)}
        qids = sorted(scopes)
        arrays = [np.unique(np.array(sorted(scopes[q]))) for q in qids]
        verts = np.concatenate(arrays)
        rows = np.repeat(
            np.arange(len(qids)), np.array([a.size for a in arrays])
        ).astype(np.int64)
        chunked = _count_pair_overlaps(
            verts, rows, np.asarray(qids), 1, max_pairs_per_chunk=7
        )
        assert chunked == pairwise_intersections(scopes)

    def test_sparse_accumulator_fallback(self):
        """Above the dense-key threshold the sort-merge path must agree."""
        num_q = 3_000  # num_q^2 > the 4M dense accumulator cap
        scopes = {q: {q, q + 1} for q in range(num_q)}
        out = pairwise_intersections_arrays(scopes)
        assert len(out) == num_q - 1
        assert out[(0, 1)] == 1
        assert out[(num_q - 2, num_q - 1)] == 1

    def test_disjoint_scopes_empty(self):
        scopes = {0: {1}, 1: {2}}
        assert pairwise_intersections_arrays(scopes, min_overlap=1) == {}


class TestScopeWorkerCounts:
    def test_set_and_array_inputs_agree(self):
        assignment = np.array([0, 1, 1, 2, 0])
        scope_set = {0, 2, 3}
        scope_arr = np.array([0, 2, 3], dtype=np.int64)
        a = scope_worker_counts(scope_set, assignment, 3)
        b = scope_worker_counts(scope_arr, assignment, 3)
        assert np.array_equal(a, b)
        assert a.tolist() == [1, 1, 1]

    def test_minlength_consistent_when_high_workers_unused(self):
        """k larger than any observed owner: result still has length k."""
        assignment = np.zeros(4, dtype=np.int64)
        counts = scope_worker_counts({0, 1}, assignment, 5)
        assert counts.shape == (5,)
        assert counts.tolist() == [2, 0, 0, 0, 0]

    def test_out_of_range_owner_truncated_not_raising(self):
        """Owners >= k are ignored instead of corrupting the result shape."""
        assignment = np.array([0, 7, 7, 1])
        counts = scope_worker_counts({0, 1, 2, 3}, assignment, 2)
        assert counts.shape == (2,)
        assert counts.tolist() == [1, 1]

    def test_empty_scope(self):
        counts = scope_worker_counts(set(), np.zeros(3, np.int64), 4)
        assert counts.tolist() == [0, 0, 0, 0]
