"""Tests for the high-level Q-cut solution state."""

import numpy as np
import pytest

from repro.core import Fragment, QcutState
from repro.errors import ControllerError


def two_unit_state(delta=0.5):
    """Two clusters, three workers; unit 0 split between w0/w1."""
    frags = [
        Fragment(unit=0, origin_worker=0, union_size=10, weighted_size=14),
        Fragment(unit=0, origin_worker=1, union_size=6, weighted_size=8),
        Fragment(unit=1, origin_worker=2, union_size=12, weighted_size=12),
    ]
    base = np.array([100.0, 100.0, 100.0])
    return QcutState(2, 3, frags, base, delta=delta)


class TestConstruction:
    def test_masses(self):
        st = two_unit_state()
        assert st.weighted[0].tolist() == [14.0, 8.0, 0.0]
        assert st.union[1].tolist() == [0.0, 0.0, 12.0]

    def test_duplicate_fragment_rejected(self):
        frags = [
            Fragment(0, 0, 5, 5),
            Fragment(0, 0, 3, 3),
        ]
        with pytest.raises(ControllerError):
            QcutState(1, 2, frags, np.array([10.0, 10.0]))

    def test_weighted_below_union_rejected(self):
        with pytest.raises(ControllerError):
            QcutState(1, 2, [Fragment(0, 0, 10, 5)], np.array([10.0, 10.0]))

    def test_unknown_worker_rejected(self):
        with pytest.raises(ControllerError):
            QcutState(1, 2, [Fragment(0, 7, 5, 5)], np.array([10.0, 10.0]))


class TestCost:
    def test_cost_counts_weighted_minority(self):
        st = two_unit_state()
        # unit 0: total 22, max 14 -> 8; unit 1 fully local -> 0
        assert st.cost() == 8.0

    def test_unit_cost(self):
        st = two_unit_state()
        assert st.unit_cost(0) == 8.0
        assert st.unit_cost(1) == 0.0

    def test_zero_cost_when_all_fused(self):
        st = two_unit_state()
        st.apply_move(0, 1, 0)
        assert st.cost() == 0.0


class TestLoads:
    def test_load_model(self):
        st = two_unit_state()
        # L_w = (|V(w)| + S_w) / 2 ; |V| = base + union
        expected_w0 = (100 + 10 + 14) / 2
        assert st.loads()[0] == pytest.approx(expected_w0)

    def test_move_load(self):
        st = two_unit_state()
        assert st.move_load(0, 0) == pytest.approx((10 + 14) / 2)

    def test_balance_detection(self):
        st = two_unit_state(delta=0.01)
        assert not st.is_balanced() or st.max_imbalance() < 0.01


class TestMoves:
    def test_apply_move_shifts_both_masses(self):
        st = two_unit_state()
        move = st.apply_move(0, 0, 2)
        assert move.union_size == 10
        assert move.weighted_size == 14
        assert st.weighted[0].tolist() == [0.0, 8.0, 14.0]
        assert st.union[0].tolist() == [0.0, 6.0, 10.0]

    def test_move_updates_placement(self):
        st = two_unit_state()
        st.apply_move(0, 0, 2)
        assert st.placement[(0, 0)] == 2
        assert st.placement[(0, 1)] == 1  # untouched fragment

    def test_move_of_empty_mass_rejected(self):
        st = two_unit_state()
        with pytest.raises(ControllerError):
            st.apply_move(1, 0, 1)  # unit 1 has nothing on w0

    def test_move_to_self_rejected(self):
        st = two_unit_state()
        with pytest.raises(ControllerError):
            st.apply_move(0, 0, 0)

    def test_relocated_fragments(self):
        st = two_unit_state()
        st.apply_move(0, 1, 0)
        assert st.relocated_fragments() == [(0, 1, 0)]

    def test_chained_moves_track_origin(self):
        st = two_unit_state()
        st.apply_move(0, 1, 2)   # fragment (0,1) -> w2
        st.apply_move(0, 2, 0)   # all of unit 0 on w2 -> w0
        assert st.placement[(0, 1)] == 0
        assert st.relocated_fragments() == [(0, 1, 0)]

    def test_relocation_workers(self):
        st = two_unit_state()
        assert st.relocation_workers() == frozenset()
        st.apply_move(0, 1, 2)
        assert st.relocation_workers() == frozenset({1, 2})
        st.apply_move(1, 2, 0)
        assert st.relocation_workers() == frozenset({0, 1, 2})


class TestCopy:
    def test_copy_is_independent(self):
        st = two_unit_state()
        clone = st.copy()
        clone.apply_move(0, 0, 2)
        assert st.weighted[0, 0] == 14.0
        assert clone.weighted[0, 0] == 0.0
        assert st.placement[(0, 0)] == 0
