"""Tests for the hybrid barrier synchronization semantics (§3.3)."""

import numpy as np
import pytest

from repro.core import Controller, ControllerConfig
from repro.engine import EngineConfig, QGraphEngine, Query, SyncMode
from repro.graph import GraphBuilder, grid_graph
from repro.partitioning import HashPartitioner
from repro.queries import BfsProgram, SsspProgram
from repro.simulation.cluster import make_cluster


def engine_for(graph, k, mode, assignment=None):
    if assignment is None:
        assignment = HashPartitioner(seed=0).partition(graph, k)
    return QGraphEngine(
        graph,
        make_cluster("M2", k),
        assignment,
        controller=Controller(k),
        config=EngineConfig(sync_mode=mode, adaptive=False),
    )


def left_right_assignment(rows, cols):
    return np.array(
        [0 if (v % cols) < cols // 2 else 1 for v in range(rows * cols)],
        dtype=np.int64,
    )


class TestLocalBarrier:
    def test_local_query_no_controller_acks(self):
        """A fully local query must not produce barrier acks (local barrier)."""
        g = grid_graph(4, 8)
        eng = engine_for(g, 2, SyncMode.HYBRID, left_right_assignment(4, 8))
        eng.submit(Query(0, BfsProgram(0, None, max_depth=2), (0,)))
        trace = eng.run()
        assert trace.queries[0].locality == pytest.approx(1.0)
        assert trace.barrier_acks == 0

    def test_local_faster_than_distributed(self):
        """The same logical query is faster when it runs fully locally."""
        g = grid_graph(4, 8)
        local = engine_for(g, 2, SyncMode.HYBRID, left_right_assignment(4, 8))
        local.submit(Query(0, BfsProgram(0, None, max_depth=3), (0,)))
        t_local = local.run().queries[0].latency

        scattered = engine_for(g, 2, SyncMode.HYBRID)  # hash assignment
        scattered.submit(Query(0, BfsProgram(0, None, max_depth=3), (0,)))
        t_scattered = scattered.run().queries[0].latency
        assert t_local < t_scattered

    def test_query_escapes_local_mode(self):
        """A query growing beyond its worker switches to limited barriers."""
        g = grid_graph(4, 8)
        eng = engine_for(g, 2, SyncMode.HYBRID, left_right_assignment(4, 8))
        eng.submit(Query(0, BfsProgram(0, None), (0,)))  # unbounded BFS
        trace = eng.run()
        rec = trace.queries[0]
        assert 0 < rec.locality < 1.0
        assert trace.barrier_acks > 0


class TestLimitedBarrier:
    def test_acks_only_from_involved_workers(self):
        """With k=4 but a 2-worker query, acks stay below the global count."""
        g = grid_graph(4, 8)
        assignment = left_right_assignment(4, 8)  # workers 0/1 only
        eng = QGraphEngine(
            g,
            make_cluster("M2", 4),
            assignment,
            controller=Controller(4),
            config=EngineConfig(sync_mode=SyncMode.HYBRID, adaptive=False),
        )
        eng.submit(Query(0, BfsProgram(0, None), (0,)))
        trace = eng.run()
        iterations = trace.queries[0].iterations
        # a global barrier would collect 4 acks per iteration
        assert trace.barrier_acks < 4 * iterations


class TestGlobalPerQueryBarrier:
    def test_all_workers_ack(self):
        g = grid_graph(4, 8)
        k = 4
        eng = engine_for(g, k, SyncMode.GLOBAL_PER_QUERY)
        eng.submit(Query(0, BfsProgram(0, None, max_depth=4), (0,)))
        trace = eng.run()
        iterations = trace.queries[0].iterations
        assert trace.barrier_acks >= k * iterations

    def test_slower_than_hybrid_for_local_queries(self):
        g = grid_graph(4, 8)
        assignment = left_right_assignment(4, 8)
        results = {}
        for mode in (SyncMode.HYBRID, SyncMode.GLOBAL_PER_QUERY):
            eng = QGraphEngine(
                g,
                make_cluster("M2", 4),
                assignment,
                controller=Controller(4),
                config=EngineConfig(sync_mode=mode, adaptive=False),
            )
            eng.submit(Query(0, BfsProgram(0, None, max_depth=3), (0,)))
            results[mode] = eng.run().queries[0].latency
        assert results[SyncMode.HYBRID] < results[SyncMode.GLOBAL_PER_QUERY]


class TestSharedBspBarrier:
    def test_straggler_coupling(self):
        """Under the shared barrier a short query waits for a heavy one."""
        g = grid_graph(6, 6)
        heavy = Query(1, SsspProgram(35), tuple(range(36)))  # all-source SSSP

        short_alone = engine_for(g, 2, SyncMode.SHARED_BSP)
        short_alone.submit(Query(0, BfsProgram(0, None, max_depth=2), (0,)))
        t_alone = short_alone.run().queries[0].latency

        coupled = engine_for(g, 2, SyncMode.SHARED_BSP)
        coupled.submit(Query(0, BfsProgram(0, None, max_depth=2), (0,)))
        coupled.submit(heavy)
        t_coupled = coupled.run().queries[0].latency
        assert t_coupled > t_alone

    def test_hybrid_decouples_stragglers(self):
        """The same pair under hybrid barriers couples much less."""
        g = grid_graph(6, 6)

        def run(mode):
            eng = engine_for(g, 2, mode)
            eng.submit(Query(0, BfsProgram(0, None, max_depth=2), (0,)))
            eng.submit(Query(1, SsspProgram(35), tuple(range(36))))
            return eng.run().queries[0].latency

        assert run(SyncMode.HYBRID) < run(SyncMode.SHARED_BSP)

    def test_late_arrival_joins_next_superstep(self):
        g = grid_graph(5, 5)
        eng = engine_for(g, 2, SyncMode.SHARED_BSP)
        eng.submit(Query(0, SsspProgram(0, 24), (0,)))
        eng.submit(Query(1, SsspProgram(24, 0), (24,)), arrival_time=0.001)
        trace = eng.run()
        assert len(trace.finished_queries()) == 2
        assert eng.query_result(1)["distance"] == pytest.approx(8.0)

    def test_each_superstep_seed_gets_a_fresh_epoch(self):
        """Every BSP re-seed of a query's ack set bumps its barrier epoch.

        Recovery's stale-ack fencing (and the ack-completeness protocol
        proof) rely on a re-seeded ack set never sharing an epoch with
        the generation it replaced: an ack stamped under superstep N must
        not count toward superstep N+1's completeness.
        """
        g = grid_graph(5, 5)
        eng = engine_for(g, 2, SyncMode.SHARED_BSP)
        eng.submit(Query(0, SsspProgram(0, 24), (0,)))
        eng.submit(Query(1, SsspProgram(24, 0), (24,)))

        seeds = []  # (query_id, epoch) recorded at each superstep seed
        original = eng._bsp_begin_superstep

        def recording(now):
            before = {qid: qr.barrier_epoch for qid, qr in eng.runtimes.items()}
            original(now)
            for qid in sorted(eng.runtimes):
                qr = eng.runtimes[qid]
                if qr.involved and qr.barrier_epoch != before.get(qid):
                    seeds.append((qid, qr.barrier_epoch))

        eng._bsp_begin_superstep = recording
        trace = eng.run()
        assert len(trace.finished_queries()) == 2
        assert len(seeds) > 2  # the run actually exercised several supersteps
        for qid in (0, 1):
            epochs = [epoch for q, epoch in seeds if q == qid]
            # strictly increasing: no two generations ever share an epoch
            assert epochs == sorted(set(epochs))
            assert len(epochs) == len(set(epochs))
