"""Tests for the static partitioning baselines."""

import numpy as np
import pytest

from repro.errors import PartitioningError
from repro.graph import (
    edge_cut,
    generate_road_network,
    grid_graph,
    vertex_balance,
)
from repro.partitioning import (
    BfsRegionPartitioner,
    DomainPartitioner,
    FennelPartitioner,
    HashPartitioner,
    LdgPartitioner,
    group_cities_geographically,
    validate_partitioning,
)


@pytest.fixture(scope="module")
def rn():
    return generate_road_network(
        num_cities=8, num_urban_vertices=1600, seed=13, region_size=100.0
    )


@pytest.fixture(scope="module")
def grid():
    return grid_graph(12, 12)


ALL_PARTITIONERS = [
    HashPartitioner(seed=1),
    LdgPartitioner(seed=1),
    FennelPartitioner(seed=1),
    BfsRegionPartitioner(seed=1),
]


class TestContract:
    @pytest.mark.parametrize("p", ALL_PARTITIONERS, ids=lambda p: p.name)
    def test_valid_assignment(self, grid, p):
        assignment = p.partition(grid, 4)
        validate_partitioning(grid, assignment, 4)

    @pytest.mark.parametrize("p", ALL_PARTITIONERS, ids=lambda p: p.name)
    def test_all_workers_used(self, grid, p):
        assignment = p.partition(grid, 4)
        assert set(np.unique(assignment)) == {0, 1, 2, 3}

    @pytest.mark.parametrize("p", ALL_PARTITIONERS, ids=lambda p: p.name)
    def test_deterministic(self, grid, p):
        a = p.partition(grid, 4)
        b = p.partition(grid, 4)
        assert np.array_equal(a, b)

    def test_k_too_large(self, grid):
        with pytest.raises(PartitioningError):
            HashPartitioner().partition(grid, grid.num_vertices + 1)

    def test_k_must_be_positive(self, grid):
        with pytest.raises(PartitioningError):
            HashPartitioner().partition(grid, 0)


class TestHash:
    def test_balanced(self, grid):
        assignment = HashPartitioner(seed=0).partition(grid, 4)
        assert vertex_balance(grid, assignment, 4) < 1.25

    def test_no_locality(self, grid):
        """Hash should cut nearly the expected (k-1)/k of all edges."""
        assignment = HashPartitioner(seed=0).partition(grid, 4)
        cut_fraction = edge_cut(grid, assignment) / grid.num_edges
        assert cut_fraction > 0.6

    def test_seed_changes_assignment(self, grid):
        a = HashPartitioner(seed=0).partition(grid, 4)
        b = HashPartitioner(seed=99).partition(grid, 4)
        assert not np.array_equal(a, b)


class TestLdg:
    def test_better_locality_than_hash(self, grid):
        ldg = LdgPartitioner().partition(grid, 4)
        hsh = HashPartitioner().partition(grid, 4)
        assert edge_cut(grid, ldg) < edge_cut(grid, hsh)

    def test_respects_capacity_slack(self, grid):
        assignment = LdgPartitioner(slack=0.1).partition(grid, 4)
        sizes = np.bincount(assignment, minlength=4)
        assert sizes.max() <= (1.1 * grid.num_vertices / 4) + 1

    def test_stream_orders(self, grid):
        for order in ("natural", "random", "bfs"):
            assignment = LdgPartitioner(order=order, seed=2).partition(grid, 4)
            validate_partitioning(grid, assignment, 4)

    def test_unknown_order(self):
        with pytest.raises(ValueError):
            LdgPartitioner(order="bogus")


class TestFennel:
    def test_better_locality_than_hash(self, grid):
        fen = FennelPartitioner().partition(grid, 4)
        hsh = HashPartitioner().partition(grid, 4)
        assert edge_cut(grid, fen) < edge_cut(grid, hsh)

    def test_capacity_respected(self, grid):
        assignment = FennelPartitioner(balance_slack=0.2).partition(grid, 4)
        sizes = np.bincount(assignment, minlength=4)
        assert sizes.max() <= (1.2 * grid.num_vertices / 4) + 1


class TestBatchedEquivalence:
    """The batched CSR-chunk scoring must match the per-neighbour loops."""

    @pytest.fixture(scope="class")
    def rmat(self):
        from repro.graph import rmat_graph

        return rmat_graph(3000, 6, seed=4)

    @pytest.mark.parametrize("order", ["natural", "random", "bfs"])
    @pytest.mark.parametrize("k", [2, 5])
    def test_ldg_matches_reference(self, grid, rmat, order, k):
        for g in (grid, rmat):
            p = LdgPartitioner(order=order, seed=3)
            assert np.array_equal(p.partition(g, k), p.partition_reference(g, k))

    @pytest.mark.parametrize("order", ["natural", "random"])
    @pytest.mark.parametrize("k", [2, 5])
    def test_fennel_matches_reference(self, grid, rmat, order, k):
        for g in (grid, rmat):
            p = FennelPartitioner(order=order, seed=3)
            assert np.array_equal(p.partition(g, k), p.partition_reference(g, k))

    def test_single_vertex_graph(self):
        from repro.graph import GraphBuilder

        g = GraphBuilder(1).build()
        assert LdgPartitioner().partition(g, 1).tolist() == [0]
        assert FennelPartitioner().partition(g, 1).tolist() == [0]

    def test_chunk_boundary_independence(self, grid):
        """Assignments must not depend on the streaming chunk size."""
        from repro.partitioning.base import iter_neighbor_chunks

        p = LdgPartitioner()
        baseline = p.partition(grid, 4)
        import repro.partitioning.ldg as ldg_mod

        original = ldg_mod.iter_neighbor_chunks
        ldg_mod.iter_neighbor_chunks = (
            lambda graph, order, chunk_size=2048: original(graph, order, 3)
        )
        try:
            tiny_chunks = p.partition(grid, 4)
        finally:
            ldg_mod.iter_neighbor_chunks = original
        assert np.array_equal(baseline, tiny_chunks)
        # sanity: the helper yields every vertex exactly once
        seen = np.concatenate(
            [vs for vs, _, _ in iter_neighbor_chunks(grid, np.arange(grid.num_vertices), 7)]
        )
        assert np.array_equal(seen, np.arange(grid.num_vertices))


class TestBfsRegions:
    def test_regions_balanced(self, grid):
        assignment = BfsRegionPartitioner(seed=3).partition(grid, 4)
        assert vertex_balance(grid, assignment, 4) <= 1.35

    def test_locality(self, grid):
        bfs = BfsRegionPartitioner(seed=3).partition(grid, 4)
        hsh = HashPartitioner().partition(grid, 4)
        assert edge_cut(grid, bfs) < edge_cut(grid, hsh)


class TestDomain:
    def test_each_city_on_single_worker(self, rn):
        assignment = DomainPartitioner(road_network=rn).partition(rn.graph, 4)
        for city in rn.cities:
            owners = np.unique(assignment[city.vertex_ids])
            assert owners.size == 1, f"city {city.city_id} split across {owners}"

    def test_city_grouping_balanced_by_count(self, rn):
        centers = np.array([c.center for c in rn.cities])
        groups = group_cities_geographically(centers, 4, seed=0)
        counts = np.bincount(groups, minlength=4)
        assert counts.max() - counts.min() <= 1

    def test_too_many_workers_for_cities(self, rn):
        with pytest.raises(PartitioningError):
            DomainPartitioner(road_network=rn).partition(rn.graph, 99)

    def test_high_locality(self, rn):
        assignment = DomainPartitioner(road_network=rn).partition(rn.graph, 4)
        cut_fraction = edge_cut(rn.graph, assignment) / rn.graph.num_edges
        assert cut_fraction < 0.05  # almost all edges internal

    def test_coordinate_fallback(self, grid):
        assignment = DomainPartitioner().partition(grid, 4)
        validate_partitioning(grid, assignment, 4)
        sizes = np.bincount(assignment, minlength=4)
        assert sizes.max() - sizes.min() <= 1

    def test_requires_coords_or_network(self):
        from repro.graph import GraphBuilder

        b = GraphBuilder(4)
        b.add_edge(0, 1, 1.0)
        bare = b.build()
        with pytest.raises(PartitioningError):
            DomainPartitioner().partition(bare, 2)
