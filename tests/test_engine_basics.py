"""Engine unit tests: query lifecycle, correctness, isolation."""

import numpy as np
import pytest

from repro.core import Controller
from repro.engine import (
    EngineConfig,
    QGraphEngine,
    Query,
    QueryRuntime,
    SyncMode,
)
from repro.errors import EngineError, QueryError
from repro.graph import GraphBuilder, grid_graph
from repro.partitioning import HashPartitioner
from repro.queries import BfsProgram, SsspProgram
from repro.simulation.cluster import make_cluster


def build_engine(graph, k=2, sync_mode=SyncMode.HYBRID, adaptive=False, **cfg):
    assignment = HashPartitioner(seed=0).partition(graph, k)
    return QGraphEngine(
        graph,
        make_cluster("M2", k),
        assignment,
        controller=Controller(k),
        config=EngineConfig(sync_mode=sync_mode, adaptive=adaptive, **cfg),
    )


class TestLifecycle:
    def test_single_query_completes(self):
        g = grid_graph(5, 5)
        eng = build_engine(g)
        eng.submit(Query(0, SsspProgram(0, 24), (0,)))
        trace = eng.run()
        assert len(trace.finished_queries()) == 1
        assert trace.queries[0].latency > 0

    def test_query_result_distance(self):
        g = grid_graph(5, 5)
        eng = build_engine(g)
        eng.submit(Query(0, SsspProgram(0, 24), (0,)))
        eng.run()
        assert eng.query_result(0)["distance"] == pytest.approx(8.0)

    def test_duplicate_query_id_rejected(self):
        g = grid_graph(3, 3)
        eng = build_engine(g)
        eng.submit(Query(0, SsspProgram(0, 8), (0,)))
        # run so runtime is registered, then resubmit
        eng.run()
        with pytest.raises(EngineError):
            eng.submit(Query(0, SsspProgram(1, 8), (1,)))

    def test_empty_vsub_rejected(self):
        with pytest.raises(QueryError):
            Query(0, SsspProgram(0), ())

    def test_unknown_query_result(self):
        g = grid_graph(3, 3)
        eng = build_engine(g)
        with pytest.raises(EngineError):
            eng.query_result(99)

    def test_admission_control(self):
        """max_parallel_queries bounds concurrency; all queries still run."""
        g = grid_graph(6, 6)
        eng = build_engine(g, max_parallel_queries=2)
        for qid in range(6):
            eng.submit(Query(qid, BfsProgram(qid, 35 - qid), (qid,)))
        trace = eng.run()
        assert len(trace.finished_queries()) == 6

    def test_arrival_times_respected(self):
        g = grid_graph(4, 4)
        eng = build_engine(g)
        eng.submit(Query(0, BfsProgram(0, 15), (0,)), arrival_time=0.5)
        trace = eng.run()
        assert trace.queries[0].start_time >= 0.5

    def test_mismatched_assignment_rejected(self):
        g = grid_graph(3, 3)
        with pytest.raises(EngineError):
            QGraphEngine(
                g, make_cluster("M2", 2), np.zeros(5, dtype=np.int64)
            )

    def test_assignment_worker_out_of_range(self):
        g = grid_graph(3, 3)
        with pytest.raises(EngineError):
            QGraphEngine(
                g, make_cluster("M2", 2), np.full(9, 7, dtype=np.int64)
            )


class TestCorrectnessAcrossModes:
    @pytest.mark.parametrize(
        "mode", [SyncMode.HYBRID, SyncMode.GLOBAL_PER_QUERY, SyncMode.SHARED_BSP]
    )
    def test_sssp_distance_identical(self, mode):
        g = grid_graph(6, 6)
        eng = build_engine(g, k=3, sync_mode=mode)
        eng.submit(Query(0, SsspProgram(0, 35), (0,)))
        eng.run()
        assert eng.query_result(0)["distance"] == pytest.approx(10.0)

    @pytest.mark.parametrize(
        "mode", [SyncMode.HYBRID, SyncMode.GLOBAL_PER_QUERY, SyncMode.SHARED_BSP]
    )
    def test_multi_query_all_finish(self, mode):
        g = grid_graph(6, 6)
        eng = build_engine(g, k=3, sync_mode=mode)
        for qid in range(5):
            eng.submit(Query(qid, BfsProgram(qid, 35), (qid,)))
        trace = eng.run()
        assert len(trace.finished_queries()) == 5


class TestMultiQueryIsolation:
    def test_query_local_state(self):
        """Two SSSP queries on the same graph never see each other's data."""
        g = grid_graph(5, 5)
        eng = build_engine(g, k=2)
        eng.submit(Query(0, SsspProgram(0, 24), (0,)))
        eng.submit(Query(1, SsspProgram(24, 0), (24,)))
        eng.run()
        r0 = eng.query_result(0)
        r1 = eng.query_result(1)
        assert r0["distance"] == pytest.approx(8.0)
        assert r1["distance"] == pytest.approx(8.0)
        rt0, rt1 = eng.runtimes[0], eng.runtimes[1]
        assert rt0.state is not rt1.state
        assert rt0.state[0] == 0.0       # own start
        assert rt1.state[24] == 0.0

    def test_concurrent_queries_same_result_as_solo(self):
        g = grid_graph(6, 6)
        solo = build_engine(g, k=2)
        solo.submit(Query(0, SsspProgram(3, 33), (3,)))
        solo.run()
        expected = solo.query_result(0)["distance"]

        crowd = build_engine(g, k=2)
        for qid in range(8):
            crowd.submit(Query(qid, SsspProgram(3, 33), (3,)))
        crowd.run()
        for qid in range(8):
            assert crowd.query_result(qid)["distance"] == pytest.approx(expected)


class TestLocalityAccounting:
    def test_single_partition_query_fully_local(self):
        """A query on a 1-worker cluster has locality 1.0."""
        g = grid_graph(4, 4)
        eng = build_engine(g, k=1)
        eng.submit(Query(0, SsspProgram(0, 15), (0,)))
        trace = eng.run()
        assert trace.queries[0].locality == pytest.approx(1.0)

    def test_scattered_query_low_locality(self):
        g = grid_graph(6, 6)
        eng = build_engine(g, k=4)
        eng.submit(Query(0, SsspProgram(0, 35), (0,)))
        trace = eng.run()
        assert trace.queries[0].locality < 0.5

    def test_region_local_query(self):
        """A query inside one contiguous partition stays local."""
        g = grid_graph(4, 8)
        # left half -> worker 0, right half -> worker 1
        assignment = np.array(
            [0 if (v % 8) < 4 else 1 for v in range(32)], dtype=np.int64
        )
        eng = QGraphEngine(
            g,
            make_cluster("M2", 2),
            assignment,
            controller=Controller(2),
            config=EngineConfig(adaptive=False),
        )
        # query start 0 -> target 27 (row 3, col 3): entirely in left half...
        # use BFS with target pruning to keep the wave inside
        eng.submit(Query(0, BfsProgram(0, 3, max_depth=3), (0,)))
        trace = eng.run()
        assert trace.queries[0].locality == pytest.approx(1.0)


class TestRuntimeHelpers:
    def test_deliver_combines(self):
        q = Query(0, SsspProgram(0, 1), (0,))
        qr = QueryRuntime(q)
        qr.deliver(0, 5, 3.0)
        qr.deliver(0, 5, 1.0)
        assert qr.next_mailboxes[0][5] == 1.0  # min combiner

    def test_rotate(self):
        q = Query(0, SsspProgram(0, 1), (0,))
        qr = QueryRuntime(q)
        qr.deliver(1, 5, 1.0)
        qr.rotate_mailboxes()
        assert 1 in qr.mailboxes
        assert qr.next_mailboxes == {}

    def test_rebucket(self):
        q = Query(0, SsspProgram(0, 1), (0,))
        qr = QueryRuntime(q)
        qr.deliver(0, 5, 1.0, to_next=False)
        assignment = np.zeros(10, dtype=np.int64)
        assignment[5] = 3
        qr.rebucket(assignment)
        assert 5 in qr.mailboxes[3]
