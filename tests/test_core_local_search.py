"""Tests for Algorithm 2 (local search) and its vectorised successor scan."""

import numpy as np
import pytest

from repro.core import Fragment, QcutState, best_successor, local_search


def scattered_state(delta=0.9):
    """One cluster spread over 4 workers with plenty of balance headroom."""
    frags = [Fragment(0, w, 10, 10) for w in range(4)]
    base = np.array([1000.0] * 4)
    return QcutState(1, 4, frags, base, delta=delta)


class TestBestSuccessor:
    def test_finds_improving_move(self):
        st = scattered_state()
        result = best_successor(st)
        assert result is not None
        unit, w_from, w_to, delta_cost = result
        assert delta_cost < 0

    def test_no_moves_on_empty_state(self):
        st = QcutState(0, 3, [], np.array([10.0, 10.0, 10.0]))
        assert best_successor(st) is None

    def test_respects_balance_constraint(self):
        # tiny delta: every move would unbalance the moved pair
        frags = [Fragment(0, 0, 50, 50), Fragment(0, 1, 50, 50)]
        st = QcutState(1, 2, frags, np.array([10.0, 10.0]), delta=0.01)
        result = best_successor(st)
        assert result is None

    def test_delta_cost_matches_real_cost_change(self):
        st = scattered_state()
        unit, w_from, w_to, predicted = best_successor(st)
        before = st.cost()
        st.apply_move(unit, w_from, w_to)
        assert st.cost() - before == pytest.approx(predicted)

    def test_exhaustive_agreement_on_random_states(self):
        """The vectorised scan must match brute-force enumeration."""
        rng = np.random.default_rng(7)
        for trial in range(10):
            U, k = int(rng.integers(1, 5)), int(rng.integers(2, 5))
            frags = []
            for u in range(U):
                for w in range(k):
                    if rng.random() < 0.7:
                        size = int(rng.integers(1, 20))
                        frags.append(Fragment(u, w, size, size + int(rng.integers(0, 5))))
            if not frags:
                continue
            base = rng.uniform(50, 150, size=k)
            st = QcutState(U, k, frags, base, delta=0.6)
            # brute force
            best_delta = np.inf
            for u in range(U):
                for a in range(k):
                    if st.weighted[u, a] <= 0:
                        continue
                    for b in range(k):
                        if a == b:
                            continue
                        x = st.move_load(u, a)
                        if not st.pair_balance_ok(a, b, x):
                            continue
                        clone = st.copy()
                        before = clone.cost()
                        clone.apply_move(u, a, b)
                        best_delta = min(best_delta, clone.cost() - before)
            result = best_successor(st)
            if result is None:
                assert best_delta == np.inf
            else:
                assert result[3] == pytest.approx(best_delta)


class TestLocalSearch:
    def test_reaches_zero_cost_with_headroom(self):
        st = scattered_state(delta=0.9)
        out = local_search(st)
        assert out.cost() == 0.0

    def test_never_increases_cost(self):
        st = scattered_state()
        before = st.cost()
        out = local_search(st)
        assert out.cost() <= before

    def test_terminates_at_local_minimum(self):
        st = scattered_state()
        out = local_search(st)
        nxt = best_successor(out)
        assert nxt is None or nxt[3] >= 0.0

    def test_max_steps_guard(self):
        st = scattered_state()
        out = local_search(st, max_steps=1)
        # only one move applied
        assert (out.weighted[0] > 0).sum() >= 2

    def test_multi_cluster_consolidation(self):
        frags = []
        for u in range(4):
            for w in range(4):
                frags.append(Fragment(u, w, 5, 5))
        st = QcutState(4, 4, frags, np.array([500.0] * 4), delta=0.9)
        out = local_search(st)
        assert out.cost() == 0.0
        # every cluster fused on exactly one worker
        assert ((out.weighted > 0).sum(axis=1) == 1).all()
