"""End-to-end integration tests exercising the full harness pipeline."""

import numpy as np
import pytest

from repro.bench import Scenario, run_scenario
from repro.core import (
    BarrierReadyMessage,
    BarrierSynchMessage,
    ExecuteQueryMessage,
    MoveRequest,
    ScheduleQueryMessage,
    StatsMessage,
)
from repro.engine import SyncMode


@pytest.fixture(scope="module")
def scenario_pair():
    """One static-hash and one adaptive run on a small BW-like network."""
    base = dict(
        graph_preset="bw",
        graph_scale=0.4,
        main_queries=64,
        k=4,
        seed=11,
    )
    static = run_scenario(
        Scenario(name="static", partitioner="hash", adaptive=False, **base)
    )
    adaptive = run_scenario(
        Scenario(name="adaptive", partitioner="hash", adaptive=True, **base)
    )
    return static, adaptive


class TestHarness:
    def test_all_queries_finish(self, scenario_pair):
        static, adaptive = scenario_pair
        assert len(static.trace.finished_queries()) == 64
        assert len(adaptive.trace.finished_queries()) == 64

    def test_adaptive_repartitions(self, scenario_pair):
        _static, adaptive = scenario_pair
        assert len(adaptive.trace.repartitions) >= 1

    def test_adaptive_improves_locality(self, scenario_pair):
        static, adaptive = scenario_pair
        assert adaptive.mean_locality > static.mean_locality

    def test_summary_fields(self, scenario_pair):
        static, _ = scenario_pair
        s = static.summary()
        for key in (
            "total_latency",
            "mean_latency",
            "makespan",
            "locality",
            "imbalance",
            "repartitions",
            "queries",
        ):
            assert key in s
        assert s["queries"] == 64

    def test_deterministic_reruns(self):
        base = Scenario(
            name="det",
            partitioner="hash",
            adaptive=True,
            graph_preset="bw",
            graph_scale=0.4,
            main_queries=32,
            k=4,
            seed=5,
        )
        a = run_scenario(base)
        b = run_scenario(base)
        assert a.total_latency == pytest.approx(b.total_latency)
        assert a.mean_locality == pytest.approx(b.mean_locality)
        assert len(a.trace.repartitions) == len(b.trace.repartitions)

    def test_sync_mode_scenarios(self):
        for mode in (SyncMode.SHARED_BSP, SyncMode.GLOBAL_PER_QUERY):
            r = run_scenario(
                Scenario(
                    name=f"mode-{mode.value}",
                    partitioner="hash",
                    sync_mode=mode,
                    adaptive=False,
                    graph_preset="bw",
                    graph_scale=0.4,
                    main_queries=16,
                    k=4,
                    seed=2,
                )
            )
            assert len(r.trace.finished_queries()) == 16

    def test_poi_workload_scenario(self):
        r = run_scenario(
            Scenario(
                name="poi",
                partitioner="domain",
                workload="poi",
                adaptive=False,
                graph_preset="bw",
                graph_scale=0.4,
                main_queries=24,
                k=4,
                seed=3,
            )
        )
        assert len(r.trace.finished_queries()) == 24

    def test_mixed_workload_scenario_all_kinds_finish(self):
        """All seven query programs blended in one adaptive run, admitted
        shortest-predicted-work-first, arriving as a Poisson process."""
        r = run_scenario(
            Scenario(
                name="mixed",
                partitioner="domain",
                workload="mixed",
                adaptive=True,
                graph_preset="bw",
                graph_scale=0.4,
                main_queries=56,
                max_parallel=8,
                scheduler="shortest_scope",
                arrival="poisson",
                arrival_rate=4000.0,
                k=4,
                seed=3,
            )
        )
        finished = r.trace.finished_queries()
        assert len(finished) == 56
        assert {q.kind for q in finished} == {
            "sssp", "poi", "bfs", "khop", "reach", "ppr", "wcc-local",
        }


class TestApiMessages:
    """Table 2 message constructors round-trip their payloads."""

    def test_stats_message(self):
        m = StatsMessage(
            query_id=1,
            local_scope_size=10,
            worker=2,
            intersections={frozenset({1, 2}): 3},
        )
        assert m.intersections[frozenset({1, 2})] == 3

    def test_barrier_synch_piggyback(self):
        stats = StatsMessage(query_id=1, local_scope_size=4, worker=0)
        m = BarrierSynchMessage(query_id=1, worker=0, iteration=7, stats=(stats,))
        assert m.stats[0].local_scope_size == 4

    def test_move_request(self):
        m = MoveRequest(src=0, dst=1, vertices=[3, 4, 5])
        assert m.size == 3
        assert m.vertices.dtype == np.int64

    def test_simple_messages(self):
        assert ScheduleQueryMessage(query_id=9).query_id == 9
        assert ExecuteQueryMessage(query_id=9).query_id == 9
        assert BarrierReadyMessage(query_id=9, iteration=1).iteration == 1
