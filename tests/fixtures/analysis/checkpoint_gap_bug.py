"""Distilled checkpoint-completeness gap (the contract PR 7 never checked).

``GapRuntime`` carries two handler-written per-query fields, but
``GapCheckpoint.capture`` copies only one of them: after a crash the
restored query resumes with a stale ``frontier``, silently diverging from
the fault-free run.  The real engine's ``QueryCheckpoint`` enumerates its
runtime's fields by hand in exactly this shape — this fixture preserves
the one-field-forgotten variant so ``checkpoint-gap`` provably flags it
(see tests/test_analysis_lifecycle.py).

Lint this file directly to reproduce the finding::

    python -m repro.analysis tests/fixtures/analysis/checkpoint_gap_bug.py \
        --select checkpoint-gap     # exits 1
"""

from typing import Dict


class GapRuntime:
    def __init__(self):
        self.cursor: Dict[int, int] = {}
        self.frontier: Dict[int, int] = {}


class GapCheckpoint:
    def __init__(self):
        self.cursor = {}

    @classmethod
    def capture(cls, qr: "GapRuntime"):
        ck = cls()
        ck.cursor = dict(qr.cursor)
        # BUG distilled: qr.frontier is handler-written per-query state,
        # but capture never reads it — lost across crash recovery
        return ck

    def restore(self, qr: "GapRuntime"):
        qr.cursor = dict(self.cursor)


class GapEngine:
    def __init__(self, queue):
        self.queue = queue
        self.runtimes: Dict[int, GapRuntime] = {}

    def step(self):
        event = self.queue.pop()
        handler = getattr(self, f"_on_{event.kind}", None)
        if handler is not None:
            handler(event.time, event.payload)

    def _on_advance(self, now, payload):
        qr = self.runtimes[payload["query"]]
        qr.cursor[payload["vertex"]] = now
        qr.frontier[payload["vertex"]] = payload["hops"]
