"""Distilled terminal waiting state (the PR 4 stranded-barrier shape).

``_on_task_ready`` parks tasks arriving under a STOP into
``_held_tasks``, and ``_on_global_start`` duly lowers the stop flag —
but nothing ever drains the parked buffer, so every task that landed
during the barrier is stranded forever and the queries waiting on them
never finish.  The real engine's START handler replays its held buffers
verbatim; this fixture preserves the forgotten-replay variant so
``barrier-liveness`` provably flags it (see
tests/test_analysis_protocol.py).

Lint this file directly to reproduce the finding::

    python -m repro.analysis tests/fixtures/analysis/barrier_liveness_bug.py \
        --select barrier-liveness     # exits 1
"""

from typing import Dict, List


class ParkEngine:
    def __init__(self, queue):
        self.queue = queue
        self.stopped = False
        self._held_tasks: List[int] = []
        self.mailboxes: Dict[int, float] = {}

    def step(self):
        event = self.queue.pop()
        handler = getattr(self, f"_on_{event.kind}", None)
        if handler is not None:
            handler(event.time, event.payload)

    def begin_stop(self, now):
        self.queue.schedule(now, "global_stop")

    def _on_global_stop(self, now, payload):
        self.stopped = True
        self.queue.schedule(now + 1, "global_start")

    def _on_global_start(self, now, payload):
        # BUG distilled: lowers the stop flag but never replays the
        # parked buffer — tasks held across the barrier wait forever
        self.stopped = False

    def _on_task_ready(self, now, payload):
        if self.stopped:
            self._held_tasks.append(payload["task"])
            return
        self.mailboxes[payload["task"]] = now
