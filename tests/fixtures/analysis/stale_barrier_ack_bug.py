"""Distilled stale-barrier-ack bug (the PR 7 recovery-era shape).

``_on_task_ready`` schedules the worker's barrier ack and *then*
rewrites the ack bookkeeping the ack handler reads — the scheduled event
observes post-reset state, so the re-issued ack either double-counts or
completes a barrier generation it no longer belongs to.  The engine's
fix stamps acks with a ``barrier_epoch`` bumped *before* dispatch; this
fixture preserves the mutate-after-schedule ordering so
``effect-after-schedule`` provably flags it.

Lint this file directly to reproduce the finding::

    python -m repro.analysis tests/fixtures/analysis/stale_barrier_ack_bug.py \
        --select effect-after-schedule     # exits 1
"""


class MiniBarrierController:
    def __init__(self, queue):
        self.queue = queue
        self.barrier_epoch = 0
        self.acked = set()
        self.involved = set()

    def step(self):
        event = self.queue.pop()
        handler = getattr(self, f"_on_{event.kind}", None)
        if handler is not None:
            handler(event.time, event.payload)

    def _on_task_ready(self, now, payload):
        self.queue.schedule(
            now + 1, "barrier_ack", worker=payload["worker"], epoch=self.barrier_epoch
        )
        # BUG (distilled): the bookkeeping the scheduled ack will be
        # counted against is rewritten after the schedule — the ack runs
        # against a barrier membership it was never issued for
        self.acked = set()
        self.involved = {payload["worker"]}

    def _on_barrier_ack(self, now, payload):
        if payload["epoch"] != self.barrier_epoch:
            return
        self.acked.add(payload["worker"])
        if self.acked == self.involved:
            self.barrier_epoch += 1
