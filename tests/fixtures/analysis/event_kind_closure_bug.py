"""Distilled event-kind closure holes (typo'd kind + dead handler).

The dispatch idiom ``getattr(self, f"_on_{kind}", None)`` silently drops
any kind with no matching handler — a typo in a schedule site is not an
error, it is a no-op, and the protocol just stalls.  The mirror hole is a
handler no schedule site ever produces: dead protocol surface that reads
as load-bearing.  ``_on_advance`` here schedules the typo'd
``"compute_dne"`` (no ``_on_compute_dne`` exists) while the real
``_on_compute_done`` cleanup handler is never produced — both directions
of ``event-kind-closure`` provably flag it (see
tests/test_analysis_protocol.py).

Lint this file directly to reproduce the findings::

    python -m repro.analysis tests/fixtures/analysis/event_kind_closure_bug.py \
        --select event-kind-closure     # exits 1
"""

from typing import Dict


class ClosureEngine:
    def __init__(self, queue):
        self.queue = queue
        self.frontier: Dict[int, float] = {}

    def step(self):
        event = self.queue.pop()
        handler = getattr(self, f"_on_{event.kind}", None)
        if handler is not None:
            handler(event.time, event.payload)

    def submit(self, now, vertex):
        self.queue.schedule(now, "advance", vertex=vertex)

    def _on_advance(self, now, payload):
        self.frontier[payload["vertex"]] = now
        # BUG distilled: typo'd kind — there is no _on_compute_dne, the
        # dispatch getattr drops the event and the frontier never drains
        self.queue.schedule(now + 1, "compute_dne", vertex=payload["vertex"])

    def _on_compute_done(self, now, payload):
        # BUG distilled: the intended cleanup handler is reachable from
        # no schedule site — dead protocol surface
        self.frontier.pop(payload["vertex"], None)
