"""Distilled mid-BSP STOP race (the PR 5 era bug, pre barrier-aligned STOP).

A ``global_stop`` tears down superstep state while a ``bsp_compute``
event for the in-flight superstep can sit in the queue at the *same*
virtual timestamp: whichever handler pops first wins, and neither tests
a pause/epoch fence, so the outcome is decided by schedule order alone.
The engine fixed this by deferring the STOP to the superstep barrier;
this fixture preserves the unfenced shape so ``virtual-time-race``
provably flags it (see tests/test_analysis_project.py).

Lint this file directly to reproduce the finding::

    python -m repro.analysis tests/fixtures/analysis/midbsp_stop_bug.py \
        --select virtual-time-race     # exits 1
"""


class MiniBspEngine:
    def __init__(self, queue):
        self.queue = queue
        self.superstep = 0
        self.frontier = {}
        self.assignment = {}

    def step(self):
        event = self.queue.pop()
        handler = getattr(self, f"_on_{event.kind}", None)
        if handler is not None:
            handler(event.time, event.payload)

    def _on_bsp_compute(self, now, payload):
        # advances the shared superstep state with no pause fence
        self.frontier[payload["worker"]] = payload["messages"]
        self.superstep += 1
        self.queue.schedule(now, "bsp_compute", worker=payload["worker"])

    def _on_global_stop(self, now, payload):
        # tears down the same state, equally unfenced: a bsp_compute
        # already queued at this timestamp may run against the torn-down
        # frontier (or clobber the new assignment), depending only on
        # which event was scheduled first
        self.frontier = {}
        self.superstep = 0
        self.assignment = dict(payload["assignment"])
