"""Distilled stale-dispatch bug (the PR 1/PR 8 unfenced-consumer class).

``FenceEngine`` has a real STOP/START boundary (``stopped`` is raised and
lowered across a barrier), so a ``task_ready`` produced *before* the STOP
can be consumed *after* the START — by which time the task's mailbox may
have been re-homed to another worker.  ``_on_task_ready`` applies the
task with no epoch or phase comparison anywhere on its path, so the stale
dispatch lands on the old owner.  The engine's fix redirects stale tasks
by comparing the payload's epoch against the live one; this fixture
preserves the unfenced variant so ``epoch-fence`` provably flags it (see
tests/test_analysis_protocol.py).

Lint this file directly to reproduce the finding::

    python -m repro.analysis tests/fixtures/analysis/epoch_fence_bug.py \
        --select epoch-fence     # exits 1
"""

from typing import Dict, List


class FenceEngine:
    def __init__(self, queue):
        self.queue = queue
        self.stopped = False
        self._held_tasks: List[int] = []
        self.mailboxes: Dict[int, float] = {}

    def step(self):
        event = self.queue.pop()
        handler = getattr(self, f"_on_{event.kind}", None)
        if handler is not None:
            handler(event.time, event.payload)

    def submit(self, now, task):
        self.queue.schedule(now, "task_ready", task=task)

    def _on_global_stop(self, now, payload):
        self.stopped = True

    def _on_global_start(self, now, payload):
        self.stopped = False
        while self._held_tasks:
            self.queue.schedule(now, "task_ready", task=self._held_tasks.pop())

    def _on_task_ready(self, now, payload):
        # BUG distilled: a task produced before the STOP is applied after
        # the START with no epoch/phase guard — stale work lands on a
        # mailbox whose owner may have been re-homed across the barrier
        self.mailboxes[payload["task"]] = now
