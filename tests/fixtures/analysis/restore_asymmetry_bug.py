"""Distilled capture/restore asymmetry — both directions.

``SymCheckpoint.capture`` snapshots ``cursor`` and ``budget``, but
``restore`` only writes ``cursor`` back: the captured ``budget`` is dead
weight and recovery resumes with the post-crash value (captured but never
restored).  ``restore`` additionally installs ``qr.phase`` from a
checkpoint slot that ``capture`` never fills — stale default data
(restored but never captured).  Dropping one ``restore`` line from the
real ``QueryCheckpoint`` produces exactly the first shape; this fixture
preserves both so ``restore-asymmetry`` provably flags them (see
tests/test_analysis_lifecycle.py).

Lint this file directly to reproduce the findings::

    python -m repro.analysis tests/fixtures/analysis/restore_asymmetry_bug.py \
        --select restore-asymmetry     # exits 1
"""

from typing import Dict


class SymRuntime:
    def __init__(self):
        self.cursor: Dict[int, int] = {}
        self.budget: Dict[int, float] = {}
        self.phase = "seed"


class SymCheckpoint:
    def __init__(self):
        self.cursor = {}
        self.budget = {}
        self.phase = ""

    @classmethod
    def capture(cls, qr: "SymRuntime"):
        ck = cls()
        ck.cursor = dict(qr.cursor)
        ck.budget = dict(qr.budget)
        # note: ck.phase is never filled from qr
        return ck

    def restore(self, qr: "SymRuntime"):
        qr.cursor = dict(self.cursor)
        # BUG distilled (captured-not-restored): self.budget never copied back
        # BUG distilled (restored-not-captured): installs an uncaptured slot
        qr.phase = str(self.phase)


class SymEngine:
    def __init__(self, queue):
        self.queue = queue
        self.runtimes: Dict[int, SymRuntime] = {}

    def step(self):
        event = self.queue.pop()
        handler = getattr(self, f"_on_{event.kind}", None)
        if handler is not None:
            handler(event.time, event.payload)

    def _on_charge(self, now, payload):
        qr = self.runtimes[payload["query"]]
        qr.cursor[payload["vertex"]] = now
        qr.budget[payload["vertex"]] = payload["cost"]
