"""Distilled finish-path state leak (the PR 2/PR 5 scope-store-leak class).

``LeakEngine`` keys three structures by query id; ``_finish_query``
releases ``running`` and ``progress`` but forgets ``partials`` — every
finished query's partial results stay resident forever, an unbounded leak
across a long multi-tenant run, and a reused query id would even see the
previous query's data.  The engine-side ``_activated`` leak fixed this PR
had exactly this shape; the fixture preserves it so ``finish-leak``
provably flags it (see tests/test_analysis_lifecycle.py).

Lint this file directly to reproduce the finding::

    python -m repro.analysis tests/fixtures/analysis/finish_leak_bug.py \
        --select finish-leak     # exits 1
"""

from typing import Dict, List, Set


class LeakEngine:
    def __init__(self, queue):
        self.queue = queue
        self.running: Set[int] = set()
        #: query -> latest iteration timestamp
        self.progress: Dict[int, float] = {}
        #: query -> accumulated partial results
        self.partials: Dict[int, List[float]] = {}

    def step(self):
        event = self.queue.pop()
        handler = getattr(self, f"_on_{event.kind}", None)
        if handler is not None:
            handler(event.time, event.payload)

    def _on_tick(self, now, payload):
        query = payload["query"]
        self.progress[query] = now
        self.partials.setdefault(query, []).append(payload["value"])
        if payload["done"]:
            self._finish_query(query)

    def _finish_query(self, query):
        self.running.discard(query)
        self.progress.pop(query, None)
        # BUG distilled: self.partials[query] is never released — per-query
        # state survives the query's whole lifecycle
