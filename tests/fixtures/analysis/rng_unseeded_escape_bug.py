"""Distilled unseeded-stream escape: a library helper constructs an
OS-entropy generator and hands it out, so every caller inherits a
nondeterministic stream — the exact shape the seeded ``[seed, key]``
stream-isolation convention exists to prevent.

Lint this file directly to reproduce the finding::

    python -m repro.analysis tests/fixtures/analysis/rng_unseeded_escape_bug.py \
        --select rng-unseeded-escape     # exits 1
"""

import numpy as np


def make_stream():
    # BUG (distilled): no seed — draws differ run to run, and the
    # generator escapes to callers so the nondeterminism spreads
    rng = np.random.default_rng()
    return rng
