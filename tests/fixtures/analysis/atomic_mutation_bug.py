"""Distilled torn invariant-group update (recovery-visible partial state).

``assignment`` and ``mailboxes`` form a declared invariant couple: every
mailbox must be bucketed under the worker the assignment names, or
message conservation breaks.  ``_on_rebalance`` commits the new
assignment first and only *then* validates the plan — the ``raise`` in
between leaves the assignment re-homed while the mailboxes still point at
the old owners, exactly the partial state a recovery (or sanitizer sweep)
would observe.  The pre-fix ``_do_recovery`` had this shape (assignment
re-homed before the no-checkpoint check); the fixture preserves it so
``atomic-mutation`` provably flags it (see tests/test_analysis_lifecycle.py).

Lint this file directly to reproduce the finding::

    python -m repro.analysis tests/fixtures/analysis/atomic_mutation_bug.py \
        --select atomic-mutation     # exits 1
"""

from typing import Dict

STATE_INVARIANT_GROUPS = (
    ("AtomEngine.assignment", "AtomEngine.mailboxes"),
)


class AtomEngine:
    def __init__(self, queue):
        self.queue = queue
        self.assignment: Dict[int, int] = {}
        self.mailboxes: Dict[int, Dict[int, float]] = {}

    def step(self):
        event = self.queue.pop()
        handler = getattr(self, f"_on_{event.kind}", None)
        if handler is not None:
            handler(event.time, event.payload)

    def _on_rebalance(self, now, payload):
        # first half of the couple commits...
        for vertex, owner in payload["moves"]:
            self.assignment[vertex] = owner
        # BUG distilled: ...then a validation that can abort *between* the
        # two writes — the assignment is re-homed, the mailboxes are not
        if not payload["plan_ok"]:
            raise RuntimeError("rebalance rejected mid-move")
        self.mailboxes = self._rebucket()

    def _rebucket(self):
        fresh: Dict[int, Dict[int, float]] = {}
        for box in self.mailboxes.values():
            for vertex, message in box.items():
                fresh.setdefault(self.assignment[vertex], {})[vertex] = message
        return fresh
