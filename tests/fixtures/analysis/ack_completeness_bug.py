"""Distilled stale-barrier-ack generation bug (the PR 1/PR 4 class).

``AckEngine`` declares its barrier couple — acks in ``acked`` counted
against ``involved``, fenced by ``barrier_epoch`` — and ``_on_global_stop``
starts a fresh barrier generation by re-seeding both sets.  But it never
bumps the epoch, so an ack still in flight from the *previous* generation
carries a stamp that passes the ``_on_barrier_ack`` fence and completes a
barrier its worker never joined.  The engine's fix bumps ``barrier_epoch``
at every re-seed site (``reset_barrier_protocol``); this fixture
preserves the forgotten-bump variant so ``ack-completeness`` provably
flags it (see tests/test_analysis_protocol.py).

Lint this file directly to reproduce the finding::

    python -m repro.analysis tests/fixtures/analysis/ack_completeness_bug.py \
        --select ack-completeness     # exits 1
"""

from typing import Set

BARRIER_ACK_PROTOCOLS = (
    ("AckEngine.acked", "AckEngine.involved", "AckEngine.barrier_epoch"),
)


class AckEngine:
    def __init__(self, queue):
        self.queue = queue
        self.acked: Set[int] = set()
        self.involved: Set[int] = set()
        self.barrier_epoch = 0

    def step(self):
        event = self.queue.pop()
        handler = getattr(self, f"_on_{event.kind}", None)
        if handler is not None:
            handler(event.time, event.payload)

    def _on_global_stop(self, now, payload):
        # BUG distilled: a fresh barrier generation is seeded without
        # bumping barrier_epoch — an in-flight ack stamped with the
        # previous generation still passes the epoch fence below
        self.involved = set(payload["workers"])
        self.acked = set()
        for worker in sorted(self.involved):
            self.queue.schedule(now + 1, "barrier_ack", worker=worker,
                                epoch=self.barrier_epoch)

    def _on_barrier_ack(self, now, payload):
        if payload["epoch"] != self.barrier_epoch:
            return
        self.acked.add(payload["worker"])
        if self.acked == self.involved:
            self.queue.schedule(now, "global_start")

    def _on_global_start(self, now, payload):
        # the START side is generation-correct: bump, then re-seed
        self.barrier_epoch += 1
        self.acked = set()
