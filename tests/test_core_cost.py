"""Tests for the query-cut metric and the ILS cost function (§2, §3.2.2)."""

import numpy as np
import pytest

from repro.core import assignment_cost, query_cut, query_cut_excess
from repro.graph.generators import NY_CUTS, NY_QUERY_SCOPES, new_york_districts


class TestQueryCut:
    def test_fully_local_queries(self):
        scopes = {1: {0, 1, 2}, 2: {5, 6}}
        assignment = np.array([0, 0, 0, 0, 0, 1, 1, 1])
        assert query_cut(scopes, assignment, 2) == 2  # one scope per query
        assert query_cut_excess(scopes, assignment, 2) == 0

    def test_split_query(self):
        scopes = {1: {0, 1, 2, 3}}
        assignment = np.array([0, 0, 1, 1])
        assert query_cut(scopes, assignment, 2) == 2
        assert query_cut_excess(scopes, assignment, 2) == 1

    def test_empty_scope_ignored(self):
        scopes = {1: set()}
        assignment = np.array([0, 1])
        assert query_cut(scopes, assignment, 2) == 0
        assert query_cut_excess(scopes, assignment, 2) == 0

    def test_figure1_cut_comparison(self):
        """Fig. 1: cuts 1/2 have query-cut 0 (excess), cut 3 has 1."""
        scopes = {i: set(s) for i, s in enumerate(NY_QUERY_SCOPES.values())}
        for cut_name, expected in [("cut1", 0), ("cut2", 0), ("cut3", 1)]:
            side = NY_CUTS[cut_name]
            assignment = np.array([0 if v in side else 1 for v in range(10)])
            assert query_cut_excess(scopes, assignment, 2) == expected, cut_name


class TestAssignmentCost:
    def test_zero_for_independent_queries(self):
        """§3.2.2: 'if two workers execute two queries completely
        independently, the costs would be zero.'"""
        scopes = {1: {0, 1}, 2: {2, 3}}
        assignment = np.array([0, 0, 1, 1])
        assert assignment_cost(scopes, assignment, 2) == 0.0

    def test_counts_minority_vertices(self):
        scopes = {1: {0, 1, 2, 3, 4}}
        assignment = np.array([0, 0, 0, 1, 1])
        assert assignment_cost(scopes, assignment, 2) == 2.0

    def test_tie_takes_single_argmax(self):
        scopes = {1: {0, 1}}
        assignment = np.array([0, 1])
        assert assignment_cost(scopes, assignment, 2) == 1.0

    def test_sums_over_queries(self):
        scopes = {1: {0, 1, 2}, 2: {3, 4, 5}}
        assignment = np.array([0, 0, 1, 0, 1, 1])
        assert assignment_cost(scopes, assignment, 2) == 2.0
