"""Unit tests for the CSR directed graph."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import DiGraph, GraphBuilder


def small_graph():
    b = GraphBuilder(4)
    b.add_edge(0, 1, 1.0)
    b.add_edge(0, 2, 2.0)
    b.add_edge(1, 2, 0.5)
    b.add_edge(2, 3, 1.5)
    b.add_edge(3, 0, 4.0)
    return b.build(name="small")


class TestConstruction:
    def test_counts(self):
        g = small_graph()
        assert g.num_vertices == 4
        assert g.num_edges == 5

    def test_rejects_bad_indptr(self):
        with pytest.raises(GraphError):
            DiGraph(np.array([1, 2]), np.array([0]), np.array([1.0]))

    def test_rejects_nonmonotone_indptr(self):
        with pytest.raises(GraphError):
            DiGraph(np.array([0, 2, 1]), np.array([0, 1]), np.array([1.0, 1.0]))

    def test_rejects_out_of_range_edge(self):
        with pytest.raises(GraphError):
            DiGraph(np.array([0, 1]), np.array([5]), np.array([1.0]))

    def test_rejects_negative_weight(self):
        with pytest.raises(GraphError):
            DiGraph(np.array([0, 1, 1]), np.array([1]), np.array([-1.0]))

    def test_rejects_weight_length_mismatch(self):
        with pytest.raises(GraphError):
            DiGraph(np.array([0, 1, 1]), np.array([1]), np.array([1.0, 2.0]))

    def test_rejects_bad_coords_shape(self):
        with pytest.raises(GraphError):
            DiGraph(
                np.array([0, 0, 0]),
                np.empty(0, dtype=np.int64),
                np.empty(0),
                coords=np.zeros((3, 2)),
            )

    def test_empty_graph(self):
        g = DiGraph(np.array([0]), np.empty(0, dtype=np.int64), np.empty(0))
        assert g.num_vertices == 0
        assert g.num_edges == 0


class TestAdjacency:
    def test_out_neighbors(self):
        g = small_graph()
        assert sorted(g.out_neighbors(0).tolist()) == [1, 2]
        assert g.out_neighbors(3).tolist() == [0]

    def test_out_weights_aligned(self):
        g = small_graph()
        nbrs = g.out_neighbors(0).tolist()
        ws = g.out_weights(0).tolist()
        assert dict(zip(nbrs, ws)) == {1: 1.0, 2: 2.0}

    def test_in_neighbors_is_reverse(self):
        g = small_graph()
        assert sorted(g.in_neighbors(2).tolist()) == [0, 1]
        assert g.in_neighbors(0).tolist() == [3]

    def test_in_weights(self):
        g = small_graph()
        nbrs = g.in_neighbors(2).tolist()
        ws = g.in_weights(2).tolist()
        assert dict(zip(nbrs, ws)) == {0: 2.0, 1: 0.5}

    def test_degrees(self):
        g = small_graph()
        assert g.out_degree(0) == 2
        assert g.in_degree(2) == 2
        assert g.out_degrees().tolist() == [2, 1, 1, 1]
        assert g.in_degrees().sum() == g.num_edges

    def test_has_edge(self):
        g = small_graph()
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)

    def test_edge_weight(self):
        g = small_graph()
        assert g.edge_weight(1, 2) == 0.5
        with pytest.raises(GraphError):
            g.edge_weight(1, 3)

    def test_edge_weight_parallel_edges_keeps_min(self):
        b = GraphBuilder(2)
        b.add_edge(0, 1, 5.0)
        b.add_edge(0, 1, 2.0)
        g = b.build()
        assert g.edge_weight(0, 1) == 2.0

    def test_vertex_out_of_range(self):
        g = small_graph()
        with pytest.raises(GraphError):
            g.out_neighbors(10)
        with pytest.raises(GraphError):
            g.out_neighbors(-1)

    def test_edges_iterator(self):
        g = small_graph()
        edges = list(g.edges())
        assert len(edges) == 5
        assert (0, 1, 1.0) in edges

    def test_edge_array_roundtrip(self):
        g = small_graph()
        src, dst, w = g.edge_array()
        assert len(src) == g.num_edges
        rebuilt = set(zip(src.tolist(), dst.tolist()))
        assert rebuilt == {(u, v) for u, v, _ in g.edges()}


class TestAttributes:
    def test_coords(self):
        b = GraphBuilder(2)
        b.add_edge(0, 1, 1.0)
        b.set_coord(0, 0.0, 0.0)
        b.set_coord(1, 3.0, 4.0)
        g = b.build()
        assert g.has_coords()
        assert g.euclidean(0, 1) == pytest.approx(5.0)

    def test_euclidean_without_coords_raises(self):
        g = small_graph()
        with pytest.raises(GraphError):
            g.euclidean(0, 1)

    def test_tags(self):
        b = GraphBuilder(3)
        b.add_edge(0, 1, 1.0)
        b.set_tag(2)
        g = b.build()
        assert g.has_tags()
        assert g.tagged_vertices().tolist() == [2]

    def test_no_tags(self):
        g = small_graph()
        assert not g.has_tags()
        assert g.tagged_vertices().size == 0

    def test_subgraph_edge_count(self):
        g = small_graph()
        assert g.subgraph_edge_count([0, 1, 2]) == 3
        assert g.subgraph_edge_count([0]) == 0


class TestEquality:
    def test_equal_graphs(self):
        assert small_graph() == small_graph()

    def test_unequal_weights(self):
        b = GraphBuilder(4)
        b.add_edge(0, 1, 9.0)
        assert small_graph() != b.build()
