"""Tests for the streaming topology-mutation layer (GraphDelta / MutableDiGraph)."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    DiGraph,
    GraphBuilder,
    GraphDelta,
    MutableDiGraph,
    NewVertexSpec,
    fresh_rebuild,
    grid_graph,
)
from repro.graph.road_network import generate_road_network


def _mutable_grid(rows=4, cols=4):
    return MutableDiGraph.from_digraph(grid_graph(rows, cols))


class TestMutableBasics:
    def test_from_digraph_is_a_deep_copy(self):
        g = grid_graph(3, 3)
        mg = MutableDiGraph.from_digraph(g)
        assert mg == g
        mg.delete_edge(0, 1)
        mg.flush()
        assert g.has_edge(0, 1), "mutating the copy touched the source"
        assert not mg.has_edge(0, 1)

    def test_reads_reflect_last_flush_only(self):
        mg = _mutable_grid()
        mg.delete_edge(0, 1)
        assert mg.has_edge(0, 1), "unflushed delta visible to reads"
        assert mg.pending_mutations == 1
        mg.flush()
        assert not mg.has_edge(0, 1)
        assert mg.pending_mutations == 0

    def test_empty_flush_is_a_noop(self):
        mg = _mutable_grid()
        before = mg.churn_epochs
        result = mg.flush()
        assert not result
        assert mg.churn_epochs == before

    def test_csr_views_invalidated_on_flush(self):
        mg = _mutable_grid()
        view = mg.csr()
        rview = mg.csr_in()
        mg.delete_edge(0, 1)
        mg.flush()
        assert mg.csr() is not view
        assert mg.csr_in() is not rview
        # the old borrowed view still references the pre-flush arrays
        assert view.indices.size == mg.num_edges + 1

    def test_weight_update(self):
        mg = _mutable_grid()
        mg.update_weight(0, 1, 7.5)
        mg.flush()
        assert mg.edge_weight(0, 1) == 7.5

    def test_weight_update_last_wins_within_one_flush(self):
        mg = _mutable_grid()
        mg.update_weight(0, 1, 7.5)
        mg.update_weight(0, 1, 3.25)
        mg.flush()
        assert mg.edge_weight(0, 1) == 3.25

    def test_insert_edge(self):
        mg = _mutable_grid()
        assert not mg.has_edge(0, 15)
        mg.insert_edge(0, 15, 2.0)
        mg.flush()
        assert mg.edge_weight(0, 15) == 2.0
        assert 0 in mg.in_neighbors(15)

    def test_negative_weights_rejected(self):
        mg = _mutable_grid()
        with pytest.raises(GraphError):
            mg.insert_edge(0, 1, -1.0)
        with pytest.raises(GraphError):
            mg.update_weight(0, 1, -1.0)

    def test_negative_weights_in_raw_delta_rejected_at_flush(self):
        """A hand-built delta must not bypass the buffering methods'
        validation; flush rejects it before touching any state."""
        for bad in (
            GraphDelta(insert_edges=[(0, 1, -5.0)]),
            GraphDelta(update_weights=[(0, 1, -9.0)]),
            GraphDelta(new_vertices=[NewVertexSpec(edges=((0, -1.0),))]),
        ):
            mg = _mutable_grid()
            edges_before = mg.num_edges
            with pytest.raises(GraphError):
                mg.apply_delta(bad)
            assert mg.num_edges == edges_before

    def test_from_digraph_carries_pending_buffer(self):
        mg = _mutable_grid()
        mg.insert_edge(0, 15, 2.0)  # buffered, not flushed
        copy = MutableDiGraph.from_digraph(mg)
        assert copy.pending_mutations == 1
        copy.flush()
        mg.flush()
        assert mg.has_edge(0, 15) and copy.has_edge(0, 15)

    def test_add_vertex_extends_coords_and_tags(self):
        rn = generate_road_network(
            num_cities=3, num_urban_vertices=200, seed=1, region_size=40.0
        )
        mg = MutableDiGraph.from_digraph(rn.graph)
        n = mg.num_vertices
        mg.add_vertex(NewVertexSpec(x=1.0, y=2.0, tag=True, edges=((0, 1.5),)))
        res = mg.flush()
        assert res.first_new_vertex == n
        assert mg.num_vertices == n + 1
        assert mg.coords.shape == (n + 1, 2)
        assert tuple(mg.coords[n]) == (1.0, 2.0)
        assert mg.tags[n]
        assert mg.has_edge(n, 0) and mg.has_edge(0, n)  # bidirectional default

    def test_remove_vertex_tombstones(self):
        mg = _mutable_grid()
        n = mg.num_vertices
        mg.remove_vertex(5)
        res = mg.flush()
        assert res.removed_vertices == (5,)
        assert mg.num_vertices == n  # id space unchanged
        assert mg.num_live_vertices == n - 1
        assert mg.out_degree(5) == 0 and mg.in_degree(5) == 0
        assert not any(5 in mg.out_neighbors(v) for v in range(n))

    def test_tolerant_application(self):
        """Conflicting mutations are skipped, not errors (change-feed replay)."""
        mg = _mutable_grid()
        mg.remove_vertex(5)
        mg.flush()
        delta = GraphDelta(
            delete_edges=[(5, 6), (0, 1)],       # (5,6) already gone
            insert_edges=[(5, 2, 1.0), (0, 2, 1.0)],  # 5 is dead
            update_weights=[(5, 6, 2.0), (1, 2, 2.0)],
            remove_vertices=[5],                  # already dead
        )
        res = mg.apply_delta(delta)
        assert res.deleted_edges == 1
        assert res.inserted_edges == 1
        assert res.updated_weights == 1
        # skipped: absent (5,6) deletion, dead-endpoint insert, dead-endpoint
        # weight update, and the repeated removal of the dead vertex itself
        assert res.skipped == 4
        assert mg.edge_weight(1, 2) == 2.0
        assert mg.has_edge(0, 2)

    def test_auto_flush_threshold(self):
        mg = MutableDiGraph.from_digraph(grid_graph(3, 3), auto_flush_threshold=2)
        mg.delete_edge(0, 1)
        assert mg.has_edge(0, 1)
        mg.delete_edge(1, 0)  # hits the threshold -> auto flush
        assert mg.pending_mutations == 0
        assert not mg.has_edge(0, 1) and not mg.has_edge(1, 0)


class TestRebuildEquivalence:
    """A flushed MutableDiGraph must be array-for-array identical to a
    DiGraph built fresh from the same edge list (the churn-epoch invariant)."""

    def _assert_fresh_equivalent(self, mg):
        fresh = fresh_rebuild(mg)
        assert np.array_equal(mg.indptr, fresh.indptr)
        assert np.array_equal(mg.indices, fresh.indices)
        assert np.array_equal(mg.weights, fresh.weights)
        # reverse CSR agrees with a from-scratch reverse build
        for v in range(mg.num_vertices):
            assert np.array_equal(mg.in_neighbors(v), fresh.in_neighbors(v))
            assert np.array_equal(mg.in_weights(v), fresh.in_weights(v))

    def test_equivalence_after_each_epoch(self):
        rng = np.random.default_rng(7)
        mg = _mutable_grid(6, 6)
        for _epoch in range(8):
            delta = GraphDelta()
            src, dst, w = mg.edge_array()
            for _ in range(4):
                op = rng.integers(0, 4)
                if op == 0 and src.size:
                    e = int(rng.integers(0, src.size))
                    delta.update_weights.append(
                        (int(src[e]), int(dst[e]), float(w[e]) * 2.0)
                    )
                elif op == 1 and src.size:
                    e = int(rng.integers(0, src.size))
                    delta.delete_edges.append((int(src[e]), int(dst[e])))
                elif op == 2:
                    u = int(rng.integers(0, mg.num_vertices))
                    v = int(rng.integers(0, mg.num_vertices))
                    if u != v:
                        delta.insert_edges.append((u, v, 1.0))
                else:
                    delta.new_vertices.append(
                        NewVertexSpec(edges=((int(rng.integers(0, 16)), 1.0),))
                    )
            mg.apply_delta(delta)
            self._assert_fresh_equivalent(mg)

    def test_equivalence_with_removals(self):
        mg = _mutable_grid(5, 5)
        mg.apply_delta(GraphDelta(remove_vertices=[0, 7, 24]))
        self._assert_fresh_equivalent(mg)
        mg.apply_delta(GraphDelta(new_vertices=[NewVertexSpec(edges=((12, 1.0),))]))
        self._assert_fresh_equivalent(mg)


class TestReverseCsrParallelEdges:
    """Satellite: reverse-CSR weight alignment for graphs with parallel edges."""

    def test_reverse_weights_aligned_for_parallel_edges(self):
        b = GraphBuilder(3)
        b.add_edge(0, 2, 1.0)
        b.add_edge(0, 2, 5.0)  # parallel edge, different weight
        b.add_edge(1, 2, 3.0)
        b.add_edge(0, 1, 2.0)
        g = b.build()
        # every forward edge (u, v, w) appears in v's reverse slice with
        # the same weight — multiset equality per (u, v) pair
        fwd = {}
        for u, v, w in g.edges():
            fwd.setdefault((u, v), []).append(w)
        rev = {}
        for v in range(g.num_vertices):
            for u, w in zip(g.in_neighbors(v), g.in_weights(v)):
                rev.setdefault((int(u), v), []).append(float(w))
        assert {k: sorted(ws) for k, ws in fwd.items()} == {
            k: sorted(ws) for k, ws in rev.items()
        }

    def test_reverse_weights_aligned_random_multigraph(self):
        rng = np.random.default_rng(11)
        b = GraphBuilder(12)
        for _ in range(80):
            u, v = rng.integers(0, 12, size=2)
            if u != v:
                b.add_edge(int(u), int(v), float(rng.uniform(0.5, 9.0)))
        g = b.build()
        total_rev = 0
        for v in range(g.num_vertices):
            neigh = g.in_neighbors(v)
            weights = g.in_weights(v)
            assert neigh.size == weights.size
            total_rev += neigh.size
            for u, w in zip(neigh, weights):
                # each aligned (u, w) must be an actual forward edge weight
                owts = g.out_weights(int(u))[g.out_neighbors(int(u)) == v]
                assert np.any(np.isclose(owts, w))
        assert total_rev == g.num_edges
