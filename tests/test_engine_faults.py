"""Fault-tolerance subsystem: injection, checkpoints, crash recovery.

The contract of the subsystem:

* **zero-fault identity** — an engine built with a no-op :class:`FaultPlan`
  is event-for-event identical to one built with no fault layer at all;
* **recovery identity** — a run with injected crashes returns, for every
  query, answers bit-identical to a fault-free run of the same
  configuration (same ``checkpoint_interval``): rollback + replay is
  exactly-once at the answer level;
* **reliable data plane** — message drop/duplication changes timing, never
  content;
* **composability** — recovery works under both repartition modes, all
  sync modes, all four admission schedulers, and racing graph churn.
"""

import numpy as np
import pytest

from repro.core.controller import Controller, ControllerConfig
from repro.engine.barriers import SyncMode
from repro.engine.checkpoint import QueryCheckpoint
from repro.engine.engine import EngineConfig, QGraphEngine
from repro.engine.kernels import ArrayMailbox
from repro.errors import EngineError, SimulationError
from repro.graph import MutableDiGraph
from repro.graph.road_network import generate_road_network
from repro.partitioning import HashPartitioner
from repro.simulation.cluster import make_cluster
from repro.simulation.faults import ControllerCrash, FaultPlan, WorkerCrash
from repro.workload.generator import PhaseSpec, WorkloadGenerator


def _controller_config(**overrides):
    base = dict(
        mu=0.5,
        phi=0.9,
        delta=0.25,
        max_tracked_queries=64,
        qcut_compute_time=0.002,
        qcut_cooldown=0.01,
        min_queries_for_qcut=6,
        ils_rounds=30,
        seed=0,
    )
    base.update(overrides)
    return ControllerConfig(**base)


def _road_network():
    return generate_road_network(
        num_cities=4,
        num_urban_vertices=1200,
        seed=13,
        region_size=60.0,
        zipf_exponent=0.5,
    )


def _build_engine(
    graph,
    k=4,
    faults=None,
    checkpoint_interval=0,
    adaptive=False,
    sync_mode=SyncMode.HYBRID,
    repartition_mode="global",
    scheduler="fifo",
    max_events=50_000_000,
    use_kernels=True,
):
    assignment = HashPartitioner(seed=0).partition(graph, k)
    controller = Controller(k, _controller_config())
    return QGraphEngine(
        graph,
        make_cluster("M2", k),
        assignment,
        controller=controller,
        config=EngineConfig(
            adaptive=adaptive,
            sync_mode=sync_mode,
            repartition_mode=repartition_mode,
            scheduler=scheduler,
            checkpoint_interval=checkpoint_interval,
            max_events=max_events,
            use_kernels=use_kernels,
        ),
        faults=faults,
    )


def _fingerprint(engine, trace):
    return (
        {
            qid: (r.start_time, r.end_time, r.iterations, r.local_iterations)
            for qid, r in trace.queries.items()
        },
        [(r.time, r.moved_vertices, r.num_moves) for r in trace.repartitions],
        trace.local_messages,
        trace.remote_messages,
        trace.remote_batches,
        trace.barrier_acks,
        trace.barrier_releases,
        engine._events_processed,
    )


def _run(rn, graph=None, kind="sssp", num_queries=32, churn_rate=0.0,
         churn_span=0.4, seed=5, **engine_kwargs):
    """Build, submit a workload, run to quiescence; return engine+results."""
    engine = _build_engine(rn.graph if graph is None else graph, **engine_kwargs)
    workload = WorkloadGenerator(rn, seed=seed).generate(
        [
            PhaseSpec(
                num_queries=num_queries,
                kind=kind,
                label="faults",
                churn_rate=churn_rate,
                churn_span=churn_span,
            )
        ]
    )
    workload.submit_all(engine)
    trace = engine.run()
    results = {
        q.query_id: engine.query_result(q.query_id) for q in workload.queries()
    }
    return engine, trace, results


def _assert_identical_results(faulty, clean):
    assert faulty.keys() == clean.keys()
    for qid in sorted(clean):
        assert faulty[qid] == clean[qid], f"query {qid} diverged"


# ----------------------------------------------------------------------
# fault-plan construction and validation
# ----------------------------------------------------------------------
class TestFaultPlanValidation:
    def test_negative_crash_time_rejected(self):
        with pytest.raises(SimulationError):
            WorkerCrash(time=-1.0, worker=0)

    def test_zero_downtime_rejected(self):
        with pytest.raises(SimulationError):
            WorkerCrash(time=0.1, worker=0, downtime=0.0)
        with pytest.raises(SimulationError):
            ControllerCrash(time=0.1, downtime=-1.0)

    def test_probability_bounds(self):
        with pytest.raises(SimulationError):
            FaultPlan(message_drop=1.0)
        with pytest.raises(SimulationError):
            FaultPlan(control_loss=-0.1)

    def test_validate_for_rejects_out_of_range_worker(self):
        plan = FaultPlan(crashes=(WorkerCrash(time=0.1, worker=7),))
        with pytest.raises(SimulationError, match="only 4 workers"):
            plan.validate_for(4)

    def test_validate_for_rejects_total_permanent_loss(self):
        plan = FaultPlan(
            crashes=tuple(WorkerCrash(time=0.1, worker=w) for w in range(2))
        )
        with pytest.raises(SimulationError, match="every worker"):
            plan.validate_for(2)

    def test_noop_detection(self):
        assert FaultPlan().is_noop()
        assert FaultPlan(message_drop=0.0, control_loss=0.0).is_noop()
        assert not FaultPlan(crashes=(WorkerCrash(time=0.1, worker=0),)).is_noop()
        assert not FaultPlan(message_drop=0.1).is_noop()

    def test_crashes_require_checkpointing(self):
        rn = _road_network()
        plan = FaultPlan(crashes=(WorkerCrash(time=0.1, worker=0),))
        with pytest.raises(EngineError, match="checkpoint_interval"):
            _build_engine(rn.graph, faults=plan, checkpoint_interval=0)

    def test_generator_fault_plan_deterministic(self):
        rn = _road_network()
        a = WorkloadGenerator(rn, seed=9).fault_plan(num_workers=4, crashes=3)
        b = WorkloadGenerator(rn, seed=9).fault_plan(num_workers=4, crashes=3)
        assert a == b
        assert len(a.crashes) == 3
        assert all(c.worker < 4 for c in a.crashes)
        times = [c.time for c in a.crashes]
        assert times == sorted(times)
        # a different seed draws a different schedule
        c = WorkloadGenerator(rn, seed=10).fault_plan(num_workers=4, crashes=3)
        assert a != c

    def test_generator_fault_plan_independent_of_workload_draws(self):
        rn = _road_network()
        g1 = WorkloadGenerator(rn, seed=9)
        g1.generate([PhaseSpec(num_queries=8, kind="sssp")])
        g2 = WorkloadGenerator(rn, seed=9)
        assert g1.fault_plan(num_workers=4) == g2.fault_plan(num_workers=4)


# ----------------------------------------------------------------------
# checkpoint capture/restore
# ----------------------------------------------------------------------
class TestCheckpoint:
    def test_capture_restore_roundtrip(self):
        rn = _road_network()
        engine, trace, _ = _run(rn, num_queries=8, checkpoint_interval=2)
        assert trace.checkpoints_taken > 0
        qid, qr = next(iter(sorted(engine.runtimes.items())))
        ck = QueryCheckpoint.capture(qr)
        saved_iter, saved_state = qr.iteration, dict(qr.state)
        qr.iteration += 3
        qr.state = {}
        rolled = ck.restore(qr, engine.assignment)
        assert rolled == 3
        assert qr.iteration == saved_iter
        assert qr.state == saved_state
        assert qr.involved == set(qr.mailboxes)

    def test_restore_rehomes_mailboxes(self):
        rn = _road_network()
        engine, _, _ = _run(rn, num_queries=8, checkpoint_interval=2)
        qr = next(iter(engine.runtimes.values()))
        ck = QueryCheckpoint.capture(qr)
        # move every vertex to worker 0: the restored boxes must follow
        assignment = np.zeros_like(engine.assignment)
        ck.restore(qr, assignment)
        assert set(qr.mailboxes) <= {0}

    def test_restore_is_repeatable(self):
        """The checkpoint survives its own restore (copies go out)."""
        rn = _road_network()
        engine, _, _ = _run(rn, num_queries=8, checkpoint_interval=2)
        qr = next(iter(engine.runtimes.values()))
        ck = QueryCheckpoint.capture(qr)
        before = ck.message_count()
        ck.restore(qr, engine.assignment)
        qr.state.clear()
        ck.restore(qr, engine.assignment)
        assert ck.message_count() == before


# ----------------------------------------------------------------------
# zero-fault identity
# ----------------------------------------------------------------------
class TestZeroFaultIdentity:
    @pytest.mark.parametrize(
        "sync_mode",
        [SyncMode.HYBRID, SyncMode.GLOBAL_PER_QUERY, SyncMode.SHARED_BSP],
    )
    def test_noop_plan_is_event_for_event_identical(self, sync_mode):
        rn = _road_network()
        e1, t1, r1 = _run(rn, sync_mode=sync_mode)
        e2, t2, r2 = _run(rn, sync_mode=sync_mode, faults=FaultPlan(seed=1))
        assert e2.faults is None  # normalized away at construction
        assert _fingerprint(e1, t1) == _fingerprint(e2, t2)
        _assert_identical_results(r2, r1)

    def test_checkpointing_alone_does_not_change_answers(self):
        rn = _road_network()
        _, t1, r1 = _run(rn)
        _, t2, r2 = _run(rn, checkpoint_interval=2)
        assert t2.checkpoints_taken > 0
        assert t1.checkpoints_taken == 0
        _assert_identical_results(r2, r1)


# ----------------------------------------------------------------------
# runaway-event budget diagnostics
# ----------------------------------------------------------------------
class TestEventBudget:
    def test_budget_error_carries_engine_state(self):
        rn = _road_network()
        engine = _build_engine(rn.graph, max_events=50)
        workload = WorkloadGenerator(rn, seed=5).generate(
            [PhaseSpec(num_queries=16, kind="sssp")]
        )
        workload.submit_all(engine)
        with pytest.raises(EngineError) as excinfo:
            engine.run()
        message = str(excinfo.value)
        for field in ("t=", "queue_len=", "running=", "outstanding_computes="):
            assert field in message


# ----------------------------------------------------------------------
# crash + recovery
# ----------------------------------------------------------------------
def _crash_plan(makespan, worker=1, at=0.3, downtime=None, **kwargs):
    return FaultPlan(
        seed=0,
        crashes=(
            WorkerCrash(time=at * makespan, worker=worker, downtime=downtime),
        ),
        **kwargs,
    )


class TestCrashRecovery:
    @pytest.mark.parametrize(
        "sync_mode",
        [SyncMode.HYBRID, SyncMode.GLOBAL_PER_QUERY, SyncMode.SHARED_BSP],
    )
    def test_recovery_identity_across_sync_modes(self, sync_mode):
        rn = _road_network()
        _, t_clean, r_clean = _run(rn, sync_mode=sync_mode, checkpoint_interval=2)
        plan = _crash_plan(t_clean.makespan())
        _, t_fault, r_fault = _run(
            rn, sync_mode=sync_mode, checkpoint_interval=2, faults=plan
        )
        assert t_fault.worker_crashes == 1
        assert len(t_fault.recoveries) == 1
        assert t_fault.recoveries[0].rehomed_vertices > 0
        _assert_identical_results(r_fault, r_clean)

    def test_permanent_crash_finishes_on_survivors(self):
        rn = _road_network()
        _, t_clean, r_clean = _run(rn, checkpoint_interval=2)
        plan = _crash_plan(t_clean.makespan(), downtime=None)
        engine, t_fault, r_fault = _run(rn, checkpoint_interval=2, faults=plan)
        assert t_fault.worker_recoveries == 0
        assert 1 not in set(engine.assignment)  # never repopulated
        _assert_identical_results(r_fault, r_clean)

    def test_transient_crash_rejoins(self):
        rn = _road_network()
        _, t_clean, r_clean = _run(rn, checkpoint_interval=2)
        makespan = t_clean.makespan()
        plan = _crash_plan(makespan, downtime=0.2 * makespan)
        _, t_fault, r_fault = _run(rn, checkpoint_interval=2, faults=plan)
        assert t_fault.worker_crashes == 1
        assert t_fault.worker_recoveries == 1
        _assert_identical_results(r_fault, r_clean)

    def test_recovery_rolls_back_iterations(self):
        rn = _road_network()
        _, t_clean, r_clean = _run(rn, checkpoint_interval=3)
        plan = _crash_plan(t_clean.makespan(), at=0.35)
        _, t_fault, r_fault = _run(rn, checkpoint_interval=3, faults=plan)
        record = t_fault.recoveries[0]
        assert record.queries_rolled_back > 0
        assert record.detection_latency > 0.0
        assert record.stall_duration > 0.0
        _assert_identical_results(r_fault, r_clean)

    def test_crash_during_adaptive_partial_repartitioning(self):
        rn = _road_network()
        _, t_clean, r_clean = _run(
            rn, adaptive=True, repartition_mode="partial", checkpoint_interval=2
        )
        plan = _crash_plan(t_clean.makespan(), at=0.4)
        _, t_fault, r_fault = _run(
            rn,
            adaptive=True,
            repartition_mode="partial",
            checkpoint_interval=2,
            faults=plan,
        )
        assert t_fault.worker_crashes == 1
        assert len(t_fault.recoveries) == 1
        _assert_identical_results(r_fault, r_clean)

    def test_crash_racing_churn_flush(self):
        """Topology mutations land and flush before the crash; replay after
        rollback must see the same post-churn graph."""
        rn = _road_network()
        # the churn span ends well before the crash fires, so both arms
        # replay on the same post-churn topology
        churn = dict(churn_rate=2500.0, churn_span=0.0015)
        clean_graph = MutableDiGraph.from_digraph(rn.graph)
        _, t_clean, r_clean = _run(
            rn, graph=clean_graph, checkpoint_interval=2, **churn
        )
        assert t_clean.churn_events, "churn process produced no events"
        plan = _crash_plan(t_clean.makespan(), at=0.6)
        faulty_graph = MutableDiGraph.from_digraph(rn.graph)
        _, t_fault, r_fault = _run(
            rn, graph=faulty_graph, checkpoint_interval=2, faults=plan, **churn
        )
        assert t_fault.worker_crashes == 1
        assert t_fault.churn_events
        _assert_identical_results(r_fault, r_clean)

    def test_two_staggered_crashes(self):
        rn = _road_network()
        _, t_clean, r_clean = _run(rn, checkpoint_interval=2)
        makespan = t_clean.makespan()
        plan = FaultPlan(
            seed=0,
            crashes=(
                WorkerCrash(time=0.2 * makespan, worker=1, downtime=None),
                WorkerCrash(time=0.5 * makespan, worker=3, downtime=None),
            ),
        )
        _, t_fault, r_fault = _run(rn, checkpoint_interval=2, faults=plan)
        assert t_fault.worker_crashes == 2
        assert len(t_fault.recoveries) >= 1
        _assert_identical_results(r_fault, r_clean)


# ----------------------------------------------------------------------
# data-plane faults: drop / duplication stay content-identical
# ----------------------------------------------------------------------
class TestMessageFaults:
    def test_drop_and_duplicate_preserve_answers(self):
        rn = _road_network()
        _, t_clean, r_clean = _run(rn)
        plan = FaultPlan(seed=0, message_drop=0.15, message_duplicate=0.1)
        _, t_fault, r_fault = _run(rn, faults=plan)
        assert t_fault.dropped_batches > 0
        assert t_fault.duplicated_batches > 0
        _assert_identical_results(r_fault, r_clean)

    def test_drops_delay_the_run(self):
        rn = _road_network()
        _, t_clean, _ = _run(rn)
        plan = FaultPlan(seed=0, message_drop=0.3)
        _, t_fault, _ = _run(rn, faults=plan)
        assert t_fault.makespan() > t_clean.makespan()


# ----------------------------------------------------------------------
# control-plane faults
# ----------------------------------------------------------------------
class TestControlPlaneFaults:
    @pytest.mark.parametrize(
        "scheduler", ["fifo", "locality", "shortest_scope", "phase_round_robin"]
    )
    def test_control_loss_retries_and_preserves_answers(self, scheduler):
        rn = _road_network()
        _, t_clean, r_clean = _run(rn, scheduler=scheduler)
        plan = FaultPlan(seed=0, control_loss=0.2, report_loss=0.2)
        _, t_fault, r_fault = _run(rn, scheduler=scheduler, faults=plan)
        assert t_fault.control_retries > 0
        assert len(t_fault.finished_queries()) == len(t_clean.finished_queries())
        _assert_identical_results(r_fault, r_clean)

    def test_controller_crash_degrades_gracefully(self):
        rn = _road_network()
        _, t_clean, r_clean = _run(rn, adaptive=True)
        makespan = t_clean.makespan()
        plan = FaultPlan(
            seed=0,
            controller_crashes=(
                ControllerCrash(time=0.1 * makespan, downtime=0.5 * makespan),
            ),
        )
        _, t_fault, r_fault = _run(rn, adaptive=True, faults=plan)
        assert t_fault.controller_crashes == 1
        _assert_identical_results(r_fault, r_clean)


# ----------------------------------------------------------------------
# finish-path state release (regression for the finish-leak findings:
# _checkpoints/_activated/_inflight survived their query's lifecycle)
# ----------------------------------------------------------------------
class TestFinishReleasesPerQueryState:
    def test_finished_queries_leave_no_per_query_engine_state(self):
        rn = _road_network()
        engine, trace, results = _run(rn, num_queries=8, checkpoint_interval=2)
        # the maps were populated during the run...
        assert trace.checkpoints_taken > 0
        finished = set(results)
        assert finished and not engine.running
        # ...and the finish path released every per-query keyed entry.  A
        # leaked entry keeps dead checkpoints resident for the rest of a
        # long multi-tenant run, and recovery would "restore" queries
        # that already answered.
        assert finished.isdisjoint(engine._checkpoints)
        assert finished.isdisjoint(engine._activated)
        assert finished.isdisjoint(engine._inflight)

    def test_recovery_after_finish_ignores_finished_queries(self):
        """A crash after queries finished must not roll them back."""
        rn = _road_network()
        plan = FaultPlan(
            seed=0, crashes=(WorkerCrash(time=0.05, worker=2, downtime=0.2),)
        )
        _, t_clean, r_clean = _run(rn, num_queries=8, checkpoint_interval=2)
        engine, t_fault, r_fault = _run(
            rn, num_queries=8, checkpoint_interval=2, faults=plan
        )
        assert len(t_fault.recoveries) >= 1
        _assert_identical_results(r_fault, r_clean)
        assert set(r_fault).isdisjoint(engine._checkpoints)


# ----------------------------------------------------------------------
# recovery precondition (regression for the atomic-mutation finding:
# _do_recovery re-homed the assignment before validating the restore set)
# ----------------------------------------------------------------------
class TestRecoveryPrecondition:
    def test_missing_checkpoint_raises_before_any_mutation(self):
        rn = _road_network()
        engine, _, results = _run(rn, num_queries=4, checkpoint_interval=2)
        qid = min(results)
        # resurrect a running query whose checkpoint is gone, with a dead
        # worker pending recovery — the pre-fix engine re-homed the
        # assignment first and only then discovered the missing checkpoint,
        # leaving mailboxes bucketed for owners the assignment no longer
        # named (the STATE_INVARIANT_GROUPS couple, torn)
        engine.running.add(qid)
        engine._checkpoints.pop(qid, None)
        engine._dead_workers.add(1)
        engine._recovering = [(1, 0.9, 1.0)]
        before = engine.assignment.copy()
        with pytest.raises(EngineError, match="no checkpoint at recovery"):
            engine._do_recovery(1.0)
        assert np.array_equal(engine.assignment, before)


# ----------------------------------------------------------------------
# capture -> restore -> capture is a fixed point
# ----------------------------------------------------------------------
_FIXED_POINT_KINDS = [
    "sssp", "poi", "bfs", "khop", "reachability", "pagerank_local", "wcc_local",
]

_small_network_cache = []


def _small_network():
    """A smaller road network shared across the fixed-point matrix."""
    if not _small_network_cache:
        _small_network_cache.append(
            generate_road_network(
                num_cities=3,
                num_urban_vertices=400,
                seed=13,
                region_size=60.0,
                zipf_exponent=0.5,
            )
        )
    return _small_network_cache[0]


def _mailbox_pairs(boxes):
    """Mailboxes as a sorted multiset of ``(vertex, message)`` pairs.

    Worker homing is exactly what a restore onto a different assignment is
    allowed to change; message content is not.  Each vertex lives in at
    most one box per generation, so rebucketing merges nothing and the
    pair multiset must survive bit-for-bit.
    """
    pairs = []
    for box in boxes.values():
        if isinstance(box, ArrayMailbox):
            vertices, messages = box.concat()
            pairs.extend(zip(vertices.tolist(), np.asarray(messages).tolist()))
        else:
            pairs.extend((int(v), m) for v, m in box.items())
    return sorted(pairs, key=lambda p: (p[0], repr(p[1])))


def _deep_equal(a, b):
    if a is None or b is None:
        return a is b
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.array_equal(np.asarray(a), np.asarray(b))
    if isinstance(a, dict):
        return (
            isinstance(b, dict)
            and a.keys() == b.keys()
            and all(_deep_equal(a[key], b[key]) for key in a)
        )
    if isinstance(a, (list, tuple)):
        return (
            type(a) is type(b)
            and len(a) == len(b)
            and all(_deep_equal(x, y) for x, y in zip(a, b))
        )
    return bool(a == b)


class TestCheckpointRestoreFixedPoint:
    """capture . restore . capture == capture, on a *permuted* assignment.

    The property behind recovery identity: a checkpoint restored onto a
    different vertex assignment (the post-crash re-homing) carries exactly
    the state it captured — nothing dropped, nothing invented, only the
    worker bucketing changed.  Checked across all seven built-in programs,
    both execution paths, and all three sync modes.
    """

    @pytest.mark.parametrize(
        "sync_mode",
        [SyncMode.HYBRID, SyncMode.GLOBAL_PER_QUERY, SyncMode.SHARED_BSP],
    )
    @pytest.mark.parametrize("use_kernels", [True, False], ids=["kernels", "generic"])
    @pytest.mark.parametrize("kind", _FIXED_POINT_KINDS)
    def test_capture_restore_capture_identity(self, kind, use_kernels, sync_mode):
        rn = _small_network()
        engine = _build_engine(
            rn.graph,
            checkpoint_interval=2,
            sync_mode=sync_mode,
            use_kernels=use_kernels,
        )
        workload = WorkloadGenerator(rn, seed=5).generate(
            [PhaseSpec(num_queries=4, kind=kind, label="fixed-point")]
        )
        workload.submit_all(engine)
        # stop the simulation mid-flight: advance one event timestamp at a
        # time until some running query holds undelivered messages, so the
        # captured state exercises the mailbox re-homing path
        runtimes = {}
        while not runtimes:
            next_time = engine.queue.peek_time()
            if next_time is None:
                break
            engine.run(until=next_time)
            runtimes = {
                qid: qr
                for qid in sorted(engine.running)
                for qr in [engine.runtimes[qid]]
                if any(len(box) for box in qr.mailboxes.values())
                or any(len(box) for box in qr.next_mailboxes.values())
            }
        assert runtimes, "no query was ever mid-flight with live mailboxes"
        permuted = (engine.assignment + 1) % engine.cluster.num_workers
        assert not np.array_equal(permuted, engine.assignment)
        for qid, qr in sorted(runtimes.items()):
            ck1 = QueryCheckpoint.capture(qr)
            ck1.restore(qr, permuted)
            ck2 = QueryCheckpoint.capture(qr)
            label = f"{kind}/q{qid}"
            assert ck2.iteration == ck1.iteration, label
            assert _deep_equal(ck2.state, ck1.state), label
            assert _deep_equal(
                ck2.pending_remote_inbound, ck1.pending_remote_inbound
            ), label
            assert _deep_equal(ck2.agg_committed, ck1.agg_committed), label
            assert ck2.scope == ck1.scope, label
            assert _deep_equal(ck2.scope_mask, ck1.scope_mask), label
            assert _deep_equal(ck2.kstate, ck1.kstate), label
            assert _mailbox_pairs(ck2.mailboxes) == _mailbox_pairs(
                ck1.mailboxes
            ), label
            assert _mailbox_pairs(ck2.next_mailboxes) == _mailbox_pairs(
                ck1.next_mailboxes
            ), label
            # and the restore really re-homed: every box now lives on the
            # worker the permuted assignment names
            for worker, box in qr.mailboxes.items():
                if isinstance(box, ArrayMailbox):
                    vertices, _ = box.concat()
                    owners = set(permuted[vertices].tolist())
                else:
                    owners = {int(permuted[v]) for v in box}
                assert owners <= {worker}, label
