"""Tests for the Karger-style query clustering (Appendix A.1)."""

import pytest

from repro.core import UnionFind, cluster_queries


class TestUnionFind:
    def test_initial_state(self):
        uf = UnionFind(5)
        assert uf.count == 5
        assert all(uf.find(i) == i for i in range(5))

    def test_union_reduces_count(self):
        uf = UnionFind(4)
        assert uf.union(0, 1)
        assert uf.count == 3
        assert uf.find(0) == uf.find(1)

    def test_redundant_union(self):
        uf = UnionFind(3)
        uf.union(0, 1)
        assert not uf.union(1, 0)
        assert uf.count == 2

    def test_transitive(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.find(0) == uf.find(2)
        assert uf.find(3) != uf.find(0)


class TestClusterQueries:
    def test_empty(self):
        assert cluster_queries([], {}, 4) == {}

    def test_no_overlaps_stay_singletons(self):
        labels = cluster_queries([1, 2, 3], {}, 8)
        assert len(set(labels.values())) == 3

    def test_overlapping_queries_merge(self):
        labels = cluster_queries([1, 2, 3], {(1, 2): 10}, 2)
        assert labels[1] == labels[2]
        assert labels[3] != labels[1]

    def test_respects_max_clusters(self):
        ids = list(range(20))
        overlaps = {(i, i + 1): 1 for i in range(19)}
        labels = cluster_queries(ids, overlaps, 5, seed=1)
        assert len(set(labels.values())) <= 5

    def test_hard_cap_without_overlaps(self):
        """More disjoint queries than clusters: smallest groups merge."""
        labels = cluster_queries(list(range(10)), {}, 3, seed=2)
        assert len(set(labels.values())) <= 3

    def test_labels_dense(self):
        labels = cluster_queries(list(range(6)), {(0, 1): 5, (2, 3): 5}, 4)
        values = set(labels.values())
        assert values == set(range(len(values)))

    def test_heavy_overlap_contracts_first(self):
        """Weight-biased contraction merges the strongest overlap reliably."""
        ids = [0, 1, 2, 3]
        overlaps = {(0, 1): 1000, (2, 3): 1}
        merged_01 = 0
        for seed in range(20):
            labels = cluster_queries(ids, overlaps, 3, seed=seed)
            if labels[0] == labels[1]:
                merged_01 += 1
        assert merged_01 >= 19  # essentially always

    def test_deterministic(self):
        ids = list(range(12))
        overlaps = {(i, j): (i + j) % 5 + 1 for i in ids for j in ids if i < j}
        a = cluster_queries(ids, overlaps, 4, seed=7)
        b = cluster_queries(ids, overlaps, 4, seed=7)
        assert a == b

    def test_chain_contraction(self):
        ids = list(range(6))
        overlaps = {(i, i + 1): 2 for i in range(5)}
        labels = cluster_queries(ids, overlaps, 1, seed=0)
        assert len(set(labels.values())) == 1

    def test_overlap_dict_order_irrelevant(self):
        """Contraction depends on overlap *contents*, not dict insertion order."""
        ids = list(range(10))
        items = [((i, j), (i * j) % 4 + 1) for i in ids for j in ids if i < j]
        forward = cluster_queries(ids, dict(items), 4, seed=9)
        backward = cluster_queries(ids, dict(reversed(items)), 4, seed=9)
        assert forward == backward

    def test_singleton_fallback_merges_smallest_first(self):
        """Pairs of smallest clusters merge: 10 singletons -> 2+4+4."""
        labels = cluster_queries(list(range(10)), {}, 3, seed=2)
        from collections import Counter

        sizes = sorted(Counter(labels.values()).values())
        assert sizes == [2, 4, 4]

    def test_large_disjoint_fallback_fast(self):
        """The heap-based merge handles thousands of singletons promptly."""
        import time

        n = 5000
        t0 = time.perf_counter()
        labels = cluster_queries(list(range(n)), {}, 8, seed=0)
        elapsed = time.perf_counter() - t0
        assert len(set(labels.values())) == 8
        assert set(labels.values()) == set(range(8))
        # the former re-sort-per-union loop was quadratic (~minutes here)
        assert elapsed < 5.0
