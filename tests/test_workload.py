"""Tests for hotspot workload generation (§4.1 methodology)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.graph import generate_road_network
from repro.workload import HotspotSampler, PhaseSpec, QueryTrace, WorkloadGenerator


@pytest.fixture(scope="module")
def rn():
    return generate_road_network(
        num_cities=6, num_urban_vertices=1800, seed=17, region_size=90.0
    )


class TestHotspotSampler:
    def test_population_proportional_cities(self, rn):
        sampler = HotspotSampler(rn, seed=0)
        draws = np.array([sampler.sample_city() for _ in range(3000)])
        freq = np.bincount(draws, minlength=6) / 3000
        weights = rn.population_weights()
        # biggest city sampled most often, smallest least
        assert freq[0] > freq[-1]
        assert abs(freq[0] - weights[0]) < 0.06

    def test_vertices_near_center(self, rn):
        sampler = HotspotSampler(rn, seed=1)
        coords = rn.graph.coords
        for city in rn.cities[:2]:
            vs = [sampler.sample_vertex_in_city(city.city_id) for _ in range(50)]
            center = np.array(city.center)
            dists = [np.linalg.norm(coords[v] - center) for v in vs]
            radius = max(
                np.linalg.norm(coords[v] - center) for v in city.vertex_ids
            )
            # concentrated sampling: typical draw well inside the city radius
            assert np.median(dists) < 0.6 * radius

    def test_sampled_vertex_belongs_to_city(self, rn):
        sampler = HotspotSampler(rn, seed=2)
        for city in rn.cities:
            v = sampler.sample_vertex_in_city(city.city_id)
            assert rn.city_of_vertex[v] == city.city_id

    def test_intra_endpoints_same_city(self, rn):
        sampler = HotspotSampler(rn, seed=3)
        for _ in range(20):
            start, end = sampler.sample_sssp_endpoints(intra_probability=1.0)
            assert rn.city_of_vertex[start] == rn.city_of_vertex[end]
            assert start != end

    def test_inter_endpoints_different_city(self, rn):
        sampler = HotspotSampler(rn, seed=4)
        different = 0
        for _ in range(20):
            start, end = sampler.sample_sssp_endpoints(intra_probability=0.0)
            if rn.city_of_vertex[start] != rn.city_of_vertex[end]:
                different += 1
        assert different >= 18  # neighbouring city is distinct essentially always

    def test_neighboring_city_is_near(self, rn):
        sampler = HotspotSampler(rn, seed=5)
        centers = np.array([c.center for c in rn.cities])
        for city in range(6):
            other = sampler.neighboring_city(city)
            assert other != city
            d = np.linalg.norm(centers[other] - centers[city])
            all_d = np.linalg.norm(centers - centers[city], axis=1)
            all_d[city] = np.inf
            assert d <= np.sort(all_d)[2] + 1e-9  # among 3 nearest

    def test_validation(self, rn):
        with pytest.raises(WorkloadError):
            HotspotSampler(rn, concentration=0.0)
        with pytest.raises(WorkloadError):
            HotspotSampler(rn).sample_sssp_endpoints(intra_probability=2.0)

    def test_deterministic(self, rn):
        a = HotspotSampler(rn, seed=9)
        b = HotspotSampler(rn, seed=9)
        assert [a.sample_city() for _ in range(10)] == [
            b.sample_city() for _ in range(10)
        ]


class TestWorkloadGenerator:
    def test_phase_counts_and_labels(self, rn):
        gen = WorkloadGenerator(rn, seed=0)
        trace = gen.generate(
            [
                PhaseSpec(num_queries=10, kind="sssp", label="a"),
                PhaseSpec(num_queries=5, kind="poi", label="b"),
            ]
        )
        assert trace.num_queries == 15
        labels = [q.phase for q in trace.queries()]
        assert labels.count("a") == 10
        assert labels.count("b") == 5

    def test_query_ids_unique(self, rn):
        gen = WorkloadGenerator(rn, seed=0)
        trace = gen.generate([PhaseSpec(num_queries=20)])
        ids = [q.query_id for q in trace.queries()]
        assert len(set(ids)) == 20

    def test_paper_sssp_workload_shape(self, rn):
        gen = WorkloadGenerator(rn, seed=0)
        trace = gen.paper_sssp_workload(main_queries=32, disturbance_queries=8)
        phases = [q.phase for q in trace.queries()]
        assert phases[:32] == ["intra"] * 32
        assert phases[32:] == ["inter"] * 8

    def test_poi_workload_kind(self, rn):
        gen = WorkloadGenerator(rn, seed=0)
        trace = gen.paper_poi_workload(num_queries=6)
        assert all(q.kind == "poi" for q in trace.queries())

    def test_invalid_phase(self):
        with pytest.raises(WorkloadError):
            PhaseSpec(num_queries=-1)
        with pytest.raises(WorkloadError):
            PhaseSpec(num_queries=1, kind="bogus")

    def test_deterministic(self, rn):
        a = WorkloadGenerator(rn, seed=4).generate([PhaseSpec(num_queries=12)])
        b = WorkloadGenerator(rn, seed=4).generate([PhaseSpec(num_queries=12)])
        for (qa, _), (qb, _) in zip(a.entries, b.entries):
            assert qa.initial_vertices == qb.initial_vertices
            assert qa.program.target == qb.program.target
