"""Tests for hotspot workload generation (§4.1 methodology)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.graph import generate_road_network
from repro.workload import (
    QUERY_KINDS,
    HotspotSampler,
    PhaseSpec,
    QueryTrace,
    WorkloadGenerator,
    namespaced_id_offset,
)


@pytest.fixture(scope="module")
def rn():
    return generate_road_network(
        num_cities=6, num_urban_vertices=1800, seed=17, region_size=90.0
    )


class TestHotspotSampler:
    def test_population_proportional_cities(self, rn):
        sampler = HotspotSampler(rn, seed=0)
        draws = np.array([sampler.sample_city() for _ in range(3000)])
        freq = np.bincount(draws, minlength=6) / 3000
        weights = rn.population_weights()
        # biggest city sampled most often, smallest least
        assert freq[0] > freq[-1]
        assert abs(freq[0] - weights[0]) < 0.06

    def test_vertices_near_center(self, rn):
        sampler = HotspotSampler(rn, seed=1)
        coords = rn.graph.coords
        for city in rn.cities[:2]:
            vs = [sampler.sample_vertex_in_city(city.city_id) for _ in range(50)]
            center = np.array(city.center)
            dists = [np.linalg.norm(coords[v] - center) for v in vs]
            radius = max(
                np.linalg.norm(coords[v] - center) for v in city.vertex_ids
            )
            # concentrated sampling: typical draw well inside the city radius
            assert np.median(dists) < 0.6 * radius

    def test_sampled_vertex_belongs_to_city(self, rn):
        sampler = HotspotSampler(rn, seed=2)
        for city in rn.cities:
            v = sampler.sample_vertex_in_city(city.city_id)
            assert rn.city_of_vertex[v] == city.city_id

    def test_intra_endpoints_same_city(self, rn):
        sampler = HotspotSampler(rn, seed=3)
        for _ in range(20):
            start, end = sampler.sample_sssp_endpoints(intra_probability=1.0)
            assert rn.city_of_vertex[start] == rn.city_of_vertex[end]
            assert start != end

    def test_inter_endpoints_different_city(self, rn):
        sampler = HotspotSampler(rn, seed=4)
        different = 0
        for _ in range(20):
            start, end = sampler.sample_sssp_endpoints(intra_probability=0.0)
            if rn.city_of_vertex[start] != rn.city_of_vertex[end]:
                different += 1
        assert different >= 18  # neighbouring city is distinct essentially always

    def test_neighboring_city_is_near(self, rn):
        sampler = HotspotSampler(rn, seed=5)
        centers = np.array([c.center for c in rn.cities])
        for city in range(6):
            other = sampler.neighboring_city(city)
            assert other != city
            d = np.linalg.norm(centers[other] - centers[city])
            all_d = np.linalg.norm(centers - centers[city], axis=1)
            all_d[city] = np.inf
            assert d <= np.sort(all_d)[2] + 1e-9  # among 3 nearest

    @pytest.mark.parametrize("num_cities", [2, 3])
    def test_neighboring_city_distinct_on_small_maps(self, num_cities):
        """Regression: with <= 3 cities the self city's inf-distance entry
        used to survive the top-3 slice, so the Fig. 5 'inter-urban'
        disturbance silently sampled the same city."""
        small = generate_road_network(
            num_cities=num_cities,
            num_urban_vertices=120,
            seed=3,
            region_size=30.0,
        )
        sampler = HotspotSampler(small, seed=1)
        for city in range(num_cities):
            for _ in range(25):
                assert sampler.neighboring_city(city) != city

    def test_neighboring_city_single_city_map(self):
        lone = generate_road_network(
            num_cities=1, num_urban_vertices=80, seed=3, region_size=20.0
        )
        sampler = HotspotSampler(lone, seed=1)
        assert sampler.neighboring_city(0) == 0  # nothing else to pick

    def test_validation(self, rn):
        with pytest.raises(WorkloadError):
            HotspotSampler(rn, concentration=0.0)
        with pytest.raises(WorkloadError):
            HotspotSampler(rn).sample_sssp_endpoints(intra_probability=2.0)

    def test_deterministic(self, rn):
        a = HotspotSampler(rn, seed=9)
        b = HotspotSampler(rn, seed=9)
        assert [a.sample_city() for _ in range(10)] == [
            b.sample_city() for _ in range(10)
        ]


class TestWorkloadGenerator:
    def test_phase_counts_and_labels(self, rn):
        gen = WorkloadGenerator(rn, seed=0)
        trace = gen.generate(
            [
                PhaseSpec(num_queries=10, kind="sssp", label="a"),
                PhaseSpec(num_queries=5, kind="poi", label="b"),
            ]
        )
        assert trace.num_queries == 15
        labels = [q.phase for q in trace.queries()]
        assert labels.count("a") == 10
        assert labels.count("b") == 5

    def test_query_ids_unique(self, rn):
        gen = WorkloadGenerator(rn, seed=0)
        trace = gen.generate([PhaseSpec(num_queries=20)])
        ids = [q.query_id for q in trace.queries()]
        assert len(set(ids)) == 20

    def test_paper_sssp_workload_shape(self, rn):
        gen = WorkloadGenerator(rn, seed=0)
        trace = gen.paper_sssp_workload(main_queries=32, disturbance_queries=8)
        phases = [q.phase for q in trace.queries()]
        assert phases[:32] == ["intra"] * 32
        assert phases[32:] == ["inter"] * 8

    def test_poi_workload_kind(self, rn):
        gen = WorkloadGenerator(rn, seed=0)
        trace = gen.paper_poi_workload(num_queries=6)
        assert all(q.kind == "poi" for q in trace.queries())

    def test_invalid_phase(self):
        with pytest.raises(WorkloadError):
            PhaseSpec(num_queries=-1)
        with pytest.raises(WorkloadError):
            PhaseSpec(num_queries=1, kind="bogus")

    def test_deterministic(self, rn):
        a = WorkloadGenerator(rn, seed=4).generate([PhaseSpec(num_queries=12)])
        b = WorkloadGenerator(rn, seed=4).generate([PhaseSpec(num_queries=12)])
        for (qa, _), (qb, _) in zip(a.entries, b.entries):
            assert qa.initial_vertices == qb.initial_vertices
            assert qa.program.target == qb.program.target


class TestMixedKindsAndArrivals:
    def test_all_seven_kinds_generate(self, rn):
        gen = WorkloadGenerator(rn, seed=0)
        phases = [
            PhaseSpec(num_queries=3, kind=k, label=k, depth=2)
            for k in sorted(QUERY_KINDS)
        ]
        trace = gen.generate(phases)
        assert trace.num_queries == 21
        kinds = {q.kind for q in trace.queries()}
        assert kinds == set(QUERY_KINDS.values())

    def test_kind_aliases_accepted(self):
        spec = PhaseSpec(num_queries=1, kind="reach")
        assert spec.kind == "reachability"
        spec = PhaseSpec(num_queries=1, kind="ppr")
        assert spec.kind == "pagerank_local"

    def test_mixed_phase_covers_mix(self, rn):
        gen = WorkloadGenerator(rn, seed=5)
        trace = gen.generate(
            [
                PhaseSpec(
                    num_queries=60,
                    kind="mixed",
                    mix=(("sssp", 1.0), ("khop", 1.0), ("poi", 1.0)),
                    depth=2,
                )
            ]
        )
        kinds = [q.kind for q in trace.queries()]
        assert set(kinds) == {"sssp", "khop", "poi"}
        # roughly even blend
        assert min(kinds.count(k) for k in set(kinds)) >= 10

    def test_mixed_kind_workload_canned(self, rn):
        gen = WorkloadGenerator(rn, seed=2)
        trace = gen.mixed_kind_workload(num_queries=70)
        assert trace.num_queries == 70
        assert {q.kind for q in trace.queries()} == set(QUERY_KINDS.values())

    def test_mixed_requires_mix(self):
        with pytest.raises(WorkloadError):
            PhaseSpec(num_queries=1, kind="mixed")
        with pytest.raises(WorkloadError):
            PhaseSpec(num_queries=1, kind="mixed", mix=(("sssp", -1.0),))

    def test_batch_arrivals_all_at_offset(self, rn):
        gen = WorkloadGenerator(rn, seed=0)
        trace = gen.generate([PhaseSpec(num_queries=5, arrival_offset=3.0)])
        assert all(t == 3.0 for _q, t in trace.entries)

    def test_poisson_arrivals_increase_at_rate(self, rn):
        gen = WorkloadGenerator(rn, seed=0)
        trace = gen.generate(
            [
                PhaseSpec(
                    num_queries=400,
                    arrival="poisson",
                    arrival_rate=100.0,
                    arrival_offset=1.0,
                )
            ]
        )
        times = np.array([t for _q, t in trace.entries])
        assert np.all(np.diff(times) >= 0)
        assert times[0] >= 1.0
        # mean inter-arrival ~ 1/rate
        assert abs(np.diff(times).mean() - 0.01) < 0.002

    def test_burst_arrivals_grouped(self, rn):
        gen = WorkloadGenerator(rn, seed=0)
        trace = gen.generate(
            [
                PhaseSpec(
                    num_queries=10,
                    arrival="burst",
                    burst_size=4,
                    burst_gap=2.0,
                )
            ]
        )
        times = [t for _q, t in trace.entries]
        assert times == [0.0] * 4 + [2.0] * 4 + [4.0] * 2

    def test_burst_gap_derived_from_rate(self, rn):
        gen = WorkloadGenerator(rn, seed=0)
        trace = gen.generate(
            [
                PhaseSpec(
                    num_queries=8,
                    arrival="burst",
                    burst_size=4,
                    arrival_rate=2.0,  # -> gap of 2.0s
                )
            ]
        )
        times = sorted({t for _q, t in trace.entries})
        assert times == [0.0, 2.0]

    def test_poi_workload_honours_arrival_process(self, rn):
        gen = WorkloadGenerator(rn, seed=0)
        trace = gen.paper_poi_workload(
            num_queries=20, arrival="poisson", arrival_rate=50.0
        )
        times = np.array([t for _q, t in trace.entries])
        assert np.all(np.diff(times) >= 0)
        assert times[-1] > 0.0  # not a t=0 batch

    def test_invalid_arrival_specs(self):
        with pytest.raises(WorkloadError):
            PhaseSpec(num_queries=1, arrival="bogus")
        with pytest.raises(WorkloadError):
            PhaseSpec(num_queries=1, arrival="poisson")
        with pytest.raises(WorkloadError):
            PhaseSpec(num_queries=1, arrival="burst", burst_size=0)
        with pytest.raises(WorkloadError):
            PhaseSpec(num_queries=1, arrival="burst")  # no gap, no rate

    def test_arrival_draws_do_not_perturb_endpoints(self, rn):
        """Switching the arrival process must not change which queries are
        generated (endpoint sampling uses a separate RNG stream)."""
        a = WorkloadGenerator(rn, seed=6).generate([PhaseSpec(num_queries=10)])
        b = WorkloadGenerator(rn, seed=6).generate(
            [PhaseSpec(num_queries=10, arrival="poisson", arrival_rate=10.0)]
        )
        for (qa, _), (qb, _) in zip(a.entries, b.entries):
            assert qa.initial_vertices == qb.initial_vertices


class TestIdNamespaces:
    def test_id_offset_shifts_ids(self, rn):
        gen = WorkloadGenerator(rn, seed=0, id_offset=500)
        trace = gen.generate([PhaseSpec(num_queries=3)])
        assert [q.query_id for q in trace.queries()] == [500, 501, 502]

    def test_namespaced_offsets_disjoint(self, rn):
        a = WorkloadGenerator(rn, seed=0, id_offset=namespaced_id_offset(0))
        b = WorkloadGenerator(rn, seed=1, id_offset=namespaced_id_offset(1))
        ta = a.generate([PhaseSpec(num_queries=10)])
        tb = b.generate([PhaseSpec(num_queries=10)])
        ids_a = {q.query_id for q in ta.queries()}
        ids_b = {q.query_id for q in tb.queries()}
        assert not ids_a & ids_b

    def test_two_generators_compose_in_one_engine(self, rn):
        """Regression: two generators both numbering from 0 used to raise a
        duplicate-id EngineError when their traces fed one engine."""
        from repro.core import Controller
        from repro.engine import EngineConfig, QGraphEngine
        from repro.partitioning import HashPartitioner
        from repro.simulation.cluster import make_cluster

        graph = rn.graph
        k = 2
        assignment = HashPartitioner(seed=0).partition(graph, k)
        engine = QGraphEngine(
            graph,
            make_cluster("M2", k),
            assignment,
            controller=Controller(k),
            config=EngineConfig(adaptive=False),
        )
        a = WorkloadGenerator(rn, seed=0, id_offset=namespaced_id_offset(0))
        b = WorkloadGenerator(rn, seed=1, id_offset=namespaced_id_offset(1))
        merged = a.generate([PhaseSpec(num_queries=6)]).merge(
            b.generate([PhaseSpec(num_queries=6)])
        )
        merged.submit_all(engine)  # must not raise duplicate-id EngineError
        trace = engine.run()
        assert len(trace.finished_queries()) == 12

    def test_negative_offset_rejected(self, rn):
        with pytest.raises(WorkloadError):
            WorkloadGenerator(rn, id_offset=-1)
        with pytest.raises(WorkloadError):
            namespaced_id_offset(-2)


class TestChurnProcess:
    def test_zero_churn_produces_no_events(self, rn):
        trace = WorkloadGenerator(rn, seed=6).generate([PhaseSpec(num_queries=5)])
        assert trace.churn == []

    def test_churn_events_within_span(self, rn):
        trace = WorkloadGenerator(rn, seed=6).generate(
            [
                PhaseSpec(
                    num_queries=5,
                    arrival_offset=1.0,
                    churn_rate=50.0,
                    churn_span=0.5,
                )
            ]
        )
        assert trace.churn, "expected churn events at rate 50/s over 0.5s"
        times = [t for t, _d in trace.churn]
        assert all(1.0 < t <= 1.5 for t in times)
        assert times == sorted(times)
        assert all(delta.num_mutations > 0 for _t, delta in trace.churn)

    def test_churn_does_not_perturb_endpoints_or_arrivals(self, rn):
        """Enabling churn must change neither the query endpoints nor the
        arrival times (the churn process has its own RNG stream)."""
        quiet = WorkloadGenerator(rn, seed=6).generate(
            [PhaseSpec(num_queries=10, arrival="poisson", arrival_rate=10.0)]
        )
        churny = WorkloadGenerator(rn, seed=6).generate(
            [
                PhaseSpec(
                    num_queries=10,
                    arrival="poisson",
                    arrival_rate=10.0,
                    churn_rate=20.0,
                )
            ]
        )
        assert [
            (q.initial_vertices, t) for q, t in quiet.entries
        ] == [(q.initial_vertices, t) for q, t in churny.entries]
        assert churny.churn

    def test_churn_deterministic(self, rn):
        spec = PhaseSpec(num_queries=4, churn_rate=30.0, churn_span=0.4)
        a = WorkloadGenerator(rn, seed=6).generate([spec])
        b = WorkloadGenerator(rn, seed=6).generate([spec])
        assert [t for t, _ in a.churn] == [t for t, _ in b.churn]
        for (_, da), (_, db) in zip(a.churn, b.churn):
            assert da.insert_edges == db.insert_edges
            assert da.delete_edges == db.delete_edges
            assert da.update_weights == db.update_weights
            assert da.remove_vertices == db.remove_vertices

    def test_merge_combines_churn_sorted(self, rn):
        a = WorkloadGenerator(rn, seed=0, id_offset=namespaced_id_offset(0)).generate(
            [PhaseSpec(num_queries=2, churn_rate=30.0, churn_span=0.3)]
        )
        b = WorkloadGenerator(rn, seed=1, id_offset=namespaced_id_offset(1)).generate(
            [PhaseSpec(num_queries=2, churn_rate=30.0, churn_span=0.3)]
        )
        merged = a.merge(b)
        times = [t for t, _ in merged.churn]
        assert times == sorted(times)
        assert len(merged.churn) == len(a.churn) + len(b.churn)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            PhaseSpec(num_queries=1, churn_rate=-1.0)
        with pytest.raises(WorkloadError):
            PhaseSpec(num_queries=1, churn_rate=1.0)  # batch needs a span
        with pytest.raises(WorkloadError):
            PhaseSpec(
                num_queries=1, churn_rate=1.0, churn_span=1.0, churn_batch=0
            )
        # poisson arrivals derive the span from the arrivals themselves
        PhaseSpec(
            num_queries=1, churn_rate=1.0, arrival="poisson", arrival_rate=5.0
        )
