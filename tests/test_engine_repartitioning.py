"""Repartitioning during active queries: STOP/START state, rebucket, results.

Regression coverage for the barrier/runtime state bugs fixed alongside the
kernel layer:

* ``submit()`` must reject duplicate ids of queued-but-unstarted queries;
* ``_on_global_start`` stage B must drop stale pre-STOP acks instead of
  carrying them into the resumed iteration;
* barrier acks from an older epoch (in flight across a STOP/START) must be
  discarded;
* ``rebucket()`` must re-home both mailbox generations in both
  representations (dict and array);
* adaptive repartitioning must never change query answers.
"""

import numpy as np
import pytest

from repro.core import Controller, ControllerConfig
from repro.engine import (
    EngineConfig,
    QGraphEngine,
    Query,
    QueryRuntime,
    SyncMode,
)
from repro.errors import EngineError
from repro.graph import generate_road_network, grid_graph
from repro.partitioning import HashPartitioner
from repro.queries import BfsProgram, SsspProgram
from repro.simulation.cluster import make_cluster
from repro.workload import PhaseSpec, WorkloadGenerator


def build_engine(graph, k=2, adaptive=False, use_kernels=True, **cfg):
    assignment = HashPartitioner(seed=0).partition(graph, k)
    return QGraphEngine(
        graph,
        make_cluster("M2", k),
        assignment,
        controller=Controller(k),
        config=EngineConfig(adaptive=adaptive, use_kernels=use_kernels, **cfg),
    )


class TestDuplicateSubmit:
    def test_queued_duplicate_rejected(self):
        """Two submits with the same id must fail before either starts."""
        g = grid_graph(4, 4)
        eng = build_engine(g)
        eng.submit(Query(7, SsspProgram(0), (0,)))
        with pytest.raises(EngineError, match="duplicate query id 7"):
            eng.submit(Query(7, SsspProgram(1), (1,)))

    def test_duplicate_rejected_even_when_admission_queued(self):
        """Ids waiting in the admission queue are also protected."""
        g = grid_graph(4, 4)
        eng = build_engine(g, max_parallel_queries=1)
        for qid in range(3):
            eng.submit(Query(qid, BfsProgram(qid), (qid,)))
        with pytest.raises(EngineError):
            eng.submit(Query(2, BfsProgram(5), (5,)))


class TestGlobalStartStageB:
    def _paused_engine_with_held_task(self):
        """A query mid-iteration: one worker computed+acked, one task held."""
        g = grid_graph(4, 4)
        eng = build_engine(g, k=2)
        seed_a = int(np.flatnonzero(eng.assignment == 0)[0])
        seed_b = int(np.flatnonzero(eng.assignment == 1)[0])
        query = Query(0, SsspProgram(seed_a), (seed_a, seed_b))
        eng.submit(query)
        # process only the arrival so seed mailboxes exist on both workers
        event = eng.queue.pop()
        assert event.kind == "arrival"
        eng._on_arrival(event.time, **event.payload)
        qr = eng.runtimes[0]
        assert len(qr.mailboxes) == 2
        w_done, w_held = sorted(qr.mailboxes)
        # simulate: w_done already computed its mailbox and acked, then a
        # global STOP paused the engine while w_held's task was in flight
        eng.workers[w_done].execute_iteration(qr, eng.graph, eng.assignment)
        qr.acked = {w_done}
        eng.paused = True
        eng._held_tasks.append((0, w_held))
        return eng, qr, w_done, w_held

    def test_stale_acks_dropped_on_start(self):
        eng, qr, w_done, w_held = self._paused_engine_with_held_task()
        epoch_before = qr.barrier_epoch
        eng._on_global_start(1.0)
        # the resumed iteration involves exactly the remaining mailbox owner;
        # the pre-STOP ack must not survive into the new barrier generation
        assert qr.acked == set()
        assert qr.involved == {w_held}
        assert qr.barrier_epoch == epoch_before + 1
        # the pre-STOP participant still counts toward iteration statistics
        assert qr.prior_participants == {w_done}

    def test_query_completes_correctly_after_resume(self):
        eng, qr, _w_done, _w_held = self._paused_engine_with_held_task()
        eng._on_global_start(1.0)
        eng.run()
        assert qr.finished
        # both seeds at distance 0; the wave still settles the whole grid
        result = eng.query_result(0)
        assert 0.0 in result["distances"].values()
        assert result["settled"] == 16
        # iteration accounting matches an uninterrupted run: the resumed
        # iteration is still recorded as a 2-worker (non-local) iteration
        g = grid_graph(4, 4)
        base = build_engine(g, k=2)
        seed_a = int(np.flatnonzero(base.assignment == 0)[0])
        seed_b = int(np.flatnonzero(base.assignment == 1)[0])
        base.submit(Query(0, SsspProgram(seed_a), (seed_a, seed_b)))
        base.run()
        interrupted = eng.trace.queries[0]
        baseline = base.trace.queries[0]
        assert interrupted.iterations == baseline.iterations
        assert interrupted.local_iterations == baseline.local_iterations

    def test_stale_dispatch_redirects_to_acked_owner(self):
        """A rebucket may merge a pending mailbox onto a worker that already
        computed and acked; the stale dispatch must re-task that owner (and
        un-ack it) instead of letting the barrier resolve and drop the
        merged messages."""
        g = grid_graph(4, 4)
        eng = build_engine(g, k=2)
        seed_a = int(np.flatnonzero(eng.assignment == 0)[0])
        seed_b = int(np.flatnonzero(eng.assignment == 1)[0])
        eng.submit(Query(0, SsspProgram(seed_a), (seed_a, seed_b)))
        event = eng.queue.pop()
        eng._on_arrival(event.time, **event.payload)
        qr = eng.runtimes[0]
        w_a, w_b = sorted(qr.mailboxes)
        # drive the scenario by hand: drop the queued dispatches ...
        while eng.queue.pop() is not None:
            pass
        # ... w_a computes its seed box and acks ...
        eng.workers[w_a].execute_iteration(qr, eng.graph, eng.assignment)
        qr.acked = {w_a}
        assert w_a not in qr.mailboxes and w_b in qr.mailboxes
        # ... then a repartition moves every vertex to worker 0, re-homing
        # w_b's unconsumed current-iteration box onto w_a
        eng.assignment[:] = 0
        qr.rebucket(eng.assignment)
        assert set(qr.mailboxes) == {w_a}
        # now w_b's delayed task_ready fires post-START: it must redirect
        eng._on_task_ready(eng.now, 0, w_b)
        assert w_b not in qr.involved
        assert w_a in qr.involved and w_a not in qr.acked
        eng.run()
        assert qr.finished
        distances = eng.query_result(0)["distances"]
        assert distances[seed_a] == 0.0
        assert distances[seed_b] == 0.0  # merged mailbox was not dropped
        assert len(distances) == 16

    def test_stale_epoch_ack_discarded(self):
        g = grid_graph(4, 4)
        eng = build_engine(g, k=2)
        eng.submit(Query(0, SsspProgram(0), (0, 1)))
        event = eng.queue.pop()
        eng._on_arrival(event.time, **event.payload)
        qr = eng.runtimes[0]
        qr.barrier_epoch = 3
        eng._on_barrier_ack(0.0, 0, worker=0, epoch=2)
        assert qr.acked == set()
        eng._on_barrier_ack(0.0, 0, worker=0, epoch=3)
        assert qr.acked == {0}


class TestRebucket:
    def test_rebucket_dict_both_generations(self):
        q = Query(0, SsspProgram(0, 1), (0,))
        qr = QueryRuntime(q)
        qr.deliver(0, 5, 1.0, to_next=False)
        qr.deliver(0, 6, 2.0, to_next=True)
        assignment = np.zeros(10, dtype=np.int64)
        assignment[5] = 3
        assignment[6] = 2
        qr.rebucket(assignment)
        assert qr.mailboxes == {3: {5: 1.0}}
        assert qr.next_mailboxes == {2: {6: 2.0}}

    def test_rebucket_array_both_generations(self):
        g = grid_graph(4, 4)
        q = Query(0, SsspProgram(0), (0,))
        qr = QueryRuntime(q, g)
        assert qr.kernel is not None
        qr.deliver_array(
            0, np.array([5, 6], dtype=np.int64), np.array([1.0, 2.0]), to_next=False
        )
        qr.deliver_array(
            1, np.array([7], dtype=np.int64), np.array([3.0]), to_next=True
        )
        assignment = np.zeros(16, dtype=np.int64)
        assignment[6] = 2
        assignment[7] = 2
        qr.rebucket(assignment)
        cur_v, cur_m = qr.mailboxes[0].concat()
        assert cur_v.tolist() == [5] and cur_m.tolist() == [1.0]
        moved_v, moved_m = qr.mailboxes[2].concat()
        assert moved_v.tolist() == [6] and moved_m.tolist() == [2.0]
        nxt_v, nxt_m = qr.next_mailboxes[2].concat()
        assert nxt_v.tolist() == [7] and nxt_m.tolist() == [3.0]

    def test_rebucket_merges_boxes_for_same_worker(self):
        g = grid_graph(4, 4)
        q = Query(0, SsspProgram(0), (0,))
        qr = QueryRuntime(q, g)
        qr.deliver_array(0, np.array([1], dtype=np.int64), np.array([1.0]))
        qr.deliver_array(1, np.array([2], dtype=np.int64), np.array([2.0]))
        qr.rebucket(np.zeros(16, dtype=np.int64))  # everything moves to worker 0
        qr.rotate_mailboxes()
        assert sorted(qr.mailboxes) == [0]
        v, m = qr.mailboxes[0].concat()
        assert sorted(v.tolist()) == [1, 2]


def _adaptive_workload_run(
    adaptive: bool, use_kernels: bool = True, sync_mode: SyncMode = SyncMode.HYBRID
):
    rn = generate_road_network(
        num_cities=4,
        num_urban_vertices=1200,
        seed=13,
        region_size=60.0,
        zipf_exponent=0.5,
    )
    k = 4
    assignment = HashPartitioner(seed=0).partition(rn.graph, k)
    controller = Controller(
        k,
        ControllerConfig(
            mu=5.0,
            max_tracked_queries=32,
            qcut_compute_time=0.001,
            qcut_cooldown=0.005,
            min_queries_for_qcut=4,
            ils_rounds=30,
        ),
    )
    engine = QGraphEngine(
        rn.graph,
        make_cluster("M2", k),
        assignment,
        controller=controller,
        config=EngineConfig(
            adaptive=adaptive, use_kernels=use_kernels, sync_mode=sync_mode
        ),
    )
    workload = WorkloadGenerator(rn, seed=5).generate(
        [PhaseSpec(num_queries=48, kind="sssp", label="repart")]
    )
    workload.submit_all(engine)
    trace = engine.run()
    query_ids = [q.query_id for q in workload.queries()]
    results = {qid: engine.query_result(qid) for qid in query_ids}
    return engine, trace, results


class TestAdaptiveEquivalence:
    def test_repartitioning_preserves_results(self):
        """adaptive=True (with real STOP/START repartitions mid-flight) must
        produce exactly the same answers as adaptive=False."""
        eng_a, trace_a, res_a = _adaptive_workload_run(adaptive=True)
        _eng_s, _trace_s, res_s = _adaptive_workload_run(adaptive=False)
        assert len(trace_a.repartitions) >= 1, "workload never triggered Q-cut"
        assert len(trace_a.finished_queries()) == 48
        assert res_a == res_s

    def test_repartitioning_preserves_results_generic_path(self):
        eng_a, trace_a, res_a = _adaptive_workload_run(
            adaptive=True, use_kernels=False
        )
        _eng_s, _trace_s, res_s = _adaptive_workload_run(
            adaptive=False, use_kernels=False
        )
        assert len(trace_a.repartitions) >= 1
        assert res_a == res_s

    def test_kernel_and_generic_agree_under_adaptation(self):
        _ek, _tk, res_k = _adaptive_workload_run(adaptive=True, use_kernels=True)
        _eg, _tg, res_g = _adaptive_workload_run(adaptive=True, use_kernels=False)
        assert res_k == res_g

    def test_global_per_query_adaptive_completes(self):
        """All-worker barriers + mid-flight repartitioning: every query must
        still finish (no barrier deadlock from demoted/stale ackers) with
        the same answers as the static run."""
        _ea, trace_a, res_a = _adaptive_workload_run(
            adaptive=True, sync_mode=SyncMode.GLOBAL_PER_QUERY
        )
        _es, _ts, res_s = _adaptive_workload_run(
            adaptive=False, sync_mode=SyncMode.GLOBAL_PER_QUERY
        )
        assert len(trace_a.finished_queries()) == 48
        assert res_a == res_s
