"""Round-trip tests for graph persistence."""

import os

import pytest

from repro.errors import GraphFormatError
from repro.graph import (
    GraphBuilder,
    grid_graph,
    load_edge_list,
    load_npz,
    new_york_districts,
    save_edge_list,
    save_npz,
)


def tagged_graph():
    b = GraphBuilder(3)
    b.add_edge(0, 1, 1.25)
    b.add_edge(1, 2, 2.5)
    b.set_coord(0, 0.0, 0.0)
    b.set_coord(1, 1.0, 0.5)
    b.set_coord(2, 2.0, 1.0)
    b.set_tag(2)
    return b.build(name="tagged")


class TestEdgeList:
    def test_roundtrip(self, tmp_path):
        g = new_york_districts()
        path = str(tmp_path / "g.txt")
        save_edge_list(g, path)
        g2 = load_edge_list(path)
        assert g2.num_vertices == g.num_vertices
        assert g2.num_edges == g.num_edges
        assert sorted(g.edges()) == sorted(g2.edges())

    def test_isolated_trailing_vertex_survives(self, tmp_path):
        b = GraphBuilder(5)
        b.add_edge(0, 1, 1.0)
        g = b.build()
        path = str(tmp_path / "iso.txt")
        save_edge_list(g, path)
        assert load_edge_list(path).num_vertices == 5

    def test_load_without_weights(self, tmp_path):
        path = str(tmp_path / "raw.txt")
        with open(path, "w") as f:
            f.write("0 1\n1 2\n")
        g = load_edge_list(path)
        assert g.num_edges == 2
        assert g.edge_weight(0, 1) == 1.0

    def test_missing_file(self):
        with pytest.raises(GraphFormatError):
            load_edge_list("/nonexistent/file.txt")

    def test_malformed_line(self, tmp_path):
        path = str(tmp_path / "bad.txt")
        with open(path, "w") as f:
            f.write("0 1 2 3 4\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(path)

    def test_negative_vertex(self, tmp_path):
        path = str(tmp_path / "neg.txt")
        with open(path, "w") as f:
            f.write("-1 0\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(path)

    def test_header_vertex_count_mismatch(self, tmp_path):
        path = str(tmp_path / "mismatch.txt")
        with open(path, "w") as f:
            f.write("# repro-edge-list v1 n=2 m=1\n0 5 1.0\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(path)


class TestNpz:
    def test_roundtrip_all_attributes(self, tmp_path):
        g = tagged_graph()
        path = str(tmp_path / "g.npz")
        save_npz(g, path)
        g2 = load_npz(path)
        assert g2 == g
        assert g2.name == "tagged"

    def test_roundtrip_structure_only(self, tmp_path):
        g = grid_graph(4, 4)
        path = str(tmp_path / "grid.npz")
        save_npz(g, path)
        assert load_npz(path) == g

    def test_missing_file(self):
        with pytest.raises(GraphFormatError):
            load_npz("/nonexistent/file.npz")

    def test_corrupt_container(self, tmp_path):
        path = str(tmp_path / "junk.npz")
        with open(path, "wb") as f:
            f.write(b"not a zip file")
        with pytest.raises(Exception):
            load_npz(path)
