"""Protocol-liveness analysis tests: automata, the four rules, docs sync.

Differential convention, same as the race/lifecycle suites: every rule is
proven in both directions — a distilled dirty layout fires, the minimally
repaired variant of the *same* layout is clean — so the rules are pinned
to the defect, not to incidental fixture shape.  CLI integration of the
checked-in fixtures lives in ``tests/test_analysis_project.py``.
"""

from pathlib import Path

import pytest

from repro.analysis import lint_sources
from repro.analysis.baseline import (
    BASELINE_NAME,
    diff_protocol,
    load_baseline,
)
from repro.analysis.cli import DEFAULT_PATHS
from repro.analysis.effects import EffectAnalysis
from repro.analysis.protocol import (
    ProtocolAnalysis,
    protocol_summary,
    render_protocol_tables,
)
from repro.analysis.visitor import (
    FileContext,
    ProjectContext,
    infer_role,
    lint_project,
    load_project,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _project(sources, manifest=None):
    return ProjectContext(
        [
            FileContext.parse(text, path, infer_role(Path(path)))
            for path, text in sorted(sources.items())
        ],
        state_manifest=dict(manifest or {}),
    )


def _rules_of(findings):
    return sorted({v.rule for v in findings})


def _repo_project():
    baseline = load_baseline(REPO_ROOT / BASELINE_NAME)
    return load_project(
        [REPO_ROOT / p for p in DEFAULT_PATHS],
        root=REPO_ROOT,
        manifest=baseline.state_manifest,
    )


# one compact dispatcher exercising every protocol surface: a stop flag,
# a parked buffer, a declared barrier couple, and schedule edges
_PARK_ENGINE = '''
from typing import Dict, List


class ParkEngine:
    def __init__(self, queue):
        self.queue = queue
        self.stopped = False
        self._held_tasks: List[int] = []
        self.mailboxes: Dict[int, float] = {}
        self._stop_begin_time = 0.0

    def step(self):
        event = self.queue.pop()
        handler = getattr(self, f"_on_{event.kind}", None)
        if handler is not None:
            handler(event.time, event.payload)

    def begin_stop(self, now):
        self.queue.schedule(now, "global_stop")

    def _on_global_stop(self, now, payload):
        self.stopped = True
        self._stop_begin_time = now
        self.queue.schedule(now + 1, "global_start")

    def _on_global_start(self, now, payload):
        self.stopped = False
        __DRAIN__

    def _on_task_ready(self, now, payload):
        if self.stopped:
            self._held_tasks.append(payload["task"])
            return
        self.mailboxes[payload["task"]] = now
'''

_DRAIN = (
    "while self._held_tasks:\n"
    "            self.queue.schedule(now, \"task_ready\","
    " task=self._held_tasks.pop())"
)


def _park_engine(drain="pass"):
    return _PARK_ENGINE.replace("__DRAIN__", drain)


_ACK_ENGINE = '''
from typing import Set

BARRIER_ACK_PROTOCOLS = (
    ("AckEngine.acked", "AckEngine.involved", "AckEngine.barrier_epoch"),
)


class AckEngine:
    def __init__(self, queue):
        self.queue = queue
        self.acked: Set[int] = set()
        self.involved: Set[int] = set()
        self.barrier_epoch = 0

    def step(self):
        event = self.queue.pop()
        handler = getattr(self, f"_on_{event.kind}", None)
        if handler is not None:
            handler(event.time, event.payload)

    def _on_global_stop(self, now, payload):
        __STOP_BODY__
        for worker in sorted(self.involved):
            self.queue.schedule(now + 1, "barrier_ack", worker=worker,
                                epoch=self.barrier_epoch)

    def _on_barrier_ack(self, now, payload):
        if payload["epoch"] != self.barrier_epoch:
            return
        self.acked.add(payload["worker"])
        if self.acked == self.involved:
            self.queue.schedule(now, "global_start")

    def _on_global_start(self, now, payload):
        self.barrier_epoch += 1
        self.acked = set()
'''


def _ack_engine(stop_body):
    return _ACK_ENGINE.replace("__STOP_BODY__", stop_body)


# ----------------------------------------------------------------------
# automaton extraction
# ----------------------------------------------------------------------
class TestAutomatonExtraction:
    def _analysis(self, sources, manifest=None):
        project = _project(sources, manifest=manifest)
        return ProtocolAnalysis(project.with_roles(("src",)))

    def test_waiting_states_and_chronometry_filter(self):
        analysis = self._analysis(
            {"src/repro/engine/mini.py": _park_engine(_DRAIN)}
        )
        (auto,) = analysis.automata.values()
        assert "ParkEngine.stopped" in auto.states
        assert "ParkEngine._held_tasks" in auto.states
        # a plain data attribute is not a protocol state
        assert "ParkEngine.mailboxes" not in auto.states
        # waiting-shaped chronometry ("..._time") is filtered out
        assert "ParkEngine._stop_begin_time" not in auto.states

    def test_transition_enter_release_schedule_annotations(self):
        analysis = self._analysis(
            {"src/repro/engine/mini.py": _park_engine(_DRAIN)}
        )
        (auto,) = analysis.automata.values()
        stop = auto.transitions["global_stop"]
        assert "ParkEngine.stopped" in stop.enters
        assert stop.schedules == ["global_start"]
        start = auto.transitions["global_start"]
        assert "ParkEngine.stopped" in start.releases
        assert "ParkEngine._held_tasks" in start.releases
        ready = auto.transitions["task_ready"]
        assert "ParkEngine._held_tasks" in ready.enters
        assert ready.guarded  # tests self.stopped before the effects

    def test_couple_members_join_the_states(self):
        analysis = self._analysis(
            {
                "src/repro/engine/mini.py": _ack_engine(
                    "self.involved = set(payload[\"workers\"])\n"
                    "        self.acked = set()\n"
                    "        self.barrier_epoch += 1"
                )
            }
        )
        assert analysis.couples == [
            ("AckEngine.acked", "AckEngine.involved", "AckEngine.barrier_epoch")
        ]
        (auto,) = analysis.automata.values()
        assert auto.couples == analysis.couples
        for member in analysis.couples[0]:
            assert member in auto.states

    def test_states_carry_manifest_classification(self):
        manifest = {
            "ParkEngine._held_tasks": {
                "kind": "engine-global",
                "reason": "parked cross-barrier work",
            }
        }
        analysis = self._analysis(
            {"src/repro/engine/mini.py": _park_engine(_DRAIN)},
            manifest=manifest,
        )
        (auto,) = analysis.automata.values()
        assert auto.states["ParkEngine._held_tasks"] == "engine-global"
        assert auto.states["ParkEngine.stopped"] == "unclassified"

    def test_kind_producers_cover_non_handler_sites(self):
        analysis = self._analysis(
            {"src/repro/engine/mini.py": _park_engine(_DRAIN)}
        )
        produced = set(analysis.kind_producers)
        # begin_stop (not a handler) produces global_stop; the START
        # drain re-produces task_ready
        assert {"global_stop", "global_start", "task_ready"} <= produced


# ----------------------------------------------------------------------
# barrier-liveness
# ----------------------------------------------------------------------
class TestBarrierLiveness:
    def test_undrained_parked_buffer_fires(self):
        findings = lint_sources(
            {"src/repro/engine/mini.py": _park_engine("pass")},
            select=["barrier-liveness"],
        )
        assert _rules_of(findings) == ["barrier-liveness"]
        (v,) = findings
        assert "ParkEngine._held_tasks" in v.message
        assert v.fingerprint == (
            "barrier-liveness::ParkEngine::ParkEngine._held_tasks"
        )

    def test_drained_buffer_is_clean(self):
        findings = lint_sources(
            {"src/repro/engine/mini.py": _park_engine(_DRAIN)},
            select=["barrier-liveness"],
        )
        assert findings == []

    def test_release_handler_without_producer_fires(self):
        # the draining handler exists but no schedule site ever produces
        # it — the release path is unreachable, the state still strands
        src = _park_engine(_DRAIN).replace(
            "        self.queue.schedule(now + 1, \"global_start\")\n", ""
        )
        findings = lint_sources(
            {"src/repro/engine/mini.py": src}, select=["barrier-liveness"]
        )
        # both waiting states lose their only release path, so both fire
        assert _rules_of(findings) == ["barrier-liveness"]
        assert sorted(v.fingerprint for v in findings) == [
            "barrier-liveness::ParkEngine::ParkEngine._held_tasks",
            "barrier-liveness::ParkEngine::ParkEngine.stopped",
        ]
        assert all(
            "no schedule site ever produces" in v.message for v in findings
        )

    def test_epoch_counters_are_exempt(self):
        # the couple's generation counter is monotonic by design; its
        # consistency belongs to ack-completeness, not liveness — so in a
        # distilled engine that never clears its participant set, only
        # the participants member fires, never the epoch counter
        findings = lint_sources(
            {
                "src/repro/engine/mini.py": _ack_engine(
                    "self.involved = set(payload[\"workers\"])\n"
                    "        self.acked = set()\n"
                    "        self.barrier_epoch += 1"
                )
            },
            select=["barrier-liveness"],
        )
        assert [v.fingerprint for v in findings] == [
            "barrier-liveness::AckEngine::AckEngine.involved"
        ]


# ----------------------------------------------------------------------
# ack-completeness
# ----------------------------------------------------------------------
class TestAckCompleteness:
    def test_reseed_without_epoch_bump_fires(self):
        findings = lint_sources(
            {
                "src/repro/engine/mini.py": _ack_engine(
                    "self.involved = set(payload[\"workers\"])\n"
                    "        self.acked = set()"
                )
            },
            select=["ack-completeness"],
        )
        assert len(findings) == 1
        assert "without bumping AckEngine.barrier_epoch" in findings[0].message
        assert "::reseed::" in findings[0].fingerprint

    def test_generation_consistent_reseed_is_clean(self):
        findings = lint_sources(
            {
                "src/repro/engine/mini.py": _ack_engine(
                    "self.involved = set(payload[\"workers\"])\n"
                    "        self.acked = set()\n"
                    "        self.barrier_epoch += 1"
                )
            },
            select=["ack-completeness"],
        )
        assert findings == []

    def test_participant_seed_without_ack_reset_fires(self):
        findings = lint_sources(
            {
                "src/repro/engine/mini.py": _ack_engine(
                    "self.involved = set(payload[\"workers\"])"
                )
            },
            select=["ack-completeness"],
        )
        assert len(findings) == 1
        assert "without resetting the ack set" in findings[0].message
        assert "::seed::" in findings[0].fingerprint

    def test_epoch_bump_without_ack_adjustment_fires(self):
        src = _ack_engine(
            "self.involved = set(payload[\"workers\"])\n"
            "        self.acked = set()\n"
            "        self.barrier_epoch += 1"
        ).replace(
            "        self.barrier_epoch += 1\n        self.acked = set()\n",
            "        self.barrier_epoch += 1\n",
        )
        findings = lint_sources(
            {"src/repro/engine/mini.py": src}, select=["ack-completeness"]
        )
        assert len(findings) == 1
        assert "bumps AckEngine.barrier_epoch" in findings[0].message
        assert "::bump::" in findings[0].fingerprint

    def test_unguarded_epoch_stamped_accept_fires(self):
        # the ack handler receives the message's epoch but never compares
        # it against the live one — a stale ack counts as current
        src = _ack_engine(
            "self.involved = set(payload[\"workers\"])\n"
            "        self.acked = set()\n"
            "        self.barrier_epoch += 1"
        ).replace(
            "    def _on_barrier_ack(self, now, payload):\n"
            "        if payload[\"epoch\"] != self.barrier_epoch:\n"
            "            return\n"
            "        self.acked.add(payload[\"worker\"])\n",
            "    def _on_barrier_ack(self, now, worker, epoch):\n"
            "        self.acked.add(worker)\n",
        ).replace(
            "        if self.acked == self.involved:",
            "        if self.acked == self.involved:",
        )
        findings = lint_sources(
            {"src/repro/engine/mini.py": src}, select=["ack-completeness"]
        )
        assert len(findings) == 1
        assert "::accept::" in findings[0].fingerprint
        assert "never compares it" in findings[0].message


# ----------------------------------------------------------------------
# epoch-fence
# ----------------------------------------------------------------------
_FENCE_ENGINE = '''
from typing import Dict, List


class FenceEngine:
    def __init__(self, queue):
        self.queue = queue
        self.stopped = False
        self._held_tasks: List[int] = []
        self.mailboxes: Dict[int, float] = {}

    def step(self):
        event = self.queue.pop()
        handler = getattr(self, f"_on_{event.kind}", None)
        if handler is not None:
            handler(event.time, event.payload)

    def submit(self, now, task):
        self.queue.schedule(now, "task_ready", task=task)

    def _on_global_stop(self, now, payload):
        self.stopped = True

    def _on_global_start(self, now, payload):
        self.stopped = False
        while self._held_tasks:
            self.queue.schedule(now, "task_ready", task=self._held_tasks.pop())

    def _on_task_ready(self, now, payload):
        __BODY__
'''


def _fence_engine(body):
    return _FENCE_ENGINE.replace("__BODY__", body)


class TestEpochFence:
    def test_unfenced_consumer_across_boundary_fires(self):
        findings = lint_sources(
            {
                "src/repro/engine/mini.py": _fence_engine("self.mailboxes[payload[\"task\"]] = now"
                )
            },
            select=["epoch-fence"],
        )
        assert len(findings) == 1
        assert findings[0].fingerprint == "epoch-fence::FenceEngine::task_ready"
        assert "FenceEngine.mailboxes" in findings[0].message

    def test_fenced_consumer_is_clean(self):
        findings = lint_sources(
            {
                "src/repro/engine/mini.py": _fence_engine((
                        "if self.stopped:\n"
                        "            self._held_tasks.append(payload[\"task\"])\n"
                        "            return\n"
                        "        self.mailboxes[payload[\"task\"]] = now"
                    )
                )
            },
            select=["epoch-fence"],
        )
        assert findings == []

    def test_dispatcher_without_boundary_is_exempt(self):
        src = '''
class PlainEngine:
    def __init__(self, queue):
        self.queue = queue
        self.frontier = {}

    def step(self):
        event = self.queue.pop()
        handler = getattr(self, f"_on_{event.kind}", None)
        if handler is not None:
            handler(event.time, event.payload)

    def submit(self, now, vertex):
        self.queue.schedule(now, "advance", vertex=vertex)

    def _on_advance(self, now, payload):
        self.frontier[payload["vertex"]] = now
'''
        findings = lint_sources(
            {"src/repro/engine/mini.py": src}, select=["epoch-fence"]
        )
        assert findings == []


# ----------------------------------------------------------------------
# event-kind-closure
# ----------------------------------------------------------------------
_CLOSURE_ENGINE = '''
from typing import Dict


class ClosureEngine:
    def __init__(self, queue):
        self.queue = queue
        self.frontier: Dict[int, float] = {}

    def step(self):
        event = self.queue.pop()
        handler = getattr(self, f"_on_{event.kind}", None)
        if handler is not None:
            handler(event.time, event.payload)

    def submit(self, now, vertex):
        self.queue.schedule(now, "advance", vertex=vertex)

    def _on_advance(self, now, payload):
        self.frontier[payload["vertex"]] = now
        self.queue.schedule(now + 1, "__KIND__", vertex=payload["vertex"])

    def _on_compute_done(self, now, payload):
        self.frontier.pop(payload["vertex"], None)
'''


def _closure_engine(kind):
    return _CLOSURE_ENGINE.replace("__KIND__", kind)


class TestEventKindClosure:
    def test_typo_and_dead_handler_fire(self):
        findings = lint_sources(
            {
                "src/repro/engine/mini.py": _closure_engine("compute_dne"
                )
            },
            select=["event-kind-closure"],
        )
        prints = sorted(v.fingerprint for v in findings)
        assert prints == [
            "event-kind-closure::handler::ClosureEngine::compute_done",
            "event-kind-closure::kind::compute_dne",
        ]

    def test_closed_kind_set_is_clean(self):
        findings = lint_sources(
            {
                "src/repro/engine/mini.py": _closure_engine("compute_done"
                )
            },
            select=["event-kind-closure"],
        )
        assert findings == []

    def test_project_without_dispatchers_is_clean(self):
        findings = lint_sources(
            {"src/repro/engine/mini.py": "def helper():\n    return 1\n"},
            select=["event-kind-closure"],
        )
        assert findings == []


# ----------------------------------------------------------------------
# suppression comments on project-rule findings (per-file matching,
# mandatory reasons) — the per-file rules have their own suite
# ----------------------------------------------------------------------
class TestProjectRuleSuppression:
    _DIRTY = _fence_engine("self.mailboxes[payload[\"task\"]] = now"
    )

    def test_line_suppression_with_reason(self):
        src = self._DIRTY.replace(
            "    def _on_task_ready(self, now, payload):",
            "    def _on_task_ready(self, now, payload):"
            "  # repro-lint: disable=epoch-fence -- distilled: fence lives in caller",
        )
        findings = lint_sources(
            {"src/repro/engine/mini.py": src}, select=["epoch-fence"]
        )
        assert findings == []

    def test_file_suppression_with_reason(self):
        src = (
            "# repro-lint: disable-file=epoch-fence -- protocol fixture\n"
            + self._DIRTY
        )
        findings = lint_sources(
            {"src/repro/engine/mini.py": src}, select=["epoch-fence"]
        )
        assert findings == []

    def test_suppression_only_matches_its_file(self):
        # a suppression in one file must not swallow another file's finding
        clean_extra = (
            "# repro-lint: disable-file=epoch-fence -- unrelated module\n"
            "def helper():\n    return 1\n"
        )
        findings = lint_sources(
            {
                "src/repro/engine/mini.py": self._DIRTY,
                "src/repro/engine/other.py": clean_extra,
            },
            select=["epoch-fence"],
        )
        assert [v.rule for v in findings] == ["epoch-fence"]
        assert findings[0].path == "src/repro/engine/mini.py"

    def test_reasonless_suppression_does_not_suppress(self):
        # the comment is assembled from pieces so this test file's own
        # source never contains a (reasonless) suppression line itself
        comment = "  # repro-lint" ": disable=epoch-fence"
        src = self._DIRTY.replace(
            "    def _on_task_ready(self, now, payload):",
            "    def _on_task_ready(self, now, payload):" + comment,
        )
        findings = lint_sources(
            {"src/repro/engine/mini.py": src},
            select=["epoch-fence", "suppression-format"],
        )
        assert _rules_of(findings) == ["epoch-fence", "suppression-format"]


# ----------------------------------------------------------------------
# shared analysis build (one SymbolTable/CallGraph/EffectAnalysis per run)
# ----------------------------------------------------------------------
class TestSharedAnalysisBuild:
    def test_one_effect_build_across_all_project_rules(self, monkeypatch):
        builds = []
        original = EffectAnalysis.__init__

        def counting(self, project):
            builds.append(project)
            original(self, project)

        monkeypatch.setattr(EffectAnalysis, "__init__", counting)
        # a full-repo lint runs all nine project rules; the race,
        # lifecycle and protocol analyses must share one effect build
        # (each rule receives a fresh role-filtered ProjectContext over
        # the *same* FileContext objects, so the identity-keyed caches
        # hit) — this was a per-rule reconstruction before PR 10, the
        # dominant cost of a whole-repo run
        findings = lint_project(
            [REPO_ROOT / p for p in DEFAULT_PATHS], root=REPO_ROOT
        )
        assert len(builds) == 1
        assert {v.rule for v in findings} <= {"unclassified"} or True


# ----------------------------------------------------------------------
# baseline protocol section + docs tables stay current
# ----------------------------------------------------------------------
def test_checked_in_protocol_section_is_current():
    baseline = load_baseline(REPO_ROOT / BASELINE_NAME)
    drift = diff_protocol(
        baseline.protocol, protocol_summary(_repo_project())
    )
    assert drift == [], (
        "analysis_baseline.json 'protocol' section is stale; run "
        "PYTHONPATH=src python -m repro.analysis --write-baseline and "
        "review the drift:\n" + "\n".join(drift)
    )


def test_engine_docs_tables_are_current():
    doc = (REPO_ROOT / "docs" / "engine.md").read_text(encoding="utf-8")
    begin = doc.index("protocol-tables:begin")
    begin = doc.index("\n", begin) + 1
    end = doc.index("<!-- protocol-tables:end -->")
    embedded = doc[begin:end]
    rendered = render_protocol_tables(_repo_project())
    assert embedded == rendered, (
        "docs/engine.md protocol tables are stale; regenerate with "
        "PYTHONPATH=src python -m repro.analysis --protocol-tables"
    )


def test_engine_automaton_covers_the_protocol_surface():
    analysis = ProtocolAnalysis(_repo_project().with_roles(("src",)))
    (cls,) = [c for c in analysis.automata if c.endswith("QGraphEngine")]
    auto = analysis.automata[cls]
    # the sixteen handlers are all transitions
    assert len(auto.transitions) == 16
    # the paper's couple is declared and extracted
    assert auto.couples == [
        (
            "QueryRuntime.acked",
            "QueryRuntime.involved",
            "QueryRuntime.barrier_epoch",
        )
    ]
    # the STOP/START/recovery/BSP waiting surface is all present
    for state in (
        "QGraphEngine.paused",
        "QGraphEngine._held_tasks",
        "QGraphEngine._recovery_active",
        "QGraphEngine._bsp_outstanding",
        "QueryRuntime.acked",
    ):
        assert state in auto.states, state
    # and carries the curated manifest classification, not "unclassified"
    assert auto.states["QGraphEngine.paused"] == "engine-global"
    assert auto.states["QueryRuntime.acked"] == "derived"
