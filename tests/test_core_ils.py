"""Tests for Algorithm 1 (iterated local search)."""

import numpy as np
import pytest

from repro.core import Fragment, QcutState, iterated_local_search


def hash_like_state(num_units=8, k=4, mass=12, base=2000.0, delta=0.3):
    """Every cluster scattered evenly (what Hash partitioning looks like)."""
    frags = [
        Fragment(u, w, mass, mass) for u in range(num_units) for w in range(k)
    ]
    return QcutState(num_units, k, frags, np.full(k, base), delta=delta)


class TestIls:
    def test_reduces_cost(self):
        st = hash_like_state()
        res = iterated_local_search(st, max_rounds=10, seed=0)
        assert res.best_cost < res.initial_cost
        assert res.improvement > 0.5

    def test_input_not_mutated(self):
        st = hash_like_state()
        snapshot = st.weighted.copy()
        iterated_local_search(st, max_rounds=5, seed=0)
        assert np.array_equal(st.weighted, snapshot)

    def test_best_state_consistent_with_best_cost(self):
        st = hash_like_state()
        res = iterated_local_search(st, max_rounds=10, seed=1)
        assert res.best_state.cost() == pytest.approx(res.best_cost)

    def test_cost_trace_monotone(self):
        st = hash_like_state()
        res = iterated_local_search(st, max_rounds=20, seed=2)
        costs = [c for _r, c in res.cost_trace]
        assert all(a >= b for a, b in zip(costs, costs[1:]))

    def test_perturbation_rounds_recorded(self):
        st = hash_like_state()
        res = iterated_local_search(st, max_rounds=10, seed=3)
        assert res.perturbation_rounds
        assert res.perturbation_rounds[0] == 1

    def test_zero_rounds_still_descends(self):
        """Round 0 (initial local search) runs even with no perturbations."""
        st = hash_like_state()
        res = iterated_local_search(st, max_rounds=0, seed=4)
        assert res.best_cost < res.initial_cost

    def test_interruptible(self):
        st = hash_like_state()
        calls = []

        def stop_after_two():
            calls.append(1)
            return len(calls) > 2

        res = iterated_local_search(st, max_rounds=50, terminated=stop_after_two)
        assert res.rounds <= 3
        # still returns the best-so-far solution (requirement (b) of §3.2.2)
        assert res.best_state is not None

    def test_balance_dominates_acceptance(self):
        """A balanced incumbent is never replaced by an unbalanced state."""
        st = hash_like_state(delta=0.25)
        res = iterated_local_search(st, max_rounds=30, seed=5)
        assert res.best_state.is_balanced()

    def test_deterministic(self):
        st = hash_like_state()
        a = iterated_local_search(st, max_rounds=15, seed=9)
        b = iterated_local_search(st, max_rounds=15, seed=9)
        assert a.best_cost == b.best_cost
        assert a.cost_trace == b.cost_trace

    def test_figure_6g_shape(self):
        """Fig. 6g: costs drop by more than 75% during one ILS run."""
        st = hash_like_state(num_units=16, k=8, mass=10, base=4000.0, delta=0.3)
        res = iterated_local_search(st, max_rounds=40, seed=6)
        assert res.improvement >= 0.75

    def test_empty_state(self):
        st = QcutState(0, 2, [], np.array([10.0, 10.0]))
        res = iterated_local_search(st, max_rounds=5)
        assert res.best_cost == 0.0
