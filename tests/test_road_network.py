"""Tests for the synthetic road-network generator (the OSM substitute)."""

from collections import deque

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import baden_wuerttemberg_like, generate_road_network, germany_like


@pytest.fixture(scope="module")
def small_network():
    return generate_road_network(
        num_cities=6, num_urban_vertices=1200, seed=42, region_size=80.0
    )


def is_connected(g):
    seen = np.zeros(g.num_vertices, dtype=bool)
    seen[0] = True
    queue = deque([0])
    while queue:
        u = queue.popleft()
        for v in g.out_neighbors(u):
            if not seen[v]:
                seen[v] = True
                queue.append(int(v))
    return bool(seen.all())


class TestStructure:
    def test_city_count(self, small_network):
        assert small_network.num_cities == 6

    def test_connected(self, small_network):
        assert is_connected(small_network.graph)

    def test_city_sizes_follow_population_rank(self, small_network):
        cities = small_network.cities
        pops = [c.population for c in cities]
        assert pops == sorted(pops, reverse=True)
        # biggest city has the most vertices (ties broken by rank)
        assert cities[0].num_vertices >= cities[-1].num_vertices

    def test_city_of_vertex_consistency(self, small_network):
        rn = small_network
        for city in rn.cities:
            assert np.all(rn.city_of_vertex[city.vertex_ids] == city.city_id)

    def test_highway_vertices_outside_cities(self, small_network):
        rn = small_network
        urban = sum(c.num_vertices for c in rn.cities)
        assert rn.graph.num_vertices > urban  # highways exist
        assert np.count_nonzero(rn.city_of_vertex < 0) == rn.graph.num_vertices - urban

    def test_coords_and_tags_attached(self, small_network):
        g = small_network.graph
        assert g.has_coords()
        assert g.has_tags()
        assert g.tagged_vertices().size >= 1

    def test_travel_time_weights(self, small_network):
        # urban streets: ~0.25 km at 50 km/h -> ~0.3 min; all weights positive
        g = small_network.graph
        assert np.all(g.weights > 0)
        assert g.weights.max() < 10.0  # minutes per segment stays sane

    def test_population_weights_sum_to_one(self, small_network):
        assert small_network.population_weights().sum() == pytest.approx(1.0)

    def test_nearest_city(self, small_network):
        rn = small_network
        for city in rn.cities[:3]:
            assert rn.nearest_city(*city.center) == city.city_id

    def test_city_vertices_bad_id(self, small_network):
        with pytest.raises(GraphError):
            small_network.city_vertices(99)


class TestDeterminism:
    def test_same_seed_same_graph(self):
        a = generate_road_network(4, 400, seed=9, region_size=50.0)
        b = generate_road_network(4, 400, seed=9, region_size=50.0)
        assert a.graph == b.graph

    def test_different_seed_different_graph(self):
        a = generate_road_network(4, 400, seed=9, region_size=50.0)
        b = generate_road_network(4, 400, seed=10, region_size=50.0)
        assert a.graph != b.graph


class TestPresets:
    def test_bw_preset(self):
        rn = baden_wuerttemberg_like(scale=0.1)
        assert rn.num_cities == 16
        assert rn.graph.num_vertices > 1000

    def test_gy_preset(self):
        rn = germany_like(scale=0.05)
        assert rn.num_cities == 64
        assert rn.graph.num_vertices > 2000

    def test_gy_more_skewed_than_bw(self):
        bw = baden_wuerttemberg_like(scale=0.1)
        gy = germany_like(scale=0.05)
        assert gy.population_weights()[0] > bw.population_weights()[0] * 0.9


class TestValidation:
    def test_rejects_zero_cities(self):
        with pytest.raises(GraphError):
            generate_road_network(0, 100)

    def test_rejects_too_few_vertices(self):
        with pytest.raises(GraphError):
            generate_road_network(10, 20)
