"""Vectorized kernel layer: equivalence with the generic path + unit tests."""

import numpy as np
import pytest

from repro.core import Controller
from repro.engine import (
    ArrayMailbox,
    EngineConfig,
    QGraphEngine,
    Query,
    SyncMode,
    VertexProgram,
)
from repro.engine.kernels import (
    LocalWccKernel,
    combine_by_vertex,
    expand_edges,
    group_by_owner,
)
from repro.graph import DiGraph, grid_graph, rmat_graph, watts_strogatz
from repro.partitioning import HashPartitioner
from repro.queries import (
    BfsProgram,
    KHopProgram,
    LocalPageRankProgram,
    LocalWccProgram,
    PoiProgram,
    ReachabilityProgram,
    SsspProgram,
)
from repro.simulation.cluster import make_cluster


def build_engine(graph, k=3, use_kernels=True, sync_mode=SyncMode.HYBRID, **cfg):
    assignment = HashPartitioner(seed=0).partition(graph, k)
    return QGraphEngine(
        graph,
        make_cluster("M2", k),
        assignment,
        controller=Controller(k),
        config=EngineConfig(
            sync_mode=sync_mode, adaptive=False, use_kernels=use_kernels, **cfg
        ),
    )


def run_both(graph, queries, sync_mode=SyncMode.HYBRID, k=3):
    engines = []
    for use_kernels in (True, False):
        eng = build_engine(graph, k=k, use_kernels=use_kernels, sync_mode=sync_mode)
        for q in queries:
            eng.submit(q)
        eng.run()
        engines.append(eng)
    return engines


@pytest.fixture(scope="module")
def social():
    return watts_strogatz(300, 6, 0.1, seed=3)


PROGRAM_CASES = {
    "sssp-full": (lambda: SsspProgram(5), (5,)),
    "sssp-target": (lambda: SsspProgram(0, 250), (0,)),
    "bfs-target": (lambda: BfsProgram(1, target=200), (1,)),
    "bfs-depth": (lambda: BfsProgram(2, max_depth=4), (2,)),
    "khop": (lambda: KHopProgram(7, 3), (7,)),
    "reach": (lambda: ReachabilityProgram(9, 280), (9,)),
    "wcc": (lambda: LocalWccProgram(4), (3, 8, 12)),
}


class TestEquivalence:
    @pytest.mark.parametrize("case", sorted(PROGRAM_CASES))
    def test_identical_results(self, social, case):
        factory, seeds = PROGRAM_CASES[case]
        q = Query(0, factory(), seeds)
        vec, gen = run_both(social, [q])
        assert vec.runtimes[0].kernel is not None
        assert gen.runtimes[0].kernel is None
        assert vec.query_result(0) == gen.query_result(0)

    def test_identical_virtual_time(self, social):
        """Both paths produce the same counters, hence the same virtual time."""
        queries = [Query(i, SsspProgram(i), (i,)) for i in range(4)]
        vec, gen = run_both(social, queries)
        assert vec.trace.total_latency() == gen.trace.total_latency()
        assert vec.trace.remote_messages == gen.trace.remote_messages
        assert vec.trace.local_messages == gen.trace.local_messages

    @pytest.mark.parametrize(
        "mode", [SyncMode.HYBRID, SyncMode.GLOBAL_PER_QUERY, SyncMode.SHARED_BSP]
    )
    def test_modes(self, social, mode):
        queries = [
            Query(0, SsspProgram(0, 250), (0,)),
            Query(1, BfsProgram(5), (5,)),
        ]
        vec, gen = run_both(social, queries, sync_mode=mode)
        for qid in (0, 1):
            assert vec.query_result(qid) == gen.query_result(qid)

    def test_pagerank_close(self, social):
        """Sum-combining reorders float additions: equal scope, close values."""
        q = Query(0, LocalPageRankProgram(11, epsilon=1e-5), (11,))
        vec, gen = run_both(social, [q])
        rv, rg = vec.query_result(0), gen.query_result(0)
        assert rv["scores"].keys() == rg["scores"].keys()
        for v, score in rv["scores"].items():
            assert score == pytest.approx(rg["scores"][v])
        assert rv["residual_mass"] == pytest.approx(rg["residual_mass"])

    def test_poi_identical(self):
        g = grid_graph(8, 8)
        tags = np.zeros(g.num_vertices, dtype=bool)
        tags[[27, 52]] = True
        tagged = DiGraph(g.indptr, g.indices, g.weights, tags=tags)
        q = Query(0, PoiProgram(0), (0,))
        vec, gen = run_both(tagged, [q])
        assert vec.runtimes[0].kernel is not None
        assert vec.query_result(0) == gen.query_result(0)

    def test_rmat_multi_query_batch(self):
        graph = rmat_graph(2000, 6, seed=2)
        hubs = graph.out_degrees().argsort()[-8:]
        queries = [
            Query(i, SsspProgram(int(v)) if i % 2 else BfsProgram(int(v)), (int(v),))
            for i, v in enumerate(hubs)
        ]
        vec, gen = run_both(graph, queries, k=4)
        for q in queries:
            assert vec.query_result(q.query_id) == gen.query_result(q.query_id)


class _TupleEcho(VertexProgram):
    """A custom program with no kernel — must use the generic path."""

    kind = "echo"

    def init_messages(self, graph, initial_vertices):
        return [(v, 1) for v in initial_vertices]

    def compute(self, ctx, vertex, state, message):
        if state is None:
            for nbr in ctx.graph.out_neighbors(vertex):
                ctx.send(int(nbr), 1)
        return (state or 0) + 1


class TestFallback:
    def test_custom_program_uses_generic_path(self, social):
        eng = build_engine(social, use_kernels=True)
        eng.submit(Query(0, _TupleEcho(), (0,)))
        eng.run()
        assert eng.runtimes[0].kernel is None
        assert eng.runtimes[0].finished
        assert eng.query_result(0)[0] >= 1

    def test_use_kernels_false_forces_generic(self, social):
        eng = build_engine(social, use_kernels=False)
        eng.submit(Query(0, SsspProgram(0), (0,)))
        eng.run()
        assert eng.runtimes[0].kernel is None

    def test_state_materialized_after_finish(self, social):
        eng = build_engine(social, use_kernels=True)
        eng.submit(Query(0, SsspProgram(0), (0,)))
        eng.run()
        qr = eng.runtimes[0]
        assert qr.state[0] == 0.0
        assert len(qr.state) == eng.query_result(0)["settled"]


class TestKernelPrimitives:
    def test_combine_by_vertex_min(self):
        v = np.array([4, 2, 4, 2, 9], dtype=np.int64)
        m = np.array([3.0, 5.0, 1.0, 2.0, 7.0])
        cv, cm = combine_by_vertex(v, m, np.minimum)
        assert cv.tolist() == [2, 4, 9]
        assert cm.tolist() == [2.0, 1.0, 7.0]

    def test_combine_by_vertex_sum(self):
        v = np.array([1, 1, 1], dtype=np.int64)
        m = np.array([1.0, 2.0, 3.0])
        cv, cm = combine_by_vertex(v, m, np.add)
        assert cv.tolist() == [1]
        assert cm.tolist() == [6.0]

    def test_expand_edges_matches_out_edges(self):
        g = watts_strogatz(50, 4, 0.2, seed=1)
        vertices = np.array([0, 7, 13], dtype=np.int64)
        edge_idx, src_pos = expand_edges(g.indptr, vertices)
        expected = []
        for pos, v in enumerate(vertices):
            for nbr in g.out_neighbors(int(v)):
                expected.append((pos, int(nbr)))
        got = list(zip(src_pos.tolist(), g.indices[edge_idx].tolist()))
        assert got == expected

    def test_expand_edges_empty(self):
        g = grid_graph(2, 2)
        edge_idx, src_pos = expand_edges(g.indptr, np.empty(0, dtype=np.int64))
        assert edge_idx.size == 0 and src_pos.size == 0

    def test_array_mailbox(self):
        box = ArrayMailbox()
        assert not box
        box.append(np.array([1, 2], dtype=np.int64), np.array([1.0, 2.0]))
        box.append(np.array([2], dtype=np.int64), np.array([0.5]))
        box.append(np.empty(0, dtype=np.int64), np.empty(0))  # ignored
        assert box and len(box) == 3
        v, m = box.concat()
        assert v.tolist() == [1, 2, 2]
        assert m.tolist() == [1.0, 2.0, 0.5]

    def test_group_by_owner(self):
        assignment = np.array([0, 1, 0, 2], dtype=np.int64)
        v = np.array([0, 1, 2, 3, 1], dtype=np.int64)
        m = np.arange(5, dtype=np.float64)
        groups = {
            owner: (vc.tolist(), mc.tolist())
            for owner, vc, mc in group_by_owner(assignment, v, m)
        }
        assert groups == {
            0: ([0, 2], [0.0, 2.0]),
            1: ([1, 1], [1.0, 4.0]),
            2: ([3], [3.0]),
        }

    def test_wcc_key_roundtrip(self):
        kernel = LocalWccKernel(max_hops=5)
        for label in (0, 3, 17):
            for hops in range(6):
                key = kernel.encode_key(label, hops)
                assert kernel.decode_key(key) == (label, hops)
        # the program's preference order maps to plain key order
        assert kernel.encode_key(1, 0) < kernel.encode_key(2, 5)
        assert kernel.encode_key(2, 4) < kernel.encode_key(2, 3)

    def test_csr_view_cached(self):
        g = grid_graph(3, 3)
        view = g.csr()
        assert view is g.csr()
        assert view.indptr is g.indptr
        g._invalidate_csr()
        assert view is not g.csr()
