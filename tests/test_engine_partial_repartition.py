"""Partial STOP/START repartitioning: scoping, invariants, equivalence.

Covers the plan-scoped barrier pipeline (``EngineConfig.repartition_mode ==
"partial"``) and the repartition-path bugfixes that shipped with it:

* no query iterates on a halted worker during a partial STOP, while queries
  disjoint from the plan keep making progress;
* barrier epochs bump exactly once per interrupted query across START;
* partial mode with an all-workers plan reproduces global mode
  event-for-event (same query records, repartition records, counters, and
  event count);
* ``QueryRuntime.rebucket`` merges colliding vertices with the program's
  combiner instead of overwriting (generic dict path), and conserves
  mailbox mass on both representations;
* migration cost groups payloads per directed link (two moves sharing a
  link serialize instead of being charged as concurrent transfers);
* ``RepartitionRecord.stall_duration`` measures the actual STOP-begin →
  START stall, excluding the overlapped async Q-cut planning time.
"""

import numpy as np
import pytest

from repro.core import Controller, ControllerConfig
from repro.core.api import MoveRequest
from repro.core.controller import MovePlan
from repro.engine import (
    EngineConfig,
    QGraphEngine,
    Query,
    QueryRuntime,
    SyncMode,
)
from repro.errors import EngineError
from repro.graph import generate_road_network, grid_graph
from repro.graph.builder import GraphBuilder
from repro.partitioning import HashPartitioner
from repro.queries import SsspProgram
from repro.simulation.cluster import make_cluster
from repro.workload import PhaseSpec, WorkloadGenerator

QCUT_COMPUTE_TIME = 0.001


def _controller_config(**overrides) -> ControllerConfig:
    base = dict(
        mu=5.0,
        max_tracked_queries=32,
        qcut_compute_time=QCUT_COMPUTE_TIME,
        qcut_cooldown=0.005,
        min_queries_for_qcut=4,
        ils_rounds=30,
    )
    base.update(overrides)
    return ControllerConfig(**base)


class AllWorkersController(Controller):
    """Annotates every plan as involving the whole cluster (equivalence)."""

    def complete_qcut(self, now):
        plan = super().complete_qcut(now)
        if plan:
            plan.involved_workers = frozenset(range(self.k))
        return plan


class InvariantEngine(QGraphEngine):
    """Engine that audits the partial-STOP execution invariants."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.violations = []
        #: computes executed while a partial STOP was in progress (the
        #: disjoint queries that kept iterating)
        self.paused_progress = 0
        #: (query_id, epoch_before, epoch_after) per interrupted query
        self.epoch_checks = []
        #: (halted workers, halted queries) per partial STOP
        self.captured_scopes = []
        #: (query_id, worker) tasks parked on halted workers (stage C)
        self.parked = []

    def _plan_scope(self, plan):
        workers, queries = super()._plan_scope(plan)
        self.captured_scopes.append((set(workers), set(queries)))
        return workers, queries

    def _on_global_start(self, now):
        self.parked.extend(self._held_other_tasks)
        resolved = set(dict.fromkeys(self._held_resolutions))
        interrupted = {
            qid for qid, _w in self._held_tasks if qid not in resolved
        }
        before = {
            qid: self.runtimes[qid].barrier_epoch
            for qid in interrupted | resolved
            if not self.runtimes[qid].finished
        }
        super()._on_global_start(now)
        for qid, epoch in sorted(before.items()):
            if self.runtimes[qid].finished:
                continue  # resolved to completion at START: no new barrier
            self.epoch_checks.append(
                (qid, epoch, self.runtimes[qid].barrier_epoch)
            )

    def _execute_compute(self, qr, worker, now):
        if self.paused:
            if self._stop_workers is None:
                self.violations.append(
                    ("compute-during-global-stop", qr.query.query_id, worker)
                )
            elif worker in self._stop_workers:
                self.violations.append(
                    ("compute-on-halted-worker", qr.query.query_id, worker)
                )
            elif qr.query.query_id in self._stop_queries:
                self.violations.append(
                    ("halted-query-computed", qr.query.query_id, worker)
                )
            else:
                self.paused_progress += 1
        return super()._execute_compute(qr, worker, now)

def _run_workload(
    adaptive=True,
    repartition_mode="partial",
    use_kernels=True,
    sync_mode=SyncMode.HYBRID,
    scheduler="fifo",
    k=4,
    engine_cls=QGraphEngine,
    controller_cls=Controller,
    max_parallel=16,
):
    rn = generate_road_network(
        num_cities=4,
        num_urban_vertices=1200,
        seed=13,
        region_size=60.0,
        zipf_exponent=0.5,
    )
    assignment = HashPartitioner(seed=0).partition(rn.graph, k)
    controller = controller_cls(k, _controller_config())
    engine = engine_cls(
        rn.graph,
        make_cluster("M2", k),
        assignment,
        controller=controller,
        config=EngineConfig(
            adaptive=adaptive,
            use_kernels=use_kernels,
            sync_mode=sync_mode,
            repartition_mode=repartition_mode,
            scheduler=scheduler,
            max_parallel_queries=max_parallel,
        ),
    )
    workload = WorkloadGenerator(rn, seed=5).generate(
        [PhaseSpec(num_queries=48, kind="sssp", label="repart")]
    )
    workload.submit_all(engine)
    trace = engine.run()
    results = {
        q.query_id: engine.query_result(q.query_id) for q in workload.queries()
    }
    return engine, trace, results


def _trace_fingerprint(engine, trace):
    """Everything observable about a run, for event-for-event comparison."""
    return (
        {
            qid: (r.start_time, r.end_time, r.iterations, r.local_iterations)
            for qid, r in trace.queries.items()
        },
        [
            (
                r.time,
                r.moved_vertices,
                r.num_moves,
                r.barrier_duration,
                r.stall_duration,
                r.involved_workers,
            )
            for r in trace.repartitions
        ],
        trace.local_messages,
        trace.remote_messages,
        trace.remote_batches,
        trace.barrier_acks,
        trace.barrier_releases,
        engine._events_processed,
    )


class TestPartialModeBasics:
    def test_unknown_mode_rejected(self):
        g = grid_graph(4, 4)
        assignment = HashPartitioner(seed=0).partition(g, 2)
        with pytest.raises(EngineError, match="repartition mode"):
            QGraphEngine(
                g,
                make_cluster("M2", 2),
                assignment,
                controller=Controller(2),
                config=EngineConfig(repartition_mode="sideways"),
            )

    def test_partial_mode_preserves_results(self):
        _e, trace, res = _run_workload(adaptive=True, repartition_mode="partial")
        _es, _ts, res_static = _run_workload(adaptive=False)
        assert len(trace.repartitions) >= 1, "workload never triggered Q-cut"
        assert len(trace.finished_queries()) == 48
        assert res == res_static

    def test_partial_mode_preserves_results_generic_path(self):
        _e, trace, res = _run_workload(
            adaptive=True, repartition_mode="partial", use_kernels=False
        )
        _es, _ts, res_static = _run_workload(adaptive=False, use_kernels=False)
        assert len(trace.repartitions) >= 1
        assert res == res_static

    def test_partial_mode_global_per_query_completes(self):
        _e, trace, res = _run_workload(
            adaptive=True,
            repartition_mode="partial",
            sync_mode=SyncMode.GLOBAL_PER_QUERY,
        )
        _es, _ts, res_static = _run_workload(
            adaptive=False, sync_mode=SyncMode.GLOBAL_PER_QUERY
        )
        assert len(trace.finished_queries()) == 48
        assert res == res_static

    def test_partial_degrades_to_global_under_shared_bsp(self):
        engine, trace, res = _run_workload(
            adaptive=True,
            repartition_mode="partial",
            sync_mode=SyncMode.SHARED_BSP,
        )
        _es, _ts, res_static = _run_workload(
            adaptive=False, sync_mode=SyncMode.SHARED_BSP
        )
        assert res == res_static
        # the shared superstep barrier has no plan scope: every STOP is global
        for rec in trace.repartitions:
            assert rec.involved_workers == tuple(range(engine.cluster.num_workers))

    def test_partial_records_scoped_involved_workers(self):
        engine, trace, _res = _run_workload(adaptive=True, repartition_mode="partial")
        assert len(trace.repartitions) >= 1
        k = engine.cluster.num_workers
        for rec in trace.repartitions:
            assert 0 < len(rec.involved_workers) <= k
            assert all(0 <= w < k for w in rec.involved_workers)

    @pytest.mark.parametrize(
        "policy", ["fifo", "locality", "shortest_scope", "phase_round_robin"]
    )
    def test_scheduler_policies_under_partial_plans(self, policy):
        """on_assignment_changed rebuckets pending queries after partial
        STOP/STARTs too: every policy drains the workload with unchanged
        answers under a tight admission cap."""
        _e, trace, res = _run_workload(
            adaptive=True,
            repartition_mode="partial",
            scheduler=policy,
            max_parallel=6,
        )
        _es, _ts, res_static = _run_workload(
            adaptive=False, scheduler=policy, max_parallel=6
        )
        assert len(trace.finished_queries()) == 48
        assert res == res_static


class ScriptedController(Controller):
    """Fires one scripted move plan at the first adaptation opportunity."""

    def __init__(self, k, vertices, src=0, dst=1):
        super().__init__(k)
        self._scripted = MoveRequest(src=src, dst=dst, vertices=vertices)
        self._fired = False

    def should_trigger_qcut(self, now, assignment=None):
        return not self._fired and not self._qcut_running

    def begin_qcut(self, assignment, now):
        self._qcut_running = True
        return 5.0e-4

    def complete_qcut(self, now):
        self._qcut_running = False
        self._fired = True
        self.last_qcut_time = now
        plan = MovePlan(moves=[self._scripted], cost_before=1.0, cost_after=0.5)
        plan.involved_workers = frozenset(
            {self._scripted.src, self._scripted.dst}
        )
        return plan


def _path_engine(
    adaptive,
    connected,
    repartition_mode="partial",
    vertex_state_bytes=50_000,
    engine_cls=InvariantEngine,
):
    """Path graph 0..399 over k=4 workers in contiguous 100-vertex blocks.

    ``connected=False`` severs the edge between vertices 199 and 200, so
    query 0 (SSSP from 0, workers {0, 1}) and query 1 (SSSP from 399,
    workers {2, 3}) are fully disjoint; ``connected=True`` lets query 1's
    wavefront eventually cross into the halted workers' range.  The
    scripted plan moves vertices 0..49 from worker 0 to worker 1, and the
    inflated ``vertex_state_bytes`` stretches the migration stall so the
    live query demonstrably iterates through it.
    """
    n = 400
    builder = GraphBuilder(n)
    for i in range(n - 1):
        if not connected and i == 199:
            continue
        builder.add_bidirectional_edge(i, i + 1, 1.0)
    graph = builder.build()
    assignment = np.repeat(np.arange(4, dtype=np.int64), 100)
    controller = ScriptedController(4, np.arange(50, dtype=np.int64))
    engine = engine_cls(
        graph,
        make_cluster("M2", 4),
        assignment.copy(),
        controller=controller,
        config=EngineConfig(
            adaptive=adaptive,
            repartition_mode=repartition_mode,
            vertex_state_bytes=vertex_state_bytes,
        ),
    )
    engine.submit(Query(0, SsspProgram(0), (0,)))
    engine.submit(Query(1, SsspProgram(399), (399,)))
    trace = engine.run()
    results = {qid: engine.query_result(qid) for qid in (0, 1)}
    return engine, trace, results


class TestPartialInvariants:
    def test_disjoint_query_iterates_through_partial_stop(self):
        engine, trace, results = _path_engine(adaptive=True, connected=False)
        assert len(trace.repartitions) == 1
        workers, queries = engine.captured_scopes[0]
        assert workers == {0, 1}
        assert queries == {0}  # the co-located query; query 1 is disjoint
        assert engine.violations == []
        # the point of partial mode: the disjoint query kept iterating
        # while workers 0/1 were stopped and migrating
        assert engine.paused_progress > 0
        assert trace.repartitions[0].involved_workers == (0, 1)
        _e, _t, static = _path_engine(adaptive=False, connected=False)
        assert results == static

    def test_live_query_reaching_halted_worker_is_parked(self):
        # ~7.5 ms migration stall: long enough for query 1's wave (~25 µs
        # per hop) to cross from worker 2's range into halted worker 1's
        engine, trace, results = _path_engine(
            adaptive=True, connected=True, vertex_state_bytes=600_000
        )
        assert len(trace.repartitions) == 1
        workers, queries = engine.captured_scopes[0]
        assert queries == {0}
        # query 1's wavefront crossed into a halted worker mid-STOP: its
        # dispatch was parked (stage C), never executed on the halted
        # worker, and resumed at START with correct answers
        assert engine.parked, "wavefront never reached a halted worker"
        assert all(w in workers for _q, w in engine.parked)
        assert engine.violations == []
        assert engine.paused_progress > 0
        _e, _t, static = _path_engine(adaptive=False, connected=True)
        assert results == static

    def test_no_compute_on_halted_workers_under_load(self):
        engine, trace, _res = _run_workload(
            adaptive=True, repartition_mode="partial", engine_cls=InvariantEngine
        )
        assert len(trace.repartitions) >= 1
        assert engine.violations == []

    def test_epoch_bumps_exactly_once_per_interrupted_query(self):
        engine, trace, _res = _run_workload(
            adaptive=True, repartition_mode="partial", engine_cls=InvariantEngine
        )
        assert len(trace.repartitions) >= 1
        assert engine.epoch_checks, "no query was ever interrupted by a STOP"
        for qid, before, after in engine.epoch_checks:
            # +1 for the STOP's ack invalidation; an interrupted query whose
            # every compute had already run resolves immediately at START,
            # which advances one iteration on top (+1 more)
            assert after - before in (1, 2), (qid, before, after)
        assert any(after - before == 1 for _q, before, after in engine.epoch_checks)

    def test_global_mode_invariants_still_hold(self):
        engine, trace, _res = _run_workload(
            adaptive=True, repartition_mode="global", engine_cls=InvariantEngine
        )
        assert len(trace.repartitions) >= 1
        assert engine.violations == []
        assert engine.paused_progress == 0  # a global STOP halts everyone


class TestAllWorkersEquivalence:
    def test_partial_all_workers_plan_matches_global_event_for_event(self):
        eng_g, trace_g, res_g = _run_workload(
            adaptive=True, repartition_mode="global"
        )
        eng_p, trace_p, res_p = _run_workload(
            adaptive=True,
            repartition_mode="partial",
            controller_cls=AllWorkersController,
        )
        assert len(trace_g.repartitions) >= 1
        assert res_g == res_p
        assert _trace_fingerprint(eng_g, trace_g) == _trace_fingerprint(
            eng_p, trace_p
        )

    def test_partial_all_workers_generic_path(self):
        eng_g, trace_g, _ = _run_workload(
            adaptive=True, repartition_mode="global", use_kernels=False
        )
        eng_p, trace_p, _ = _run_workload(
            adaptive=True,
            repartition_mode="partial",
            use_kernels=False,
            controller_cls=AllWorkersController,
        )
        assert _trace_fingerprint(eng_g, trace_g) == _trace_fingerprint(
            eng_p, trace_p
        )


class TestRebucketCollisions:
    def test_dict_path_combines_on_collision(self):
        """Two old boxes holding a message for the same vertex must merge
        with the program combiner (min for SSSP), not overwrite."""
        qr = QueryRuntime(Query(0, SsspProgram(0), (0,)))
        qr.deliver(0, 5, 7.0, to_next=False)
        qr.deliver(1, 5, 3.0, to_next=False)
        qr.deliver(0, 6, 1.0, to_next=True)
        qr.deliver(1, 6, 4.0, to_next=True)
        assignment = np.zeros(10, dtype=np.int64)
        assignment[5] = 2
        assignment[6] = 2
        qr.rebucket(assignment)
        assert qr.mailboxes == {2: {5: 3.0}}
        assert qr.next_mailboxes == {2: {6: 1.0}}

    def test_array_path_collision_combined_at_consume(self):
        g = grid_graph(4, 4)
        qr = QueryRuntime(Query(0, SsspProgram(0), (0,)), g)
        assert qr.kernel is not None
        qr.deliver_array(0, np.array([5], dtype=np.int64), np.array([7.0]))
        qr.deliver_array(1, np.array([5], dtype=np.int64), np.array([3.0]))
        assignment = np.zeros(16, dtype=np.int64)
        assignment[5] = 2
        qr.rebucket(assignment)
        vertices, messages = qr.kernel.combine_arrays(
            *qr.next_mailboxes[2].concat()
        )
        assert vertices.tolist() == [5]
        assert messages.tolist() == [3.0]

    def test_dict_mass_conserved(self):
        """Every (vertex, message) survives a rebucket: vertices are the
        union of the old boxes', values the combine over all deliveries."""
        qr = QueryRuntime(Query(0, SsspProgram(0), (0,)))
        deliveries = [(0, 1, 5.0), (1, 1, 2.0), (2, 3, 9.0), (0, 4, 1.5), (2, 1, 8.0)]
        for w, v, m in deliveries:
            qr.deliver(w, v, m, to_next=False)
        assignment = np.array([0, 1, 1, 0, 1], dtype=np.int64)
        qr.rebucket(assignment)
        merged = {}
        for box in qr.mailboxes.values():
            for v, m in box.items():
                assert v not in merged, "same vertex homed on two workers"
                merged[v] = m
        expected = {}
        for _w, v, m in deliveries:
            expected[v] = min(expected.get(v, np.inf), m)
        assert merged == expected
        for v, m in merged.items():
            assert int(assignment[v]) in qr.mailboxes
            assert qr.mailboxes[int(assignment[v])][v] == m

    def test_array_mass_conserved(self):
        g = grid_graph(4, 4)
        qr = QueryRuntime(Query(0, SsspProgram(0), (0,)), g)
        rng = np.random.default_rng(3)
        total = 0
        for w in range(3):
            vertices = rng.integers(0, 16, size=5).astype(np.int64)
            qr.deliver_array(w, vertices, rng.random(5))
            total += 5
        assignment = rng.integers(0, 2, size=16).astype(np.int64)
        qr.rebucket(assignment)
        after = sum(
            box.concat()[0].size for box in qr.next_mailboxes.values()
        )
        assert after == total
        for w, box in qr.next_mailboxes.items():
            assert (assignment[box.concat()[0]] == w).all()

    def test_scoped_rebucket_keeps_out_of_scope_boxes(self):
        qr = QueryRuntime(Query(0, SsspProgram(0), (0,)))
        qr.deliver(0, 1, 5.0, to_next=False)
        qr.deliver(1, 2, 2.0, to_next=False)
        assignment = np.array([0, 2, 2], dtype=np.int64)
        # only worker 0's boxes are in scope: worker 1's stays put even
        # though the assignment disagrees (the caller guarantees no moved
        # vertex has messages outside the scanned workers)
        qr.rebucket(assignment, workers={0})
        assert qr.mailboxes == {1: {2: 2.0}, 2: {1: 5.0}}

    def test_scoped_rebucket_merges_into_kept_box(self):
        qr = QueryRuntime(Query(0, SsspProgram(0), (0,)))
        qr.deliver(0, 1, 5.0, to_next=False)
        qr.deliver(1, 1, 2.0, to_next=False)
        assignment = np.array([0, 1], dtype=np.int64)
        # vertex 1 re-homes from the scanned worker 0 onto worker 1, whose
        # own (kept) box already holds a message for it -> combine
        qr.rebucket(assignment, workers={0})
        assert qr.mailboxes == {1: {1: 2.0}}


class TestRedirectAckLiveness:
    def test_redirect_epoch_bump_reissues_inflight_acks(self):
        """A stale-dispatch redirect must not strand a worker whose
        barrierSynch was in flight when the epoch bumped.

        Worker 0 computed and its ack is still in flight when worker 1's
        stale task redirects to worker 2 (bumping the epoch).  The stale
        ack is dropped on arrival; without re-issuing one on worker 0's
        behalf the barrier would wait on it forever (it is never
        re-tasked: its mailbox was consumed, not re-homed)."""
        g = grid_graph(4, 4)
        k = 3
        assignment = HashPartitioner(seed=0).partition(g, k)
        eng = QGraphEngine(
            g,
            make_cluster("M2", k),
            assignment,
            controller=Controller(k),
            config=EngineConfig(adaptive=False),
        )
        seed_a = int(np.flatnonzero(eng.assignment == 0)[0])
        seed_b = int(np.flatnonzero(eng.assignment == 1)[0])
        eng.submit(Query(0, SsspProgram(seed_a), (seed_a, seed_b)))
        event = eng.queue.pop()
        eng._on_arrival(event.time, **event.payload)
        qr = eng.runtimes[0]
        assert sorted(qr.mailboxes) == [0, 1]
        # drop the queued dispatches; drive the race by hand
        while eng.queue.pop() is not None:
            pass
        # worker 0 computes its seed box; its ack is *in flight* (scheduled
        # but not arrived) with the current epoch
        eng.workers[0].execute_iteration(qr, eng.graph, eng.assignment)
        qr.computed = {0}  # what _execute_compute records before dispatching
        eng.queue.schedule(
            eng.now + 1.0e-4,
            "barrier_ack",
            query_id=0,
            worker=0,
            epoch=qr.barrier_epoch,
        )
        # a repartition re-homes worker 1's unconsumed box onto worker 2
        moved = np.flatnonzero(eng.assignment == 1)
        eng.assignment[moved] = 2
        qr.rebucket(eng.assignment)
        assert sorted(qr.mailboxes) == [2]
        # worker 1's delayed dispatch fires before the ack arrives: the
        # redirect bumps the epoch, invalidating the in-flight ack
        eng._on_task_ready(eng.now, 0, 1)
        assert 2 in qr.involved and 1 not in qr.involved
        eng.run()
        assert qr.finished, "barrier stranded: dropped ack never replaced"
        distances = eng.query_result(0)["distances"]
        assert distances[seed_a] == 0.0
        assert distances[seed_b] == 0.0
        assert len(distances) == 16


class TestMigrationLinkContention:
    def _paused_engine(self, k=2):
        g = grid_graph(6, 6)
        assignment = np.zeros(g.num_vertices, dtype=np.int64)
        engine = QGraphEngine(
            g,
            make_cluster("C1", k),
            assignment,
            controller=Controller(k),
            config=EngineConfig(adaptive=False),
        )
        return engine

    def test_shared_link_serializes_payloads(self):
        engine = self._paused_engine()
        va = np.arange(0, 10, dtype=np.int64)
        vb = np.arange(10, 30, dtype=np.int64)
        plan = MovePlan(
            moves=[
                MoveRequest(src=0, dst=1, vertices=va),
                MoveRequest(src=0, dst=1, vertices=vb),
            ]
        )
        engine.paused = True
        engine._pending_plan = plan
        engine._stop_begin_time = engine.now
        engine._on_global_stop(0.0)
        event = engine.queue.pop()
        assert event.kind == "global_start"
        link = engine.cluster.link(0, 1)
        bytes_total = (va.size + vb.size) * engine.config.vertex_state_bytes
        expected = link.latency + bytes_total / link.bandwidth
        assert event.time == pytest.approx(expected, rel=1e-12)
        # strictly more than the old per-move max-concurrency accounting
        per_move_max = max(
            link.latency + va.size * engine.config.vertex_state_bytes / link.bandwidth,
            link.latency + vb.size * engine.config.vertex_state_bytes / link.bandwidth,
        )
        assert event.time > per_move_max

    def test_disjoint_links_transfer_concurrently(self):
        engine = self._paused_engine(k=4)
        va = np.arange(0, 10, dtype=np.int64)
        vb = np.arange(10, 30, dtype=np.int64)
        plan = MovePlan(
            moves=[
                MoveRequest(src=0, dst=1, vertices=va),
                MoveRequest(src=2, dst=3, vertices=vb),
            ]
        )
        engine.assignment[vb] = 2
        engine.paused = True
        engine._pending_plan = plan
        engine._stop_begin_time = engine.now
        engine._on_global_stop(0.0)
        event = engine.queue.pop()
        times = []
        for src, dst, verts in ((0, 1, va), (2, 3, vb)):
            link = engine.cluster.link(src, dst)
            payload = verts.size * engine.config.vertex_state_bytes
            times.append(link.latency + payload / link.bandwidth)
        assert event.time == pytest.approx(max(times), rel=1e-12)


class TestStallDuration:
    def test_stall_excludes_async_planning_time(self):
        _e, trace, _res = _run_workload(adaptive=True, repartition_mode="global")
        assert len(trace.repartitions) >= 1
        for rec in trace.repartitions:
            assert 0.0 <= rec.stall_duration <= rec.barrier_duration
            # barrier_duration additionally charges the overlapped async
            # Q-cut computation, which ran before STOP-begin
            assert (rec.barrier_duration - rec.stall_duration) == pytest.approx(
                QCUT_COMPUTE_TIME, rel=1e-9
            )
        assert trace.total_repartition_stall() == pytest.approx(
            sum(r.stall_duration for r in trace.repartitions)
        )

    def test_partial_stall_not_longer_than_global(self):
        _eg, trace_g, _rg = _run_workload(adaptive=True, repartition_mode="global")
        _ep, trace_p, _rp = _run_workload(adaptive=True, repartition_mode="partial")
        assert trace_g.repartitions and trace_p.repartitions
        # scoped drains finish no later on average: fewer computes to wait
        # out and fewer workers to ack the halt
        mean_g = np.mean([r.stall_duration for r in trace_g.repartitions])
        mean_p = np.mean([r.stall_duration for r in trace_p.repartitions])
        assert mean_p <= mean_g * 1.05
