"""Tests for scope bookkeeping and the monitoring window (§2, §3.4)."""

import numpy as np
import pytest

from repro.core import QueryMonitor, QueryScopes, pairwise_intersections


class TestQueryScopes:
    def test_add_and_query(self):
        qs = QueryScopes()
        qs.add_activations(1, [0, 1, 2])
        qs.add_activations(1, [2, 3])
        assert qs.global_scope(1) == {0, 1, 2, 3}
        assert qs.global_scope_size(1) == 4

    def test_unknown_query_empty(self):
        qs = QueryScopes()
        assert qs.global_scope(9) == set()
        assert qs.global_scope_size(9) == 0

    def test_local_scope_derivation(self):
        qs = QueryScopes()
        qs.add_activations(1, [0, 1, 2, 3])
        assignment = np.array([0, 0, 1, 1])
        assert qs.local_scope(1, 0, assignment) == {0, 1}
        assert qs.local_scope_sizes(1, assignment, 2).tolist() == [2, 2]

    def test_spanning_workers(self):
        qs = QueryScopes()
        qs.add_activations(1, [0, 3])
        assignment = np.array([0, 0, 1, 1])
        assert qs.spanning_workers(1, assignment) == {0, 1}

    def test_query_cut_metric(self):
        qs = QueryScopes()
        qs.add_activations(1, [0, 1])   # fully on worker 0
        qs.add_activations(2, [1, 2, 3])  # spans both workers
        assignment = np.array([0, 0, 1, 1])
        assert qs.query_cut(assignment) == 3
        assert qs.query_cut_excess(assignment) == 1

    def test_drop(self):
        qs = QueryScopes()
        qs.add_activations(1, [0])
        qs.drop(1)
        assert qs.queries() == []


class TestPairwiseIntersections:
    def test_shared_vertices_counted(self):
        scopes = {1: {0, 1, 2}, 2: {1, 2, 3}, 3: {9}}
        out = pairwise_intersections(scopes)
        assert out == {(1, 2): 2}

    def test_min_overlap_filter(self):
        scopes = {1: {0}, 2: {0}, 3: {0}}
        out = pairwise_intersections(scopes, min_overlap=2)
        assert out == {}

    def test_triple_overlap_counts_pairs(self):
        scopes = {1: {5}, 2: {5}, 3: {5}}
        out = pairwise_intersections(scopes)
        assert out == {(1, 2): 1, (1, 3): 1, (2, 3): 1}

    def test_empty(self):
        assert pairwise_intersections({}) == {}


class TestQueryMonitor:
    def test_locality_tracking(self):
        m = QueryMonitor(window=100.0)
        m.record_start(1, 0.0)
        m.record_iteration(1, 1, 1.0)
        m.record_iteration(1, 3, 2.0)
        stats = m.stats(1)
        assert stats.iterations == 2
        assert stats.local_iterations == 1
        assert stats.locality == pytest.approx(0.5)

    def test_average_locality(self):
        m = QueryMonitor(window=100.0)
        for qid, involved in [(1, 1), (2, 4)]:
            m.record_start(qid, 0.0)
            m.record_iteration(qid, involved, 1.0)
        assert m.average_locality() == pytest.approx(0.5)

    def test_average_locality_no_data(self):
        m = QueryMonitor()
        assert m.average_locality() == 1.0

    def test_window_eviction_covers_idle_running(self):
        """A long-running query idle past the window is evicted too — it
        used to be pinned forever (leaking its scope-store entry), which
        becomes a real leak once graph churn can delete its vertices."""
        m = QueryMonitor(window=10.0)
        m.record_start(1, 0.0)
        m.record_iteration(1, 1, 0.0)
        m.record_finish(1, 1.0)
        m.record_start(2, 0.0)  # never finishes, never reports again
        evicted = m.evict_stale(now=50.0)
        assert sorted(evicted) == [1, 2]
        assert m.tracked_queries() == []

    def test_window_eviction_keeps_active_running(self):
        m = QueryMonitor(window=10.0)
        m.record_start(1, 0.0)
        m.record_iteration(1, 2, 45.0)  # recent activity keeps it tracked
        m.record_start(2, 0.0)  # idle running: evicted
        assert m.evict_stale(now=50.0) == [2]
        assert m.tracked_queries() == [1]

    def test_window_evicted_running_query_is_retracked_on_report(self):
        m = QueryMonitor(window=10.0)
        m.record_start(1, 0.0)
        assert m.evict_stale(now=50.0) == [1]
        m.record_iteration(1, 1, 51.0)  # late report re-tracks from scratch
        stats = m.stats(1)
        assert stats is not None and stats.iterations == 1

    def test_recent_finished_not_evicted(self):
        m = QueryMonitor(window=10.0)
        m.record_start(1, 0.0)
        m.record_finish(1, 5.0)
        assert m.evict_stale(now=8.0) == []

    def test_max_queries_cap(self):
        m = QueryMonitor(window=1e9, max_queries=3)
        for qid in range(5):
            m.record_start(qid, float(qid))
            m.record_finish(qid, float(qid))
        assert len(m) == 3
        # oldest finished entries evicted first
        assert m.tracked_queries() == [2, 3, 4]

    def test_cap_evicts_running_as_last_resort(self):
        m = QueryMonitor(window=1e9, max_queries=2)
        for qid in range(4):
            m.record_start(qid, float(qid))
        assert len(m) == 2

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            QueryMonitor(window=0.0)
        with pytest.raises(ValueError):
            QueryMonitor(max_queries=0)

    def test_iteration_on_unseen_query_registers_it(self):
        m = QueryMonitor()
        m.record_iteration(7, 2, 1.0)
        assert m.stats(7).iterations == 1

    def test_cap_large_scale_no_quadratic_blowup(self):
        """Regression: 10k inserts against a large cap stay fast.

        The former implementation ran two full sorts of the table per
        over-cap insert (quadratic overall); the heap-based eviction keeps
        this loop well under a second.
        """
        import time

        cap = 5000
        m = QueryMonitor(window=1e9, max_queries=cap)
        t0 = time.perf_counter()
        for qid in range(10_000):
            m.record_start(qid, float(qid))
            m.record_finish(qid, float(qid))
        elapsed = time.perf_counter() - t0
        assert len(m) == cap
        # oldest finished entries were evicted first
        assert m.tracked_queries() == list(range(5000, 10_000))
        assert elapsed < 2.5

    def test_cap_mixed_running_and_finished(self):
        m = QueryMonitor(window=1e9, max_queries=3)
        m.record_start(0, 0.0)  # stays running
        for qid in (1, 2, 3):
            m.record_start(qid, float(qid))
            m.record_finish(qid, float(qid))
        # start(3) pushed the table over cap: oldest finished (1) evicted,
        # the running query 0 survives
        assert m.tracked_queries() == [0, 2, 3]
        m.record_start(4, 4.0)
        assert m.tracked_queries() == [0, 3, 4]

    def test_cap_restarted_query_not_evicted_via_stale_heap_entry(self):
        """A restarted query's old finished record must not shadow it."""
        m = QueryMonitor(window=1e9, max_queries=2)
        m.record_start(0, 0.0)
        m.record_finish(0, 0.0)
        m.record_start(0, 10.0)  # restarted: running again
        m.record_start(1, 11.0)
        m.record_finish(1, 11.0)
        m.record_start(2, 12.0)
        # the only evictable finished entry is 1; the stale heap record for
        # the restarted query 0 must be skipped
        assert m.tracked_queries() == [0, 2]

    def test_window_eviction_bounds_heap_size(self):
        """Regression: stale heap entries are compacted by evict_stale.

        With window eviction keeping the table below the cap, finished-heap
        tuples were never popped and accumulated for the process lifetime.
        """
        m = QueryMonitor(window=1.0, max_queries=10_000)
        for qid in range(5000):
            now = float(qid)
            m.record_start(qid, now)
            m.record_finish(qid, now)
            m.evict_stale(now)
        assert len(m) <= 3
        assert len(m._finished_heap) <= 64

    def test_cap_reactivated_finished_query_uses_fresh_activity(self):
        m = QueryMonitor(window=1e9, max_queries=2)
        m.record_start(0, 0.0)
        m.record_finish(0, 0.0)
        m.record_start(1, 1.0)
        m.record_finish(1, 1.0)
        # late straggler iteration bumps query 0 past query 1
        m.record_iteration(0, 1, 5.0)
        m.record_start(2, 6.0)
        # query 1 is now the oldest finished entry
        assert m.tracked_queries() == [0, 2]
