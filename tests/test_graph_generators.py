"""Tests for synthetic graph generators, including the Figure 1 graph."""

from collections import deque

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    NY_CUTS,
    NY_QUERY_SCOPES,
    barabasi_albert,
    erdos_renyi,
    grid_graph,
    new_york_districts,
    random_geometric,
    watts_strogatz,
)
from repro.graph.metrics import edge_cut


def is_connected(g):
    if g.num_vertices == 0:
        return True
    seen = np.zeros(g.num_vertices, dtype=bool)
    seen[0] = True
    queue = deque([0])
    while queue:
        u = queue.popleft()
        for v in g.out_neighbors(u):
            if not seen[v]:
                seen[v] = True
                queue.append(int(v))
    return bool(seen.all())


class TestNewYorkDistricts:
    """Figure 1: the motivating example must reproduce the printed cut sizes."""

    def test_ten_districts(self):
        g = new_york_districts()
        assert g.num_vertices == 10

    def test_connected(self):
        assert is_connected(new_york_districts())

    @pytest.mark.parametrize(
        "cut,expected_undirected",
        [("cut1", 6), ("cut2", 8), ("cut3", 2)],
    )
    def test_figure1_edge_cut_sizes(self, cut, expected_undirected):
        g = new_york_districts()
        side = NY_CUTS[cut]
        assignment = np.array([0 if v in side else 1 for v in range(10)])
        # each undirected connection contributes two directed edges
        assert edge_cut(g, assignment) == 2 * expected_undirected

    def test_cut3_is_minimum_edge_cut_of_the_three(self):
        g = new_york_districts()
        sizes = {}
        for name, side in NY_CUTS.items():
            assignment = np.array([0 if v in side else 1 for v in range(10)])
            sizes[name] = edge_cut(g, assignment)
        assert sizes["cut3"] < sizes["cut1"] < sizes["cut2"]

    def test_cuts1_and_2_do_not_split_queries(self):
        for cut in ("cut1", "cut2"):
            side = NY_CUTS[cut]
            for scope in NY_QUERY_SCOPES.values():
                inside = scope & side
                assert inside == scope or not inside, (
                    f"{cut} splits query scope {scope}"
                )

    def test_cut3_splits_q2(self):
        side = NY_CUTS["cut3"]
        q2 = NY_QUERY_SCOPES["q2"]
        assert q2 & side and q2 - side  # crosses the boundary


class TestGrid:
    def test_dimensions(self):
        g = grid_graph(3, 5)
        assert g.num_vertices == 15
        # internal horizontal: 3*4, vertical: 2*5, each bidirectional
        assert g.num_edges == 2 * (3 * 4 + 2 * 5)

    def test_connected(self):
        assert is_connected(grid_graph(7, 7))

    def test_corner_degree(self):
        g = grid_graph(4, 4)
        assert g.out_degree(0) == 2

    def test_invalid_dims(self):
        with pytest.raises(GraphError):
            grid_graph(0, 5)


class TestRandomModels:
    def test_erdos_renyi_determinism(self):
        a = erdos_renyi(40, 0.1, seed=5)
        b = erdos_renyi(40, 0.1, seed=5)
        assert a == b

    def test_erdos_renyi_density(self):
        g = erdos_renyi(100, 0.05, seed=1)
        expected = 100 * 99 * 0.05
        assert 0.5 * expected < g.num_edges < 1.5 * expected

    def test_erdos_renyi_bad_p(self):
        with pytest.raises(GraphError):
            erdos_renyi(10, 1.5)

    def test_random_geometric_edges_within_radius(self):
        g = random_geometric(80, 0.2, seed=2)
        coords = g.coords
        for u, v, w in g.edges():
            dist = np.linalg.norm(coords[u] - coords[v])
            assert dist <= 0.2 + 1e-9
            assert w == pytest.approx(dist)

    def test_watts_strogatz_degree_and_clustering(self):
        g = watts_strogatz(60, 6, 0.1, seed=3)
        # total degree preserved by rewiring
        assert g.num_edges == 60 * 6  # bidirectional: n*k/2 undirected
        assert is_connected(g)

    def test_watts_strogatz_validation(self):
        with pytest.raises(GraphError):
            watts_strogatz(10, 3, 0.1)  # odd k
        with pytest.raises(GraphError):
            watts_strogatz(10, 4, 1.5)

    def test_barabasi_albert_hubs(self):
        g = barabasi_albert(200, 2, seed=4)
        degrees = g.out_degrees()
        # preferential attachment produces hubs far above the median
        assert degrees.max() >= 4 * np.median(degrees)
        assert is_connected(g)

    def test_barabasi_albert_validation(self):
        with pytest.raises(GraphError):
            barabasi_albert(5, 0)
        with pytest.raises(GraphError):
            barabasi_albert(5, 5)

    def test_barabasi_albert_edge_count(self):
        g = barabasi_albert(50, 3, seed=0)
        # (n - m) vertices each add m undirected edges -> 2m(n-m) directed
        assert g.num_edges == 2 * 3 * (50 - 3)
