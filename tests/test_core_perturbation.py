"""Tests for the Figure 8 perturbation subroutine."""

import numpy as np
import pytest

from repro.core import Fragment, QcutState, perturb


def split_state(delta=0.5):
    frags = [
        Fragment(0, 0, 10, 10),
        Fragment(0, 1, 20, 20),
        Fragment(0, 2, 5, 5),
        Fragment(1, 2, 15, 15),
    ]
    return QcutState(2, 3, frags, np.array([200.0] * 3), delta=delta)


class TestPerturb:
    def test_input_state_untouched(self):
        st = split_state()
        snapshot = st.weighted.copy()
        perturb(st, np.random.default_rng(0))
        assert np.array_equal(st.weighted, snapshot)

    def test_fuses_a_split_unit(self):
        st = split_state()
        out = perturb(st, np.random.default_rng(1))
        # unit 0 was the only split unit; afterwards it occupies one worker
        assert (out.weighted[0] > 0).sum() == 1

    def test_fusion_targets_largest_scope_worker(self):
        """Step II: move to the worker with the largest local scope (w1)."""
        st = split_state(delta=5.0)  # huge delta: no rebalancing kicks in
        out = perturb(st, np.random.default_rng(2))
        assert out.weighted[0, 1] == pytest.approx(35.0)

    def test_mass_conserved(self):
        st = split_state()
        out = perturb(st, np.random.default_rng(3))
        assert out.weighted.sum() == pytest.approx(st.weighted.sum())
        assert out.union.sum() == pytest.approx(st.union.sum())

    def test_rebalances_when_needed(self):
        # small base => scope mass dominates; fusion will unbalance, step III
        # must move other mass away (or at least not leave it worse than the
        # raw fusion)
        frags = [Fragment(0, w, 30, 30) for w in range(3)] + [
            Fragment(1, 0, 30, 30),
            Fragment(2, 1, 30, 30),
            Fragment(3, 2, 30, 30),
        ]
        st = QcutState(4, 3, frags, np.array([10.0] * 3), delta=0.4)
        out = perturb(st, np.random.default_rng(4))
        raw = st.copy()
        target = int(np.argmax(raw.weighted[0]))
        for src in np.flatnonzero(raw.weighted[0] > 0):
            if int(src) != target:
                raw.apply_move(0, int(src), target)
        assert out.max_imbalance() <= raw.max_imbalance() + 1e-9

    def test_perfect_locality_still_explores(self):
        frags = [Fragment(0, 0, 10, 10), Fragment(1, 1, 10, 10)]
        st = QcutState(2, 2, frags, np.array([100.0, 100.0]), delta=0.9)
        assert st.cost() == 0.0
        out = perturb(st, np.random.default_rng(5))
        # a nudge happened: some unit changed worker
        assert not np.array_equal(out.weighted, st.weighted)

    def test_single_worker_noop(self):
        frags = [Fragment(0, 0, 10, 10)]
        st = QcutState(1, 1, frags, np.array([100.0]))
        out = perturb(st, np.random.default_rng(6))
        assert np.array_equal(out.weighted, st.weighted)

    def test_deterministic_given_rng(self):
        st = split_state()
        a = perturb(st, np.random.default_rng(42))
        b = perturb(st, np.random.default_rng(42))
        assert np.array_equal(a.weighted, b.weighted)
