"""Tests for the discrete-event simulation substrate."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulation import (
    ClusterSpec,
    EventQueue,
    MetricsTrace,
    NetworkModel,
    QueryRecord,
    RepartitionRecord,
    ethernet_1g,
    loopback_tcp,
    make_cluster,
    zero_cost,
)


class TestEventQueue:
    def test_time_order(self):
        q = EventQueue()
        q.schedule(3.0, "c")
        q.schedule(1.0, "a")
        q.schedule(2.0, "b")
        assert [q.pop().kind for _ in range(3)] == ["a", "b", "c"]

    def test_fifo_tie_break(self):
        q = EventQueue()
        q.schedule(1.0, "first")
        q.schedule(1.0, "second")
        assert q.pop().kind == "first"
        assert q.pop().kind == "second"

    def test_now_advances(self):
        q = EventQueue()
        q.schedule(5.0, "x")
        q.pop()
        assert q.now == 5.0

    def test_no_scheduling_in_past(self):
        q = EventQueue()
        q.schedule(5.0, "x")
        q.pop()
        with pytest.raises(SimulationError):
            q.schedule(4.0, "y")

    def test_cancellation(self):
        q = EventQueue()
        e = q.schedule(1.0, "dead")
        q.schedule(2.0, "alive")
        q.cancel(e)
        assert q.pop().kind == "alive"
        assert q.pop() is None

    def test_len_excludes_cancelled(self):
        q = EventQueue()
        e = q.schedule(1.0, "dead")
        q.schedule(2.0, "alive")
        q.cancel(e)
        assert len(q) == 1

    def test_cancel_after_pop_keeps_len_consistent(self):
        # regression: cancelling an already-popped event used to decrement
        # the live count a second time, corrupting __len__
        q = EventQueue()
        e = q.schedule(1.0, "x")
        q.schedule(2.0, "y")
        assert q.pop() is e
        q.cancel(e)
        assert len(q) == 1
        assert q.pop().kind == "y"
        assert len(q) == 0

    def test_double_cancel_idempotent(self):
        q = EventQueue()
        e = q.schedule(1.0, "dead")
        q.schedule(2.0, "alive")
        q.cancel(e)
        q.cancel(e)
        assert len(q) == 1
        assert q.pop().kind == "alive"
        assert q.pop() is None

    def test_cancel_then_schedule_interleaving(self):
        q = EventQueue()
        first = q.schedule(1.0, "first")
        q.cancel(first)
        q.schedule(1.0, "second")
        third = q.schedule(2.0, "third")
        assert len(q) == 2
        assert q.pop().kind == "second"
        q.cancel(third)
        q.schedule(3.0, "fourth")
        assert len(q) == 1
        assert q.pop().kind == "fourth"
        assert q.pop() is None
        assert len(q) == 0

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.schedule(7.0, "x")
        assert q.peek_time() == 7.0

    def test_payload_passthrough(self):
        q = EventQueue()
        q.schedule(1.0, "x", foo=42)
        assert q.pop().payload == {"foo": 42}


class TestNetworkModel:
    def test_batching(self):
        net = NetworkModel(latency=1e-4, bandwidth=1e8, batch_messages=32)
        assert net.num_batches(0) == 0
        assert net.num_batches(1) == 1
        assert net.num_batches(32) == 1
        assert net.num_batches(33) == 2

    def test_transfer_monotone_in_messages(self):
        net = ethernet_1g()
        times = [net.transfer_time(n) for n in (1, 10, 100, 1000)]
        assert times == sorted(times)

    def test_ethernet_slower_than_loopback(self):
        assert ethernet_1g().transfer_time(100) > loopback_tcp().transfer_time(100)
        assert ethernet_1g().control_latency > loopback_tcp().control_latency

    def test_zero_cost_free(self):
        net = zero_cost()
        assert net.transfer_time(1000) == pytest.approx(0.0, abs=1e-9)
        assert net.serialize_time(1000) == 0.0

    def test_control_rtt(self):
        net = loopback_tcp()
        assert net.control_rtt() == pytest.approx(2 * net.control_latency)

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkModel(latency=-1.0, bandwidth=1.0)
        with pytest.raises(ValueError):
            NetworkModel(latency=0.0, bandwidth=0.0)


class TestCluster:
    def test_scale_up_all_loopback(self):
        c = make_cluster("M2", 8)
        assert c.link(0, 7).name == c.intra_node.name
        assert c.node_of(5) == 0

    def test_c1_placement(self):
        c = make_cluster("C1", 8)
        assert c.num_nodes == 8
        assert c.link(0, 1) is c.inter_node
        assert c.link(0, 0) is c.intra_node

    def test_c1_nic_sharing_at_16_workers(self):
        c8 = make_cluster("C1", 8)
        c16 = make_cluster("C1", 16)
        # workers 0 and 8 share node 0 -> loopback; 0 and 1 cross nodes
        assert c16.node_of(0) == c16.node_of(8)
        assert c16.link(0, 8) is c16.intra_node
        # shared NIC halves the effective bandwidth
        assert c16.inter_node.bandwidth < c8.inter_node.bandwidth

    def test_controller_link(self):
        c = make_cluster("C1", 4)
        assert c.controller_link(0) is c.intra_node
        assert c.controller_link(1) is c.inter_node

    def test_unknown_kind(self):
        with pytest.raises(SimulationError):
            make_cluster("Z9", 4)

    def test_worker_bounds(self):
        c = make_cluster("M1", 2)
        with pytest.raises(SimulationError):
            c.node_of(5)

    def test_invalid_spec(self):
        from repro.simulation.cluster import M1

        with pytest.raises(SimulationError):
            ClusterSpec(num_workers=0, machine=M1)


class TestMetricsTrace:
    def make_trace(self):
        t = MetricsTrace(workload_bucket=1.0)
        t.query_started(1, "sssp", 0.0, "p1")
        t.iteration_executed(1, 1)
        t.iteration_executed(1, 3)
        t.query_finished(1, 4.0)
        t.query_started(2, "sssp", 1.0, "p2")
        t.iteration_executed(2, 1)
        t.query_finished(2, 2.0)
        return t

    def test_latency_and_locality(self):
        t = self.make_trace()
        rec = t.queries[1]
        assert rec.latency == pytest.approx(4.0)
        assert rec.locality == pytest.approx(0.5)

    def test_aggregates(self):
        t = self.make_trace()
        assert t.total_latency() == pytest.approx(5.0)
        assert t.mean_latency() == pytest.approx(2.5)
        assert t.makespan() == pytest.approx(4.0)
        assert t.mean_locality() == pytest.approx(0.75)

    def test_phase_filter(self):
        t = self.make_trace()
        assert t.total_latency(phase="p1") == pytest.approx(4.0)
        assert t.total_latency(phase="p2") == pytest.approx(1.0)

    def test_unfinished_query_excluded(self):
        t = self.make_trace()
        t.query_started(3, "sssp", 0.0, "p1")
        assert len(t.finished_queries()) == 2

    def test_latency_series(self):
        t = self.make_trace()
        times, values = t.latency_series(window=2.5)
        assert len(times) == len(values) == 2

    def test_workload_imbalance(self):
        t = MetricsTrace(workload_bucket=1.0)
        t.vertices_executed(0, 0.5, 100)
        t.vertices_executed(1, 0.5, 100)
        times, series = t.workload_imbalance_series(2)
        assert series[0] == pytest.approx(0.0)
        t.vertices_executed(0, 1.5, 200)
        _, series = t.workload_imbalance_series(2)
        assert series[-1] == pytest.approx(1.0)  # all load on one worker

    def test_repartition_records(self):
        t = self.make_trace()
        t.repartitioned(
            RepartitionRecord(
                time=1.0,
                moved_vertices=10,
                num_moves=2,
                barrier_duration=0.1,
                cost_before=100,
                cost_after=10,
            )
        )
        assert len(t.repartitions) == 1


class TestWindowedSeriesEquivalence:
    """The vectorized searchsorted bucketing must match the former
    per-window rescan loop (which it replaced for being O(windows x
    queries) and accumulating ``start += window`` float drift)."""

    @staticmethod
    def _reference_series(records, window, value_of, phase=None):
        finished = sorted(
            (q for q in records if phase is None or q.phase == phase),
            key=lambda q: q.end_time,
        )
        if not finished:
            return np.empty(0), np.empty(0)
        t_end = finished[-1].end_time
        times, values = [], []
        start = 0.0
        while start <= t_end:
            bucket = [
                value_of(q) for q in finished if start <= q.end_time < start + window
            ]
            if bucket:
                times.append(start + window)
                values.append(float(np.mean(bucket)))
            start += window
        return np.asarray(times), np.asarray(values)

    def _random_trace(self, seed, num_queries=200):
        rng = np.random.default_rng(seed)
        t = MetricsTrace()
        for qid in range(num_queries):
            start = float(rng.uniform(0, 50))
            t.query_started(qid, "sssp", start, phase="a" if qid % 3 else "b")
            for _ in range(int(rng.integers(1, 6))):
                t.iteration_executed(qid, int(rng.integers(1, 4)))
            t.query_finished(qid, start + float(rng.uniform(0.01, 10)))
        return t

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("window", [0.7, 2.5, 13.0])
    def test_latency_series_matches_reference(self, seed, window):
        t = self._random_trace(seed)
        for phase in (None, "a", "b"):
            times, values = t.latency_series(window, phase=phase)
            ref_t, ref_v = self._reference_series(
                t.finished_queries(), window, lambda q: q.latency, phase
            )
            np.testing.assert_allclose(times, ref_t, rtol=0, atol=1e-9)
            np.testing.assert_allclose(values, ref_v, rtol=1e-12)

    @pytest.mark.parametrize("seed", [3, 4])
    def test_locality_series_matches_reference(self, seed):
        t = self._random_trace(seed)
        times, values = t.locality_series(1.3)
        ref_t, ref_v = self._reference_series(
            t.finished_queries(), 1.3, lambda q: q.locality
        )
        np.testing.assert_allclose(times, ref_t, rtol=0, atol=1e-9)
        np.testing.assert_allclose(values, ref_v, rtol=1e-12)

    def test_end_time_on_window_edge(self):
        t = MetricsTrace()
        for qid, end in enumerate([0.0, 2.5, 5.0]):
            t.query_started(qid, "sssp", 0.0, "p")
            t.query_finished(qid, end)
        times, values = t.latency_series(2.5)
        # ends exactly on edges fall into the *following* window
        np.testing.assert_allclose(times, [2.5, 5.0, 7.5])
        np.testing.assert_allclose(values, [0.0, 2.5, 5.0])

    def test_empty_trace(self):
        t = MetricsTrace()
        times, values = t.latency_series(1.0)
        assert times.size == 0 and values.size == 0


class TestImbalanceSeriesEquivalence:
    """The one-bincount imbalance series must match the former per-bucket
    dict rescan (replaced for being O(buckets x workers) dict lookups)."""

    @staticmethod
    def _reference(trace, num_workers):
        """The pre-vectorization loop, verbatim."""
        if not trace._workload:
            return np.empty(0), np.empty(0)
        buckets = sorted({b for (_, b) in trace._workload})
        times, values = [], []
        for b in buckets:
            loads = np.array(
                [trace._workload.get((w, b), 0) for w in range(num_workers)],
                dtype=np.float64,
            )
            mean = loads.mean()
            if mean <= 0:
                continue
            times.append((b + 1) * trace.workload_bucket)
            values.append(float(np.mean(np.abs(loads - mean)) / mean))
        return np.asarray(times), np.asarray(values)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("num_workers", [1, 4, 8])
    def test_matches_reference(self, seed, num_workers):
        rng = np.random.default_rng(seed)
        t = MetricsTrace(workload_bucket=0.5)
        for _ in range(300):
            worker = int(rng.integers(0, num_workers))
            time = float(rng.uniform(0.0, 20.0))
            t.vertices_executed(worker, time, int(rng.integers(1, 50)))
        ref_times, ref_vals = self._reference(t, num_workers)
        vec_times, vec_vals = t.workload_imbalance_series(num_workers)
        np.testing.assert_allclose(vec_times, ref_times)
        np.testing.assert_allclose(vec_vals, ref_vals)

    def test_sparse_buckets_match_reference(self):
        t = MetricsTrace(workload_bucket=1.0)
        t.vertices_executed(0, 0.5, 10)     # bucket 0, only worker 0
        t.vertices_executed(2, 100.5, 30)   # distant bucket, only worker 2
        ref = self._reference(t, 4)
        vec = t.workload_imbalance_series(4)
        np.testing.assert_allclose(vec[0], ref[0])
        np.testing.assert_allclose(vec[1], ref[1])

    def test_empty_matches_reference(self):
        t = MetricsTrace()
        times, vals = t.workload_imbalance_series(3)
        assert times.size == 0 and vals.size == 0

    def test_mean_imbalance_unchanged(self):
        t = MetricsTrace(workload_bucket=1.0)
        t.vertices_executed(0, 0.5, 100)
        t.vertices_executed(1, 1.5, 100)
        ref_times, ref_vals = self._reference(t, 2)
        assert t.mean_workload_imbalance(2) == pytest.approx(float(ref_vals.mean()))
