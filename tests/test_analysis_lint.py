"""repro-lint: rule catalog, suppressions, reporters, CLI, repo self-check.

Every rule gets at least one positive fixture (the violation fires) and one
negative fixture (idiomatic code stays clean), plus role-scoping checks —
e.g. wall-clock reads are legal in the bench harness but not in library
code.  The final test lints the actual repository, which is the same gate
CI runs: the tree must be clean at HEAD.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    Violation,
    all_project_rules,
    all_rules,
    lint_paths,
    lint_source,
    render_json,
    render_text,
)
from repro.analysis.cli import main as lint_main
from repro.analysis.visitor import infer_role

REPO_ROOT = Path(__file__).resolve().parent.parent


def rules_of(findings):
    return [v.rule for v in findings]


# ----------------------------------------------------------------------
# module-rng
# ----------------------------------------------------------------------
class TestModuleRng:
    def test_random_module_call_flagged(self):
        src = "import random\nrandom.shuffle(order)\n"
        assert rules_of(lint_source(src)) == ["module-rng"]

    def test_np_random_global_flagged(self):
        src = "import numpy as np\nx = np.random.rand(4)\n"
        assert rules_of(lint_source(src)) == ["module-rng"]

    def test_from_import_alias_flagged(self):
        src = "from random import shuffle as sh\nsh(order)\n"
        assert rules_of(lint_source(src)) == ["module-rng"]

    def test_numpy_random_submodule_alias_flagged(self):
        src = "from numpy import random\nrandom.normal(0, 1)\n"
        assert rules_of(lint_source(src)) == ["module-rng"]

    def test_default_rng_constructor_allowed(self):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng(7)\n"
            "x = rng.shuffle(order)\n"
        )
        assert lint_source(src) == []

    def test_unrelated_module_not_resolved(self):
        src = "import mylib\nmylib.random(3)\n"
        assert lint_source(src) == []

    def test_exempt_in_bench_role(self):
        src = "import random\nrandom.shuffle(order)\n"
        assert lint_source(src, role="bench") == []


# ----------------------------------------------------------------------
# wall-clock
# ----------------------------------------------------------------------
class TestWallClock:
    def test_perf_counter_flagged(self):
        src = "import time\nt = time.perf_counter()\n"
        assert rules_of(lint_source(src)) == ["wall-clock"]

    def test_from_import_flagged(self):
        src = "from time import monotonic\nt = monotonic()\n"
        assert rules_of(lint_source(src)) == ["wall-clock"]

    def test_datetime_now_flagged(self):
        src = "from datetime import datetime\nstamp = datetime.now()\n"
        assert rules_of(lint_source(src)) == ["wall-clock"]

    def test_bench_role_exempt(self):
        src = "import time\nt = time.perf_counter()\n"
        assert lint_source(src, role="bench") == []

    def test_virtual_time_untouched(self):
        src = "t = queue.now\nother = engine.now\n"
        assert lint_source(src) == []


# ----------------------------------------------------------------------
# csr-mutation
# ----------------------------------------------------------------------
class TestCsrMutation:
    def test_subscript_write_through_view(self):
        src = "view = graph.csr()\nview.weights[0] = 1.0\n"
        assert rules_of(lint_source(src)) == ["csr-mutation"]

    def test_augassign_through_view(self):
        src = "view = graph.csr_in()\nview.indices[i] += 1\n"
        assert rules_of(lint_source(src)) == ["csr-mutation"]

    def test_direct_chained_write(self):
        src = "graph.csr().weights[:] = 0.0\n"
        assert rules_of(lint_source(src)) == ["csr-mutation"]

    def test_tuple_unpacked_arrays_tracked(self):
        src = (
            "indptr, indices, weights = graph.csr()\n"
            "weights.sort()\n"
        )
        assert rules_of(lint_source(src)) == ["csr-mutation"]

    def test_mutator_method_on_view_array(self):
        src = "view = g.csr()\nview.weights.fill(0.0)\n"
        assert rules_of(lint_source(src)) == ["csr-mutation"]

    def test_copy_before_mutation_allowed(self):
        src = (
            "view = graph.csr()\n"
            "weights = view.weights.copy()\n"
            "weights[0] = 1.0\n"
        )
        assert lint_source(src) == []

    def test_reads_allowed(self):
        src = (
            "view = graph.csr()\n"
            "deg = view.indptr[v + 1] - view.indptr[v]\n"
            "targets = view.indices[lo:hi]\n"
        )
        assert lint_source(src) == []

    def test_nested_function_inherits_bindings(self):
        src = (
            "view = graph.csr()\n"
            "def inner():\n"
            "    view.weights[0] = 1.0\n"
        )
        assert rules_of(lint_source(src)) == ["csr-mutation"]


# ----------------------------------------------------------------------
# bare-assert / mutable-default
# ----------------------------------------------------------------------
class TestBareAssertAndDefaults:
    def test_assert_flagged_in_src(self):
        src = "def f(x):\n    assert x > 0\n"
        assert rules_of(lint_source(src)) == ["bare-assert"]

    def test_assert_fine_in_tests(self):
        src = "def test_f():\n    assert 1 + 1 == 2\n"
        assert lint_source(src, role="tests") == []

    def test_mutable_default_list(self):
        src = "def f(items=[]):\n    return items\n"
        assert rules_of(lint_source(src)) == ["mutable-default"]

    def test_mutable_default_factory_call(self):
        src = "def f(cache=dict()):\n    return cache\n"
        assert rules_of(lint_source(src)) == ["mutable-default"]

    def test_mutable_default_flagged_in_tests_too(self):
        src = "def helper(acc=[]):\n    return acc\n"
        assert rules_of(lint_source(src, role="tests")) == ["mutable-default"]

    def test_none_default_allowed(self):
        src = "def f(items=None):\n    return items or []\n"
        assert lint_source(src) == []


# ----------------------------------------------------------------------
# unordered-iteration
# ----------------------------------------------------------------------
class TestUnorderedIteration:
    def test_set_literal_feeding_schedule(self):
        src = (
            "for w in {1, 2, 3}:\n"
            "    queue.schedule(now, 'compute', w)\n"
        )
        assert rules_of(lint_source(src)) == ["unordered-iteration"]

    def test_annotated_set_attribute_flagged(self):
        src = (
            "from typing import Set\n"
            "class Engine:\n"
            "    def __init__(self) -> None:\n"
            "        self.involved: Set[int] = set()\n"
            "    def kick(self, now: float) -> None:\n"
            "        for w in self.involved:\n"
            "            self.queue.schedule(now, 'compute', w)\n"
        )
        assert "unordered-iteration" in rules_of(lint_source(src))

    def test_sorted_iteration_allowed(self):
        src = (
            "for w in sorted({1, 2, 3}):\n"
            "    queue.schedule(now, 'compute', w)\n"
        )
        assert lint_source(src) == []

    def test_set_loop_without_event_submission_allowed(self):
        src = "total = 0\nfor w in {1, 2, 3}:\n    total += w\n"
        assert lint_source(src) == []


# ----------------------------------------------------------------------
# shadow-builtin
# ----------------------------------------------------------------------
class TestShadowBuiltin:
    def test_assignment_shadow_flagged(self):
        src = "id = compute_id()\n"
        assert rules_of(lint_source(src)) == ["shadow-builtin"]

    def test_parameter_shadow_flagged(self):
        src = "def f(type):\n    return type\n"
        assert rules_of(lint_source(src)) == ["shadow-builtin"]

    def test_ordinary_names_allowed(self):
        src = "query_id = 7\ndef f(kind):\n    return kind\n"
        assert lint_source(src) == []


# ----------------------------------------------------------------------
# swallowed-error
# ----------------------------------------------------------------------
class TestSwallowedError:
    def test_bare_except_pass_flagged(self):
        src = "try:\n    work()\nexcept:\n    pass\n"
        assert rules_of(lint_source(src)) == ["swallowed-error"]

    def test_except_exception_pass_flagged(self):
        src = "try:\n    work()\nexcept Exception:\n    pass\n"
        assert rules_of(lint_source(src)) == ["swallowed-error"]

    def test_tuple_containing_exception_flagged(self):
        src = "try:\n    work()\nexcept (KeyError, Exception):\n    pass\n"
        assert rules_of(lint_source(src)) == ["swallowed-error"]

    def test_docstring_and_ellipsis_body_flagged(self):
        src = (
            "try:\n"
            "    work()\n"
            "except BaseException:\n"
            "    '''nothing to do'''\n"
            "    ...\n"
        )
        assert rules_of(lint_source(src)) == ["swallowed-error"]

    def test_narrow_handler_allowed(self):
        src = "try:\n    work()\nexcept KeyError:\n    pass\n"
        assert lint_source(src) == []

    def test_broad_handler_with_real_handling_allowed(self):
        src = (
            "try:\n"
            "    work()\n"
            "except Exception:\n"
            "    failures += 1\n"
            "    raise\n"
        )
        assert lint_source(src) == []

    def test_tests_role_exempt(self):
        src = "try:\n    work()\nexcept Exception:\n    pass\n"
        assert lint_source(src, role="tests") == []


# ----------------------------------------------------------------------
# untyped-def
# ----------------------------------------------------------------------
class TestUntypedDef:
    def test_missing_annotations_in_typed_package(self):
        src = "def f(x, y):\n    return x + y\n"
        findings = lint_source(src, path="src/repro/engine/foo.py")
        assert rules_of(findings) == ["untyped-def"]
        assert "x, y, return" in findings[0].message

    def test_self_exempt(self):
        src = (
            "class C:\n"
            "    def method(self, x: int) -> int:\n"
            "        return x\n"
        )
        assert lint_source(src, path="src/repro/core/foo.py") == []

    def test_fully_annotated_clean(self):
        src = "def f(x: int, y: int) -> int:\n    return x + y\n"
        assert lint_source(src, path="src/repro/engine/foo.py") == []

    def test_packages_outside_gate_exempt(self):
        src = "def f(x, y):\n    return x + y\n"
        assert lint_source(src, path="src/repro/workload/foo.py") == []


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------
class TestSuppressions:
    def test_line_suppression_with_reason(self):
        src = (
            "import time\n"
            "t = time.perf_counter()  "
            "# repro-lint: disable=wall-clock -- opt-in budget knob\n"
        )
        assert lint_source(src) == []

    def test_suppression_without_reason_is_itself_flagged(self):
        # the marker is concatenated so this fixture doesn't read as a real
        # (malformed) suppression when the repo lints its own test files
        src = (
            "import time\n"
            "t = time.perf_counter()  # repro-"
            + "lint: disable=wall-clock\n"
        )
        assert sorted(rules_of(lint_source(src))) == [
            "suppression-format",
            "wall-clock",
        ]

    def test_file_suppression(self):
        src = (
            "# repro-lint: disable-file=bare-assert -- legacy module, "
            "tracked in ISSUE 7\n"
            "def f(x):\n"
            "    assert x\n"
            "    assert x > 1\n"
        )
        assert lint_source(src) == []

    def test_disable_all_on_line(self):
        src = (
            "import time\n"
            "assert time.time()  # repro-lint: disable=all -- fixture\n"
        )
        assert lint_source(src) == []

    def test_suppression_only_covers_its_line(self):
        src = (
            "import time\n"
            "a = time.time()  # repro-lint: disable=wall-clock -- fixture\n"
            "b = time.time()\n"
        )
        findings = lint_source(src)
        assert rules_of(findings) == ["wall-clock"]
        assert findings[0].line == 3

    def test_suppressing_other_rule_does_not_hide(self):
        src = (
            "import time\n"
            "t = time.time()  # repro-lint: disable=bare-assert -- wrong rule\n"
        )
        assert rules_of(lint_source(src)) == ["wall-clock"]


# ----------------------------------------------------------------------
# framework: roles, select, reporters
# ----------------------------------------------------------------------
class TestFramework:
    def test_role_inference(self):
        assert infer_role(Path("tests/test_engine_basics.py")) == "tests"
        assert infer_role(Path("test_something.py")) == "tests"
        assert infer_role(Path("benchmarks/bench_engine.py")) == "bench"
        assert infer_role(Path("examples/demo.py")) == "bench"
        assert infer_role(Path("src/repro/bench/harness.py")) == "bench"
        assert infer_role(Path("src/repro/engine/engine.py")) == "src"

    def test_select_restricts_rules(self):
        src = "import time\nassert time.time()\n"
        only_assert = lint_source(src, select=["bare-assert"])
        assert rules_of(only_assert) == ["bare-assert"]

    def test_catalog_is_complete(self):
        names = set(all_rules())
        assert names == {
            "module-rng",
            "wall-clock",
            "csr-mutation",
            "bare-assert",
            "mutable-default",
            "unordered-iteration",
            "shadow-builtin",
            "swallowed-error",
            "untyped-def",
        }
        for rule in all_rules().values():
            assert rule.description
        # the whole-program registry is separate and must never collide
        # with a per-file rule name (the CLI catalog is their union)
        assert not names & set(all_project_rules())

    def test_violations_sorted_by_location(self):
        src = "import time\nb = time.time()\na = time.time()\n"
        findings = lint_source(src)
        assert [v.line for v in findings] == [2, 3]

    def test_render_text_clean_and_dirty(self):
        assert render_text([]) == "repro-lint: clean"
        v = Violation("wall-clock", "a.py", 3, 0, "boom")
        out = render_text([v, v])
        assert "a.py:3:0: wall-clock: boom" in out
        assert "2 violation(s) (wall-clock: 2)" in out

    def test_render_json_summary(self):
        v = Violation("bare-assert", "a.py", 1, 4, "boom")
        payload = json.loads(render_json([v]))
        assert payload["summary"] == {"total": 1, "by_rule": {"bare-assert": 1}}
        assert payload["violations"][0]["path"] == "a.py"
        assert json.loads(render_json([])) == {
            "violations": [],
            "summary": {"total": 0, "by_rule": {}},
        }


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "wall-clock" in out and "untyped-def" in out

    def test_dirty_file_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "mod.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nt = time.time()\n")
        assert lint_main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "wall-clock" in out

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        good = tmp_path / "mod.py"
        good.write_text("x = 1\n")
        assert lint_main([str(good)]) == 0
        assert "repro-lint: clean" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        bad = tmp_path / "mod.py"
        bad.write_text("def f(items=[]):\n    return items\n")
        assert lint_main(["--format", "json", str(bad)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["by_rule"] == {"mutable-default": 1}

    def test_unknown_rule_is_usage_error(self, tmp_path, capsys):
        good = tmp_path / "mod.py"
        good.write_text("x = 1\n")
        assert lint_main(["--select", "no-such-rule", str(good)]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "absent.py")]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_select_filters(self, tmp_path):
        bad = tmp_path / "mod.py"
        bad.write_text("import time\nt = time.time()\n")
        assert lint_main(["--select", "bare-assert", str(bad)]) == 0


# ----------------------------------------------------------------------
# the repository itself must be clean (the CI gate)
# ----------------------------------------------------------------------
def test_repository_is_lint_clean():
    findings = lint_paths(
        [
            REPO_ROOT / "src",
            REPO_ROOT / "tests",
            REPO_ROOT / "benchmarks",
            REPO_ROOT / "examples",
        ],
        root=REPO_ROOT,
    )
    assert findings == [], render_text(findings)
