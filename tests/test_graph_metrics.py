"""Tests for partitioning-quality metrics."""

import numpy as np
import pytest

from repro.errors import PartitioningError
from repro.graph import (
    GraphBuilder,
    edge_balance,
    edge_cut,
    grid_graph,
    partition_sizes,
    replication_factor,
    vertex_balance,
    vertex_cut,
)


def path_graph(n):
    b = GraphBuilder(n)
    for i in range(n - 1):
        b.add_bidirectional_edge(i, i + 1, 1.0)
    return b.build()


class TestEdgeCut:
    def test_no_cut_single_partition(self):
        g = path_graph(6)
        assert edge_cut(g, np.zeros(6, dtype=int)) == 0

    def test_path_split_in_middle(self):
        g = path_graph(6)
        assignment = np.array([0, 0, 0, 1, 1, 1])
        assert edge_cut(g, assignment) == 2  # one undirected edge = 2 directed

    def test_alternating_assignment(self):
        g = path_graph(4)
        assignment = np.array([0, 1, 0, 1])
        assert edge_cut(g, assignment) == 6  # all 3 undirected edges cut

    def test_bad_shape(self):
        g = path_graph(4)
        with pytest.raises(PartitioningError):
            edge_cut(g, np.zeros(3, dtype=int))


class TestVertexCut:
    def test_no_boundary(self):
        g = path_graph(5)
        assert vertex_cut(g, np.zeros(5, dtype=int)) == 0

    def test_boundary_vertices_counted(self):
        g = path_graph(6)
        assignment = np.array([0, 0, 0, 1, 1, 1])
        assert vertex_cut(g, assignment) == 2  # vertices 2 and 3


class TestBalance:
    def test_perfect_balance(self):
        g = grid_graph(4, 4)
        assignment = np.repeat(np.arange(4), 4)
        assert vertex_balance(g, assignment, 4) == pytest.approx(1.0)
        assert partition_sizes(g, assignment, 4).tolist() == [4, 4, 4, 4]

    def test_imbalance(self):
        g = path_graph(8)
        assignment = np.array([0] * 6 + [1] * 2)
        assert vertex_balance(g, assignment, 2) == pytest.approx(6 / 4)

    def test_edge_balance(self):
        g = path_graph(4)
        assignment = np.array([0, 0, 1, 1])
        assert edge_balance(g, assignment, 2) == pytest.approx(1.0)

    def test_assignment_beyond_k(self):
        g = path_graph(4)
        with pytest.raises(PartitioningError):
            partition_sizes(g, np.array([0, 1, 2, 5]), 3)


class TestReplication:
    def test_single_partition_replication_is_one(self):
        g = path_graph(5)
        assert replication_factor(g, np.zeros(5, dtype=int)) == pytest.approx(1.0)

    def test_split_increases_replication(self):
        g = path_graph(4)
        assignment = np.array([0, 0, 1, 1])
        assert replication_factor(g, assignment) > 1.0
