"""Property-based tests (hypothesis) for core data structures and invariants."""

import heapq

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Fragment, QcutState, iterated_local_search, local_search
from repro.core.clustering import cluster_queries
from repro.core.cost import assignment_cost
from repro.core.perturbation import perturb
from repro.engine import EngineConfig, QGraphEngine, Query
from repro.core import Controller
from repro.graph import GraphBuilder
from repro.partitioning import HashPartitioner
from repro.queries import SsspProgram
from repro.simulation.cluster import make_cluster
from repro.simulation.network import NetworkModel

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

@st.composite
def qcut_states(draw):
    k = draw(st.integers(min_value=2, max_value=5))
    num_units = draw(st.integers(min_value=1, max_value=6))
    frags = []
    for u in range(num_units):
        workers = draw(
            st.sets(st.integers(0, k - 1), min_size=1, max_size=k)
        )
        for w in workers:
            union = draw(st.integers(min_value=1, max_value=30))
            extra = draw(st.integers(min_value=0, max_value=20))
            frags.append(Fragment(u, w, union, union + extra))
    base = np.array(
        draw(
            st.lists(
                st.floats(min_value=50.0, max_value=500.0),
                min_size=k,
                max_size=k,
            )
        )
    )
    delta = draw(st.floats(min_value=0.1, max_value=0.9))
    return QcutState(num_units, k, frags, base, delta=delta)


@st.composite
def small_digraphs(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.floats(min_value=0.1, max_value=10.0),
            ),
            min_size=1,
            max_size=40,
        )
    )
    b = GraphBuilder(n)
    for u, v, w in edges:
        if u != v:
            b.add_edge(u, v, w)
    return b.build()


def dijkstra(graph, source):
    dist = {source: 0.0}
    heap = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist.get(u, np.inf):
            continue
        lo, hi = graph.indptr[u], graph.indptr[u + 1]
        for i in range(lo, hi):
            v = int(graph.indices[i])
            nd = d + float(graph.weights[i])
            if nd < dist.get(v, np.inf):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


# ----------------------------------------------------------------------
# QcutState invariants
# ----------------------------------------------------------------------

class TestQcutStateProperties:
    @given(qcut_states())
    @settings(max_examples=50, deadline=None)
    def test_mass_conserved_by_local_search(self, state):
        before_w = state.weighted.sum()
        before_u = state.union.sum()
        out = local_search(state.copy())
        assert out.weighted.sum() == pytest.approx(before_w)
        assert out.union.sum() == pytest.approx(before_u)

    @given(qcut_states())
    @settings(max_examples=50, deadline=None)
    def test_local_search_never_increases_cost(self, state):
        before = state.cost()
        out = local_search(state.copy())
        assert out.cost() <= before + 1e-9

    @given(qcut_states())
    @settings(max_examples=50, deadline=None)
    def test_cost_nonnegative(self, state):
        assert state.cost() >= 0.0

    @given(qcut_states(), st.integers(0, 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_perturb_conserves_mass(self, state, seed):
        rng = np.random.default_rng(seed)
        out = perturb(state, rng)
        assert out.weighted.sum() == pytest.approx(state.weighted.sum())
        assert out.union.sum() == pytest.approx(state.union.sum())

    @given(qcut_states(), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_ils_best_cost_never_above_initial_after_descent(self, state, seed):
        res = iterated_local_search(state, max_rounds=5, seed=seed)
        descended = local_search(state.copy()).cost()
        assert res.best_cost <= descended + 1e-9

    @given(qcut_states())
    @settings(max_examples=50, deadline=None)
    def test_placement_matches_matrices(self, state):
        out = local_search(state.copy())
        rebuilt_w = np.zeros_like(out.weighted)
        rebuilt_u = np.zeros_like(out.union)
        for (unit, origin), current in out.placement.items():
            union, weighted = out.fragment_sizes[(unit, origin)]
            rebuilt_w[unit, current] += weighted
            rebuilt_u[unit, current] += union
        assert np.allclose(rebuilt_w, out.weighted)
        assert np.allclose(rebuilt_u, out.union)


# ----------------------------------------------------------------------
# clustering invariants
# ----------------------------------------------------------------------

class TestClusteringProperties:
    @given(
        st.lists(st.integers(0, 100), min_size=1, max_size=25, unique=True),
        st.integers(min_value=1, max_value=10),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_cluster_count_bounded(self, ids, max_clusters, seed):
        overlaps = {
            (a, b): (a + b) % 7 + 1
            for i, a in enumerate(ids)
            for b in ids[i + 1 :]
            if (a + b) % 3 == 0
        }
        labels = cluster_queries(ids, overlaps, max_clusters, seed=seed)
        assert set(labels) == set(ids)
        assert len(set(labels.values())) <= max(max_clusters, 1)

    @given(st.lists(st.integers(0, 50), min_size=2, max_size=15, unique=True))
    @settings(max_examples=40, deadline=None)
    def test_labels_dense_range(self, ids):
        labels = cluster_queries(ids, {}, len(ids))
        values = set(labels.values())
        assert values == set(range(len(values)))


# ----------------------------------------------------------------------
# engine-level: SSSP correctness on arbitrary graphs
# ----------------------------------------------------------------------

class TestEngineProperties:
    @given(small_digraphs(), st.integers(0, 2**31 - 1))
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_sssp_matches_dijkstra(self, graph, seed):
        rng = np.random.default_rng(seed)
        source = int(rng.integers(0, graph.num_vertices))
        k = min(2, graph.num_vertices)
        assignment = HashPartitioner(seed=seed).partition(graph, k)
        eng = QGraphEngine(
            graph,
            make_cluster("M2", k),
            assignment,
            controller=Controller(k),
            config=EngineConfig(adaptive=False),
        )
        eng.submit(Query(0, SsspProgram(source), (source,)))
        eng.run()
        got = eng.query_result(0)["distances"]
        want = dijkstra(graph, source)
        assert set(got) == set(want)
        for v, d in want.items():
            assert got[v] == pytest.approx(d, rel=1e-9)


# ----------------------------------------------------------------------
# network model invariants
# ----------------------------------------------------------------------

class TestNetworkProperties:
    @given(
        st.floats(min_value=0.0, max_value=1e-2),
        st.floats(min_value=1e6, max_value=1e10),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_transfer_time_monotone(self, latency, bandwidth, n):
        net = NetworkModel(latency=latency, bandwidth=bandwidth)
        assert net.transfer_time(n) <= net.transfer_time(n + 1) + 1e-12
        assert net.transfer_time(n) >= 0.0

    @given(st.integers(min_value=1, max_value=100_000))
    @settings(max_examples=60, deadline=None)
    def test_batches_cover_messages(self, n):
        net = NetworkModel(latency=1e-4, bandwidth=1e8, batch_messages=32)
        batches = net.num_batches(n)
        assert (batches - 1) * 32 < n <= batches * 32


# ----------------------------------------------------------------------
# assignment_cost consistency with the state-level cost
# ----------------------------------------------------------------------

class TestCostConsistency:
    @given(
        st.lists(
            st.sets(st.integers(0, 30), min_size=1, max_size=10),
            min_size=1,
            max_size=6,
        ),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_zero_cost_iff_every_query_on_one_worker(self, scopes_list, seed):
        scopes = {i: s for i, s in enumerate(scopes_list)}
        rng = np.random.default_rng(seed)
        k = 3
        assignment = rng.integers(0, k, size=31)
        cost = assignment_cost(scopes, assignment, k)
        split = any(
            len({int(assignment[v]) for v in scope}) > 1
            for scope in scopes.values()
        )
        if split:
            assert cost > 0
        else:
            assert cost == 0.0
