"""Admission scheduler tests: policy behavior, fifo equivalence, invariants."""

from collections import deque

import numpy as np
import pytest

from repro.core import Controller
from repro.engine import (
    EngineConfig,
    FifoScheduler,
    LocalityScheduler,
    PhaseRoundRobinScheduler,
    QGraphEngine,
    Query,
    ShortestScopeScheduler,
    SyncMode,
    make_scheduler,
    predicted_work,
)
from repro.errors import EngineError
from repro.graph import grid_graph
from repro.partitioning import HashPartitioner
from repro.queries import BfsProgram, KHopProgram, SsspProgram
from repro.simulation.cluster import make_cluster


def build_engine(graph, k=2, engine_cls=QGraphEngine, **cfg):
    assignment = HashPartitioner(seed=0).partition(graph, k)
    return engine_cls(
        graph,
        make_cluster("M2", k),
        assignment,
        controller=Controller(k),
        config=EngineConfig(adaptive=cfg.pop("adaptive", False), **cfg),
    )


def q(qid, start=0, target=None, phase="default"):
    return Query(qid, BfsProgram(start, target), (start,), phase=phase)


# ----------------------------------------------------------------------
# unit: policy ordering
# ----------------------------------------------------------------------
class TestPolicies:
    def test_fifo_order(self):
        s = FifoScheduler()
        for i in range(5):
            s.add(q(i, start=i))
        assert [s.pop().query_id for _ in range(5)] == [0, 1, 2, 3, 4]
        assert s.pop() is None

    def test_locality_balances_cohorts_across_home_workers(self):
        # vertices 0..9, even -> worker 0, odd -> worker 1
        assignment = np.arange(10, dtype=np.int64) % 2
        s = LocalityScheduler(assignment)
        # interleaved arrivals: w1, w0, w1, w0, w0
        for qid, start in enumerate([1, 2, 3, 4, 6]):
            s.add(q(qid, start=start))
        homes = []
        while s:
            query = s.pop()
            s.on_query_started(query)  # what the engine does on admission
            homes.append(int(assignment[query.initial_vertices[0]]))
        # admissions alternate between home workers (fewest in-flight first,
        # ties to the largest bucket), never drain one worker's bucket while
        # the other is idle
        assert homes == [0, 1, 0, 1, 0]

    def test_locality_prefers_idle_home_workers(self):
        assignment = np.arange(10, dtype=np.int64) % 2
        s = LocalityScheduler(assignment)
        # three queries already running on worker 0, none on worker 1
        for qid, start in enumerate([0, 2, 4]):
            running = q(qid, start=start)
            s.on_query_started(running)
        s.add(q(10, start=6))   # home worker 0
        s.add(q(11, start=1))   # home worker 1
        assert s.pop().query_id == 11  # worker 1 is idle -> admit its cohort

    def test_locality_fifo_within_bucket(self):
        assignment = np.zeros(10, dtype=np.int64)
        s = LocalityScheduler(assignment)
        for qid in range(4):
            s.add(q(qid, start=qid))
        assert [s.pop().query_id for _ in range(4)] == [0, 1, 2, 3]

    def test_locality_rebuckets_on_assignment_change(self):
        assignment = np.zeros(10, dtype=np.int64)
        s = LocalityScheduler(assignment)
        for qid, start in enumerate([0, 1, 2, 3]):
            s.add(q(qid, start=start))
        moved = assignment.copy()
        moved[[1, 3]] = 1  # vertices 1 and 3 re-homed to worker 1
        s.on_assignment_changed(moved)
        order, homes = [], []
        while s:
            query = s.pop()
            order.append(query.query_id)
            homes.append(int(moved[query.initial_vertices[0]]))
        # buckets follow the *new* assignment: admissions alternate between
        # the two home workers, FIFO within each bucket
        assert order == [0, 1, 2, 3]
        assert homes == [0, 1, 0, 1]
        assert s.pop() is None

    def test_locality_rehomes_inflight_counts_on_assignment_change(self):
        assignment = np.zeros(10, dtype=np.int64)
        s = LocalityScheduler(assignment)
        running = q(0, start=0)  # home worker 0 under the old assignment
        s.on_query_started(running)
        moved = assignment.copy()
        moved[0] = 1  # the running query's start vertex moves to worker 1
        s.on_assignment_changed(moved)
        s.add(q(1, start=1))  # home worker 0 (vertex 1 stayed)
        s.add(q(2, start=0))  # home worker 1 under the new assignment
        # worker 1 now hosts the running query's scope -> admit worker 0 first
        assert s.pop().query_id == 1
        s.on_query_finished(running)  # decrements the *re-homed* count
        assert s._inflight[1] == 0

    def test_shortest_scope_prefers_cheap_queries(self):
        s = ShortestScopeScheduler()
        expensive = Query(0, SsspProgram(0), (0,))  # unbounded batch SSSP
        cheap = Query(1, KHopProgram(0, 1), (0,))
        medium = Query(2, SsspProgram(0, target=5), (0,))  # target-pruned
        for query in (expensive, cheap, medium):
            s.add(query)
        assert [s.pop().query_id for _ in range(3)] == [1, 2, 0]
        assert predicted_work(cheap) < predicted_work(medium) < predicted_work(
            expensive
        )

    def test_shortest_scope_fifo_tiebreak(self):
        s = ShortestScopeScheduler()
        for qid in range(3):
            s.add(Query(qid, KHopProgram(qid, 2), (qid,)))
        assert [s.pop().query_id for _ in range(3)] == [0, 1, 2]

    def test_phase_round_robin_interleaves(self):
        s = PhaseRoundRobinScheduler()
        for qid in range(4):
            s.add(q(qid, start=qid, phase="main"))
        for qid in range(4, 6):
            s.add(q(qid, start=qid, phase="disturbance"))
        order = [s.pop().phase for _ in range(6)]
        assert order == [
            "main", "disturbance", "main", "disturbance", "main", "main",
        ]

    def test_make_scheduler_rejects_unknown(self):
        with pytest.raises(EngineError):
            make_scheduler("bogus")

    def test_make_scheduler_passes_instance_through(self):
        inst = FifoScheduler()
        assert make_scheduler(inst) is inst

    def test_len_and_bool(self):
        for s in (
            FifoScheduler(),
            LocalityScheduler(np.zeros(5, dtype=np.int64)),
            ShortestScopeScheduler(),
            PhaseRoundRobinScheduler(),
        ):
            assert not s and len(s) == 0
            s.add(q(0))
            assert s and len(s) == 1
            assert [query.query_id for query in s.pending_queries()] == [0]


# ----------------------------------------------------------------------
# fifo equivalence: the scheduler abstraction is event-for-event identical
# to the historical raw-deque admission queue
# ----------------------------------------------------------------------
class ReferenceDequeEngine(QGraphEngine):
    """The pre-scheduler engine: admission through a bare FIFO deque."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._ref_pending: deque = deque()

    def _on_arrival(self, now, query):
        if self.paused or len(self.running) >= self.config.max_parallel_queries:
            self._ref_pending.append(query)
            return
        self._start_query(query, now)

    def _admit_pending(self, now):
        while (
            self._ref_pending
            and not self.paused
            and len(self.running) < self.config.max_parallel_queries
        ):
            self._start_query(self._ref_pending.popleft(), now)


def trace_summary(engine):
    t = engine.trace
    return {
        "events": engine._events_processed,
        "finished": sorted(
            (r.query_id, round(r.start_time, 12), round(r.end_time, 12),
             r.iterations, r.local_iterations)
            for r in t.finished_queries()
        ),
        "local_messages": t.local_messages,
        "remote_messages": t.remote_messages,
        "barrier_acks": t.barrier_acks,
        "barrier_releases": t.barrier_releases,
        "repartitions": len(t.repartitions),
    }


class TestFifoEquivalence:
    @pytest.mark.parametrize("adaptive", [False, True])
    @pytest.mark.parametrize(
        "mode", [SyncMode.HYBRID, SyncMode.GLOBAL_PER_QUERY, SyncMode.SHARED_BSP]
    )
    def test_fifo_matches_reference_deque(self, mode, adaptive):
        g = grid_graph(8, 8)
        rng = np.random.default_rng(3)
        starts = rng.integers(0, 64, size=24)
        engines = []
        for cls in (QGraphEngine, ReferenceDequeEngine):
            eng = build_engine(
                g,
                k=4,
                engine_cls=cls,
                sync_mode=mode,
                adaptive=adaptive,
                max_parallel_queries=4,
                scheduler="fifo",
            )
            for qid, start in enumerate(starts):
                eng.submit(
                    Query(qid, BfsProgram(int(start), 63 - int(start)), (int(start),)),
                    arrival_time=0.001 * (qid % 5),
                )
            eng.run()
            engines.append(eng)
        assert trace_summary(engines[0]) == trace_summary(engines[1])


# ----------------------------------------------------------------------
# admission-queue invariants
# ----------------------------------------------------------------------
class InvariantEngine(QGraphEngine):
    """Asserts admission invariants on every query start."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.start_counts = {}
        self.max_running_seen = 0

    def _start_query(self, query, now):
        self.start_counts[query.query_id] = (
            self.start_counts.get(query.query_id, 0) + 1
        )
        super()._start_query(query, now)
        self.max_running_seen = max(self.max_running_seen, len(self.running))


POLICIES = ["fifo", "locality", "shortest_scope", "phase_round_robin"]


class TestAdmissionInvariants:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_cap_respected_and_exactly_once_with_repartitions(self, policy):
        """max_parallel never exceeded across repartition pause/resume; every
        pending query admitted exactly once; nothing lost."""
        g = grid_graph(10, 10)
        eng = build_engine(
            g,
            k=4,
            engine_cls=InvariantEngine,
            adaptive=True,  # exercises STOP/START pause/resume
            max_parallel_queries=3,
            scheduler=policy,
        )
        phases = ["a", "b"]
        for qid in range(30):
            eng.submit(
                Query(
                    qid,
                    BfsProgram(qid % 100, (qid * 7) % 100),
                    (qid % 100,),
                    phase=phases[qid % 2],
                ),
                arrival_time=0.0002 * qid,
            )
        trace = eng.run()
        assert len(trace.finished_queries()) == 30
        assert eng.max_running_seen <= 3
        assert all(count == 1 for count in eng.start_counts.values())
        assert len(eng.start_counts) == 30
        assert len(eng.scheduler) == 0

    @pytest.mark.parametrize("policy", POLICIES)
    def test_policy_deterministic_under_fixed_seed(self, policy):
        summaries = []
        for _rep in range(2):
            g = grid_graph(8, 8)
            eng = build_engine(
                g, k=4, adaptive=True, max_parallel_queries=4, scheduler=policy
            )
            rng = np.random.default_rng(11)
            for qid in range(20):
                start = int(rng.integers(0, 64))
                eng.submit(
                    Query(qid, BfsProgram(start, 63 - start), (start,)),
                    arrival_time=float(rng.uniform(0, 0.002)),
                )
            eng.run()
            summaries.append(trace_summary(eng))
        assert summaries[0] == summaries[1]

    @pytest.mark.parametrize("policy", POLICIES)
    def test_all_queries_finish_under_every_policy(self, policy):
        g = grid_graph(6, 6)
        eng = build_engine(g, k=2, max_parallel_queries=2, scheduler=policy)
        for qid in range(8):
            eng.submit(Query(qid, BfsProgram(qid, 35 - qid), (qid,)))
        trace = eng.run()
        assert len(trace.finished_queries()) == 8

    def test_scenario_scheduler_knob(self):
        from repro.bench.harness import Scenario, run_scenario

        result = run_scenario(
            Scenario(
                name="sched-knob",
                main_queries=16,
                max_parallel=4,
                scheduler="locality",
                arrival="poisson",
                arrival_rate=2000.0,
                adaptive=False,
            )
        )
        assert len(result.trace.finished_queries()) == 16
        assert result.engine.scheduler.name == "locality"


# ----------------------------------------------------------------------
# pause/resume regression: run(until=...) must not drop the horizon event
# ----------------------------------------------------------------------
class TestPauseResume:
    def test_run_until_preserves_horizon_event(self):
        def build():
            eng = build_engine(grid_graph(8, 8), k=3, max_parallel_queries=2)
            for qid in range(10):
                eng.submit(
                    Query(qid, BfsProgram(qid, 63 - qid), (qid,)),
                    arrival_time=0.0005 * qid,
                )
            return eng

        baseline = build()
        baseline.run()
        expected = trace_summary(baseline)

        resumed = build()
        # pause at many horizons, including ones that land exactly between
        # events, then resume to quiescence
        horizon = 0.0
        for _ in range(50):
            horizon += 0.0007
            resumed.run(until=horizon)
        resumed.run()
        assert trace_summary(resumed) == expected

    def test_run_until_is_resumable_mid_query(self):
        eng = build_engine(grid_graph(6, 6), k=2)
        eng.submit(Query(0, SsspProgram(0, 35), (0,)))
        eng.run(until=1e-5)  # stop long before the query can finish
        assert not eng.trace.finished_queries()
        eng.run()
        assert len(eng.trace.finished_queries()) == 1
        assert eng.query_result(0)["distance"] == pytest.approx(10.0)
