"""Engine-level graph-churn invariants.

The contract of the mutation subsystem:

* **zero-churn identity** — running on a :class:`MutableDiGraph` with no
  churn events is event-for-event identical to running on the plain
  immutable :class:`DiGraph` (the whole subsystem is dormant);
* **epoch equivalence** — after every applied churn epoch the engine's
  graph equals a fresh CSR construction from the same edge list;
* **isolation** — queries whose scopes never touch the churned region
  return exactly the answers of a churn-free run;
* **composability** — churn completes and stays consistent under both
  ``repartition_mode``\\s, all four admission schedulers, both execution
  paths and all three sync modes.
"""

import numpy as np
import pytest

from repro.core.controller import Controller, ControllerConfig
from repro.core.scopes import ScopeStore
from repro.engine.barriers import SyncMode
from repro.engine.engine import EngineConfig, QGraphEngine
from repro.errors import EngineError
from repro.graph import (
    DiGraph,
    GraphBuilder,
    GraphDelta,
    MutableDiGraph,
    NewVertexSpec,
    fresh_rebuild,
    grid_graph,
)
from repro.graph.road_network import generate_road_network
from repro.partitioning import HashPartitioner
from repro.queries.sssp import SsspProgram
from repro.engine.query import Query
from repro.simulation.cluster import make_cluster
from repro.workload.generator import PhaseSpec, WorkloadGenerator


def _controller_config(**overrides):
    base = dict(
        mu=0.5,
        phi=0.9,
        delta=0.25,
        max_tracked_queries=64,
        qcut_compute_time=0.002,
        qcut_cooldown=0.01,
        min_queries_for_qcut=6,
        ils_rounds=30,
        seed=0,
    )
    base.update(overrides)
    return ControllerConfig(**base)


def _road_network():
    return generate_road_network(
        num_cities=4,
        num_urban_vertices=1200,
        seed=13,
        region_size=60.0,
        zipf_exponent=0.5,
    )


def _build_engine(
    graph,
    k=4,
    adaptive=True,
    use_kernels=True,
    sync_mode=SyncMode.HYBRID,
    repartition_mode="global",
    scheduler="fifo",
):
    assignment = HashPartitioner(seed=0).partition(graph, k)
    controller = Controller(k, _controller_config())
    return QGraphEngine(
        graph,
        make_cluster("M2", k),
        assignment,
        controller=controller,
        config=EngineConfig(
            adaptive=adaptive,
            use_kernels=use_kernels,
            sync_mode=sync_mode,
            repartition_mode=repartition_mode,
            scheduler=scheduler,
        ),
    )


def _fingerprint(engine, trace):
    return (
        {
            qid: (r.start_time, r.end_time, r.iterations, r.local_iterations)
            for qid, r in trace.queries.items()
        },
        [(r.time, r.moved_vertices, r.num_moves) for r in trace.repartitions],
        trace.local_messages,
        trace.remote_messages,
        trace.remote_batches,
        trace.barrier_acks,
        trace.barrier_releases,
        engine._events_processed,
    )


def _run(graph, churn=(), **engine_kwargs):
    rn = _road_network()
    engine = _build_engine(graph, **engine_kwargs)
    workload = WorkloadGenerator(rn, seed=5).generate(
        [PhaseSpec(num_queries=48, kind="sssp", label="churn")]
    )
    workload.submit_all(engine)
    for time, delta in churn:
        engine.submit_update(delta, time)
    trace = engine.run()
    results = {
        q.query_id: engine.query_result(q.query_id) for q in workload.queries()
    }
    return engine, trace, results


class TestSubmitUpdate:
    def test_requires_mutable_graph(self):
        g = grid_graph(4, 4)
        engine = _build_engine(g, k=2)
        with pytest.raises(EngineError, match="MutableDiGraph"):
            engine.submit_update(GraphDelta(delete_edges=[(0, 1)]))


class TestZeroChurnIdentity:
    @pytest.mark.parametrize(
        "sync_mode",
        [SyncMode.HYBRID, SyncMode.GLOBAL_PER_QUERY, SyncMode.SHARED_BSP],
    )
    def test_mutable_graph_without_churn_is_identical(self, sync_mode):
        rn = _road_network()
        plain = rn.graph
        wrapped = MutableDiGraph.from_digraph(plain)
        e1, t1, r1 = _run(plain, sync_mode=sync_mode)
        e2, t2, r2 = _run(wrapped, sync_mode=sync_mode)
        assert _fingerprint(e1, t1) == _fingerprint(e2, t2)
        assert r1 == r2
        assert not t2.churn_events

    def test_mutable_graph_without_churn_identical_partial_mode(self):
        rn = _road_network()
        e1, t1, r1 = _run(rn.graph, repartition_mode="partial")
        e2, t2, r2 = _run(
            MutableDiGraph.from_digraph(rn.graph), repartition_mode="partial"
        )
        assert _fingerprint(e1, t1) == _fingerprint(e2, t2)
        assert r1 == r2


def _generated_churn(rn, rate=60.0, span=0.4, seed=5, num_queries=48):
    """Workload + churn from the generator (the production path)."""
    wg = WorkloadGenerator(rn, seed=seed)
    return wg.generate(
        [
            PhaseSpec(
                num_queries=num_queries,
                kind="sssp",
                label="churn",
                churn_rate=rate,
                churn_span=span,
            )
        ]
    )


class TestChurnExecution:
    @pytest.mark.parametrize("repartition_mode", ["global", "partial"])
    @pytest.mark.parametrize(
        "scheduler", ["fifo", "locality", "shortest_scope", "phase_round_robin"]
    )
    def test_churn_completes_under_all_modes(self, repartition_mode, scheduler):
        rn = _road_network()
        graph = MutableDiGraph.from_digraph(rn.graph)
        engine = _build_engine(
            graph, repartition_mode=repartition_mode, scheduler=scheduler
        )
        workload = _generated_churn(rn)
        assert workload.churn, "churn process produced no events"
        workload.submit_all(engine)
        trace = engine.run()
        assert len(trace.finished_queries()) == 48
        assert trace.churn_events, "no churn epoch was applied"
        # every applied epoch left the CSR equivalent to fresh construction
        fresh = fresh_rebuild(graph)
        assert np.array_equal(graph.indptr, fresh.indptr)
        assert np.array_equal(graph.indices, fresh.indices)
        assert np.array_equal(graph.weights, fresh.weights)
        # assignment covers every vertex including churn-added ones
        assert engine.assignment.size == graph.num_vertices
        assert engine.assignment.min() >= 0

    @pytest.mark.parametrize(
        "sync_mode",
        [SyncMode.HYBRID, SyncMode.GLOBAL_PER_QUERY, SyncMode.SHARED_BSP],
    )
    def test_churn_completes_under_sync_modes(self, sync_mode):
        rn = _road_network()
        graph = MutableDiGraph.from_digraph(rn.graph)
        engine = _build_engine(graph, sync_mode=sync_mode)
        workload = _generated_churn(rn)
        workload.submit_all(engine)
        trace = engine.run()
        assert len(trace.finished_queries()) == 48
        assert trace.churn_events

    def test_churn_completes_generic_path(self):
        rn = _road_network()
        graph = MutableDiGraph.from_digraph(rn.graph)
        engine = _build_engine(graph, use_kernels=False)
        workload = _generated_churn(rn)
        workload.submit_all(engine)
        trace = engine.run()
        assert len(trace.finished_queries()) == 48
        assert trace.churn_events

    def test_vertex_growth_mid_query(self):
        """New vertices appear while queries run: dense kernel buffers grow
        and the LDG placement extends the assignment deterministically."""
        rn = _road_network()
        graph = MutableDiGraph.from_digraph(rn.graph)
        n0 = graph.num_vertices
        engine = _build_engine(graph, adaptive=False)
        workload = WorkloadGenerator(rn, seed=5).generate(
            [PhaseSpec(num_queries=24, kind="sssp")]
        )
        workload.submit_all(engine)
        delta = GraphDelta(
            new_vertices=[
                NewVertexSpec(x=0.0, y=0.0, edges=((0, 1.0), (1, 1.0)))
                for _ in range(5)
            ]
        )
        engine.submit_update(delta, 0.0005)
        trace = engine.run()
        assert graph.num_vertices == n0 + 5
        assert engine.assignment.size == n0 + 5
        assert len(trace.finished_queries()) == 24
        # grown kernel buffers cover the new id range
        for qr in engine.runtimes.values():
            if qr.scope_mask is not None:
                assert qr.scope_mask.size == n0 + 5


class TestChurnIsolation:
    """Deleting edges in one component must not change answers in another."""

    def _two_component_graph(self):
        # component A: 4x4 grid (ids 0..15); component B: 4x4 grid (16..31)
        b = GraphBuilder(32)
        for comp in (0, 16):
            for r in range(4):
                for c in range(4):
                    v = comp + r * 4 + c
                    if c < 3:
                        b.add_bidirectional_edge(v, v + 1, 1.0)
                    if r < 3:
                        b.add_bidirectional_edge(v, v + 4, 1.0)
        return b.build(name="two-comp")

    def test_untouched_queries_identical_answers(self):
        base = self._two_component_graph()
        queries = [
            Query(query_id=i, program=SsspProgram(start=i), initial_vertices=(i,))
            for i in range(4)  # all in component A
        ]

        def run(churn):
            graph = MutableDiGraph.from_digraph(base)
            engine = _build_engine(graph, k=2, adaptive=False)
            for q in queries:
                engine.submit(q, 0.0)
            for time, delta in churn:
                engine.submit_update(delta, time)
            engine.run()
            return {q.query_id: engine.query_result(q.query_id) for q in queries}

        quiet = run([])
        # churn B's edges mid-run (several small epochs)
        churn = [
            (1e-6 * (i + 1), GraphDelta(delete_edges=[(16 + i, 17 + i), (17 + i, 16 + i)]))
            for i in range(3)
        ] + [(2e-6, GraphDelta(remove_vertices=[31]))]
        noisy = run(churn)
        assert quiet == noisy

    def test_deleted_vertex_messages_are_purged(self):
        """Next-iteration messages to a tombstoned vertex are dropped and
        the wave routes around / dies there."""
        base = self._two_component_graph()
        graph = MutableDiGraph.from_digraph(base)
        engine = _build_engine(graph, k=2, adaptive=False)
        engine.submit(
            Query(query_id=0, program=SsspProgram(start=16), initial_vertices=(16,)),
            0.0,
        )
        # remove a vertex of component B early, while the wave spreads
        engine.submit_update(GraphDelta(remove_vertices=[21]), 1e-6)
        engine.run()
        distances = engine.query_result(0)["distances"]
        # distances that avoid 21 are still correct: 16 -> 18 via row edges
        assert distances[18] == 2.0
        churn = engine.trace.churn_events
        assert churn and churn[0].removed_vertices == 1


class TestControllerChurnHygiene:
    def test_scope_store_truncated_on_removal(self):
        controller = Controller(2, _controller_config())
        controller.on_query_started(1, 0.0)
        controller.on_iteration(1, 1, [3, 4, 5], 0.0)
        assert controller.scopes.global_scope(1) == {3, 4, 5}
        controller.on_graph_mutation([4])
        assert controller.scopes.global_scope(1) == {3, 5}
        # late activation reports of dead ids are filtered too
        controller.on_iteration(1, 1, [4, 6], 0.001)
        assert controller.scopes.global_scope(1) == {3, 5, 6}

    def test_scope_store_pending_buffers_truncated(self):
        store = ScopeStore()
        store.add_activations(7, [1, 2, 3])
        _ = store.scope_array(7)  # consolidate
        store.add_activations(7, [4, 5])  # sits in the pending buffer
        store.remove_vertices(np.array([2, 5]))
        assert store.global_scope(7) == {1, 3, 4}

    def test_snapshots_never_plan_moves_of_dead_ids(self):
        rn = _road_network()
        graph = MutableDiGraph.from_digraph(rn.graph)
        engine = _build_engine(graph, adaptive=True)
        workload = _generated_churn(rn, rate=120.0, span=0.4)
        workload.submit_all(engine)
        engine.run()
        if not engine.trace.repartitions:
            pytest.skip("instance did not repartition")
        dead = np.flatnonzero(graph.dead_mask)
        # the scope store holds no dead ids after the run
        store = engine.controller.scopes
        for qid in store.queries():
            scope = store.scope_array(qid)
            assert not np.isin(scope, dead).any()

    def test_place_new_vertices_prefers_neighbour_partition(self):
        b = GraphBuilder(6)
        b.add_bidirectional_edge(0, 1, 1.0)
        b.add_bidirectional_edge(2, 3, 1.0)
        g = MutableDiGraph.from_digraph(b.build())
        g.add_vertex(NewVertexSpec(edges=((0, 1.0), (1, 1.0))))
        g.flush()
        controller = Controller(2, _controller_config())
        assignment = np.array([0, 0, 1, 1, 0, 1], dtype=np.int64)
        owners = controller.place_new_vertices(
            g, np.array([6], dtype=np.int64), assignment
        )
        assert owners.tolist() == [0]  # both neighbours live on worker 0
