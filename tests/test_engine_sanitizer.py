"""Simulation sanitizer: enablement, overhead-free identity, fault injection.

The point of a sanitizer is that it *catches* corruption, so every invariant
in the catalog gets a fault-injection test: we break the engine state the
way a real bug would (drop a migrated message, mutate a cached CSR view,
desync a barrier epoch, compute on a halted worker, leak a dead vertex into
the scope store, shrink a dense buffer) and assert the corresponding
:class:`SanitizerError` fires with the right invariant name.  Clean runs
must be event-for-event identical with the sanitizer on and off.
"""

import numpy as np
import pytest

from repro.core.controller import Controller, ControllerConfig
from repro.engine.barriers import SyncMode
from repro.engine.engine import EngineConfig, QGraphEngine
from repro.engine.kernels import ArrayMailbox
from repro.engine.query import Query, QueryRuntime
from repro.engine.sanitizer import (
    ENV_FLAG,
    SanitizerError,
    SimulationSanitizer,
    sanitizer_enabled,
)
from repro.graph import GraphDelta, MutableDiGraph, grid_graph
from repro.graph.road_network import generate_road_network
from repro.partitioning import HashPartitioner
from repro.queries.sssp import SsspProgram
from repro.simulation.cluster import make_cluster
from repro.workload.generator import PhaseSpec, WorkloadGenerator


def _controller_config(**overrides):
    base = dict(
        mu=0.5,
        phi=0.9,
        delta=0.25,
        max_tracked_queries=64,
        qcut_compute_time=0.002,
        qcut_cooldown=0.01,
        min_queries_for_qcut=6,
        ils_rounds=30,
        seed=0,
    )
    base.update(overrides)
    return ControllerConfig(**base)


def _road_network():
    return generate_road_network(
        num_cities=4,
        num_urban_vertices=1200,
        seed=13,
        region_size=60.0,
        zipf_exponent=0.5,
    )


def _build_engine(graph, k=4, sanitizer=True, **config_overrides):
    config = dict(
        adaptive=True,
        use_kernels=True,
        sync_mode=SyncMode.HYBRID,
        repartition_mode="global",
        scheduler="fifo",
        sanitizer=sanitizer,
    )
    config.update(config_overrides)
    assignment = HashPartitioner(seed=0).partition(graph, k)
    controller = Controller(k, _controller_config())
    return QGraphEngine(
        graph,
        make_cluster("M2", k),
        assignment,
        controller=controller,
        config=EngineConfig(**config),
    )


def _workload(rn, num_queries=48, **phase_kwargs):
    return WorkloadGenerator(rn, seed=5).generate(
        [PhaseSpec(num_queries=num_queries, kind="sssp", label="san", **phase_kwargs)]
    )


def _fingerprint(engine, trace):
    return (
        {
            qid: (r.start_time, r.end_time, r.iterations, r.local_iterations)
            for qid, r in trace.queries.items()
        },
        [(r.time, r.moved_vertices, r.num_moves) for r in trace.repartitions],
        trace.local_messages,
        trace.remote_messages,
        trace.remote_batches,
        trace.barrier_acks,
        trace.barrier_releases,
        engine._events_processed,
    )


def _seeded_runtime(engine, query_id=900, start=0):
    """A real kernel-backed QueryRuntime registered on the engine."""
    qr = QueryRuntime(Query(query_id, SsspProgram(start=start), (start,)), engine.graph)
    engine.runtimes[query_id] = qr
    return qr


# ----------------------------------------------------------------------
# enablement: config knob x REPRO_SANITIZER environment switch
# ----------------------------------------------------------------------
class TestEnablement:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv(ENV_FLAG, raising=False)
        engine = _build_engine(grid_graph(6, 6), k=2, sanitizer=None)
        assert engine.sanitizer is None

    def test_config_true_enables(self, monkeypatch):
        monkeypatch.delenv(ENV_FLAG, raising=False)
        engine = _build_engine(grid_graph(6, 6), k=2, sanitizer=True)
        assert isinstance(engine.sanitizer, SimulationSanitizer)

    def test_env_enables_unset_config(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")
        engine = _build_engine(grid_graph(6, 6), k=2, sanitizer=None)
        assert isinstance(engine.sanitizer, SimulationSanitizer)

    def test_config_false_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")
        engine = _build_engine(grid_graph(6, 6), k=2, sanitizer=False)
        assert engine.sanitizer is None

    def test_env_spellings(self, monkeypatch):
        for value in ("", "0", "false", "off"):
            monkeypatch.setenv(ENV_FLAG, value)
            assert not sanitizer_enabled(None)
        for value in ("1", "true", "yes", "on"):
            monkeypatch.setenv(ENV_FLAG, value)
            assert sanitizer_enabled(None)
        assert sanitizer_enabled(True)
        assert not sanitizer_enabled(False)


# ----------------------------------------------------------------------
# clean runs: sanitized == unsanitized, and the hooks actually fire
# ----------------------------------------------------------------------
class TestCleanRunIdentity:
    @pytest.mark.parametrize(
        "sync_mode", [SyncMode.HYBRID, SyncMode.SHARED_BSP]
    )
    def test_sanitized_run_is_identical(self, sync_mode):
        rn = _road_network()
        runs = []
        for sanitizer in (False, True):
            engine = _build_engine(rn.graph, sanitizer=sanitizer, sync_mode=sync_mode)
            workload = _workload(rn)
            workload.submit_all(engine)
            trace = engine.run()
            results = {
                q.query_id: engine.query_result(q.query_id)
                for q in workload.queries()
            }
            runs.append((engine, _fingerprint(engine, trace), results, trace))
        (plain, fp_plain, res_plain, _), (san, fp_san, res_san, trace_san) = runs
        assert fp_plain == fp_san
        assert res_plain == res_san
        # the invariants were actually exercised, including the migration
        # checks (this workload repartitions under the adaptive controller)
        assert san.sanitizer is not None
        assert san.sanitizer.checks_performed > 0
        assert trace_san.repartitions

    def test_sanitized_churn_run_is_identical(self):
        rn = _road_network()
        runs = []
        for sanitizer in (False, True):
            graph = MutableDiGraph.from_digraph(rn.graph)
            engine = _build_engine(graph, sanitizer=sanitizer)
            workload = _workload(rn, churn_rate=60.0, churn_span=0.4)
            workload.submit_all(engine)
            trace = engine.run()
            runs.append((engine, _fingerprint(engine, trace), trace))
        (_, fp_plain, _), (san, fp_san, trace_san) = runs
        assert fp_plain == fp_san
        assert trace_san.churn_events  # on_graph_flush hooks were exercised
        assert san.sanitizer.checks_performed > 0


# ----------------------------------------------------------------------
# fault injection: every invariant break must be detected
# ----------------------------------------------------------------------
class TestCsrIntegrity:
    def test_mutated_cached_view_detected(self):
        engine = _build_engine(grid_graph(8, 8), k=2)
        engine.graph.csr().weights[0] += 1.0  # the bug csr-mutation lints for
        with pytest.raises(SanitizerError) as err:
            engine.sanitizer.check_csr_integrity(0.5)
        assert err.value.invariant == "csr-integrity"
        assert err.value.time == 0.5

    def test_untouched_view_passes(self):
        engine = _build_engine(grid_graph(8, 8), k=2)
        engine.sanitizer.check_csr_integrity(0.0)  # does not raise
        assert engine.sanitizer.checks_performed == 1

    def test_detected_on_the_flush_path(self):
        """End-to-end: corruption surfaces at the next delta flush in run()."""
        graph = MutableDiGraph.from_digraph(grid_graph(8, 8))
        engine = _build_engine(graph, k=2)
        engine.graph.csr().weights[0] += 1.0
        engine.submit_update(GraphDelta(delete_edges=[(0, 1)]), 0.01)
        with pytest.raises(SanitizerError, match="csr-integrity"):
            engine.run()

    def test_legitimate_flush_rebaselines(self):
        graph = MutableDiGraph.from_digraph(grid_graph(8, 8))
        engine = _build_engine(graph, k=2)
        engine.submit_update(GraphDelta(delete_edges=[(0, 1)]), 0.01)
        engine.run()
        engine.sanitizer.check_csr_integrity(1.0)  # re-baselined, no raise


class TestEpochMonotonicity:
    def test_desynced_epoch_detected(self):
        engine = _build_engine(grid_graph(6, 6), k=2)
        san = engine.sanitizer
        san.observe_epoch(3, 1, 0.1)
        san.observe_epoch(3, 2, 0.2)
        with pytest.raises(SanitizerError) as err:
            san.observe_epoch(3, 1, 0.3)
        assert err.value.invariant == "epoch-monotonicity"
        assert err.value.query_id == 3
        assert err.value.details == {"last_seen": 2, "observed": 1}

    def test_equal_epoch_allowed(self):
        """Re-observing the same epoch (multiple acks per barrier) is fine."""
        san = _build_engine(grid_graph(6, 6), k=2).sanitizer
        san.observe_epoch(3, 5, 0.1)
        san.observe_epoch(3, 5, 0.2)

    def test_finished_query_resets_tracking(self):
        """Query ids can be reused after a finish without tripping the check."""
        san = _build_engine(grid_graph(6, 6), k=2).sanitizer
        san.observe_epoch(3, 7, 0.1)
        san.on_query_finished(3)
        san.observe_epoch(3, 0, 0.2)  # fresh query, fresh epoch counter


class TestHaltedCompute:
    def test_compute_during_global_stop_detected(self):
        engine = _build_engine(grid_graph(6, 6), k=2)
        engine.paused = True
        engine._stop_workers = None  # global STOP halts everyone
        with pytest.raises(SanitizerError) as err:
            engine.sanitizer.check_compute_allowed(4, 1, 0.2)
        assert err.value.invariant == "halted-compute"
        assert err.value.query_id == 4
        assert err.value.worker == 1

    def test_partial_stop_scoping(self):
        engine = _build_engine(grid_graph(6, 6), k=4, repartition_mode="partial")
        engine.paused = True
        engine._stop_workers = {1}
        engine._stop_queries = {5}
        # uninvolved query on an uninvolved worker keeps running
        engine.sanitizer.check_compute_allowed(0, 2, 0.2)
        with pytest.raises(SanitizerError, match="halted by a partial STOP"):
            engine.sanitizer.check_compute_allowed(0, 1, 0.2)
        with pytest.raises(SanitizerError, match="query halted"):
            engine.sanitizer.check_compute_allowed(5, 2, 0.2)

    def test_unpaused_engine_unrestricted(self):
        engine = _build_engine(grid_graph(6, 6), k=2)
        engine.sanitizer.check_compute_allowed(0, 0, 0.0)

    def test_shared_bsp_inflight_superstep_legal(self):
        """Under SHARED_BSP, pause + in-flight superstep computes are the
        documented protocol; only computes after the STOP barrier are bugs."""
        engine = _build_engine(grid_graph(6, 6), k=2, sync_mode=SyncMode.SHARED_BSP)
        engine.paused = True
        engine._stop_scheduled = False
        engine.sanitizer.check_compute_allowed(0, 0, 0.2)  # legal drain
        engine._stop_scheduled = True
        with pytest.raises(SanitizerError, match="shared-BSP STOP"):
            engine.sanitizer.check_compute_allowed(0, 0, 0.2)


class TestMessageConservation:
    def test_dropped_migrated_message_detected(self):
        engine = _build_engine(grid_graph(8, 8), k=2)
        qr = _seeded_runtime(engine)
        qr.deliver_array(
            0,
            np.array([1, 2, 3], dtype=np.int64),
            np.array([0.5, 1.5, 2.5]),
            to_next=False,
        )
        pre = engine.sanitizer.snapshot_mailboxes()
        qr.mailboxes[0] = ArrayMailbox()  # the "bug": migration lost the box
        qr.mailboxes[0].append(
            np.array([1, 2], dtype=np.int64), np.array([0.5, 1.5])
        )
        with pytest.raises(SanitizerError) as err:
            engine.sanitizer.check_rebucket(pre, engine.assignment, 0.3)
        assert err.value.invariant == "message-conservation"
        assert err.value.query_id == 900
        assert err.value.details["before"] == 3
        assert err.value.details["after"] == 2

    def test_fabricated_duplicate_detected(self):
        """The array path must preserve the *multiset* — a duplicated
        message (double migration) is as much a bug as a lost one."""
        engine = _build_engine(grid_graph(8, 8), k=2)
        qr = _seeded_runtime(engine)
        qr.deliver_array(
            0, np.array([1, 2], dtype=np.int64), np.array([0.5, 1.5]), to_next=False
        )
        pre = engine.sanitizer.snapshot_mailboxes()
        qr.mailboxes[0].append(np.array([2], dtype=np.int64), np.array([1.5]))
        with pytest.raises(SanitizerError, match="message-conservation"):
            engine.sanitizer.check_rebucket(pre, engine.assignment, 0.3)

    def test_next_generation_also_guarded(self):
        engine = _build_engine(grid_graph(8, 8), k=2)
        qr = _seeded_runtime(engine)
        qr.deliver_array(
            0, np.array([4], dtype=np.int64), np.array([2.0]), to_next=True
        )
        pre = engine.sanitizer.snapshot_mailboxes()
        qr.next_mailboxes.clear()
        with pytest.raises(SanitizerError) as err:
            engine.sanitizer.check_rebucket(pre, engine.assignment, 0.3)
        assert err.value.details["generation"] == "next_mailboxes"

    def test_faithful_rebucket_passes(self):
        engine = _build_engine(grid_graph(8, 8), k=2)
        qr = _seeded_runtime(engine)
        vertices = np.array([1, 2, 3], dtype=np.int64)
        qr.deliver_array(0, vertices, np.array([0.5, 1.5, 2.5]), to_next=False)
        pre = engine.sanitizer.snapshot_mailboxes()
        qr.rebucket(engine.assignment)  # the real (correct) implementation
        engine.sanitizer.check_rebucket(pre, engine.assignment, 0.3)


class TestMailboxHoming:
    def test_stray_entry_detected(self):
        engine = _build_engine(grid_graph(8, 8), k=2)
        qr = _seeded_runtime(engine)
        vertex = 5
        home = int(engine.assignment[vertex])
        qr.deliver_array(
            home, np.array([vertex], dtype=np.int64), np.array([1.0]), to_next=False
        )
        pre = engine.sanitizer.snapshot_mailboxes()
        # same messages, wrong worker: conservation holds, homing is broken
        qr.mailboxes[1 - home] = qr.mailboxes.pop(home)
        with pytest.raises(SanitizerError) as err:
            engine.sanitizer.check_rebucket(pre, engine.assignment, 0.3)
        assert err.value.invariant == "mailbox-homing"
        assert err.value.worker == 1 - home
        assert err.value.details["stray_vertices"] == [vertex]


class TestScopeLiveness:
    def test_out_of_range_scope_entry_detected(self):
        engine = _build_engine(grid_graph(8, 8), k=2)
        n = engine.graph.num_vertices
        engine.controller.scopes.add_activations(7, [0, n + 5])
        with pytest.raises(SanitizerError) as err:
            engine.sanitizer.check_scope_liveness(0.4)
        assert err.value.invariant == "scope-liveness"
        assert err.value.query_id == 7

    def test_dead_vertex_in_scope_detected(self):
        graph = MutableDiGraph.from_digraph(grid_graph(8, 8))
        engine = _build_engine(graph, k=2)
        victim = 9
        graph.apply_delta(GraphDelta(remove_vertices=[victim]))
        engine.sanitizer.refresh_csr_fingerprint()  # legitimate flush
        engine.controller.scopes.add_activations(7, [victim])
        with pytest.raises(SanitizerError, match="tombstoned"):
            engine.sanitizer.check_scope_liveness(0.4)

    def test_live_scope_passes(self):
        engine = _build_engine(grid_graph(8, 8), k=2)
        engine.controller.scopes.add_activations(7, [0, 1, 2])
        engine.sanitizer.check_scope_liveness(0.4)


class TestStateShape:
    def test_shrunken_kernel_buffer_detected(self):
        engine = _build_engine(grid_graph(8, 8), k=2)
        qr = _seeded_runtime(engine)
        engine.sanitizer.check_state_shapes(0.5)  # intact: passes
        qr.kstate = qr.kstate[:-3]
        with pytest.raises(SanitizerError) as err:
            engine.sanitizer.check_state_shapes(0.5)
        assert err.value.invariant == "state-shape"
        assert err.value.query_id == 900

    def test_desynced_scope_mask_detected(self):
        engine = _build_engine(grid_graph(8, 8), k=2)
        qr = _seeded_runtime(engine)
        qr.scope_mask = qr.scope_mask[:-1]
        with pytest.raises(SanitizerError, match="scope mask"):
            engine.sanitizer.check_state_shapes(0.5)

    def test_desynced_assignment_detected(self):
        engine = _build_engine(grid_graph(8, 8), k=2)
        engine.assignment = engine.assignment[:-1]
        with pytest.raises(SanitizerError, match="assignment"):
            engine.sanitizer.check_state_shapes(0.5)


class TestEndToEndMigrationFault:
    def test_lossy_rebucket_caught_during_real_run(self, monkeypatch):
        """Drive a real adaptive workload with a sabotaged migration: the
        first rebucket that moves a non-empty mailbox silently drops it, the
        way a buggy migration path would.  The run must die with a
        conservation error instead of completing with a wrong answer."""
        real_rebucket = QueryRuntime.rebucket
        sabotaged = {"dropped": False}

        def lossy_rebucket(self, assignment, workers=None):
            real_rebucket(self, assignment, workers=workers)
            if not sabotaged["dropped"]:
                for worker, box in list(self.mailboxes.items()):
                    if len(box):
                        del self.mailboxes[worker]
                        sabotaged["dropped"] = True
                        break

        monkeypatch.setattr(QueryRuntime, "rebucket", lossy_rebucket)
        rn = _road_network()
        engine = _build_engine(rn.graph)
        _workload(rn).submit_all(engine)
        with pytest.raises(SanitizerError, match="message-conservation"):
            engine.run()
        assert sabotaged["dropped"]
