"""State-lifecycle analysis tests: inventory, manifest, the four rules.

Differential convention, same as the race suite: every rule is proven in
both directions — a distilled dirty layout fires, the minimally repaired
variant of the *same* layout is clean — so the rules are pinned to the
defect, not to incidental fixture shape.  CLI/baseline integration of the
checked-in fixtures lives in ``tests/test_analysis_project.py``.
"""

import ast
import json
from pathlib import Path

import pytest

from repro.analysis import lint_sources
from repro.analysis.baseline import load_baseline, render_manifest
from repro.analysis.lifecycle import (
    MANIFEST_KINDS,
    StateLifecycleAnalysis,
    _line_followers,
)
from repro.analysis.visitor import (
    FileContext,
    ProjectContext,
    infer_role,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _project(sources, manifest=None):
    return ProjectContext(
        [
            FileContext.parse(text, path, infer_role(Path(path)))
            for path, text in sorted(sources.items())
        ],
        state_manifest=dict(manifest or {}),
    )


def _rules_of(findings):
    return sorted({v.rule for v in findings})


# one compact engine exercising every lifecycle surface: a dispatcher, a
# runtime class, a checkpoint pair, a finish path and an invariant group
_ENGINE = '''
from typing import Dict, Set

STATE_INVARIANT_GROUPS = (
    ("MiniEngine.assignment", "MiniRuntime.mail"),
)


class MiniRuntime:
    def __init__(self):
        self.cursor: Dict[int, int] = {{}}
        self.mail: Dict[int, Dict[int, int]] = {{}}
        self.acked: Set[int] = set()


class MiniCheckpoint:
    def __init__(self):
        self.cursor = {{}}
        self.mail = {{}}

    @classmethod
    def capture(cls, qr: "MiniRuntime"):
        ck = cls()
        {capture_body}
        return ck

    def restore(self, qr: "MiniRuntime"):
        {restore_body}


class MiniEngine:
    def __init__(self, queue):
        self.queue = queue
        self.assignment: Dict[int, int] = {{}}
        self.runtimes: Dict[int, MiniRuntime] = {{}}
        self.progress: Dict[int, float] = {{}}

    def step(self):
        event = self.queue.pop()
        handler = getattr(self, f"_on_{{event.kind}}", None)
        if handler is not None:
            handler(event.time, event.payload)

    def _on_tick(self, now, payload):
        qr = self.runtimes[payload["query"]]
        qr.cursor[payload["vertex"]] = now
        qr.mail[payload["worker"]] = payload["messages"]
        qr.acked.add(payload["worker"])
        self.progress[payload["query"]] = now
        if payload["done"]:
            self._finish_query(payload["query"])

    def _on_rebalance(self, now, payload):
        {rebalance_body}

    def _finish_query(self, query):
        {finish_body}
'''

_GOOD = dict(
    capture_body="ck.cursor = dict(qr.cursor)\n        ck.mail = dict(qr.mail)",
    restore_body="qr.cursor = dict(self.cursor)\n        qr.mail = dict(self.mail)",
    rebalance_body=(
        "if not payload[\"plan_ok\"]:\n"
        "            raise RuntimeError(\"rejected\")\n"
        "        self.assignment[payload[\"vertex\"]] = payload[\"owner\"]\n"
        "        qr = self.runtimes[payload[\"query\"]]\n"
        "        qr.mail = dict(payload[\"mail\"])"
    ),
    finish_body="self.progress.pop(query, None)",
)

#: MiniRuntime.acked is a barrier transient, deliberately uncheckpointed;
#: the assignment is the cross-query partition map (never per-query)
_MANIFEST = {
    "MiniRuntime.acked": {"kind": "derived", "reason": "barrier transient"},
    "MiniEngine.assignment": {
        "kind": "engine-global",
        "reason": "shared partition map",
    },
}

_LIFECYCLE = ["checkpoint-gap", "restore-asymmetry", "finish-leak", "atomic-mutation"]


def _engine(**overrides):
    parts = dict(_GOOD)
    parts.update(overrides)
    return _ENGINE.format(**parts)


def _lint(source, select=_LIFECYCLE, manifest=_MANIFEST):
    return lint_sources(
        {"src/repro/engine/mini.py": source}, select=select, manifest=manifest
    )


class TestRulesDifferentially:
    def test_well_formed_engine_is_clean(self):
        assert _lint(_engine()) == []

    def test_checkpoint_gap_fires_on_uncaptured_field(self):
        src = _engine(capture_body="ck.cursor = dict(qr.cursor)")
        findings = _lint(src, select=["checkpoint-gap"])
        assert _rules_of(findings) == ["checkpoint-gap"]
        assert "MiniRuntime.mail" in findings[0].message
        assert findings[0].fingerprint == (
            "checkpoint-gap::MiniCheckpoint::MiniRuntime.mail"
        )

    def test_checkpoint_gap_respects_derived_classification(self):
        # acked is handler-written and uncaptured, but classified derived
        findings = _lint(_engine(), select=["checkpoint-gap"])
        assert findings == []
        # ...and fires once the classification is gone (per-query default)
        findings = _lint(_engine(), select=["checkpoint-gap"], manifest={})
        assert [v.fingerprint for v in findings] == [
            "checkpoint-gap::MiniCheckpoint::MiniRuntime.acked"
        ]
        assert "not classified" in findings[0].message

    def test_restore_asymmetry_captured_but_never_restored(self):
        src = _engine(restore_body="qr.cursor = dict(self.cursor)")
        findings = _lint(src, select=["restore-asymmetry"])
        assert [v.fingerprint for v in findings] == [
            "restore-asymmetry::MiniCheckpoint::captured::mail"
        ]

    def test_restore_asymmetry_restored_from_unfilled_slot(self):
        src = _engine(
            capture_body="ck.cursor = dict(qr.cursor)\n        ck.mail = dict(qr.mail)",
            restore_body=(
                "qr.cursor = dict(self.cursor)\n"
                "        qr.mail = dict(self.mail)\n"
                "        qr.acked = set(self.acked)"
            ),
        )
        findings = _lint(src, select=["restore-asymmetry"])
        assert [v.fingerprint for v in findings] == [
            "restore-asymmetry::MiniCheckpoint::restored::acked"
        ]

    def test_restore_reset_from_runtime_itself_is_not_asymmetry(self):
        # the engine idiom: involved/acked rebuilt from the runtime, not
        # from a checkpoint slot — must not read as "restored"
        src = _engine(
            restore_body=(
                "qr.cursor = dict(self.cursor)\n"
                "        qr.mail = dict(self.mail)\n"
                "        qr.acked = set(qr.mail)"
            )
        )
        assert _lint(src, select=["restore-asymmetry"]) == []

    def test_finish_leak_fires_on_unreleased_per_query_map(self):
        src = _engine(finish_body="now = self.progress[query]")
        findings = _lint(src, select=["finish-leak"])
        assert [v.fingerprint for v in findings] == [
            "finish-leak::MiniEngine::MiniEngine.progress"
        ]

    @pytest.mark.parametrize(
        "clearing",
        [
            "self.progress.pop(query, None)",
            "del self.progress[query]",
            "self.progress = {}",
        ],
    )
    def test_finish_leak_accepts_every_clearing_shape(self, clearing):
        assert _lint(_engine(finish_body=clearing), select=["finish-leak"]) == []

    def test_finish_leak_respects_engine_global_classification(self):
        manifest = dict(_MANIFEST)
        manifest["MiniEngine.progress"] = {
            "kind": "engine-global",
            "reason": "cross-query metrics",
        }
        src = _engine(finish_body="now = self.progress[query]")
        assert _lint(src, select=["finish-leak"], manifest=manifest) == []

    def test_atomic_mutation_fires_on_raise_between_group_writes(self):
        src = _engine(
            rebalance_body=(
                "self.assignment[payload[\"vertex\"]] = payload[\"owner\"]\n"
                "        if not payload[\"plan_ok\"]:\n"
                "            raise RuntimeError(\"rejected\")\n"
                "        qr = self.runtimes[payload[\"query\"]]\n"
                "        qr.mail = dict(payload[\"mail\"])"
            )
        )
        findings = _lint(src, select=["atomic-mutation"])
        assert [v.fingerprint for v in findings] == [
            "atomic-mutation::repro.engine.mini.MiniEngine._on_rebalance"
            "::MiniEngine.assignment::MiniRuntime.mail"
        ]

    def test_atomic_mutation_clean_when_raise_precedes_all_writes(self):
        # the HEAD fix shape: validate everything, then mutate
        assert _lint(_engine(), select=["atomic-mutation"]) == []

    def test_atomic_mutation_sees_writes_through_helper_calls(self):
        src = _engine(
            rebalance_body=(
                "self.assignment[payload[\"vertex\"]] = payload[\"owner\"]\n"
                "        if not payload[\"plan_ok\"]:\n"
                "            raise RuntimeError(\"rejected\")\n"
                "        self._rehome(payload)\n"
                "\n"
                "    def _rehome(self, payload):\n"
                "        qr = self.runtimes[payload[\"query\"]]\n"
                "        qr.mail = dict(payload[\"mail\"])"
            )
        )
        findings = _lint(src, select=["atomic-mutation"])
        assert [v.fingerprint for v in findings] == [
            "atomic-mutation::repro.engine.mini.MiniEngine._on_rebalance"
            "::MiniEngine.assignment::MiniRuntime.mail"
        ]


class TestExtraction:
    def test_inventory_and_spec(self):
        analysis = StateLifecycleAnalysis(_project(
            {"src/repro/engine/mini.py": _engine()}
        ))
        assert "MiniRuntime.cursor" in analysis.inventory
        assert "MiniRuntime.mail" in analysis.inventory
        assert "MiniEngine.progress" in analysis.inventory
        (spec,) = analysis.specs.values()
        assert spec.runtime_cls.endswith("MiniRuntime")
        assert spec.captured == {"cursor", "mail"}
        assert {"cursor", "mail"} <= spec.restored
        assert analysis.invariant_groups == [
            ("MiniEngine.assignment", "MiniRuntime.mail")
        ]

    def test_exception_classes_stay_out_of_the_inventory(self):
        src = _engine() + (
            "\n\nclass MiniError(Exception):\n"
            "    def __init__(self, detail):\n"
            "        self.detail = detail\n"
        )
        analysis = StateLifecycleAnalysis(_project(
            {"src/repro/engine/mini.py": src}
        ))
        assert not any(a.startswith("MiniError.") for a in analysis.inventory)

    def test_line_followers_cut_at_unconditional_raise(self):
        fn = ast.parse(
            "def f(self):\n"
            "    self.a = 1\n"        # line 2
            "    raise ValueError\n"  # line 3
            "    self.b = 2\n"        # line 4: dead code
        ).body[0]
        followers = _line_followers(fn)
        assert 3 in followers[2]
        assert 4 not in followers[2]

    def test_line_followers_keep_conditional_raise_open(self):
        fn = ast.parse(
            "def f(self, bad):\n"
            "    self.a = 1\n"        # line 2
            "    if bad:\n"           # line 3
            "        raise ValueError\n"  # line 4
            "    self.b = 2\n"        # line 5
        ).body[0]
        followers = _line_followers(fn)
        assert {4, 5} <= followers[2]


class TestManifestWorkflow:
    def test_render_manifest_merges_and_rots(self):
        project = _project({"src/repro/engine/mini.py": _engine()})
        curated = {
            "MiniRuntime.acked": {"kind": "derived", "reason": "transient"},
            "Gone.attr": {"kind": "engine-global", "reason": "rotted"},
        }
        manifest = render_manifest(project, curated=curated)
        assert manifest["MiniRuntime.acked"] == {
            "kind": "derived",
            "reason": "transient",
        }
        assert "Gone.attr" not in manifest
        assert manifest["MiniRuntime.cursor"] == {
            "kind": "unclassified",
            "reason": "",
        }

    def test_load_rejects_bad_kind_and_missing_reason(self, tmp_path):
        def write(manifest):
            path = tmp_path / "analysis_baseline.json"
            path.write_text(
                json.dumps(
                    {"version": 1, "effects": {}, "accepted": {},
                     "state_manifest": manifest}
                )
            )
            return path

        load_baseline(write({"A.x": {"kind": "unclassified", "reason": ""}}))
        with pytest.raises(ValueError, match="needs a kind"):
            load_baseline(write({"A.x": {"kind": "sometimes"}}))
        with pytest.raises(ValueError, match="without a reason"):
            load_baseline(write({"A.x": {"kind": "per-query", "reason": " "}}))

    def test_repo_manifest_covers_the_live_engine_surface(self):
        """The checked-in inventory names the fields recovery depends on."""
        baseline = load_baseline(REPO_ROOT / "analysis_baseline.json")
        manifest = baseline.state_manifest
        assert set(MANIFEST_KINDS) >= {e["kind"] for e in manifest.values()}
        # the engine-side per-query maps released by _finish_query
        for attr in (
            "QGraphEngine._checkpoints",
            "QGraphEngine._activated",
            "QGraphEngine._inflight",
            "QGraphEngine.running",
        ):
            assert manifest[attr]["kind"] == "per-query", attr
        # the nine checkpointed runtime fields
        for attr in (
            "QueryRuntime.iteration",
            "QueryRuntime.state",
            "QueryRuntime.mailboxes",
            "QueryRuntime.next_mailboxes",
            "QueryRuntime.pending_remote_inbound",
            "QueryRuntime.agg_committed",
            "QueryRuntime.scope",
            "QueryRuntime.kstate",
            "QueryRuntime.scope_mask",
        ):
            assert manifest[attr]["kind"] == "per-query", attr
        # barrier transients rebuilt by reset_barrier_protocol()
        assert manifest["QueryRuntime.barrier_epoch"]["kind"] == "derived"
        assert manifest["QueryRuntime.acked"]["kind"] == "derived"
