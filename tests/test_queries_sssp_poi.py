"""Correctness tests for SSSP and POI against reference implementations."""

import heapq

import numpy as np
import pytest

from repro.core import Controller
from repro.engine import EngineConfig, QGraphEngine, Query
from repro.errors import QueryError
from repro.graph import GraphBuilder, generate_road_network, grid_graph
from repro.partitioning import HashPartitioner
from repro.queries import PoiProgram, SsspProgram
from repro.simulation.cluster import make_cluster


def dijkstra(graph, source):
    """Reference shortest paths (binary-heap Dijkstra)."""
    dist = {source: 0.0}
    heap = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist.get(u, np.inf):
            continue
        lo, hi = graph.indptr[u], graph.indptr[u + 1]
        for i in range(lo, hi):
            v = int(graph.indices[i])
            nd = d + float(graph.weights[i])
            if nd < dist.get(v, np.inf):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return dist


def run_query(graph, program, initial, k=3):
    assignment = HashPartitioner(seed=1).partition(graph, k)
    eng = QGraphEngine(
        graph,
        make_cluster("M2", k),
        assignment,
        controller=Controller(k),
        config=EngineConfig(adaptive=False),
    )
    eng.submit(Query(0, program, initial))
    eng.run()
    return eng


@pytest.fixture(scope="module")
def road():
    return generate_road_network(
        num_cities=3, num_urban_vertices=600, seed=3, region_size=40.0
    )


class TestSssp:
    def test_grid_distance(self):
        g = grid_graph(7, 7)
        eng = run_query(g, SsspProgram(0, 48), (0,))
        assert eng.query_result(0)["distance"] == pytest.approx(12.0)

    def test_matches_dijkstra_on_road_network(self, road):
        g = road.graph
        ref = dijkstra(g, 0)
        for target in (5, 50, 150, 400):
            eng = run_query(g, SsspProgram(0, target), (0,))
            got = eng.query_result(0)["distance"]
            want = ref.get(target)
            if want is None:
                assert got is None
            else:
                assert got == pytest.approx(want, rel=1e-9)

    def test_untargeted_full_sssp(self):
        g = grid_graph(5, 5)
        eng = run_query(g, SsspProgram(0), (0,))
        distances = eng.query_result(0)["distances"]
        ref = dijkstra(g, 0)
        assert distances == pytest.approx(ref)

    def test_unreachable_target(self):
        b = GraphBuilder(3)
        b.add_edge(0, 1, 1.0)  # vertex 2 isolated
        g = b.build()
        eng = run_query(g, SsspProgram(0, 2), (0,), k=2)
        assert eng.query_result(0)["distance"] is None

    def test_target_pruning_shrinks_scope(self, road):
        """Target pruning must settle far fewer vertices than full SSSP."""
        g = road.graph
        full = run_query(g, SsspProgram(0), (0,))
        pruned = run_query(g, SsspProgram(0, 10), (0,))
        assert (
            pruned.query_result(0)["settled"] < full.query_result(0)["settled"]
        )

    def test_pruning_does_not_change_answer(self, road):
        g = road.graph
        ref = dijkstra(g, 7)
        for target in (20, 80, 200):
            eng = run_query(g, SsspProgram(7, target), (7,))
            want = ref.get(target)
            got = eng.query_result(0)["distance"]
            if want is not None:
                assert got == pytest.approx(want, rel=1e-9)

    def test_validation(self):
        with pytest.raises(QueryError):
            SsspProgram(-1)
        with pytest.raises(QueryError):
            SsspProgram(0, -2)


class TestPoi:
    def poi_graph(self):
        g = grid_graph(6, 6)
        # rebuild with tags at two corners
        b = GraphBuilder(36)
        for u, v, w in g.edges():
            b.add_edge(u, v, w)
        b.set_tag(35)  # far corner
        b.set_tag(5)   # close: top-right of first row
        return b.build()

    def test_finds_nearest_tagged(self):
        g = self.poi_graph()
        eng = run_query(g, PoiProgram(0), (0,), k=2)
        result = eng.query_result(0)
        assert result["poi"] == 5
        assert result["distance"] == pytest.approx(5.0)

    def test_brute_force_agreement(self):
        rng_net = generate_road_network(
            num_cities=3,
            num_urban_vertices=500,
            seed=11,
            region_size=40.0,
            tag_probability=1 / 50.0,
        )
        g = rng_net.graph
        ref = dijkstra(g, 0)
        tagged = g.tagged_vertices()
        want = min(
            (ref[t] for t in tagged.tolist() if t in ref), default=None
        )
        eng = run_query(g, PoiProgram(0), (0,))
        got = eng.query_result(0)["distance"]
        assert got == pytest.approx(want, rel=1e-9)

    def test_start_is_tagged(self):
        g = self.poi_graph()
        eng = run_query(g, PoiProgram(5), (5,), k=2)
        result = eng.query_result(0)
        assert result["poi"] == 5
        assert result["distance"] == 0.0

    def test_requires_tags(self):
        g = grid_graph(3, 3)
        with pytest.raises(QueryError):
            PoiProgram(0).init_messages(g, (0,))

    def test_bound_prunes_search(self):
        g = self.poi_graph()
        eng = run_query(g, PoiProgram(0), (0,), k=2)
        # the wave must not settle the whole grid: POI at distance 5 bounds it
        assert eng.query_result(0)["settled"] < 36
