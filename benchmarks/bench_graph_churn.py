"""Graph churn: adaptive Q-cut vs static partitioning under a mutating topology.

The streaming-churn subsystem (``repro.graph.delta``) lets road closures,
new segments, traffic reweights and junction churn flow through the engine
while queries run — the continuous multi-query-over-graph-streams setting
(Zervakis et al.) that a frozen ``DiGraph`` made unrepresentable.  This
benchmark gates the three contracts of the subsystem on a pinned
deterministic instance:

* **zero-churn identity** — running on a :class:`MutableDiGraph` with no
  churn events is *event-for-event identical* (same per-query lifecycle,
  message counters, barrier counts, total processed events, answers) to the
  pre-PR engine running on the plain immutable graph;
* **epoch equivalence** — after the churn run, the mutated CSR equals a
  fresh :class:`DiGraph` constructed from the same edge list
  (``fresh_rebuild``), i.e. periodic rebuilds never drift;
* **adaptivity under churn** — the paper's claim survives topology churn:
  the adaptive engine beats (>=) the static one on mean query locality on
  the Fig. 5 disturbance workload with churn superimposed.

Machine-readable results go to ``BENCH_churn.json``.

Run standalone:  PYTHONPATH=src python benchmarks/bench_graph_churn.py
Environment knobs: REPRO_CHURN_BENCH_MAIN, REPRO_CHURN_BENCH_DISTURBANCE,
REPRO_CHURN_BENCH_PARALLEL, REPRO_CHURN_BENCH_RATE, REPRO_CHURN_BENCH_SPAN,
REPRO_CHURN_BENCH_SEED, REPRO_CHURN_BENCH_GATE (0 disables the
adaptive>=static gate for exploratory runs), REPRO_CHURN_BENCH_JSON.
"""

from __future__ import annotations

import json
import os
from typing import Dict

import numpy as np

from repro.bench.harness import (
    Scenario,
    default_controller_config,
    road_network_for,
    run_scenario,
)
from repro.core.controller import Controller
from repro.engine.engine import EngineConfig, QGraphEngine
from repro.graph.delta import MutableDiGraph, fresh_rebuild
from repro.partitioning import HashPartitioner
from repro.simulation.tracing import MetricsTrace
from repro.workload.generator import WorkloadGenerator

#: pinned deterministic instance — the adaptive>=static locality gate was
#: verified for this configuration (and the CI small instance); other sizes
#: are exploratory and should disable the gate
MAIN_QUERIES = int(os.environ.get("REPRO_CHURN_BENCH_MAIN", 96))
DISTURBANCE_QUERIES = int(os.environ.get("REPRO_CHURN_BENCH_DISTURBANCE", 32))
MAX_PARALLEL = int(os.environ.get("REPRO_CHURN_BENCH_PARALLEL", 16))
CHURN_RATE = float(os.environ.get("REPRO_CHURN_BENCH_RATE", 120.0))
CHURN_SPAN = float(os.environ.get("REPRO_CHURN_BENCH_SPAN", 0.25))
SEED = int(os.environ.get("REPRO_CHURN_BENCH_SEED", 5))
GATE = os.environ.get("REPRO_CHURN_BENCH_GATE", "1") != "0"
JSON_PATH = os.environ.get("REPRO_CHURN_BENCH_JSON", "BENCH_churn.json")


def _fingerprint(engine: QGraphEngine, trace: MetricsTrace):
    """Everything observable about a run, for event-for-event comparison."""
    return (
        {
            qid: (r.start_time, r.end_time, r.iterations, r.local_iterations)
            for qid, r in trace.queries.items()
        },
        [
            (r.time, r.moved_vertices, r.num_moves, r.involved_workers)
            for r in trace.repartitions
        ],
        trace.local_messages,
        trace.remote_messages,
        trace.remote_batches,
        trace.barrier_acks,
        trace.barrier_releases,
        engine._events_processed,
    )


def _run_identity_arm(wrap: bool):
    """One zero-churn run: on the plain graph (pre-PR path) or wrapped."""
    rn = road_network_for("bw", None, seed=0)
    graph = MutableDiGraph.from_digraph(rn.graph) if wrap else rn.graph
    k = 8
    assignment = HashPartitioner(seed=SEED).partition(graph, k)
    from repro.simulation.cluster import make_cluster

    controller = Controller(k, default_controller_config())
    engine = QGraphEngine(
        graph,
        make_cluster("M2", k),
        assignment,
        controller=controller,
        config=EngineConfig(max_parallel_queries=MAX_PARALLEL),
    )
    wl = WorkloadGenerator(rn, seed=SEED + 1).paper_sssp_workload(
        main_queries=MAIN_QUERIES, disturbance_queries=DISTURBANCE_QUERIES
    )
    wl.submit_all(engine)
    trace = engine.run()
    answers = {qid: engine.query_result(qid) for qid in sorted(trace.queries)}
    return engine, trace, answers


def check_zero_churn_identity() -> None:
    print("gate 1: zero-churn identity (MutableDiGraph vs pre-PR DiGraph)")
    e_plain, t_plain, a_plain = _run_identity_arm(wrap=False)
    e_wrap, t_wrap, a_wrap = _run_identity_arm(wrap=True)
    assert not t_wrap.churn_events, "zero-churn run recorded churn epochs"
    assert _fingerprint(e_plain, t_plain) == _fingerprint(e_wrap, t_wrap), (
        "zero-churn run on MutableDiGraph diverged from the immutable-graph "
        "engine (event counts or query lifecycles differ)"
    )
    assert a_plain == a_wrap, "zero-churn answers differ"
    print(
        f"  identical: {len(a_plain)} queries, "
        f"{e_plain._events_processed} events each"
    )


def churn_scenario(adaptive: bool) -> Scenario:
    return Scenario(
        name=f"churn-{'adaptive' if adaptive else 'static'}",
        graph_preset="bw",
        partitioner="hash",  # poor initial locality: adaptation has headroom
        k=8,
        adaptive=adaptive,
        workload="sssp",
        main_queries=MAIN_QUERIES,
        disturbance_queries=DISTURBANCE_QUERIES,
        max_parallel=MAX_PARALLEL,
        churn=CHURN_RATE,
        churn_span=CHURN_SPAN,
        seed=SEED,
    )


def run_comparison() -> Dict[str, float]:
    check_zero_churn_identity()

    total = MAIN_QUERIES + DISTURBANCE_QUERIES
    print(
        f"\ngraph churn: {total} queries ({MAIN_QUERIES} intra + "
        f"{DISTURBANCE_QUERIES} disturbance), churn {CHURN_RATE}/s over "
        f"{CHURN_SPAN}s, hash partitioning, seed={SEED}"
    )
    print(
        f"{'arm':>9s} {'makespan':>10s} {'mean_lat':>10s} {'locality':>9s} "
        f"{'repart':>7s} {'epochs':>7s} {'dead':>5s} {'added':>6s}"
    )
    results = {}
    for adaptive in (True, False):
        res = run_scenario(churn_scenario(adaptive))
        name = "adaptive" if adaptive else "static"
        results[name] = res
        finished = len(res.trace.finished_queries())
        assert finished == total, f"{name}: only {finished}/{total} finished"
        graph = res.engine.graph
        assert isinstance(graph, MutableDiGraph)
        print(
            f"{name:>9s} {res.makespan:>10.4f} {res.mean_latency:>10.5f} "
            f"{res.mean_locality:>9.4f} {len(res.trace.repartitions):>7d} "
            f"{len(res.trace.churn_events):>7d} "
            f"{int(np.count_nonzero(graph.dead_mask)):>5d} "
            f"{int(sum(c.added_vertices for c in res.trace.churn_events)):>6d}"
        )

        # gate 2: the mutated CSR equals fresh construction from the same
        # edge list — periodic rebuilds never drift
        fresh = fresh_rebuild(graph)
        assert np.array_equal(graph.indptr, fresh.indptr)
        assert np.array_equal(graph.indices, fresh.indices)
        assert np.array_equal(graph.weights, fresh.weights)
        assert res.trace.churn_events, f"{name}: churn process produced no epochs"

    adaptive, static = results["adaptive"], results["static"]
    gain = adaptive.mean_locality - static.mean_locality
    print(
        f"\nadaptive vs static under churn: locality "
        f"{static.mean_locality:.4f} -> {adaptive.mean_locality:.4f} "
        f"({gain:+.4f}), makespan {static.makespan:.4f} -> "
        f"{adaptive.makespan:.4f}"
    )

    stats = {
        "main_queries": MAIN_QUERIES,
        "disturbance_queries": DISTURBANCE_QUERIES,
        "max_parallel": MAX_PARALLEL,
        "churn_rate": CHURN_RATE,
        "churn_span": CHURN_SPAN,
        "seed": SEED,
        "locality_gain_adaptive_vs_static": round(gain, 4),
    }
    for name, res in results.items():
        graph = res.engine.graph
        churn = res.trace.churn_events
        stats[name] = {
            "makespan": round(res.makespan, 6),
            "mean_latency": round(res.mean_latency, 6),
            "mean_locality": round(res.mean_locality, 4),
            "repartitions": len(res.trace.repartitions),
            "churn_epochs": len(churn),
            "inserted_edges": int(sum(c.inserted_edges for c in churn)),
            "deleted_edges": int(sum(c.deleted_edges for c in churn)),
            "updated_weights": int(sum(c.updated_weights for c in churn)),
            "added_vertices": int(sum(c.added_vertices for c in churn)),
            "removed_vertices": int(sum(c.removed_vertices for c in churn)),
            "dropped_messages": int(sum(c.dropped_messages for c in churn)),
            "wall_seconds": round(res.wall_seconds, 3),
        }
    with open(JSON_PATH, "w") as fh:
        json.dump(stats, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {JSON_PATH}")

    if GATE:
        assert adaptive.mean_locality >= static.mean_locality, (
            f"adaptive lost on mean locality under churn: "
            f"{adaptive.mean_locality:.4f} vs static {static.mean_locality:.4f}"
        )
    return {
        "locality_gain_adaptive_vs_static": gain,
        "adaptive_locality": adaptive.mean_locality,
        "static_locality": static.mean_locality,
    }


def test_graph_churn(benchmark, record_info):
    stats = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    record_info(**stats)


if __name__ == "__main__":
    run_comparison()
