"""Vectorized kernel layer vs generic per-vertex execution.

Runs the same batch of 16 parallel queries (8 SSSP + 8 BFS, hub-seeded) on a
100k-vertex R-MAT graph twice — once through the numpy kernel path
(``EngineConfig(use_kernels=True)``, the default) and once through the
generic per-vertex dict path — and reports the wall-clock speedup.

Assertions (the PR's acceptance bar):

* every query answer is identical between the two paths (``==`` on the full
  result dicts, i.e. bit-identical distances/depths);
* the vectorized path is at least 2x faster.

Run standalone:  PYTHONPATH=src python benchmarks/bench_kernels_speedup.py
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Tuple

from repro.core import Controller
from repro.engine import EngineConfig, QGraphEngine, Query
from repro.graph import rmat_graph
from repro.partitioning import HashPartitioner
from repro.queries import BfsProgram, SsspProgram
from repro.simulation.cluster import make_cluster

NUM_VERTICES = int(os.environ.get("REPRO_KERNEL_BENCH_VERTICES", 100_000))
EDGE_FACTOR = 8
NUM_WORKERS = 8
NUM_QUERIES = 16  # the paper's "batches of 16 parallel queries"
#: wall-clock gate; set to 0 (e.g. on noisy shared CI runners) to assert
#: only result identity and skip the timing assertion
MIN_SPEEDUP = float(os.environ.get("REPRO_KERNEL_BENCH_MIN_SPEEDUP", 2.0))


def build_workload() -> Tuple[object, object, List[Query]]:
    graph = rmat_graph(NUM_VERTICES, EDGE_FACTOR, seed=1)
    assignment = HashPartitioner(seed=0).partition(graph, NUM_WORKERS)
    hubs = graph.out_degrees().argsort()[-NUM_QUERIES:][::-1]
    queries = []
    for qid in range(NUM_QUERIES):
        start = int(hubs[qid])
        program = SsspProgram(start) if qid % 2 == 0 else BfsProgram(start)
        queries.append(Query(qid, program, (start,)))
    return graph, assignment, queries


def run_path(graph, assignment, queries, use_kernels: bool) -> Tuple[float, Dict[int, object]]:
    engine = QGraphEngine(
        graph,
        make_cluster("M2", NUM_WORKERS),
        assignment,
        controller=Controller(NUM_WORKERS),
        config=EngineConfig(
            adaptive=False,
            max_parallel_queries=NUM_QUERIES,
            use_kernels=use_kernels,
        ),
    )
    for query in queries:
        engine.submit(query)
    t0 = time.perf_counter()
    engine.run()
    wall = time.perf_counter() - t0
    results = {q.query_id: engine.query_result(q.query_id) for q in queries}
    assert all(engine.runtimes[q.query_id].finished for q in queries)
    return wall, results


def run_comparison() -> Dict[str, float]:
    graph, assignment, queries = build_workload()
    wall_vec, res_vec = run_path(graph, assignment, queries, use_kernels=True)
    wall_gen, res_gen = run_path(graph, assignment, queries, use_kernels=False)
    for qid in res_vec:
        assert res_vec[qid] == res_gen[qid], (
            f"query {qid}: vectorized and generic results differ"
        )
    speedup = wall_gen / wall_vec
    settled = sum(r["settled"] for q, r in res_vec.items() if q % 2 == 0)
    print(
        f"\nkernel speedup: {NUM_QUERIES} queries on "
        f"{graph.num_vertices} vertices / {graph.num_edges} edges: "
        f"generic {wall_gen:.2f}s vs vectorized {wall_vec:.2f}s "
        f"-> {speedup:.1f}x (results identical; "
        f"{settled} vertices settled across SSSP queries)"
    )
    if MIN_SPEEDUP > 0:
        assert speedup >= MIN_SPEEDUP, (
            f"vectorized path only {speedup:.2f}x faster (need >= {MIN_SPEEDUP}x)"
        )
    return {"wall_generic": wall_gen, "wall_vectorized": wall_vec, "speedup": speedup}


def test_kernels_speedup(benchmark, record_info):
    stats = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    record_info(**stats)


if __name__ == "__main__":
    run_comparison()
