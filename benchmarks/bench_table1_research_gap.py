"""Table 1 — the research gap as a measured capability matrix.

The paper's Table 1 classifies systems by Locality / Multi-query /
Adaptivity.  We emulate each system class with the corresponding engine
configuration and measure the resulting latency on the same CGA workload,
demonstrating that each capability contributes:

* Pregel-like       : shared BSP barrier, Hash, static
* PowerLyra-like    : shared BSP barrier, locality partitioning, static
* Mizan-like        : shared BSP barrier, Hash, adaptive repartitioning
* Seraph-like       : per-query global barriers, Hash, static
* Q-Graph           : hybrid barriers, Q-cut adaptive partitioning
"""

from repro.bench import Scenario, scale_queries
from repro.bench.reporting import format_table
from repro.engine import SyncMode
from benchmarks.conftest import run_arms


MATRIX = {
    # name: (sync mode, partitioner, adaptive, locality, multi-query, adaptivity)
    "pregel-like": (SyncMode.SHARED_BSP, "hash", False, "x", "x", "x"),
    "powerlyra-like": (SyncMode.SHARED_BSP, "domain", False, "OK", "x", "x"),
    "mizan-like": (SyncMode.SHARED_BSP, "hash", True, "x", "x", "OK"),
    "seraph-like": (SyncMode.GLOBAL_PER_QUERY, "hash", False, "x", "OK", "x"),
    "q-graph": (SyncMode.HYBRID, "hash", True, "OK", "OK", "OK"),
}


def build_arms():
    n = scale_queries(512, minimum=128)
    arms = {}
    for name, (mode, part, adaptive, *_flags) in MATRIX.items():
        arms[name] = Scenario(
            name=name,
            partitioner=part,
            sync_mode=mode,
            adaptive=adaptive,
            graph_preset="bw",
            infrastructure="M2",
            k=8,
            main_queries=n,
            seed=3,
        )
    return arms


def test_table1_research_gap(benchmark, record_info):
    results = benchmark.pedantic(run_arms, args=(build_arms(),), rounds=1, iterations=1)
    rows = []
    for name, (mode, part, adaptive, loc, multi, adapt) in MATRIX.items():
        r = results[name]
        rows.append(
            (name, loc, multi, adapt, r.mean_latency, r.mean_locality)
        )
    print(
        "\n"
        + format_table(
            ["system class", "Locality", "Multi-query", "Adaptivity", "mean latency", "measured locality"],
            rows,
            title="Table 1: capability matrix, measured on the same CGA workload",
        )
    )
    # Q-Graph (all three capabilities) must beat the single-capability classes
    qgraph = results["q-graph"].mean_latency
    assert qgraph < results["pregel-like"].mean_latency
    assert qgraph < results["seraph-like"].mean_latency
    record_info(
        qgraph=qgraph,
        pregel=results["pregel-like"].mean_latency,
        seraph=results["seraph-like"].mean_latency,
        powerlyra=results["powerlyra-like"].mean_latency,
    )
