"""Figure 1 — the motivating example.

Query-agnostic edge-cut prefers cut 3 (edge-cut 2) even though it splits
query q2; the query-aware metric prefers cuts 1/2 (query-cut 0).  This bench
recomputes every number printed in the figure.
"""

import numpy as np

from repro.bench.reporting import format_table
from repro.core import query_cut_excess
from repro.graph import edge_cut, new_york_districts
from repro.graph.generators import NY_CUTS, NY_QUERY_SCOPES


def compute_figure1_rows():
    graph = new_york_districts()
    scopes = {i: set(s) for i, s in enumerate(NY_QUERY_SCOPES.values())}
    rows = []
    for name in ("cut1", "cut2", "cut3"):
        side = NY_CUTS[name]
        assignment = np.array([0 if v in side else 1 for v in range(10)])
        rows.append(
            (
                name,
                edge_cut(graph, assignment) // 2,  # undirected connections
                query_cut_excess(scopes, assignment, 2),
            )
        )
    return rows


def test_fig1_motivating_example(benchmark, record_info):
    rows = benchmark.pedantic(compute_figure1_rows, rounds=1, iterations=1)
    print(
        "\n"
        + format_table(
            ["cut", "|Edge-cut|", "|Query-cut|"],
            rows,
            title="Figure 1 (paper: cut1=6/0, cut2=8/0, cut3=2/1)",
        )
    )
    by_name = {r[0]: r for r in rows}
    assert by_name["cut1"][1:] == (6, 0)
    assert by_name["cut2"][1:] == (8, 0)
    assert by_name["cut3"][1:] == (2, 1)
    record_info(
        cut1_edge=by_name["cut1"][1],
        cut2_edge=by_name["cut2"][1],
        cut3_edge=by_name["cut3"][1],
        cut3_query=by_name["cut3"][2],
    )
