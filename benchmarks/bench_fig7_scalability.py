"""Figure 7 — scale-out on the C1 cluster (SSSP and POI on BW).

Paper (1024 queries, 16 parallel): with Hash, total latency improves from
2->8 workers (927 -> 474 s) but *degrades* beyond 8 (863 s at more workers)
because communication overhead dominates; Q-cut cuts it to 283 s at k=8.
Domain keeps improving through k=16 (1790 -> 562 s) and Q-cut-on-Domain
reaches 301 s.  The same shape holds for POI (Fig. 7b).
"""

import pytest

from repro.bench import Scenario, scale_queries
from repro.bench.reporting import format_table
from benchmarks.conftest import run_arms


WORKER_COUNTS = (2, 4, 8, 16)


def build_arms(workload):
    n = scale_queries(1024, minimum=192)
    arms = {}
    for part in ("hash", "domain"):
        for adaptive in (False, True):
            for k in WORKER_COUNTS:
                label = f"{part}{'-qcut' if adaptive else ''}/k={k}"
                arms[label] = Scenario(
                    name=label,
                    partitioner=part,
                    adaptive=adaptive,
                    graph_preset="bw",
                    infrastructure="C1",
                    k=k,
                    workload=workload,
                    main_queries=n,
                    seed=3,
                )
    return arms


def scalability_report(results, title, record_info):
    rows = []
    series = {}
    for part in ("hash", "hash-qcut", "domain", "domain-qcut"):
        values = [results[f"{part}/k={k}"].makespan for k in WORKER_COUNTS]
        series[part] = values
        rows.append([part] + values)
    print(
        "\n"
        + format_table(
            ["series"] + [f"k={k}" for k in WORKER_COUNTS],
            rows,
            title=title,
        )
    )
    record_info(
        hash_k2=series["hash"][0],
        hash_k8=series["hash"][2],
        hash_k16=series["hash"][3],
        domain_k2=series["domain"][0],
        domain_k16=series["domain"][3],
        qcut_k8=series["hash-qcut"][2],
    )
    return series


def test_fig7a_scalability_sssp(benchmark, record_info):
    results = benchmark.pedantic(
        run_arms, args=(build_arms("sssp"),), rounds=1, iterations=1
    )
    series = scalability_report(
        results, "Figure 7a: total query latency (makespan) on C1, SSSP", record_info
    )
    # paper shapes:
    # (1) Hash improves from k=2 to k=8 ...
    assert series["hash"][2] < series["hash"][0]
    # (2) ... but stops scaling beyond k=8 (NIC sharing + communication)
    assert series["hash"][3] > 0.85 * series["hash"][2]
    # (3) Domain keeps improving through k=16
    assert series["domain"][3] < series["domain"][0]
    # (4) Q-cut improves on its static baseline at k=8
    assert series["hash-qcut"][2] < 1.05 * series["hash"][2]


def test_fig7b_scalability_poi(benchmark, record_info):
    results = benchmark.pedantic(
        run_arms, args=(build_arms("poi"),), rounds=1, iterations=1
    )
    series = scalability_report(
        results, "Figure 7b: total query latency (makespan) on C1, POI", record_info
    )
    assert series["hash"][2] < series["hash"][0]
    assert series["domain"][3] < series["domain"][0]
