"""Controller Monitor→Plan pipeline: array-backed vs set-based planning.

The paper claims Q-cut planning is cheap because the controller "operates on
a small number of queries rather than a large number of vertices" and fits a
2-second budget (§3.2.2, §3.4).  This benchmark times the **full
Monitor→Plan path** — scope ingestion, pairwise intersections, Karger
clustering, snapshot construction, and the ILS — on an R-MAT graph with
hotspot-localized overlapping queries, once through the vectorized
``ScopeStore`` backend (``ControllerConfig(planning_backend="vectorized")``,
the default) and once through the retained set-based reference backend.

Assertions (the PR's acceptance bar):

* on a smaller instance both backends emit an **identical MovePlan**
  (same costs, same moves, same vertex sets);
* at full scale (>= 200k vertices, 128 queries) the vectorized pipeline is
  at least 5x faster end to end.

Machine-readable results are written to ``BENCH_controller.json`` so the
planning-latency trajectory is tracked across PRs.

Run standalone:  PYTHONPATH=src python benchmarks/bench_controller_planning.py
Environment knobs: REPRO_CTRL_BENCH_VERTICES, REPRO_CTRL_BENCH_QUERIES,
REPRO_CTRL_BENCH_MIN_SPEEDUP (0 disables the timing gate, e.g. on CI),
REPRO_CTRL_BENCH_JSON (output path).
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, List, Tuple

import numpy as np

from repro.core import Controller, ControllerConfig, MovePlan
from repro.graph import rmat_graph
from repro.partitioning import HashPartitioner
from repro.util import concat_ranges

NUM_VERTICES = int(os.environ.get("REPRO_CTRL_BENCH_VERTICES", 200_000))
NUM_QUERIES = int(os.environ.get("REPRO_CTRL_BENCH_QUERIES", 128))
NUM_WORKERS = 8
NUM_HOTSPOTS = 8
#: wall-clock gate; set to 0 (e.g. on noisy shared CI runners) to assert
#: only MovePlan identity and skip the timing assertion
MIN_SPEEDUP = float(os.environ.get("REPRO_CTRL_BENCH_MIN_SPEEDUP", 5.0))
JSON_PATH = os.environ.get("REPRO_CTRL_BENCH_JSON", "BENCH_controller.json")

#: smaller instance for the exact-equivalence check
EQUIV_VERTICES = 4_000
EQUIV_QUERIES = 32


def _bfs_scope(graph, seed: int, target: int) -> np.ndarray:
    """Breadth-first ball of ~``target`` vertices around ``seed``."""
    csr = graph.csr()
    n = graph.num_vertices
    mask = np.zeros(n, dtype=bool)
    mask[seed] = True
    frontier = np.array([seed], dtype=np.int64)
    scope = [frontier]
    count = 1
    while count < target and frontier.size:
        counts = csr.indptr[frontier + 1] - csr.indptr[frontier]
        if int(counts.sum()) == 0:
            break
        nbrs = csr.indices[concat_ranges(csr.indptr[frontier], counts)]
        nbrs = np.unique(nbrs[~mask[nbrs]])
        if nbrs.size == 0:
            break
        mask[nbrs] = True
        frontier = nbrs
        scope.append(nbrs)
        count += nbrs.size
    out = np.concatenate(scope)
    return out[:target]


def build_workload(
    num_vertices: int, num_queries: int, seed: int = 1
) -> Tuple[object, np.ndarray, List[np.ndarray]]:
    """R-MAT graph, hash assignment, and overlapping hotspot query scopes."""
    graph = rmat_graph(num_vertices, 8, seed=seed)
    assignment = HashPartitioner(seed=0).partition(graph, NUM_WORKERS)
    rng = np.random.default_rng(seed + 7)
    hubs = graph.out_degrees().argsort()[-NUM_HOTSPOTS * 4 :][::-1]
    target = max(64, num_vertices // 50)
    scopes = []
    for qid in range(num_queries):
        # queries cluster on hotspots: same hub neighbourhood, jittered start
        hotspot = qid % NUM_HOTSPOTS
        start = int(hubs[hotspot * 4 + int(rng.integers(0, 4))])
        scopes.append(_bfs_scope(graph, start, target))
    return graph, assignment, scopes


def run_pipeline(
    backend: str,
    assignment: np.ndarray,
    scopes: List[np.ndarray],
    chunks_per_query: int = 4,
) -> Tuple[float, MovePlan]:
    """Time scope ingestion + Analyze + Plan for one backend."""
    config = ControllerConfig(
        planning_backend=backend,
        min_queries_for_qcut=1,
        max_tracked_queries=max(128, len(scopes)),
        ils_rounds=12,  # identical (deterministic) ILS budget for both arms
        seed=11,
    )
    ctrl = Controller(NUM_WORKERS, config)
    t0 = time.perf_counter()
    # Monitor: each query reports activations over several barrier rounds
    for qid, scope in enumerate(scopes):
        ctrl.on_query_started(qid, float(qid))
        for i, chunk in enumerate(np.array_split(scope, chunks_per_query)):
            ctrl.on_iteration(qid, NUM_WORKERS, chunk.tolist(), float(qid) + 0.1 * i)
    # Analyze: the Φ / δ trigger signals
    ctrl.average_locality()
    ctrl.estimate_imbalance(assignment)
    # Plan: intersections -> clustering -> snapshot -> ILS
    ctrl.begin_qcut(assignment, 1_000.0)
    plan = ctrl.complete_qcut(1_001.0)
    wall = time.perf_counter() - t0
    return wall, plan


def canonical_plan(plan: MovePlan) -> Tuple:
    """Order-insensitive MovePlan fingerprint for equality checks."""
    return (
        round(plan.cost_before, 6),
        round(plan.cost_after, 6),
        sorted(
            (m.src, m.dst, tuple(sorted(m.vertices.tolist()))) for m in plan.moves
        ),
    )


def run_comparison() -> Dict[str, float]:
    # --- equivalence on a small instance -------------------------------
    _, small_assignment, small_scopes = build_workload(
        EQUIV_VERTICES, EQUIV_QUERIES, seed=3
    )
    _, plan_vec = run_pipeline("vectorized", small_assignment, small_scopes)
    _, plan_ref = run_pipeline("reference", small_assignment, small_scopes)
    assert canonical_plan(plan_vec) == canonical_plan(plan_ref), (
        "vectorized and reference planning produced different MovePlans"
    )
    assert plan_vec.moves, "equivalence instance should produce moves"

    # --- timing at full scale ------------------------------------------
    graph, assignment, scopes = build_workload(NUM_VERTICES, NUM_QUERIES)
    wall_vec, big_vec = run_pipeline("vectorized", assignment, scopes)
    wall_ref, big_ref = run_pipeline("reference", assignment, scopes)
    assert canonical_plan(big_vec) == canonical_plan(big_ref), (
        "backends diverged at full scale"
    )
    speedup = wall_ref / wall_vec
    stats = {
        "vertices": graph.num_vertices,
        "edges": graph.num_edges,
        "queries": NUM_QUERIES,
        "workers": NUM_WORKERS,
        "scope_vertices": int(sum(s.size for s in scopes)),
        "wall_reference": round(wall_ref, 4),
        "wall_vectorized": round(wall_vec, 4),
        "speedup": round(speedup, 2),
        "moves": len(big_vec.moves),
        "moved_vertices": big_vec.moved_vertices,
        "cost_before": big_vec.cost_before,
        "cost_after": big_vec.cost_after,
    }
    print(
        f"\ncontroller planning: {NUM_QUERIES} queries on "
        f"{graph.num_vertices} vertices: reference {wall_ref:.2f}s vs "
        f"vectorized {wall_vec:.2f}s -> {speedup:.1f}x "
        f"(plans identical; {len(big_vec.moves)} moves relocating "
        f"{big_vec.moved_vertices} vertices, cost {big_vec.cost_before:.0f} "
        f"-> {big_vec.cost_after:.0f})"
    )
    with open(JSON_PATH, "w") as fh:
        json.dump(stats, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {JSON_PATH}")
    if MIN_SPEEDUP > 0:
        assert speedup >= MIN_SPEEDUP, (
            f"vectorized planning only {speedup:.2f}x faster "
            f"(need >= {MIN_SPEEDUP}x)"
        )
    return {
        "wall_reference": wall_ref,
        "wall_vectorized": wall_vec,
        "speedup": speedup,
    }


def test_controller_planning(benchmark, record_info):
    stats = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    record_info(**stats)


if __name__ == "__main__":
    run_comparison()
