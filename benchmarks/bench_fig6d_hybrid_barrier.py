"""Figure 6d — hybrid barrier synchronization vs traditional barriers.

Paper (64 SSSP queries, BW, k=8, M1): better partitioning (Domain vs Hash)
gives 1.7-2.4x lower total latency; the hybrid barrier gives an additional
1.2-1.7x for both partitionings compared to BSP-like global synchronization.
We additionally report the Seraph-style per-query global barrier [44], and
an adaptive hybrid arm whose repartition cost is reported as the honest
``stall_duration`` (STOP-begin → START) — the legacy ``barrier_duration``
also charges the asynchronous Q-cut planning time that §3.4 explicitly
overlaps with query execution, overstating the barrier's price.
"""

from repro.bench import Scenario, scale_queries
from repro.bench.reporting import format_table
from repro.engine import SyncMode
from benchmarks.conftest import run_arms


def build_arms():
    n = scale_queries(64, minimum=64)
    base = dict(
        graph_preset="bw",
        infrastructure="M1",
        k=8,
        main_queries=n,
        adaptive=False,
        seed=3,
    )
    arms = {}
    for part in ("hash", "domain"):
        for mode in (SyncMode.SHARED_BSP, SyncMode.GLOBAL_PER_QUERY, SyncMode.HYBRID):
            name = f"{part}/{mode.value}"
            arms[name] = Scenario(
                name=name, partitioner=part, sync_mode=mode, **base
            )
    # adaptive arm: how much of the hybrid barrier budget STOP/START costs
    arms["hash/hybrid+qcut"] = Scenario(
        name="hash/hybrid+qcut",
        partitioner="hash",
        sync_mode=SyncMode.HYBRID,
        **{**base, "adaptive": True},
    )
    return arms


def test_fig6d_hybrid_barrier(benchmark, record_info):
    results = benchmark.pedantic(run_arms, args=(build_arms(),), rounds=1, iterations=1)
    rows = [
        (
            name,
            r.total_latency,
            r.makespan,
            r.trace.barrier_acks,
            r.trace.total_repartition_stall(),
        )
        for name, r in results.items()
    ]
    print(
        "\n"
        + format_table(
            ["arm", "total latency", "makespan", "barrier acks", "repart stall"],
            rows,
            title="Figure 6d: barrier models (BW, SSSP, k=8, M1)",
        )
    )
    adaptive = results["hash/hybrid+qcut"]
    stall = adaptive.trace.total_repartition_stall()
    legacy = sum(r.barrier_duration for r in adaptive.trace.repartitions)
    print(
        f"hash/hybrid+qcut: {len(adaptive.trace.repartitions)} repartitions, "
        f"honest STOP/START stall {stall:.5f}s "
        f"(legacy barrier_duration sum {legacy:.5f}s — inflated by the "
        f"async Q-cut planning that overlaps execution)"
    )
    # the honest stall can never exceed the legacy number: STOP-begin is
    # strictly after the Q-cut trigger the legacy field measures from
    assert stall <= legacy
    speedups = {}
    for part in ("hash", "domain"):
        hybrid = results[f"{part}/hybrid"].total_latency
        speedups[part] = {
            "vs shared-bsp": results[f"{part}/shared-bsp"].total_latency / hybrid,
            "vs global-per-query": results[f"{part}/global-per-query"].total_latency
            / hybrid,
        }
        print(
            f"{part}: hybrid barrier speedup "
            f"{speedups[part]['vs shared-bsp']:.2f}x vs BSP-like, "
            f"{speedups[part]['vs global-per-query']:.2f}x vs per-query global "
            f"(paper: 1.2-1.7x)"
        )
    partition_speedup = (
        results["hash/hybrid"].total_latency / results["domain/hybrid"].total_latency
    )
    print(
        f"partitioning effect (Hash->Domain under hybrid): "
        f"{partition_speedup:.2f}x (paper: 1.7-2.4x)"
    )
    record_info(
        hash_vs_bsp=speedups["hash"]["vs shared-bsp"],
        domain_vs_bsp=speedups["domain"]["vs shared-bsp"],
        domain_vs_global=speedups["domain"]["vs global-per-query"],
        partitioning_speedup=partition_speedup,
        adaptive_repart_stall=stall,
        adaptive_repart_stall_legacy=legacy,
    )
    # shape: hybrid is never slower than the traditional barriers, and the
    # benefit is substantial for the locality-friendly Domain partitioning
    assert speedups["domain"]["vs shared-bsp"] > 1.15
    assert speedups["domain"]["vs global-per-query"] > 1.15
    assert speedups["hash"]["vs shared-bsp"] >= 0.98
