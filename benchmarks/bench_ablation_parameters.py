"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper — these sweep the parameters §4.1 discusses
(δ, Φ, the Karger clustering granularity) to show each knob's effect:

* δ (balance cap): smaller δ forbids consolidating hot clusters (lower
  locality); larger δ allows more locality at the cost of imbalance;
* Φ (locality threshold): 0 disables adaptation entirely;
* clusters-per-worker: granularity of the Q-cut moves.
"""

import numpy as np

from repro.bench import Scenario, scale_queries
from repro.bench.reporting import format_table
from benchmarks.conftest import run_arms


def scenario_with(name, **controller_overrides):
    return Scenario(
        name=name,
        partitioner="hash",
        adaptive=True,
        graph_preset="bw",
        infrastructure="M2",
        k=8,
        main_queries=scale_queries(2048, minimum=384),
        seed=3,
        controller_overrides=tuple(controller_overrides.items()),
    )


def tail_locality(result):
    recs = sorted(result.trace.finished_queries(), key=lambda q: q.end_time)
    tail = recs[-len(recs) // 4 :]
    return float(np.mean([q.locality for q in tail]))


def test_ablation_delta(benchmark, record_info):
    arms = {
        f"delta={d}": scenario_with(f"delta={d}", delta=d)
        for d in (0.1, 0.25, 0.6)
    }
    results = benchmark.pedantic(run_arms, args=(arms,), rounds=1, iterations=1)
    rows = [
        (name, tail_locality(r), r.mean_imbalance, r.mean_latency)
        for name, r in results.items()
    ]
    print(
        "\n"
        + format_table(
            ["arm", "tail locality", "imbalance", "mean latency"],
            rows,
            title="Ablation: balance constraint delta (paper uses 0.25)",
        )
    )
    # a looser delta permits at least as much locality as a strict one
    assert tail_locality(results["delta=0.6"]) >= tail_locality(
        results["delta=0.1"]
    ) - 0.05
    record_info(
        loc_tight=tail_locality(results["delta=0.1"]),
        loc_paper=tail_locality(results["delta=0.25"]),
        loc_loose=tail_locality(results["delta=0.6"]),
    )


def test_ablation_phi(benchmark, record_info):
    arms = {
        "phi=0 (never)": scenario_with("phi0", phi=0.0),
        "phi=0.7 (paper)": scenario_with("phi07", phi=0.7),
    }
    results = benchmark.pedantic(run_arms, args=(arms,), rounds=1, iterations=1)
    rows = [
        (
            name,
            tail_locality(r),
            len(r.trace.repartitions),
            r.mean_latency,
        )
        for name, r in results.items()
    ]
    print(
        "\n"
        + format_table(
            ["arm", "tail locality", "repartitions", "mean latency"],
            rows,
            title="Ablation: locality threshold phi",
        )
    )
    assert len(results["phi=0 (never)"].trace.repartitions) == 0
    assert len(results["phi=0.7 (paper)"].trace.repartitions) >= 1
    assert tail_locality(results["phi=0.7 (paper)"]) > tail_locality(
        results["phi=0 (never)"]
    )
    record_info(
        reparts_paper=len(results["phi=0.7 (paper)"].trace.repartitions),
    )


def test_ablation_cluster_granularity(benchmark, record_info):
    arms = {
        f"cpw={c}": scenario_with(f"cpw={c}", clusters_per_worker=c)
        for c in (1, 4, 16)
    }
    results = benchmark.pedantic(run_arms, args=(arms,), rounds=1, iterations=1)
    rows = [
        (name, tail_locality(r), r.mean_latency, len(r.trace.repartitions))
        for name, r in results.items()
    ]
    print(
        "\n"
        + format_table(
            ["arm", "tail locality", "mean latency", "reparts"],
            rows,
            title="Ablation: Karger clusters per worker (paper uses 4, i.e. 4k)",
        )
    )
    # all granularities must still adapt successfully
    for r in results.values():
        assert len(r.trace.repartitions) >= 1
    record_info(
        loc_coarse=tail_locality(results["cpw=1"]),
        loc_paper=tail_locality(results["cpw=4"]),
        loc_fine=tail_locality(results["cpw=16"]),
    )
