"""Shared helpers for the experiment benchmarks.

Every file in this directory regenerates one table or figure of the paper's
evaluation (see DESIGN.md's experiment index).  Benchmarks run each arm once
(``benchmark.pedantic(rounds=1)``) — the interesting output is the printed
comparison table (also captured in ``bench_output.txt``), and each test
attaches its headline ratios to ``benchmark.extra_info``.

Scale is controlled by the ``REPRO_SCALE`` environment variable
(``small`` default / ``medium`` / ``paper``); see ``repro.bench.harness``.
"""

from __future__ import annotations

from typing import Dict

import numpy as np
import pytest

from repro.bench import Scenario, ScenarioResult, run_scenario


def run_arms(arms: Dict[str, Scenario]) -> Dict[str, ScenarioResult]:
    """Run each named scenario arm once, in order."""
    return {name: run_scenario(s) for name, s in arms.items()}


def tail_mean_latency(
    result: ScenarioResult, fraction: float = 0.25, phase: str = None
) -> float:
    """Mean latency of the last ``fraction`` of completed queries.

    The paper's steady-state numbers exclude the adaptation warm-up; the tail
    mean is the equivalent cut for our shorter runs.  ``phase`` restricts the
    computation to one workload phase (e.g. the pre-disturbance queries).
    """
    recs = sorted(
        (
            q
            for q in result.trace.finished_queries()
            if phase is None or q.phase == phase
        ),
        key=lambda q: q.end_time,
    )
    tail = recs[int(len(recs) * (1.0 - fraction)) :]
    if not tail:
        return float("nan")
    return float(np.mean([q.latency for q in tail]))


def reduction(baseline: float, improved: float) -> float:
    """Relative reduction (positive = improved is lower/better)."""
    if baseline == 0:
        return float("nan")
    return 1.0 - improved / baseline


@pytest.fixture
def record_info(benchmark):
    """Attach a dict of headline numbers to the benchmark record."""

    def _record(**kwargs):
        for key, value in kwargs.items():
            benchmark.extra_info[key] = round(float(value), 4)

    return _record
