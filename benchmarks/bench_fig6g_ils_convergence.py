"""Figure 6g — ILS cost convergence with perturbation markers.

Paper: monitoring the first Q-cut execution on the Hash-partitioned BW graph,
costs drop by more than 75% within the 2-second budget; perturbations
visibly escape local minima.
"""

import numpy as np

from repro.bench import Scenario, run_scenario, scale_queries
from repro.bench.reporting import format_table
from repro.core import iterated_local_search


def first_snapshot_state():
    """Reproduce the controller's first Q-cut snapshot on Hash/BW."""
    scenario = Scenario(
        name="snapshot",
        partitioner="hash",
        adaptive=False,
        graph_preset="bw",
        infrastructure="M2",
        k=8,
        main_queries=scale_queries(128, minimum=64),
        seed=3,
    )
    result = run_scenario(scenario)
    controller = result.controller
    state, _fragments = controller._build_snapshot(result.engine.assignment)
    return state


def run_ils():
    state = first_snapshot_state()
    return state, iterated_local_search(state, max_rounds=60, seed=1)


def test_fig6g_ils_convergence(benchmark, record_info):
    state, res = benchmark.pedantic(run_ils, rounds=1, iterations=1)
    rows = [
        (
            round_idx,
            cost,
            "perturb" if round_idx in res.perturbation_rounds else "",
        )
        for round_idx, cost in res.cost_trace[:: max(len(res.cost_trace) // 15, 1)]
    ]
    print(
        "\n"
        + format_table(
            ["ILS round", "incumbent cost", ""],
            rows,
            title="Figure 6g: ILS cost trace (first Q-cut on Hash/BW)",
        )
    )
    print(
        f"initial cost {res.initial_cost:.0f} -> best {res.best_cost:.0f} "
        f"({res.improvement:.0%} reduction; paper: >75%); "
        f"{len(res.perturbation_rounds)} perturbations"
    )
    assert res.improvement > 0.75
    assert res.best_state.is_balanced() or state.max_imbalance() >= res.best_state.max_imbalance()
    record_info(
        improvement=res.improvement,
        initial_cost=res.initial_cost,
        best_cost=res.best_cost,
        rounds=res.rounds,
    )
