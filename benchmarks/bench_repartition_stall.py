"""Repartition stall: partial (plan-scoped) vs global STOP/START barriers.

Q-Graph's §3.4 adaptivity pays with a *global* STOP/START barrier — the
whole cluster drains before any vertex moves, so one repartition stalls
even queries whose scopes the plan never touches.
``EngineConfig.repartition_mode = "partial"`` halts only the plan's
involved workers (move sources/destinations plus the mailbox owners of the
queries with state on them); disjoint queries keep iterating.  This
benchmark runs the paper's Fig. 5 disturbance workload (intra-urban SSSP
main phase + inter-urban disturbance) on a domain-partitioned BW road
network once per mode and compares end-to-end makespan plus the honest
per-repartition stall (``RepartitionRecord.stall_duration``, measured from
STOP-begin — not the legacy ``barrier_duration``, which also charges the
asynchronous Q-cut planning time that overlaps normal execution).

Assertions (the PR's acceptance bar, on the pinned deterministic instance):

* ``partial`` mode **does not lose** to ``global`` on makespan;
* both modes finish the full workload with identical query answers
  (repartition scoping must never change results).

Machine-readable results go to ``BENCH_repartition.json`` so the
repartition-path trajectory is tracked across PRs.

Run standalone:  PYTHONPATH=src python benchmarks/bench_repartition_stall.py
Environment knobs: REPRO_REPART_BENCH_MAIN, REPRO_REPART_BENCH_DISTURBANCE,
REPRO_REPART_BENCH_PARALLEL, REPRO_REPART_BENCH_SEED,
REPRO_REPART_BENCH_GATE (0 disables the partial<=global gate for
exploratory runs), REPRO_REPART_BENCH_JSON (output path).
"""

from __future__ import annotations

import json
import os
from typing import Dict

import numpy as np

from repro.bench.harness import Scenario, run_scenario

#: pinned deterministic instance — the gate margin was verified for this
#: configuration (and the CI small instance 64/32 @ parallel=8, same seed);
#: other sizes are exploratory and should disable the gate
MAIN_QUERIES = int(os.environ.get("REPRO_REPART_BENCH_MAIN", 96))
DISTURBANCE_QUERIES = int(os.environ.get("REPRO_REPART_BENCH_DISTURBANCE", 32))
MAX_PARALLEL = int(os.environ.get("REPRO_REPART_BENCH_PARALLEL", 16))
SEED = int(os.environ.get("REPRO_REPART_BENCH_SEED", 5))
GATE = os.environ.get("REPRO_REPART_BENCH_GATE", "1") != "0"
JSON_PATH = os.environ.get("REPRO_REPART_BENCH_JSON", "BENCH_repartition.json")

MODES = ("global", "partial")


def repartition_scenario(mode: str) -> Scenario:
    return Scenario(
        name=f"repart-{mode}",
        graph_preset="bw",
        partitioner="domain",  # good initial locality: plans stay narrow
        k=8,
        adaptive=True,
        workload="sssp",
        main_queries=MAIN_QUERIES,
        disturbance_queries=DISTURBANCE_QUERIES,
        max_parallel=MAX_PARALLEL,
        repartition_mode=mode,
        seed=SEED,
    )


def run_comparison() -> Dict[str, float]:
    total = MAIN_QUERIES + DISTURBANCE_QUERIES
    results = {}
    print(
        f"\nrepartition barriers: {total} queries "
        f"({MAIN_QUERIES} intra + {DISTURBANCE_QUERIES} disturbance), "
        f"max_parallel={MAX_PARALLEL}, domain partitioning, seed={SEED}"
    )
    print(
        f"{'mode':>8s} {'makespan':>10s} {'mean_lat':>10s} {'repart':>7s} "
        f"{'stall_sum':>10s} {'mean_involved':>13s}"
    )
    for mode in MODES:
        res = run_scenario(repartition_scenario(mode))
        finished = len(res.trace.finished_queries())
        assert finished == total, f"{mode}: only {finished}/{total} finished"
        results[mode] = res
        reparts = res.trace.repartitions
        mean_involved = (
            float(np.mean([len(r.involved_workers) for r in reparts]))
            if reparts
            else float("nan")
        )
        print(
            f"{mode:>8s} {res.makespan:>10.4f} {res.mean_latency:>10.5f} "
            f"{len(reparts):>7d} {res.trace.total_repartition_stall():>10.5f} "
            f"{mean_involved:>13.2f}"
        )

    glob, part = results["global"], results["partial"]
    answers_g = {
        qid: glob.engine.query_result(qid) for qid in sorted(glob.trace.queries)
    }
    answers_p = {
        qid: part.engine.query_result(qid) for qid in sorted(part.trace.queries)
    }
    assert answers_g == answers_p, "repartition scoping changed query answers"

    makespan_gain = 1.0 - part.makespan / glob.makespan
    print(
        f"\npartial vs global: makespan {glob.makespan:.4f} -> "
        f"{part.makespan:.4f} ({makespan_gain:+.1%}), total stall "
        f"{glob.trace.total_repartition_stall():.5f} -> "
        f"{part.trace.total_repartition_stall():.5f}"
    )

    stats = {
        "main_queries": MAIN_QUERIES,
        "disturbance_queries": DISTURBANCE_QUERIES,
        "max_parallel": MAX_PARALLEL,
        "seed": SEED,
        "makespan_gain_partial_vs_global": round(makespan_gain, 4),
    }
    for mode, res in results.items():
        reparts = res.trace.repartitions
        stats[mode] = {
            "makespan": round(res.makespan, 6),
            "mean_latency": round(res.mean_latency, 6),
            "total_latency": round(res.total_latency, 4),
            "mean_locality": round(res.mean_locality, 4),
            "repartitions": len(reparts),
            "total_stall": round(res.trace.total_repartition_stall(), 6),
            "moved_vertices": int(sum(r.moved_vertices for r in reparts)),
            "mean_involved_workers": round(
                float(np.mean([len(r.involved_workers) for r in reparts])), 3
            )
            if reparts
            else None,
            "wall_seconds": round(res.wall_seconds, 3),
        }
    with open(JSON_PATH, "w") as fh:
        json.dump(stats, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {JSON_PATH}")

    if GATE:
        assert len(glob.trace.repartitions) >= 1, "instance never repartitioned"
        assert part.makespan <= glob.makespan, (
            f"partial mode lost on makespan: {part.makespan:.4f} vs "
            f"global {glob.makespan:.4f}"
        )
    return {
        "makespan_gain_partial_vs_global": makespan_gain,
        "global_stall": glob.trace.total_repartition_stall(),
        "partial_stall": part.trace.total_repartition_stall(),
    }


def test_repartition_stall(benchmark, record_info):
    stats = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    record_info(**stats)


if __name__ == "__main__":
    run_comparison()
