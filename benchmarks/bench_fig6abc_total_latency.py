"""Figures 6a, 6b, 6c — summed query latency.

Paper (2048 queries each):
* 6a  BW/SSSP: Q-cut total latency -43% vs Hash, -22% vs Domain;
* 6b  GY/SSSP: -13% vs Hash, -25% vs Domain (balance matters more on GY);
* 6c  BW/POI:  -50% vs Hash, -28% vs Domain.

We report summed latency over the full run and over the post-warm-up tail
(our runs are ~8x shorter, so the adaptation warm-up weighs heavier; see
EXPERIMENTS.md).
"""

import numpy as np
import pytest

from repro.bench import Scenario, scale_queries
from repro.bench.reporting import format_table
from benchmarks.conftest import reduction, run_arms, tail_mean_latency


def build_arms(preset, workload, minimum):
    base = dict(
        graph_preset=preset,
        infrastructure="M2",
        k=8,
        workload=workload,
        main_queries=scale_queries(2048, minimum=minimum),
        seed=3,
    )
    return {
        "hash-static": Scenario(name="hash-static", partitioner="hash", adaptive=False, **base),
        "hash-qcut": Scenario(name="hash-qcut", partitioner="hash", adaptive=True, **base),
        "domain-static": Scenario(name="domain-static", partitioner="domain", adaptive=False, **base),
        "domain-qcut": Scenario(name="domain-qcut", partitioner="domain", adaptive=True, **base),
    }


def report(results, title, paper_vs_hash, paper_vs_domain, record_info):
    rows = [
        (name, r.total_latency, tail_mean_latency(r), r.mean_locality)
        for name, r in results.items()
    ]
    print(
        "\n"
        + format_table(
            ["arm", "total latency", "tail latency", "locality"],
            rows,
            title=title,
        )
    )
    best_qcut_tail = min(
        tail_mean_latency(results["hash-qcut"]),
        tail_mean_latency(results["domain-qcut"]),
    )
    red_hash = reduction(tail_mean_latency(results["hash-static"]), best_qcut_tail)
    red_dom = reduction(
        tail_mean_latency(results["domain-static"]),
        tail_mean_latency(results["domain-qcut"]),
    )
    print(
        f"steady-state reduction: {red_hash:+.0%} vs Hash "
        f"(paper: {paper_vs_hash}), {red_dom:+.0%} vs Domain "
        f"(paper: {paper_vs_domain})"
    )
    record_info(reduction_vs_hash=red_hash, reduction_vs_domain=red_dom)
    return red_hash, red_dom


def test_fig6a_total_bw_sssp(benchmark, record_info):
    results = benchmark.pedantic(
        run_arms, args=(build_arms("bw", "sssp", 384),), rounds=1, iterations=1
    )
    red_hash, red_dom = report(
        results, "Figure 6a: BW / SSSP summed latency", "-43%", "-22%", record_info
    )
    assert red_hash > 0  # Q-cut beats static Hash at steady state
    assert red_dom > 0   # and static Domain


def test_fig6b_total_gy_sssp(benchmark, record_info):
    results = benchmark.pedantic(
        run_arms, args=(build_arms("gy", "sssp", 256),), rounds=1, iterations=1
    )
    report(
        results, "Figure 6b: GY / SSSP summed latency", "-13%", "-25%", record_info
    )
    # GY shape: Q-cut repairs Domain's straggler imbalance
    assert (
        results["domain-qcut"].mean_imbalance
        < results["domain-static"].mean_imbalance
    )


def test_fig6c_total_bw_poi(benchmark, record_info):
    results = benchmark.pedantic(
        run_arms, args=(build_arms("bw", "poi", 384),), rounds=1, iterations=1
    )
    red_hash, red_dom = report(
        results, "Figure 6c: BW / POI summed latency", "-50%", "-28%", record_info
    )
    # Q-cut generalises across query types (POI, not just SSSP)
    assert red_hash > 0 or red_dom > 0
