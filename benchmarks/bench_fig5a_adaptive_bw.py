"""Figure 5a — adaptive Q-cut on BW (SSSP) with a workload disturbance.

Paper: 2048 hotspot SSSP queries in batches of 16 on k=8 (M2), then 496
inter-urban queries.  Q-cut reduces average latency over time by up to 49%
vs static Hash and 40% vs static Domain; after the disturbance all methods
degrade and Q-cut re-adapts.
"""

from repro.bench import Scenario, scale_queries
from repro.bench.reporting import format_series, format_table
from benchmarks.conftest import reduction, run_arms, tail_mean_latency


def build_arms():
    main = scale_queries(2048, minimum=384)
    disturb = scale_queries(496, minimum=96)
    base = dict(
        graph_preset="bw",
        infrastructure="M2",
        k=8,
        main_queries=main,
        disturbance_queries=disturb,
        seed=3,
    )
    return {
        "hash-static": Scenario(name="hash-static", partitioner="hash", adaptive=False, **base),
        "hash-qcut": Scenario(name="hash-qcut", partitioner="hash", adaptive=True, **base),
        "domain-static": Scenario(name="domain-static", partitioner="domain", adaptive=False, **base),
        "domain-qcut": Scenario(name="domain-qcut", partitioner="domain", adaptive=True, **base),
    }


def test_fig5a_adaptive_bw_sssp(benchmark, record_info):
    results = benchmark.pedantic(run_arms, args=(build_arms(),), rounds=1, iterations=1)

    window = max(results["hash-static"].makespan / 14, 1e-6)
    series = {
        name: r.trace.latency_series(window) for name, r in results.items()
    }
    print(
        "\n"
        + format_series(
            series,
            title="Figure 5a: mean query latency over time (BW, SSSP; "
            "disturbance switches intra->inter-urban)",
            value_format="{:.5f}",
        )
    )
    rows = [
        (
            name,
            r.mean_latency,
            tail_mean_latency(r),
            r.mean_locality,
            len(r.trace.repartitions),
        )
        for name, r in results.items()
    ]
    print(
        format_table(
            ["arm", "mean latency", "tail latency", "locality", "reparts"],
            rows,
            title="Figure 5a summary",
        )
    )

    # steady state of the main (intra-urban) phase, pre-disturbance
    hash_tail = tail_mean_latency(results["hash-static"], phase="intra")
    qcut_tail = tail_mean_latency(results["hash-qcut"], phase="intra")
    dom_tail = tail_mean_latency(results["domain-static"], phase="intra")
    dqcut_tail = tail_mean_latency(results["domain-qcut"], phase="intra")
    red_vs_hash = reduction(hash_tail, min(qcut_tail, dqcut_tail))
    red_vs_domain = reduction(dom_tail, dqcut_tail)
    print(
        f"\nQ-cut steady-state (intra phase) latency reduction: "
        f"{red_vs_hash:+.0%} vs Hash (paper: up to 49%), "
        f"{red_vs_domain:+.0%} vs Domain (paper: up to 40%)"
    )
    inter_rows = [
        (name, r.trace.mean_latency(phase="inter")) for name, r in results.items()
    ]
    print(
        format_table(
            ["arm", "mean latency (disturbance)"],
            inter_rows,
            title="After the intra->inter disturbance",
        )
    )
    record_info(
        reduction_vs_hash=red_vs_hash,
        reduction_vs_domain=red_vs_domain,
        qcut_repartitions=len(results["hash-qcut"].trace.repartitions),
    )
    # shape assertions: adaptation must beat its own static baseline in the
    # steady state of the main phase
    assert min(qcut_tail, dqcut_tail) < hash_tail
    assert dqcut_tail < dom_tail
    assert len(results["hash-qcut"].trace.repartitions) >= 1
