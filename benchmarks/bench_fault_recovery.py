"""Fault tolerance: crash/recovery identity and checkpoint overhead.

The fault-tolerance subsystem (``repro.simulation.faults`` +
``repro.engine.checkpoint``) injects deterministic worker crashes, message
drop/duplication and control-plane loss, detects crashes by heartbeat, and
recovers by re-homing the dead workers' vertices and rolling every running
query back to its latest barrier-aligned checkpoint.  This benchmark gates
the three contracts of the subsystem on a pinned deterministic instance:

* **zero-fault identity** — an engine built with a no-op
  :class:`FaultPlan` is *event-for-event identical* (per-query lifecycle,
  message counters, barrier counts, total processed events, answers) to the
  pre-PR engine built with no fault layer at all;
* **recovery identity** — a run with an injected mid-flight crash returns,
  for every query, answers bit-identical to the fault-free run of the same
  configuration: rollback + replay is exactly-once at the answer level;
* **checkpoint overhead** — fault-free checkpointing at the benchmark
  interval costs at most 10% makespan over the no-checkpoint baseline.

Machine-readable results go to ``BENCH_faults.json``.

Run standalone:  PYTHONPATH=src python benchmarks/bench_fault_recovery.py
Environment knobs: REPRO_FAULT_BENCH_MAIN, REPRO_FAULT_BENCH_PARALLEL,
REPRO_FAULT_BENCH_INTERVAL, REPRO_FAULT_BENCH_CRASHES,
REPRO_FAULT_BENCH_SEED, REPRO_FAULT_BENCH_GATE (0 disables the
checkpoint-overhead gate for exploratory runs), REPRO_FAULT_BENCH_JSON.
"""

from __future__ import annotations

import json
import os
from dataclasses import replace
from typing import Dict

import numpy as np

from repro.bench.harness import Scenario, road_network_for, run_scenario
from repro.engine.engine import QGraphEngine
from repro.simulation.faults import FaultPlan
from repro.simulation.tracing import MetricsTrace
from repro.workload.generator import WorkloadGenerator

#: pinned deterministic instance — the identity gates and the 10% overhead
#: bound were verified for this configuration (and the CI small instance)
MAIN_QUERIES = int(os.environ.get("REPRO_FAULT_BENCH_MAIN", 96))
MAX_PARALLEL = int(os.environ.get("REPRO_FAULT_BENCH_PARALLEL", 16))
CHECKPOINT_INTERVAL = int(os.environ.get("REPRO_FAULT_BENCH_INTERVAL", 4))
NUM_CRASHES = int(os.environ.get("REPRO_FAULT_BENCH_CRASHES", 2))
SEED = int(os.environ.get("REPRO_FAULT_BENCH_SEED", 5))
GATE = os.environ.get("REPRO_FAULT_BENCH_GATE", "1") != "0"
JSON_PATH = os.environ.get("REPRO_FAULT_BENCH_JSON", "BENCH_faults.json")

#: fault-free checkpointing may cost at most this fraction of makespan
OVERHEAD_BUDGET = 0.10


def _fingerprint(engine: QGraphEngine, trace: MetricsTrace):
    """Everything observable about a run, for event-for-event comparison."""
    return (
        {
            qid: (r.start_time, r.end_time, r.iterations, r.local_iterations)
            for qid, r in trace.queries.items()
        },
        [
            (r.time, r.moved_vertices, r.num_moves, r.involved_workers)
            for r in trace.repartitions
        ],
        trace.local_messages,
        trace.remote_messages,
        trace.remote_batches,
        trace.barrier_acks,
        trace.barrier_releases,
        trace.checkpoints_taken,
        engine._events_processed,
    )


def _answers(engine: QGraphEngine, trace: MetricsTrace):
    return {qid: engine.query_result(qid) for qid in sorted(trace.queries)}


def _answers_equal(a, b) -> bool:
    if a.keys() != b.keys():
        return False
    for qid in a:
        if a[qid] != b[qid]:
            return False
    return True


def base_scenario(name: str, **overrides) -> Scenario:
    return Scenario(
        name=name,
        graph_preset="bw",
        partitioner="hash",
        k=8,
        adaptive=True,
        workload="sssp",
        main_queries=MAIN_QUERIES,
        max_parallel=MAX_PARALLEL,
        seed=SEED,
        **overrides,
    )


def check_zero_fault_identity() -> int:
    print("gate 1: zero-fault identity (no-op FaultPlan vs no fault layer)")
    bare = run_scenario(base_scenario("bare"))
    noop = run_scenario(base_scenario("noop", faults=FaultPlan(seed=SEED)))
    assert noop.engine.faults is None, "no-op plan was not normalized away"
    assert _fingerprint(bare.engine, bare.trace) == _fingerprint(
        noop.engine, noop.trace
    ), (
        "a zero-fault plan diverged from the engine without a fault layer "
        "(event counts or query lifecycles differ)"
    )
    assert _answers_equal(
        _answers(bare.engine, bare.trace), _answers(noop.engine, noop.trace)
    ), "zero-fault answers differ"
    print(
        f"  identical: {len(bare.trace.queries)} queries, "
        f"{bare.engine._events_processed} events each"
    )
    return bare.engine._events_processed


def run_comparison() -> Dict[str, float]:
    check_zero_fault_identity()

    # fault-free arms: without and with checkpointing (overhead gate + the
    # reference answers the recovery gate compares against)
    plain = run_scenario(base_scenario("plain"))
    clean = run_scenario(
        base_scenario("clean", checkpoint_interval=CHECKPOINT_INTERVAL)
    )
    overhead = (clean.makespan - plain.makespan) / plain.makespan
    print(
        f"\ngate 2: checkpoint overhead — makespan {plain.makespan:.4f} -> "
        f"{clean.makespan:.4f} ({overhead:+.2%}, budget {OVERHEAD_BUDGET:.0%}, "
        f"{clean.trace.checkpoints_taken} checkpoints)"
    )

    # the faulted arm: crashes drawn from the generator's dedicated fault
    # stream, landing mid-flight in the clean run's makespan
    rn = road_network_for("bw", None, seed=0)
    plan = WorkloadGenerator(rn, seed=SEED + 1).fault_plan(
        num_workers=clean.scenario.k,
        crashes=NUM_CRASHES,
        window=(0.15 * clean.makespan, 0.45 * clean.makespan),
        downtime=0.3 * clean.makespan,
        message_drop=0.05,
        control_loss=0.05,
        report_loss=0.05,
    )
    faulty = run_scenario(
        replace(clean.scenario, name="faulty", faults=plan)
    )
    trace = faulty.trace
    # a crash drawn for an already-dead victim collapses into the first, so
    # observed crashes can undershoot the scheduled count
    assert 1 <= trace.worker_crashes <= NUM_CRASHES, (
        f"scheduled {NUM_CRASHES} crashes, observed {trace.worker_crashes}"
    )
    assert trace.recoveries, "no recovery barrier ran"

    print(
        f"\ngate 3: recovery identity — {trace.worker_crashes} crashes, "
        f"{len(trace.recoveries)} recoveries, "
        f"{sum(r.queries_rolled_back for r in trace.recoveries)} queries "
        f"rolled back "
        f"({sum(r.iterations_rolled_back for r in trace.recoveries)} "
        f"iterations), "
        f"{sum(r.rehomed_vertices for r in trace.recoveries)} vertices "
        f"re-homed, makespan {clean.makespan:.4f} -> {faulty.makespan:.4f}"
    )
    finished = len(trace.finished_queries())
    assert finished == MAIN_QUERIES, (
        f"faulted run finished only {finished}/{MAIN_QUERIES} queries"
    )
    assert _answers_equal(
        _answers(faulty.engine, trace), _answers(clean.engine, clean.trace)
    ), "faulted answers diverged from the fault-free run (recovery identity)"
    print(f"  identical answers for all {finished} queries")

    stats = {
        "main_queries": MAIN_QUERIES,
        "max_parallel": MAX_PARALLEL,
        "checkpoint_interval": CHECKPOINT_INTERVAL,
        "num_crashes": NUM_CRASHES,
        "seed": SEED,
        "checkpoint_overhead": round(overhead, 4),
        "overhead_budget": OVERHEAD_BUDGET,
        "plain_makespan": round(plain.makespan, 6),
        "clean_makespan": round(clean.makespan, 6),
        "faulty_makespan": round(faulty.makespan, 6),
        "checkpoints_taken": int(clean.trace.checkpoints_taken),
        "worker_crashes": int(trace.worker_crashes),
        "worker_recoveries": int(trace.worker_recoveries),
        "recoveries": [
            {
                "time": round(r.time, 6),
                "workers": list(r.workers),
                "detection_latency": round(r.detection_latency, 6),
                "queries_rolled_back": r.queries_rolled_back,
                "iterations_rolled_back": r.iterations_rolled_back,
                "rehomed_vertices": r.rehomed_vertices,
                "stall_duration": round(r.stall_duration, 6),
            }
            for r in trace.recoveries
        ],
        "total_recovery_stall": round(trace.total_recovery_stall(), 6),
        "control_retries": int(trace.control_retries),
        "lost_reports": int(trace.lost_reports),
        "lost_computes": int(trace.lost_computes),
        "wall_seconds": round(
            plain.wall_seconds + clean.wall_seconds + faulty.wall_seconds, 3
        ),
    }
    with open(JSON_PATH, "w") as fh:
        json.dump(stats, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {JSON_PATH}")

    if GATE:
        assert overhead <= OVERHEAD_BUDGET, (
            f"fault-free checkpointing cost {overhead:.2%} makespan, over "
            f"the {OVERHEAD_BUDGET:.0%} budget"
        )
    return {
        "checkpoint_overhead": overhead,
        "recovery_stall": trace.total_recovery_stall(),
        "queries_rolled_back": float(
            sum(r.queries_rolled_back for r in trace.recoveries)
        ),
    }


def test_fault_recovery(benchmark, record_info):
    stats = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    record_info(**stats)


if __name__ == "__main__":
    run_comparison()
