"""Figure 5b — adaptive Q-cut on the GY-like graph (SSSP).

Paper: Q-cut reduces latency by up to 45% vs static Hash and 30% vs static
Domain; on the larger GY graph workload *balancing* matters more than
locality (Berlin-straggler effect), so Hash fares relatively better and
Domain relatively worse than on BW.
"""

from repro.bench import Scenario, scale_queries
from repro.bench.reporting import format_table
from benchmarks.conftest import reduction, run_arms, tail_mean_latency


def build_arms():
    main = scale_queries(2048, minimum=256)
    base = dict(
        graph_preset="gy",
        infrastructure="M2",
        k=8,
        main_queries=main,
        seed=3,
    )
    return {
        "hash-static": Scenario(name="hash-static", partitioner="hash", adaptive=False, **base),
        "hash-qcut": Scenario(name="hash-qcut", partitioner="hash", adaptive=True, **base),
        "domain-static": Scenario(name="domain-static", partitioner="domain", adaptive=False, **base),
        "domain-qcut": Scenario(name="domain-qcut", partitioner="domain", adaptive=True, **base),
    }


def test_fig5b_adaptive_gy_sssp(benchmark, record_info):
    results = benchmark.pedantic(run_arms, args=(build_arms(),), rounds=1, iterations=1)
    rows = [
        (name, r.mean_latency, tail_mean_latency(r), r.mean_locality, r.mean_imbalance)
        for name, r in results.items()
    ]
    print(
        "\n"
        + format_table(
            ["arm", "mean latency", "tail latency", "locality", "imbalance"],
            rows,
            title="Figure 5b summary (GY, SSSP)",
        )
    )
    hash_tail = tail_mean_latency(results["hash-static"])
    best_qcut = min(
        tail_mean_latency(results["hash-qcut"]),
        tail_mean_latency(results["domain-qcut"]),
    )
    dom_tail = tail_mean_latency(results["domain-static"])
    red_hash = reduction(hash_tail, best_qcut)
    red_dom = reduction(dom_tail, tail_mean_latency(results["domain-qcut"]))
    print(
        f"\nQ-cut reduction: {red_hash:+.0%} vs Hash (paper: up to 45%), "
        f"{red_dom:+.0%} vs Domain (paper: up to 30%)"
    )
    # GY shape: Domain suffers from the big-city straggler more than on BW —
    # its imbalance exceeds Hash's by a wide margin
    assert results["domain-static"].mean_imbalance > results["hash-static"].mean_imbalance
    # Q-cut repairs Domain's imbalance
    assert results["domain-qcut"].mean_imbalance < results["domain-static"].mean_imbalance
    record_info(reduction_vs_hash=red_hash, reduction_vs_domain=red_dom)
