"""§4.1 side finding — LDG's query-workload imbalance.

Paper: "LDG resulted in highly imbalanced partitions due to the skewness of
the query distribution.  Initial experiments ... suggest an increased
average query latency by factor two to six compared to our methods.  Hence,
we excluded it."  We reproduce the measurement that justified the exclusion,
with FENNEL as an extra query-agnostic streaming baseline.
"""

from repro.bench import Scenario, scale_queries
from repro.bench.reporting import format_table
from benchmarks.conftest import run_arms


def build_arms():
    n = scale_queries(512, minimum=128)
    base = dict(
        graph_preset="bw",
        infrastructure="M2",
        k=8,
        main_queries=n,
        adaptive=False,
        seed=3,
    )
    return {
        part: Scenario(name=part, partitioner=part, **base)
        for part in ("hash", "domain", "ldg", "fennel")
    }


def test_ldg_imbalance(benchmark, record_info):
    results = benchmark.pedantic(run_arms, args=(build_arms(),), rounds=1, iterations=1)
    rows = [
        (name, r.mean_latency, r.mean_imbalance, r.mean_locality)
        for name, r in results.items()
    ]
    print(
        "\n"
        + format_table(
            ["partitioner", "mean latency", "query-load imbalance", "locality"],
            rows,
            title="LDG exclusion experiment (§4.1)",
        )
    )
    ratio = results["ldg"].mean_latency / min(
        results["hash"].mean_latency, results["domain"].mean_latency
    )
    print(
        f"LDG latency vs best of Hash/Domain: {ratio:.2f}x (paper: 2-6x).\n"
        "NOTE: the paper's latency blow-up does not reproduce at our scale —\n"
        "LDG's *query-load imbalance* does (it packs whole hotspot cities\n"
        "into stream-order partitions, Domain-style), but our simulated\n"
        "8-worker deployments absorb that skew; see EXPERIMENTS.md."
    )
    # the reproducible part of the finding: LDG concentrates query load far
    # beyond Hash (the *cause* the paper cites for excluding it)
    assert results["ldg"].mean_imbalance > 4 * results["hash"].mean_imbalance
    record_info(ldg_latency_ratio=ratio, ldg_imbalance=results["ldg"].mean_imbalance)
