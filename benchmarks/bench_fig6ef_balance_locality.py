"""Figures 6e and 6f — workload balancing and query locality.

Paper (2048 SSSP on BW):
* 6e: Domain has high workload imbalance, Hash is balanced, Q-cut converges
  to ~20% (the δ=0.25 cap);
* 6f: Domain reaches >95% local iterations, Hash ~38%, Q-cut climbs from
  Hash's level and converges toward ~80% while *keeping* balance.
"""

import numpy as np

from repro.bench import Scenario, scale_queries
from repro.bench.reporting import format_series, format_table
from benchmarks.conftest import run_arms


def build_arms():
    n = scale_queries(2048, minimum=384)
    base = dict(
        graph_preset="bw",
        infrastructure="M2",
        k=8,
        main_queries=n,
        seed=3,
    )
    return {
        "hash-static": Scenario(name="hash-static", partitioner="hash", adaptive=False, **base),
        "domain-static": Scenario(name="domain-static", partitioner="domain", adaptive=False, **base),
        "qcut": Scenario(name="qcut", partitioner="hash", adaptive=True, **base),
    }


def test_fig6e_workload_balance(benchmark, record_info):
    results = benchmark.pedantic(run_arms, args=(build_arms(),), rounds=1, iterations=1)
    k = 8
    series = {
        name: r.trace.workload_imbalance_series(k) for name, r in results.items()
    }
    print(
        "\n"
        + format_series(
            series,
            title="Figure 6e: workload imbalance over time (deviation from mean load)",
        )
    )
    rows = [(name, r.mean_imbalance) for name, r in results.items()]
    print(format_table(["arm", "mean imbalance"], rows, title="Figure 6e summary"))
    hash_imb = results["hash-static"].mean_imbalance
    dom_imb = results["domain-static"].mean_imbalance
    qcut_imb = results["qcut"].mean_imbalance
    # shape: Hash balanced, Domain badly imbalanced, Q-cut in between
    assert hash_imb < qcut_imb < dom_imb
    record_info(hash=hash_imb, domain=dom_imb, qcut=qcut_imb)


def test_fig6f_query_locality(benchmark, record_info):
    results = benchmark.pedantic(run_arms, args=(build_arms(),), rounds=1, iterations=1)
    window = max(results["qcut"].makespan / 14, 1e-6)
    series = {
        name: r.trace.locality_series(window) for name, r in results.items()
    }
    print(
        "\n"
        + format_series(
            series,
            title="Figure 6f: fraction of fully-local query iterations over time",
        )
    )
    recs = sorted(
        results["qcut"].trace.finished_queries(), key=lambda q: q.end_time
    )
    tail_locality = float(np.mean([q.locality for q in recs[-len(recs) // 4 :]]))
    rows = [(name, r.mean_locality) for name, r in results.items()] + [
        ("qcut (converged tail)", tail_locality)
    ]
    print(format_table(["arm", "locality"], rows, title="Figure 6f summary"))
    print(
        "(paper: Domain >95%, Hash ~38%, Q-cut converges toward ~80% "
        "under the balance constraint)"
    )
    # shapes
    assert results["domain-static"].mean_locality > 0.8
    assert results["hash-static"].mean_locality < 0.3
    assert tail_locality > results["hash-static"].mean_locality + 0.2
    record_info(
        hash=results["hash-static"].mean_locality,
        domain=results["domain-static"].mean_locality,
        qcut_tail=tail_locality,
    )
