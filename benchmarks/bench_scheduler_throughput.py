"""Admission-scheduler throughput: locality-aware vs FIFO admission.

Q-Graph's Q-cut controller decides *where* scopes live, but the admission
queue decides *which* queries occupy the parallel execution slots together —
a locality-hostile admission order can undo the controller's wins (Hauck et
al. 2021 measure integer-factor throughput swings from scheduling policy
alone).  This benchmark runs the paper's disturbance workload (intra-urban
SSSP main phase + inter-urban disturbance) on a domain-partitioned BW road
network with the adaptive engine, at a fixed ``max_parallel``, once per
admission policy.

Assertions (the PR's acceptance bar, on the pinned deterministic instance):

* ``locality`` admission **beats** ``fifo`` on makespan (total time to
  drain the workload) and on mean per-query locality;
* every policy finishes the full workload (no starvation / lost queries).

``shortest_scope`` and ``phase_round_robin`` run as informational arms.
Machine-readable results go to ``BENCH_scheduler.json`` so the scheduling
trajectory is tracked across PRs.

Run standalone:  PYTHONPATH=src python benchmarks/bench_scheduler_throughput.py
Environment knobs: REPRO_SCHED_BENCH_MAIN, REPRO_SCHED_BENCH_DISTURBANCE,
REPRO_SCHED_BENCH_PARALLEL, REPRO_SCHED_BENCH_GATE (0 disables the
locality>=fifo gate for exploratory runs), REPRO_SCHED_BENCH_JSON
(output path).
"""

from __future__ import annotations

import json
import os
from typing import Dict

from repro.bench.harness import Scenario, run_scenario

#: pinned deterministic instance — the gate margins were verified for this
#: configuration (and the CI small instance 64/32 @ parallel=8); other
#: sizes are exploratory and should disable the gate
MAIN_QUERIES = int(os.environ.get("REPRO_SCHED_BENCH_MAIN", 192))
DISTURBANCE_QUERIES = int(os.environ.get("REPRO_SCHED_BENCH_DISTURBANCE", 64))
MAX_PARALLEL = int(os.environ.get("REPRO_SCHED_BENCH_PARALLEL", 16))
GATE = os.environ.get("REPRO_SCHED_BENCH_GATE", "1") != "0"
JSON_PATH = os.environ.get("REPRO_SCHED_BENCH_JSON", "BENCH_scheduler.json")

POLICIES = ("fifo", "locality", "shortest_scope", "phase_round_robin")


def scheduler_scenario(policy: str) -> Scenario:
    return Scenario(
        name=f"sched-{policy}",
        graph_preset="bw",
        partitioner="domain",  # city-contiguous regions: homes are meaningful
        k=8,
        adaptive=True,
        workload="sssp",
        main_queries=MAIN_QUERIES,
        disturbance_queries=DISTURBANCE_QUERIES,
        max_parallel=MAX_PARALLEL,
        scheduler=policy,
        seed=0,
    )


def run_comparison() -> Dict[str, float]:
    total = MAIN_QUERIES + DISTURBANCE_QUERIES
    results = {}
    print(
        f"\nadmission scheduling: {total} queries "
        f"({MAIN_QUERIES} intra + {DISTURBANCE_QUERIES} disturbance), "
        f"max_parallel={MAX_PARALLEL}, domain partitioning, adaptive engine"
    )
    print(f"{'policy':>18s} {'makespan':>10s} {'mean_lat':>10s} {'locality':>9s} "
          f"{'repart':>7s}")
    for policy in POLICIES:
        res = run_scenario(scheduler_scenario(policy))
        finished = len(res.trace.finished_queries())
        assert finished == total, (
            f"{policy}: only {finished}/{total} queries finished"
        )
        results[policy] = res
        print(
            f"{policy:>18s} {res.makespan:>10.4f} {res.mean_latency:>10.5f} "
            f"{res.mean_locality:>9.3f} {len(res.trace.repartitions):>7d}"
        )

    fifo, loc = results["fifo"], results["locality"]
    makespan_gain = 1.0 - loc.makespan / fifo.makespan
    print(
        f"\nlocality vs fifo: makespan {fifo.makespan:.4f} -> {loc.makespan:.4f} "
        f"({makespan_gain:+.1%}), mean locality "
        f"{fifo.mean_locality:.3f} -> {loc.mean_locality:.3f}"
    )

    stats = {
        "main_queries": MAIN_QUERIES,
        "disturbance_queries": DISTURBANCE_QUERIES,
        "max_parallel": MAX_PARALLEL,
        "makespan_gain_vs_fifo": round(makespan_gain, 4),
    }
    for policy, res in results.items():
        stats[policy] = {
            "makespan": round(res.makespan, 6),
            "mean_latency": round(res.mean_latency, 6),
            "total_latency": round(res.total_latency, 4),
            "mean_locality": round(res.mean_locality, 4),
            "mean_imbalance": round(res.mean_imbalance, 4),
            "repartitions": len(res.trace.repartitions),
            "wall_seconds": round(res.wall_seconds, 3),
        }
    with open(JSON_PATH, "w") as fh:
        json.dump(stats, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {JSON_PATH}")

    if GATE:
        assert loc.makespan <= fifo.makespan, (
            f"locality admission lost on makespan: "
            f"{loc.makespan:.4f} vs fifo {fifo.makespan:.4f}"
        )
        assert loc.mean_locality >= fifo.mean_locality, (
            f"locality admission lost on mean locality: "
            f"{loc.mean_locality:.4f} vs fifo {fifo.mean_locality:.4f}"
        )
    return {
        "makespan_gain_vs_fifo": makespan_gain,
        "fifo_locality": fifo.mean_locality,
        "locality_locality": loc.mean_locality,
    }


def test_scheduler_throughput(benchmark, record_info):
    stats = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    record_info(**stats)


if __name__ == "__main__":
    run_comparison()
