"""Quickstart: run shortest-path queries on a Q-Graph engine.

Builds a small synthetic road network, partitions it, starts the engine and
executes a handful of SSSP queries — first on a static Hash partitioning,
then with the Q-cut adaptive controller enabled — and prints the latency and
locality difference.

Run with:  python examples/quickstart.py
"""

from repro.core import Controller, ControllerConfig
from repro.engine import EngineConfig, QGraphEngine, Query
from repro.graph import generate_road_network
from repro.partitioning import HashPartitioner
from repro.queries import SsspProgram
from repro.simulation.cluster import make_cluster
from repro.workload import PhaseSpec, WorkloadGenerator


def run(adaptive: bool):
    # 1. a synthetic road network: 8 hotspot cities, ~8k junctions
    rn = generate_road_network(
        num_cities=8,
        num_urban_vertices=8000,
        seed=21,
        region_size=100.0,
        zipf_exponent=0.45,
    )

    # 2. an initial Hash partitioning over 4 workers
    k = 4
    assignment = HashPartitioner(seed=0).partition(rn.graph, k)

    # 3. the engine: simulated M2 machine, centralized controller
    controller = Controller(
        k,
        ControllerConfig(
            mu=10.0,
            max_tracked_queries=32,
            qcut_compute_time=0.002,
            qcut_cooldown=0.01,
            min_queries_for_qcut=4,
            ils_rounds=60,
        ),
    )
    engine = QGraphEngine(
        rn.graph,
        make_cluster("M2", k),
        assignment,
        controller=controller,
        config=EngineConfig(adaptive=adaptive),
    )

    # 4. a hotspot workload: 96 intra-urban SSSP queries, 16 in parallel
    workload = WorkloadGenerator(rn, seed=5).generate(
        [PhaseSpec(num_queries=96, kind="sssp", label="demo")]
    )
    workload.submit_all(engine)

    # 5. run to completion (virtual time) and inspect results
    trace = engine.run()
    first = workload.entries[0][0]
    result = engine.query_result(first.query_id)
    print(
        f"  query {first.query_id}: {result['start']} -> {result['target']}, "
        f"travel time {result['distance']:.1f} min, "
        f"{result['settled']} vertices settled"
    )
    print(
        f"  {len(trace.finished_queries())} queries; "
        f"mean latency {trace.mean_latency() * 1000:.2f} ms, "
        f"locality {trace.mean_locality():.0%}, "
        f"{len(trace.repartitions)} repartitionings"
    )
    return trace


def main():
    print("static Hash partitioning:")
    static = run(adaptive=False)
    print("with Q-cut adaptive repartitioning:")
    adaptive = run(adaptive=True)
    speedup = static.mean_latency() / adaptive.mean_latency()
    print(f"Q-cut speedup on mean query latency: {speedup:.2f}x")


if __name__ == "__main__":
    main()
