"""The Figure 5 scenario as a runnable demo: adaptation under disturbance.

Runs hotspot SSSP queries with Q-cut adaptation, then abruptly switches the
workload from intra-urban to inter-urban (the §4.2 disturbance) and shows
the latency time-series with repartitioning markers.

Run with:  python examples/adaptive_disturbance.py
"""

import numpy as np

from repro.bench import Scenario, run_scenario
from repro.bench.reporting import format_table


def main():
    scenario = Scenario(
        name="disturbance-demo",
        graph_preset="bw",
        infrastructure="M2",
        k=8,
        partitioner="hash",
        adaptive=True,
        main_queries=256,
        disturbance_queries=64,
        seed=7,
    )
    print("running 256 intra-urban + 64 inter-urban SSSP queries ...")
    result = run_scenario(scenario)
    trace = result.trace

    window = max(trace.makespan() / 16, 1e-6)
    times, values = trace.latency_series(window)
    repart_times = [r.time for r in trace.repartitions]
    rows = []
    for t, v in zip(times, values):
        marks = sum(1 for rt in repart_times if t - window <= rt < t)
        rows.append(
            (f"{t:.3f}", f"{v * 1000:.3f}", "*" * marks)
        )
    print(
        format_table(
            ["virtual time s", "mean latency ms", "repartitions"],
            rows,
            title="Latency over time (* = Q-cut repartitioning applied)",
        )
    )

    intra = trace.mean_latency(phase="intra")
    inter = trace.mean_latency(phase="inter")
    print(
        f"\nphase means: intra-urban {intra * 1000:.2f} ms, "
        f"inter-urban (disturbance) {inter * 1000:.2f} ms"
    )
    print(
        f"{len(trace.repartitions)} repartitionings moved "
        f"{sum(r.moved_vertices for r in trace.repartitions)} vertices in total"
    )
    recs = sorted(trace.finished_queries(), key=lambda q: q.end_time)
    early = np.mean([q.locality for q in recs[: len(recs) // 4]])
    late_intra = [q for q in recs if q.phase == "intra"][-32:]
    print(
        f"locality: first quarter {early:.0%} -> "
        f"last intra-urban queries {np.mean([q.locality for q in late_intra]):.0%}"
    )


if __name__ == "__main__":
    main()
