"""Application 1 (§1): route planning on a road network.

Simulates a mapping service: localized shortest-path queries around urban
hotspots, plus point-of-interest lookups ("nearest gas station"), running
concurrently on a shared road graph.  Shows per-city latency statistics and
how the Q-cut controller consolidates each city's hot core onto one worker.

Run with:  python examples/route_planning.py
"""

from collections import defaultdict

import numpy as np

from repro.bench import Scenario, run_scenario, road_network_for
from repro.bench.reporting import format_table


def main():
    scenario = Scenario(
        name="route-planning",
        graph_preset="bw",
        infrastructure="M2",
        k=8,
        partitioner="hash",
        adaptive=True,
        workload="sssp",
        main_queries=256,
        seed=7,
    )
    print("running 256 hotspot SSSP queries with Q-cut adaptation ...")
    result = run_scenario(scenario)
    rn = road_network_for("bw", scenario.graph_scale, seed=0)

    # group finished queries by the city their scope mostly lives in
    by_city = defaultdict(list)
    for rec in result.trace.finished_queries():
        runtime = result.engine.runtimes[rec.query_id]
        scope = np.fromiter(runtime.scope, dtype=np.int64, count=len(runtime.scope))
        cities = rn.city_of_vertex[scope]
        cities = cities[cities >= 0]
        if cities.size:
            by_city[int(np.bincount(cities).argmax())].append(rec)

    rows = []
    for city_id in sorted(by_city, key=lambda c: -len(by_city[c]))[:10]:
        group = by_city[city_id]
        core = rn.cities[city_id].vertex_ids
        owners = np.bincount(result.engine.assignment[core], minlength=8)
        rows.append(
            (
                f"city {city_id}",
                rn.cities[city_id].population,
                len(group),
                float(np.mean([g.latency for g in group])) * 1000,
                float(np.mean([g.locality for g in group])),
                f"w{int(np.argmax(owners))} ({owners.max() / core.size:.0%})",
            )
        )
    print(
        format_table(
            ["hotspot", "population", "queries", "mean latency ms", "locality", "home worker"],
            rows,
            title="Route planning per hotspot city (after Q-cut adaptation)",
        )
    )
    print(
        f"\noverall: mean latency {result.mean_latency * 1000:.2f} ms, "
        f"locality {result.mean_locality:.0%}, "
        f"{len(result.trace.repartitions)} repartitionings, "
        f"workload imbalance {result.mean_imbalance:.0%}"
    )


if __name__ == "__main__":
    main()
