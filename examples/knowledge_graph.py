"""Application 3 (§1): knowledge-graph retrieval with popularity hotspots.

Knowledge graphs have hub entities with skewed popularity (Barabasi-Albert
degree distribution).  Queries touch small graph portions: reachability
("is rule B derivable from context A?") and nearest-tagged-entity lookups
(the POI pattern over concept tags).  Many such queries arrive in parallel
around currently-popular content.

Run with:  python examples/knowledge_graph.py
"""

import numpy as np

from repro.bench.reporting import format_table
from repro.core import Controller
from repro.engine import EngineConfig, QGraphEngine, Query
from repro.graph import GraphBuilder, barabasi_albert
from repro.partitioning import HashPartitioner
from repro.queries import KHopProgram, PoiProgram, ReachabilityProgram
from repro.simulation.cluster import make_cluster


def tagged_knowledge_graph(n=3000, seed=5, tag_fraction=0.01):
    """A BA hub graph with concept tags on a random subset of entities."""
    base = barabasi_albert(n, 3, seed=seed)
    rng = np.random.default_rng(seed + 1)
    builder = GraphBuilder(n)
    for u, v, w in base.edges():
        builder.add_edge(u, v, w)
    for v in rng.choice(n, size=max(int(n * tag_fraction), 1), replace=False):
        builder.set_tag(int(v))
    return builder.build(name="knowledge-graph")


def main():
    graph = tagged_knowledge_graph()
    k = 4
    engine = QGraphEngine(
        graph,
        make_cluster("M2", k),
        HashPartitioner(seed=2).partition(graph, k),
        controller=Controller(k),
        config=EngineConfig(adaptive=False),
    )

    # popularity-skewed query entry points: prefer high-degree hubs
    degrees = graph.out_degrees().astype(float)
    popularity = degrees / degrees.sum()
    rng = np.random.default_rng(11)
    entries = rng.choice(graph.num_vertices, size=12, p=popularity)

    qid = 0
    submitted = []
    for v in entries[:4]:
        target = int(rng.integers(0, graph.num_vertices))
        q = Query(qid, ReachabilityProgram(int(v), target), (int(v),))
        engine.submit(q)
        submitted.append(("reachability", q))
        qid += 1
    for v in entries[4:8]:
        q = Query(qid, PoiProgram(int(v)), (int(v),))
        engine.submit(q)
        submitted.append(("nearest tag", q))
        qid += 1
    for v in entries[8:]:
        q = Query(qid, KHopProgram(int(v), 2), (int(v),))
        engine.submit(q)
        submitted.append(("2-hop context", q))
        qid += 1

    trace = engine.run()
    rows = []
    for kind, q in submitted:
        rec = trace.queries[q.query_id]
        result = engine.query_result(q.query_id)
        if kind == "reachability":
            detail = f"reachable={result['reachable']} ({result['visited']} visited)"
        elif kind == "nearest tag":
            detail = f"tag at v{result['poi']} (dist {result['distance']:.2f})"
        else:
            detail = f"{result['size']} entities in context"
        rows.append((q.query_id, kind, rec.latency * 1000, detail))
    print(
        format_table(
            ["query", "type", "latency ms", "result"],
            rows,
            title="Parallel knowledge-graph queries (hub-skewed entry points)",
        )
    )
    print(
        f"\nhub skew: max degree {int(degrees.max())}, "
        f"median {int(np.median(degrees))}; "
        f"mean query latency {trace.mean_latency() * 1000:.2f} ms"
    )


if __name__ == "__main__":
    main()
