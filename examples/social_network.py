"""Application 2 (§1): personalized social-network analysis.

Users access their *social circles* — overlapping, localized neighbourhoods
of a shared small-world graph (Watts-Strogatz, the model the paper cites for
its high clustering coefficient).  We run three CGA query types concurrently:

* k-hop neighbourhood collection (friend circles),
* localized personalised PageRank (influence around a user),
* bounded-community detection (local WCC labels).

Run with:  python examples/social_network.py
"""

import numpy as np

from repro.bench.reporting import format_table
from repro.core import Controller
from repro.engine import EngineConfig, QGraphEngine, Query
from repro.graph import watts_strogatz
from repro.partitioning import BfsRegionPartitioner
from repro.queries import KHopProgram, LocalPageRankProgram, LocalWccProgram
from repro.simulation.cluster import make_cluster


def main():
    # a small-world social graph: high clustering, short paths
    graph = watts_strogatz(4000, 8, 0.05, seed=3)
    k = 4
    assignment = BfsRegionPartitioner(seed=1).partition(graph, k)
    engine = QGraphEngine(
        graph,
        make_cluster("M2", k),
        assignment,
        controller=Controller(k),
        config=EngineConfig(adaptive=False),
    )

    rng = np.random.default_rng(9)
    users = rng.integers(0, graph.num_vertices, size=12)
    qid = 0
    submitted = []
    for user in users[:4]:
        q = Query(qid, KHopProgram(int(user), 2), (int(user),))
        engine.submit(q)
        submitted.append(("k-hop circle", q))
        qid += 1
    for user in users[4:8]:
        q = Query(qid, LocalPageRankProgram(int(user), epsilon=1e-3), (int(user),))
        engine.submit(q)
        submitted.append(("local PPR", q))
        qid += 1
    for user in users[8:]:
        q = Query(qid, LocalWccProgram(max_hops=3), (int(user),))
        engine.submit(q)
        submitted.append(("local WCC", q))
        qid += 1

    trace = engine.run()

    rows = []
    for kind, q in submitted:
        rec = trace.queries[q.query_id]
        result = engine.query_result(q.query_id)
        if kind == "k-hop circle":
            detail = f"{result['size']} friends within 2 hops"
        elif kind == "local PPR":
            top = result["top"][1][0] if len(result["top"]) > 1 else "-"
            detail = f"{len(result['scores'])} touched, top influence: v{top}"
        else:
            detail = f"{result['visited']} vertices labelled"
        rows.append(
            (q.query_id, kind, rec.latency * 1000, rec.locality, detail)
        )
    print(
        format_table(
            ["query", "type", "latency ms", "locality", "result"],
            rows,
            title="Concurrent social-circle analytics on a shared graph",
        )
    )
    print(
        f"\n{len(trace.finished_queries())} queries, "
        f"mean latency {trace.mean_latency() * 1000:.2f} ms, "
        f"remote messages {trace.remote_messages}, "
        f"local messages {trace.local_messages}"
    )


if __name__ == "__main__":
    main()
