"""Localized (personalized) PageRank via forward push.

The paper's future work (§6) names "localized PageRank on a billion-scale
web graph" as the next CGA workload; we include it as a working extension.
The vertex-centric formulation is the Andersen-Chung-Lang forward-push
approximation of the personalised PageRank vector around a seed:

* state per vertex: ``(p, r)`` — settled probability mass and residual;
* a message carries residual mass pushed from a neighbour;
* a vertex receiving mass adds it to ``r``; once ``r >= epsilon * deg`` it
  *pushes*: keeps ``alpha * r`` in ``p`` and forwards ``(1 - alpha) * r``
  split evenly over its out-edges.

The computation is naturally localized: total pushed mass is bounded, so
the active region stays near the seed — exactly the query-hotspot pattern
Q-Graph targets.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.engine.kernels import LocalPageRankKernel
from repro.engine.vertex_program import ComputeContext, VertexProgram
from repro.errors import QueryError
from repro.graph.digraph import DiGraph

__all__ = ["LocalPageRankProgram"]


class LocalPageRankProgram(VertexProgram):
    """Forward-push personalised PageRank around ``seed``."""

    kind = "ppr"

    def __init__(self, seed: int, alpha: float = 0.15, epsilon: float = 1e-4) -> None:
        if seed < 0:
            raise QueryError("seed vertex must be non-negative")
        if not 0.0 < alpha < 1.0:
            raise QueryError("alpha must be in (0, 1)")
        if epsilon <= 0.0:
            raise QueryError("epsilon must be positive")
        self.seed = int(seed)
        self.alpha = float(alpha)
        self.epsilon = float(epsilon)

    def init_messages(self, graph: DiGraph, initial_vertices: Tuple[int, ...]):
        share = 1.0 / len(initial_vertices)
        return [(v, share) for v in initial_vertices]

    def combine(self, a: float, b: float) -> float:
        return a + b

    def make_kernel(self, graph: DiGraph) -> LocalPageRankKernel:
        return LocalPageRankKernel(self.alpha, self.epsilon)

    def compute(self, ctx: ComputeContext, vertex: int, state: Any, message: Any) -> Any:
        p, r = state if state is not None else (0.0, 0.0)
        r += message
        graph = ctx.graph
        degree = graph.out_degree(vertex)
        threshold = self.epsilon * max(degree, 1)
        if r >= threshold:
            p += self.alpha * r
            if degree > 0:
                share = (1.0 - self.alpha) * r / degree
                lo = graph.indptr[vertex]
                hi = graph.indptr[vertex + 1]
                for i in range(lo, hi):
                    ctx.send(int(graph.indices[i]), share)
            else:
                p += (1.0 - self.alpha) * r  # dangling: keep the mass
            r = 0.0
        return (p, r)

    def result(self, state: Dict[int, Any], graph: DiGraph) -> Dict[str, Any]:
        scores = {v: p for v, (p, _r) in state.items() if p > 0.0}
        residual = sum(r for (_p, r) in state.values())
        top = sorted(scores.items(), key=lambda item: (-item[1], item[0]))[:20]
        return {
            "seed": self.seed,
            "scores": scores,
            "residual_mass": residual,
            "top": top,
        }
