"""Single-source shortest path (SSSP) — the paper's primary query (§2, §4.1).

*"SSSP calculates the shortest path between a given start and end vertex."*

The vertex-centric formulation is the classic Bellman-Ford wavefront: each
vertex keeps its best-known distance from the start and, upon improvement,
offers ``distance + w(e)`` to its out-neighbours.  Messages combine with
``min`` so each vertex processes a single value per iteration.

Early termination (what keeps hotspot queries *localized*): the best-known
distance to the target is shared through a ``min`` aggregator.  A vertex
only relays a distance that could still improve the target — with
non-negative weights no shortest path to the target passes through a vertex
whose distance already exceeds the bound, so pruning is exact.  The explored
region collapses from the whole graph to (roughly) an ellipse around
start/end, reproducing the localized global query scopes that Q-cut exploits.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.engine.kernels import SsspKernel
from repro.engine.vertex_program import ComputeContext, VertexProgram
from repro.errors import QueryError
from repro.graph.digraph import DiGraph

__all__ = ["SsspProgram", "sssp_query_result"]


class SsspProgram(VertexProgram):
    """SSSP from ``start``; optionally target-pruned toward ``target``.

    State per vertex: best-known distance (float).  With ``target=None`` the
    program computes distances to every reachable vertex (batch SSSP).
    """

    kind = "sssp"

    def __init__(self, start: int, target: Optional[int] = None) -> None:
        if start < 0:
            raise QueryError("start vertex must be non-negative")
        if target is not None and target < 0:
            raise QueryError("target vertex must be non-negative")
        self.start = int(start)
        self.target = int(target) if target is not None else None

    # ------------------------------------------------------------------
    def init_messages(self, graph: DiGraph, initial_vertices: Tuple[int, ...]):
        return [(v, 0.0) for v in initial_vertices]

    def combine(self, a: float, b: float) -> float:
        return a if a <= b else b

    def aggregators(self):
        return {"bound": (min, None)}

    def make_kernel(self, graph: DiGraph) -> SsspKernel:
        return SsspKernel(target=self.target)

    def compute(self, ctx: ComputeContext, vertex: int, state: Any, message: Any) -> Any:
        best = message if state is None else (message if message < state else state)
        if state is not None and best >= state:
            return state  # no improvement: stay silent (vote to halt)

        if self.target is not None and vertex == self.target:
            ctx.aggregate("bound", best)
            return best

        bound = ctx.aggregated("bound")
        if bound is not None and best >= bound:
            return best  # cannot be on a shortest path to the target

        graph = ctx.graph
        lo = graph.indptr[vertex]
        hi = graph.indptr[vertex + 1]
        indices = graph.indices
        weights = graph.weights
        send = ctx.send
        if bound is None:
            for i in range(lo, hi):
                send(int(indices[i]), best + float(weights[i]))
        else:
            for i in range(lo, hi):
                candidate = best + float(weights[i])
                if candidate < bound:
                    send(int(indices[i]), candidate)
        return best

    # ------------------------------------------------------------------
    def result(self, state: Dict[int, Any], graph: DiGraph) -> Dict[str, Any]:
        """``distance`` to the target (or full distance map), scope size."""
        out: Dict[str, Any] = {
            "start": self.start,
            "target": self.target,
            "settled": len(state),
        }
        if self.target is not None:
            out["distance"] = state.get(self.target)
        else:
            out["distances"] = dict(state)
        return out


def sssp_query_result(engine, query_id: int) -> Optional[float]:
    """Convenience: the target distance of a finished SSSP query."""
    result = engine.query_result(query_id)
    return result.get("distance")
