"""Bounded-region connected components (community-detection flavour).

Application 2 of the paper motivates social-circle analytics such as
community detection running on a *personal* sub-network.  This program
performs min-label propagation restricted to a hop budget around the seed
set: the result labels every vertex within the budget with the smallest seed
label it can reach, yielding the local (weakly) connected structure of the
neighbourhood without touching the rest of the graph.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.engine.kernels import LocalWccKernel
from repro.engine.vertex_program import ComputeContext, VertexProgram
from repro.errors import QueryError
from repro.graph.digraph import DiGraph

__all__ = ["LocalWccProgram"]


class LocalWccProgram(VertexProgram):
    """Min-label propagation within ``max_hops`` of the seed vertices.

    Messages and states are ``(label, hops_left)`` pairs; a vertex adopts a
    message that either lowers its label or extends its remaining hop
    budget, and relays with ``hops_left - 1``.
    """

    kind = "wcc-local"

    def __init__(self, max_hops: int) -> None:
        if max_hops < 0:
            raise QueryError("max_hops must be non-negative")
        self.max_hops = int(max_hops)

    def init_messages(self, graph: DiGraph, initial_vertices: Tuple[int, ...]):
        return [(v, (v, self.max_hops)) for v in initial_vertices]

    def combine(self, a: Tuple[int, int], b: Tuple[int, int]) -> Tuple[int, int]:
        # prefer the smaller label; for equal labels keep the larger budget
        if a[0] < b[0]:
            return a
        if b[0] < a[0]:
            return b
        return a if a[1] >= b[1] else b

    def make_kernel(self, graph: DiGraph) -> LocalWccKernel:
        return LocalWccKernel(self.max_hops)

    def compute(self, ctx: ComputeContext, vertex: int, state: Any, message: Any) -> Any:
        label, hops = message
        if state is not None:
            old_label, old_hops = state
            improved = label < old_label or (label == old_label and hops > old_hops)
            if not improved:
                return state
        if hops > 0:
            for nbr in ctx.graph.out_neighbors(vertex):
                ctx.send(int(nbr), (label, hops - 1))
        return (label, hops)

    def result(self, state: Dict[int, Any], graph: DiGraph) -> Dict[str, Any]:
        labels = {v: lab for v, (lab, _h) in state.items()}
        components: Dict[int, int] = {}
        for lab in labels.values():
            components[lab] = components.get(lab, 0) + 1
        return {
            "labels": labels,
            "component_sizes": components,
            "visited": len(labels),
        }
