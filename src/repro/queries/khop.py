"""k-hop neighbourhood queries (the NScale-style workload of §5).

NScale [33] runs queries "in a k-hop neighborhood around a specified
vertex"; Q-Graph supports this as an ordinary query whose scope grows and
shrinks dynamically.  The program collects every vertex within ``k`` hops,
optionally evaluating a per-vertex predicate (e.g. counting tagged
vertices in the neighbourhood — a social-circle statistic).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from repro.engine.kernels import KHopKernel
from repro.engine.vertex_program import ComputeContext, VertexProgram
from repro.errors import QueryError
from repro.graph.digraph import DiGraph

__all__ = ["KHopProgram"]


class KHopProgram(VertexProgram):
    """Collect the ``k``-hop out-neighbourhood of ``center``."""

    kind = "khop"

    def __init__(self, center: int, k: int) -> None:
        if center < 0:
            raise QueryError("center vertex must be non-negative")
        if k < 0:
            raise QueryError("k must be non-negative")
        self.center = int(center)
        self.k = int(k)

    def init_messages(self, graph: DiGraph, initial_vertices: Tuple[int, ...]):
        return [(v, 0) for v in initial_vertices]

    def combine(self, a: int, b: int) -> int:
        return a if a <= b else b

    def make_kernel(self, graph: DiGraph) -> KHopKernel:
        return KHopKernel(self.k)

    def compute(self, ctx: ComputeContext, vertex: int, state: Any, message: Any) -> Any:
        depth = message if state is None else (message if message < state else state)
        if state is not None and depth >= state:
            return state
        if depth < self.k:
            for nbr in ctx.graph.out_neighbors(vertex):
                ctx.send(int(nbr), depth + 1)
        return depth

    def result(self, state: Dict[int, Any], graph: DiGraph) -> Dict[str, Any]:
        members = sorted(state)
        tagged = 0
        if graph.has_tags():
            tags = graph.tags
            tagged = sum(1 for v in members if tags[v])
        return {
            "center": self.center,
            "k": self.k,
            "size": len(members),
            "members": members,
            "tagged_members": tagged,
        }
