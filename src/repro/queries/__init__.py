"""Query programs: the paper's SSSP/POI plus CGA-style extensions."""

from repro.queries.bfs import BfsProgram
from repro.queries.khop import KHopProgram
from repro.queries.pagerank_local import LocalPageRankProgram
from repro.queries.poi import PoiProgram
from repro.queries.reachability import ReachabilityProgram
from repro.queries.sssp import SsspProgram, sssp_query_result
from repro.queries.wcc_local import LocalWccProgram

__all__ = [
    "SsspProgram",
    "sssp_query_result",
    "PoiProgram",
    "BfsProgram",
    "LocalPageRankProgram",
    "KHopProgram",
    "ReachabilityProgram",
    "LocalWccProgram",
]
