"""Breadth-first search over hop counts.

Unweighted counterpart of SSSP — useful for social-network queries
(friend-of-friend distance) and as a simple, fast test program.  Supports
target pruning like :class:`~repro.queries.sssp.SsspProgram` and an optional
maximum depth, which turns it into a bounded exploration.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.engine.kernels import BfsKernel
from repro.engine.vertex_program import ComputeContext, VertexProgram
from repro.errors import QueryError
from repro.graph.digraph import DiGraph

__all__ = ["BfsProgram"]


class BfsProgram(VertexProgram):
    """Hop distances from ``start``; optional ``target`` and ``max_depth``."""

    kind = "bfs"

    def __init__(
        self,
        start: int,
        target: Optional[int] = None,
        max_depth: Optional[int] = None,
    ) -> None:
        if start < 0:
            raise QueryError("start vertex must be non-negative")
        if max_depth is not None and max_depth < 0:
            raise QueryError("max_depth must be non-negative")
        self.start = int(start)
        self.target = int(target) if target is not None else None
        self.max_depth = max_depth

    def init_messages(self, graph: DiGraph, initial_vertices: Tuple[int, ...]):
        return [(v, 0) for v in initial_vertices]

    def combine(self, a: int, b: int) -> int:
        return a if a <= b else b

    def aggregators(self):
        return {"bound": (min, None)}

    def make_kernel(self, graph: DiGraph) -> BfsKernel:
        return BfsKernel(target=self.target, max_depth=self.max_depth)

    def compute(self, ctx: ComputeContext, vertex: int, state: Any, message: Any) -> Any:
        depth = message if state is None else (message if message < state else state)
        if state is not None and depth >= state:
            return state
        if self.target is not None and vertex == self.target:
            ctx.aggregate("bound", depth)
            return depth
        bound = ctx.aggregated("bound")
        if bound is not None and depth + 1 >= bound:
            return depth
        if self.max_depth is not None and depth >= self.max_depth:
            return depth
        for nbr in ctx.graph.out_neighbors(vertex):
            ctx.send(int(nbr), depth + 1)
        return depth

    def result(self, state: Dict[int, Any], graph: DiGraph) -> Dict[str, Any]:
        out: Dict[str, Any] = {"start": self.start, "reached": len(state)}
        if self.target is not None:
            out["depth"] = state.get(self.target)
        else:
            out["depths"] = dict(state)
        return out
