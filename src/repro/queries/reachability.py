"""Directed reachability with early termination.

A knowledge-graph style query (Application 3): "is entity B reachable from
entity A?" — a directed BFS that stops expanding as soon as the target is
reached, using a boolean ``found`` aggregator.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from repro.engine.kernels import ReachabilityKernel
from repro.engine.vertex_program import ComputeContext, VertexProgram
from repro.errors import QueryError
from repro.graph.digraph import DiGraph

__all__ = ["ReachabilityProgram"]


def _or(a: bool, b: bool) -> bool:
    return bool(a or b)


class ReachabilityProgram(VertexProgram):
    """Whether ``target`` is reachable from ``start`` along directed edges."""

    kind = "reach"

    def __init__(self, start: int, target: int) -> None:
        if start < 0 or target < 0:
            raise QueryError("vertices must be non-negative")
        self.start = int(start)
        self.target = int(target)

    def init_messages(self, graph: DiGraph, initial_vertices: Tuple[int, ...]):
        return [(v, True) for v in initial_vertices]

    def combine(self, a: bool, b: bool) -> bool:
        return True

    def aggregators(self):
        return {"found": (_or, False)}

    def make_kernel(self, graph: DiGraph) -> ReachabilityKernel:
        return ReachabilityKernel(self.target)

    def compute(self, ctx: ComputeContext, vertex: int, state: Any, message: Any) -> Any:
        if state:  # already visited: nothing new to do
            return state
        if vertex == self.target:
            ctx.aggregate("found", True)
            return True
        if ctx.aggregated("found"):
            return True  # search already succeeded; stop expanding
        for nbr in ctx.graph.out_neighbors(vertex):
            ctx.send(int(nbr), True)
        return True

    def result(self, state: Dict[int, Any], graph: DiGraph) -> Dict[str, Any]:
        return {
            "start": self.start,
            "target": self.target,
            "reachable": self.target in state,
            "visited": len(state),
        }
