"""Point-of-interest (POI) query (§4.1).

*"POI retrieves the closest vertex with a specified tag (e.g. gas station)
to a given start vertex."*

An expanding Bellman-Ford ring from the start vertex; whenever the wave
reaches a tagged vertex its distance tightens a shared ``min`` bound, which
prunes the remaining expansion — the ring stops growing once every frontier
vertex is farther than the nearest point of interest found so far.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.engine.kernels import PoiKernel
from repro.engine.vertex_program import ComputeContext, VertexProgram
from repro.errors import QueryError
from repro.graph.digraph import DiGraph

__all__ = ["PoiProgram"]


class PoiProgram(VertexProgram):
    """Nearest tagged vertex from ``start`` (distance = travel time)."""

    kind = "poi"

    def __init__(self, start: int) -> None:
        if start < 0:
            raise QueryError("start vertex must be non-negative")
        self.start = int(start)

    # ------------------------------------------------------------------
    def init_messages(self, graph: DiGraph, initial_vertices: Tuple[int, ...]):
        if not graph.has_tags():
            raise QueryError("POI query requires a tagged graph")
        return [(v, 0.0) for v in initial_vertices]

    def combine(self, a: float, b: float) -> float:
        return a if a <= b else b

    def aggregators(self):
        return {"bound": (min, None)}

    def make_kernel(self, graph: DiGraph):
        return PoiKernel() if graph.has_tags() else None

    def compute(self, ctx: ComputeContext, vertex: int, state: Any, message: Any) -> Any:
        best = message if state is None else (message if message < state else state)
        if state is not None and best >= state:
            return state

        graph = ctx.graph
        if graph.tags is not None and graph.tags[vertex]:
            ctx.aggregate("bound", best)
            return best  # found a POI; no need to search past it

        bound = ctx.aggregated("bound")
        if bound is not None and best >= bound:
            return best

        lo = graph.indptr[vertex]
        hi = graph.indptr[vertex + 1]
        indices = graph.indices
        weights = graph.weights
        send = ctx.send
        if bound is None:
            for i in range(lo, hi):
                send(int(indices[i]), best + float(weights[i]))
        else:
            for i in range(lo, hi):
                candidate = best + float(weights[i])
                if candidate < bound:
                    send(int(indices[i]), candidate)
        return best

    # ------------------------------------------------------------------
    def result(self, state: Dict[int, Any], graph: DiGraph) -> Dict[str, Any]:
        """The nearest tagged vertex and its distance (None when not found)."""
        nearest: Optional[int] = None
        nearest_distance = float("inf")
        tags = graph.tags
        if tags is not None:
            for vertex, distance in state.items():
                if tags[vertex] and distance < nearest_distance:
                    nearest = vertex
                    nearest_distance = distance
        return {
            "start": self.start,
            "poi": nearest,
            "distance": nearest_distance if nearest is not None else None,
            "settled": len(state),
        }
