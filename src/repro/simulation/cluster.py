"""Computing-infrastructure profiles.

§4.1 evaluates on three infrastructures:

* **M1** — 8-core Intel i7-2630QM 2.9 GHz, 8 GB RAM (scale-up, loopback TCP);
* **M2** — AWS m4.2xlarge, 8-core Xeon E5-2676v3 2.4 GHz, 32 GB (scale-up);
* **C1** — 8 nodes x 8 cores Xeon 3.0 GHz, 1-GbE between nodes (scale-out).

The scale-up machines run ``k`` worker partitions as processes on one box
communicating over loopback; the cluster places workers round-robin on the 8
nodes, so co-located workers enjoy loopback while cross-node traffic pays
Ethernet costs — exactly the distinction that makes C1 "more pronounced" for
partitioning quality (§4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.simulation.network import NetworkModel, ethernet_1g, loopback_tcp

__all__ = ["MachineProfile", "ClusterSpec", "M1", "M2", "C1", "make_cluster"]


@dataclass(frozen=True)
class MachineProfile:
    """CPU cost parameters of one worker core.

    ``vertex_compute_time`` is the cost of one vertex-function execution
    excluding its edge scan; ``edge_compute_time`` is charged per out-edge
    visited; ``message_handling_time`` per locally delivered message;
    ``barrier_ack_time`` is the CPU cost of participating in one barrier.
    """

    name: str
    vertex_compute_time: float
    edge_compute_time: float
    message_handling_time: float
    barrier_ack_time: float = 2.5e-5
    controller_dispatch_time: float = 8.0e-6
    #: fixed cost of waking up / dispatching one compute task on a worker
    #: (thread scheduling, cache warm-up) — charged once per (query,
    #: iteration, worker) task, which is what makes scattering a small
    #: frontier over many workers expensive.
    task_overhead_time: float = 1.5e-5


#: i7-2630QM, 2.9 GHz (the slowest machine of the three)
M1 = MachineProfile(
    name="M1",
    vertex_compute_time=2.2e-6,
    edge_compute_time=4.5e-7,
    message_handling_time=3.0e-7,
    task_overhead_time=2.0e-5,
)

#: AWS m4.2xlarge Xeon E5-2676v3, 2.4 GHz but big L3 — comparable per-vertex
M2 = MachineProfile(
    name="M2",
    vertex_compute_time=1.8e-6,
    edge_compute_time=4.0e-7,
    message_handling_time=2.5e-7,
    task_overhead_time=1.5e-5,
)

#: Cluster nodes: Xeon 3.0 GHz
C1_NODE = MachineProfile(
    name="C1-node",
    vertex_compute_time=1.6e-6,
    edge_compute_time=3.5e-7,
    message_handling_time=2.5e-7,
    task_overhead_time=1.5e-5,
)


@dataclass
class ClusterSpec:
    """A set of ``k`` workers placed on nodes, plus the link cost matrix.

    Parameters
    ----------
    num_workers:
        ``k`` — number of worker partitions.
    machine:
        Per-core CPU profile shared by all workers.
    num_nodes:
        Physical nodes; workers are placed round-robin (worker ``w`` on node
        ``w % num_nodes``).
    intra_node / inter_node:
        Network models for co-located respectively cross-node links.
    controller_node:
        Node hosting the centralized controller.
    """

    num_workers: int
    machine: MachineProfile
    num_nodes: int = 1
    intra_node: NetworkModel = field(default_factory=loopback_tcp)
    inter_node: NetworkModel = field(default_factory=ethernet_1g)
    controller_node: int = 0
    name: str = "cluster"

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise SimulationError("need at least one worker")
        if self.num_nodes < 1:
            raise SimulationError("need at least one node")

    # ------------------------------------------------------------------
    def node_of(self, worker: int) -> int:
        """Physical node hosting ``worker`` (round-robin placement)."""
        if not 0 <= worker < self.num_workers:
            raise SimulationError(f"unknown worker {worker}")
        return worker % self.num_nodes

    def link(self, w1: int, w2: int) -> NetworkModel:
        """Network model of the link between two workers."""
        if self.node_of(w1) == self.node_of(w2):
            return self.intra_node
        return self.inter_node

    def controller_link(self, worker: int) -> NetworkModel:
        """Network model between a worker and the controller."""
        if self.node_of(worker) == self.controller_node:
            return self.intra_node
        return self.inter_node


def make_cluster(kind: str, num_workers: int) -> ClusterSpec:
    """Build one of the paper's infrastructures.

    ``kind`` is one of ``"M1"``, ``"M2"`` (scale-up: all workers on one
    machine, loopback TCP) or ``"C1"`` (8-node cluster, 1-GbE, round-robin
    worker placement).
    """
    if kind == "M1":
        return ClusterSpec(
            num_workers=num_workers,
            machine=M1,
            num_nodes=1,
            inter_node=loopback_tcp(),
            name=f"M1-k{num_workers}",
        )
    if kind == "M2":
        return ClusterSpec(
            num_workers=num_workers,
            machine=M2,
            num_nodes=1,
            inter_node=loopback_tcp(),
            name=f"M2-k{num_workers}",
        )
    if kind == "C1":
        num_nodes = min(8, num_workers)
        per_node = max(1, -(-num_workers // num_nodes))  # ceil division
        inter = ethernet_1g()
        if per_node > 1:
            # co-located workers share their node's single 1-GbE NIC
            inter = NetworkModel(
                latency=inter.latency,
                bandwidth=inter.bandwidth / per_node,
                serialize_per_message=inter.serialize_per_message,
                deserialize_per_message=inter.deserialize_per_message,
                batch_overhead=inter.batch_overhead * per_node,
                control_overhead=inter.control_overhead,
                name=f"ethernet-1g/{per_node}",
            )
        return ClusterSpec(
            num_workers=num_workers,
            machine=C1_NODE,
            num_nodes=num_nodes,
            inter_node=inter,
            name=f"C1-k{num_workers}",
        )
    raise SimulationError(f"unknown infrastructure kind {kind!r}")
