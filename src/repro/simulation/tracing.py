"""Metric traces collected during a simulation run.

Every figure of the paper's evaluation is a post-processing of these traces:

* per-query latency records                        -> Figs. 5, 6a-c, 7
* per-(worker, time-bucket) vertex executions      -> Fig. 6e (imbalance)
* per-(query, iteration) locality flags            -> Fig. 6f (locality)
* repartitioning events                            -> barrier-cost analysis
* message counters                                 -> communication overhead
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "QueryRecord",
    "RepartitionRecord",
    "GraphChurnRecord",
    "RecoveryRecord",
    "MetricsTrace",
]


@dataclass
class QueryRecord:
    """Lifecycle facts of one executed query."""

    query_id: int
    kind: str
    start_time: float
    end_time: float = float("nan")
    iterations: int = 0
    local_iterations: int = 0
    phase: str = "default"

    @property
    def latency(self) -> float:
        """End-to-end latency (§2's definition: last minus first activity)."""
        return self.end_time - self.start_time

    @property
    def locality(self) -> float:
        """Fraction of iterations executed on a single worker (§3.4 metric)."""
        if self.iterations == 0:
            return 1.0
        return self.local_iterations / self.iterations


@dataclass
class RepartitionRecord:
    """One adaptive repartitioning (STOP/START barrier, global or partial).

    ``barrier_duration`` is kept for compatibility: it is measured from the
    moment the *asynchronous* Q-cut planning was triggered, so it includes
    the planning time that overlaps normal execution (§3.4) and therefore
    overstates the disruption.  ``stall_duration`` is the honest number —
    measured from STOP-begin (when the engine starts holding tasks) to
    START (when held queries resume).
    """

    time: float
    moved_vertices: int
    num_moves: int
    barrier_duration: float
    cost_before: float
    cost_after: float
    #: workers halted by the STOP barrier (every worker in global mode; the
    #: plan's involved-worker closure in partial mode)
    involved_workers: Tuple[int, ...] = ()
    #: STOP-begin -> START; excludes the overlapped async planning time
    stall_duration: float = float("nan")


@dataclass(frozen=True)
class GraphChurnRecord:
    """One applied graph-stream churn epoch (a flushed topology delta)."""

    time: float
    inserted_edges: int = 0
    deleted_edges: int = 0
    updated_weights: int = 0
    added_vertices: int = 0
    removed_vertices: int = 0
    #: mutations the tolerant application skipped (already-absent edges,
    #: edges wired to since-removed vertices, ...)
    skipped_mutations: int = 0
    #: in-flight next-iteration messages dropped because their target
    #: vertex was tombstoned
    dropped_messages: int = 0


@dataclass(frozen=True)
class RecoveryRecord:
    """One crash-recovery barrier (detection -> rollback -> replay start).

    ``stall_duration`` is the honest disruption window, measured like the
    repartition stall: from the moment the recovery STOP begins holding
    tasks until the START that resumes the restored queries.  Rolled-back
    iterations are *replayed* after the START, so their cost shows up in the
    ordinary latency records — this record only accounts the extra stall.
    """

    time: float
    #: crashed workers handled by this recovery barrier
    workers: Tuple[int, ...]
    #: crash -> heartbeat detection, max over the handled crashes
    detection_latency: float
    queries_rolled_back: int
    iterations_rolled_back: int
    #: vertices re-homed off the dead workers onto the survivors
    rehomed_vertices: int
    stall_duration: float


@dataclass
class MetricsTrace:
    """Mutable metrics sink passed through the engine."""

    workload_bucket: float = 10.0
    queries: Dict[int, QueryRecord] = field(default_factory=dict)
    repartitions: List[RepartitionRecord] = field(default_factory=list)
    churn_events: List[GraphChurnRecord] = field(default_factory=list)
    recoveries: List[RecoveryRecord] = field(default_factory=list)
    local_messages: int = 0
    remote_messages: int = 0
    remote_batches: int = 0
    barrier_acks: int = 0
    barrier_releases: int = 0
    # ---- fault-injection accounting (all zero on fault-free runs) ----
    #: vertex-message batches lost on the wire and retransmitted
    dropped_batches: int = 0
    #: duplicated batches delivered and discarded by the receiver
    duplicated_batches: int = 0
    #: control messages (barrier acks / redundant acks) retransmitted
    control_retries: int = 0
    #: per-barrier stats reports that never reached the controller
    lost_reports: int = 0
    #: compute tasks whose results died with their worker
    lost_computes: int = 0
    #: barrier-aligned checkpoints written
    checkpoints_taken: int = 0
    worker_crashes: int = 0
    worker_recoveries: int = 0
    controller_crashes: int = 0
    #: (worker, bucket) -> number of vertex executions
    _workload: Dict[Tuple[int, int], int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def query_started(self, query_id: int, kind: str, time: float, phase: str) -> None:
        self.queries[query_id] = QueryRecord(
            query_id=query_id, kind=kind, start_time=time, phase=phase
        )

    def query_finished(self, query_id: int, time: float) -> None:
        self.queries[query_id].end_time = time

    def iteration_executed(self, query_id: int, num_workers_involved: int) -> None:
        record = self.queries[query_id]
        record.iterations += 1
        if num_workers_involved <= 1:
            record.local_iterations += 1

    def vertices_executed(self, worker: int, time: float, count: int) -> None:
        bucket = int(time / self.workload_bucket)
        key = (worker, bucket)
        self._workload[key] = self._workload.get(key, 0) + count

    def repartitioned(self, record: RepartitionRecord) -> None:
        self.repartitions.append(record)

    def graph_updated(self, record: GraphChurnRecord) -> None:
        self.churn_events.append(record)

    def recovered(self, record: RecoveryRecord) -> None:
        self.recoveries.append(record)

    # ------------------------------------------------------------------
    # aggregations used by the benchmark harness
    # ------------------------------------------------------------------
    def finished_queries(self) -> List[QueryRecord]:
        """Records of all queries that have completed."""
        return [q for q in self.queries.values() if not np.isnan(q.end_time)]

    def total_latency(self, phase: Optional[str] = None) -> float:
        """Sum of query latencies (Fig. 6a-c reporting)."""
        return float(
            sum(
                q.latency
                for q in self.finished_queries()
                if phase is None or q.phase == phase
            )
        )

    def mean_latency(self, phase: Optional[str] = None) -> float:
        """Average query latency."""
        latencies = [
            q.latency
            for q in self.finished_queries()
            if phase is None or q.phase == phase
        ]
        return float(np.mean(latencies)) if latencies else float("nan")

    def makespan(self) -> float:
        """First start to last finish (Fig. 7's "total query latency")."""
        finished = self.finished_queries()
        if not finished:
            return 0.0
        return max(q.end_time for q in finished) - min(q.start_time for q in finished)

    def total_repartition_stall(self) -> float:
        """Sum of honest repartition stalls (``stall_duration``) so far.

        Records written before the field existed (NaN) are skipped.
        """
        return float(
            sum(
                r.stall_duration
                for r in self.repartitions
                if not np.isnan(r.stall_duration)
            )
        )

    def total_recovery_stall(self) -> float:
        """Sum of crash-recovery stalls (STOP-begin -> START)."""
        return float(sum(r.stall_duration for r in self.recoveries))

    def mean_locality(self) -> float:
        """Average per-query locality (Fig. 6f / §4.2 claims)."""
        finished = self.finished_queries()
        if not finished:
            return float("nan")
        return float(np.mean([q.locality for q in finished]))

    @staticmethod
    def _windowed_means(
        end_times: np.ndarray, values: np.ndarray, window: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Mean of ``values`` per completion-time window, empty windows
        skipped.

        One sort + :func:`np.searchsorted` bucketing instead of the former
        per-window rescan of every finished query (O(windows × queries)),
        with window edges computed as ``i * window`` (not accumulated with
        ``start += window``, which drifts for long traces).
        """
        if end_times.size == 0:
            return np.empty(0), np.empty(0)
        order = np.argsort(end_times, kind="stable")
        ends = end_times[order]
        vals = values[order]
        # windows [i*w, (i+1)*w) for i = 0 .. floor(t_end / w)
        num_windows = int(np.floor(ends[-1] / window)) + 1
        edges = np.arange(num_windows + 1, dtype=np.float64) * window
        bounds = np.searchsorted(ends, edges, side="left")
        counts = np.diff(bounds)
        sums = np.concatenate(([0.0], np.cumsum(vals)))
        keep = counts > 0
        means = (sums[bounds[1:]] - sums[bounds[:-1]])[keep] / counts[keep]
        return edges[1:][keep], means

    def latency_series(
        self, window: float, phase: Optional[str] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Windowed average latency over completion time (Fig. 5 series).

        Returns ``(window_end_times, mean_latency_per_window)``; empty
        windows are skipped.
        """
        finished = [
            q for q in self.finished_queries() if phase is None or q.phase == phase
        ]
        return self._windowed_means(
            np.array([q.end_time for q in finished], dtype=np.float64),
            np.array([q.latency for q in finished], dtype=np.float64),
            window,
        )

    def locality_series(self, window: float) -> Tuple[np.ndarray, np.ndarray]:
        """Windowed average locality over completion time (Fig. 6f series)."""
        finished = self.finished_queries()
        return self._windowed_means(
            np.array([q.end_time for q in finished], dtype=np.float64),
            np.array([q.locality for q in finished], dtype=np.float64),
            window,
        )

    def workload_imbalance_series(self, num_workers: int) -> Tuple[np.ndarray, np.ndarray]:
        """Per-bucket workload imbalance (Fig. 6e).

        Imbalance of a bucket is the mean absolute deviation of the per-worker
        vertex-execution counts from their mean, relative to the mean —
        "a worker's deviation from the average workload" (§4.2).

        One ``bincount`` scatter over the ``(worker, bucket)`` keys builds
        the dense bucket × worker load matrix, replacing the former
        per-bucket rescan of the whole dict (O(buckets × workers) lookups).
        """
        if not self._workload:
            return np.empty(0), np.empty(0)
        keys = np.fromiter(
            (k for pair in self._workload for k in pair),
            dtype=np.int64,
            count=2 * len(self._workload),
        ).reshape(-1, 2)
        workers = keys[:, 0]
        buckets = keys[:, 1]
        counts = np.fromiter(
            self._workload.values(), dtype=np.float64, count=len(self._workload)
        )
        uniq_buckets, bucket_idx = np.unique(buckets, return_inverse=True)
        in_range = workers < num_workers
        loads = np.bincount(
            bucket_idx[in_range] * num_workers + workers[in_range],
            weights=counts[in_range],
            minlength=uniq_buckets.size * num_workers,
        ).reshape(uniq_buckets.size, num_workers)
        means = loads.mean(axis=1)
        keep = means > 0
        deviation = np.abs(loads[keep] - means[keep, None]).mean(axis=1)
        times = (uniq_buckets[keep] + 1).astype(np.float64) * self.workload_bucket
        return times, deviation / means[keep]

    def mean_workload_imbalance(self, num_workers: int) -> float:
        """Run-average of :meth:`workload_imbalance_series`."""
        _, series = self.workload_imbalance_series(num_workers)
        return float(np.mean(series)) if series.size else float("nan")
