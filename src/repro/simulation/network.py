"""Network cost model.

The paper's latency numbers are dominated by messaging costs between
workers: serialization CPU time, TCP latency (loopback for the scale-up
machines M1/M2, 1-Gigabit Ethernet for the C1 cluster), bandwidth, and the
batching policy of §4.1 ("the sender thread batches vertex messages with a
maximum of 32 vertex messages per batch and 32 kilobytes batch size").

:class:`NetworkModel` captures these four knobs; the engine charges

* ``serialize_time(n)``   — CPU time on the *sender* for packing n messages,
* ``transfer_time(n)``    — wire time for a batch of n messages
  (per-batch latency + bytes / bandwidth, with the batch split according to
  the 32-message / 32-kB policy), and
* ``control_latency``     — one-way latency of a small control message
  (barrier ack / release, stats).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["NetworkModel", "loopback_tcp", "ethernet_1g", "zero_cost"]


@dataclass(frozen=True)
class NetworkModel:
    """Cost parameters of one worker-to-worker (or worker-controller) link.

    Attributes
    ----------
    latency:
        One-way propagation + stack traversal latency per batch (seconds).
    bandwidth:
        Payload bandwidth in bytes/second.
    serialize_per_message:
        Sender CPU seconds per vertex message (serialization, §2's
        "overhead for serializing and deserializing messages").
    message_bytes:
        Size of one vertex message on the wire.
    batch_messages / batch_bytes:
        Batching limits from §4.1 (32 messages / 32 kB per batch).
    name:
        Label used in reports.
    """

    latency: float
    bandwidth: float
    serialize_per_message: float = 1.0e-6
    #: receiver CPU seconds per remote vertex message (deserialization —
    #: the other half of §2's "serializing and deserializing messages")
    deserialize_per_message: float = 1.5e-6
    #: per-batch wire/stack cost (syscall + TCP segmentation per batch);
    #: §2 calls out "passing the multi-layered TCP/IP stack" as a latency
    #: source — each 32-message batch pays it.
    batch_overhead: float = 5.0e-6
    #: fixed RPC cost of a control message (framework serialization, thread
    #: wake-up on the controller path) added on top of the wire latency
    control_overhead: float = 0.0
    message_bytes: int = 64
    batch_messages: int = 32
    batch_bytes: int = 32 * 1024
    #: per-batch probability that a vertex-message batch is lost on the wire
    #: and must be retransmitted (fault injection; sampled by the engine's
    #: fault RNG stream, never here — the model stays stateless). A
    #: :class:`~repro.simulation.faults.FaultPlan` may override it globally.
    drop_probability: float = 0.0
    #: per-batch probability that a batch is delivered twice (the receiver
    #: detects and discards the duplicate, paying wire + dedup cost only)
    duplicate_probability: float = 0.0
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.latency < 0 or self.bandwidth <= 0:
            raise ValueError("latency must be >= 0 and bandwidth > 0")
        if self.batch_messages < 1 or self.batch_bytes < self.message_bytes:
            raise ValueError("batching limits too small")
        if not 0.0 <= self.drop_probability < 1.0:
            raise ValueError("drop_probability must be in [0, 1)")
        if not 0.0 <= self.duplicate_probability < 1.0:
            raise ValueError("duplicate_probability must be in [0, 1)")

    # ------------------------------------------------------------------
    def num_batches(self, num_messages: int) -> int:
        """How many wire batches ``num_messages`` vertex messages need."""
        if num_messages <= 0:
            return 0
        per_batch = min(
            self.batch_messages, max(self.batch_bytes // self.message_bytes, 1)
        )
        return math.ceil(num_messages / per_batch)

    def serialize_time(self, num_messages: int) -> float:
        """Sender-side CPU seconds to pack ``num_messages`` messages."""
        return self.serialize_per_message * max(num_messages, 0)

    def transfer_time(self, num_messages: int) -> float:
        """Wire seconds for ``num_messages`` messages.

        One propagation latency for the (pipelined) stream, a per-batch
        stack-traversal overhead, and the payload at line rate.
        """
        if num_messages <= 0:
            return 0.0
        payload = num_messages * self.message_bytes
        return (
            self.latency
            + self.num_batches(num_messages) * self.batch_overhead
            + payload / self.bandwidth
        )

    def deserialize_time(self, num_messages: int) -> float:
        """Receiver-side CPU seconds to unpack ``num_messages`` messages."""
        return self.deserialize_per_message * max(num_messages, 0)

    @property
    def control_latency(self) -> float:
        """One-way latency of a small control message (ack/release/stats)."""
        return self.latency + self.control_overhead + self.message_bytes / self.bandwidth

    def control_rtt(self) -> float:
        """Round-trip of a control exchange (ack to controller + release)."""
        return 2.0 * self.control_latency

    def retransmit_delay(self, num_messages: int) -> float:
        """Extra delivery delay when a batch of ``num_messages`` is dropped.

        The sender notices the loss after an ack-timeout round trip and puts
        the batch back on the wire — reliable transport turns a drop into
        latency, never into lost content.
        """
        return self.control_rtt() + self.transfer_time(num_messages)


def loopback_tcp() -> NetworkModel:
    """Loopback TCP between processes on one machine (scale-up: M1, M2).

    ~20 us per syscall round through the local stack, effectively
    memory-speed bandwidth.
    """
    return NetworkModel(
        latency=20e-6,
        bandwidth=4.0e9,
        serialize_per_message=1.0e-6,
        deserialize_per_message=1.5e-6,
        batch_overhead=8.0e-6,
        control_overhead=120e-6,
        name="loopback-tcp",
    )


def ethernet_1g() -> NetworkModel:
    """1-Gigabit Ethernet between cluster nodes (scale-out: C1).

    ~200 us end-to-end latency for a small message, 125 MB/s line rate.
    """
    return NetworkModel(
        latency=200e-6,
        bandwidth=125e6,
        serialize_per_message=1.0e-6,
        deserialize_per_message=1.5e-6,
        batch_overhead=30.0e-6,
        control_overhead=150e-6,
        name="ethernet-1g",
    )


def zero_cost() -> NetworkModel:
    """Free network — for unit tests that isolate compute costs."""
    return NetworkModel(
        latency=0.0,
        bandwidth=1e18,
        serialize_per_message=0.0,
        deserialize_per_message=0.0,
        batch_overhead=0.0,
        control_overhead=0.0,
        name="zero-cost",
    )
