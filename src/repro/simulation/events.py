"""Deterministic discrete-event queue.

A thin wrapper over :mod:`heapq` with a monotonically increasing sequence
number as tie-breaker so that events scheduled at the same virtual time pop
in scheduling order — this makes the whole simulation deterministic and
therefore testable bit-for-bit.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.errors import SimulationError

__all__ = ["Event", "EventQueue"]


@dataclass(order=True)
class Event:
    """One scheduled occurrence.

    Ordering is by ``(time, seq)``; ``kind`` and ``payload`` are excluded
    from comparisons.
    """

    time: float
    seq: int
    kind: str = field(compare=False)
    payload: Dict[str, Any] = field(compare=False, default_factory=dict)


class EventQueue:
    """Priority queue of :class:`Event` with cancellation support."""

    def __init__(self) -> None:
        self._heap: list = []
        self._seq = 0
        self._cancelled: set = set()
        #: seqs currently sitting in the heap (not yet popped, not cancelled);
        #: guards ``cancel`` against already-popped or double-cancelled events,
        #: which would otherwise leave a stale seq in ``_cancelled`` forever
        #: and permanently undercount ``__len__``
        self._live: set = set()
        self._now = 0.0

    @property
    def now(self) -> float:
        """Virtual time of the most recently popped event."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap) - len(self._cancelled)

    def schedule(self, time: float, kind: str, **payload: Any) -> Event:
        """Add an event; returns it (its identity can be used to cancel)."""
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule {kind!r} at {time} before now={self._now}"
            )
        event = Event(time=max(time, self._now), seq=self._seq, kind=kind, payload=payload)
        self._seq += 1
        heapq.heappush(self._heap, event)
        self._live.add(event.seq)
        return event

    def cancel(self, event: Event) -> None:
        """Mark an event so it is skipped when popped.

        Idempotent, and a no-op for events that were already popped: only a
        seq still live in the heap moves to the cancelled set, so ``__len__``
        stays exact no matter how often (or how late) callers cancel.
        """
        if event.seq in self._live:
            self._live.discard(event.seq)
            self._cancelled.add(event.seq)

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest pending event, or None when empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.seq in self._cancelled:
                self._cancelled.discard(event.seq)
                continue
            self._live.discard(event.seq)
            self._now = event.time
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Virtual time of the next pending event without popping it."""
        while self._heap and self._heap[0].seq in self._cancelled:
            event = heapq.heappop(self._heap)
            self._cancelled.discard(event.seq)
        return self._heap[0].time if self._heap else None

    def drain(self) -> Tuple[Event, ...]:
        """Pop everything (mostly useful in tests)."""
        out = []
        while True:
            event = self.pop()
            if event is None:
                break
            out.append(event)
        return tuple(out)
