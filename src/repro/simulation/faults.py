"""Deterministic fault injection.

The Q-Graph paper assumes a healthy cluster; the ROADMAP's standing-query
direction (millions of long-lived queries) does not survive that assumption —
a single lost barrier ack would strand the engine forever.  This module is
the *injection* half of the fault-tolerance subsystem: a :class:`FaultPlan`
describes, ahead of time and on its own seeded RNG stream, which workers
crash when, whether the controller goes down, and with what probabilities
vertex-message batches and control messages are dropped or duplicated.

Everything is injected through the engine's :class:`~repro.simulation.events
.EventQueue` and a dedicated ``default_rng([seed, 0xFA17])`` stream (the same
convention as the workload mix stream ``0x51C`` and the churn stream
``0xC4C4``), so faulted runs stay bit-reproducible and a zero-fault plan is
event-for-event identical to running with no fault layer at all — the engine
normalizes a no-op plan to ``None`` at construction.

Semantics implemented by the engine (:mod:`repro.engine.engine`):

* **Worker crash-stop** — from ``WorkerCrash.time`` the worker accepts no
  tasks; in-flight computes on it are lost (their acks never arrive).  With
  a ``downtime`` the worker rejoins empty-handed after that long; without
  one it never returns.
* **Message drop/duplication** — reliable-transport model: a dropped batch
  is retransmitted after an ack timeout (delay, not loss of content); a
  duplicated batch costs wire time and is discarded by the receiver.
  Answers are therefore timing-affected but content-identical by
  construction on the data plane.
* **Control loss** — barrier acks and per-barrier stats reports are lost
  with the given probabilities; the control plane retries with exponential
  backoff (``EngineConfig.control_retry_*``), so a loss delays rather than
  strands a barrier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import SimulationError

__all__ = ["WorkerCrash", "ControllerCrash", "FaultPlan", "FAULT_STREAM_KEY"]

#: sub-stream key for ``np.random.default_rng([seed, FAULT_STREAM_KEY])`` —
#: keeps fault draws independent of the workload (0x51C) and churn (0xC4C4)
#: streams for the same scenario seed
FAULT_STREAM_KEY = 0xFA17


@dataclass(frozen=True)
class WorkerCrash:
    """One scheduled crash-stop failure of a worker.

    ``downtime is None`` means the worker never recovers; otherwise it
    rejoins (with no vertices — repartitioning re-populates it) after
    ``downtime`` seconds of virtual time.
    """

    time: float
    worker: int
    downtime: Optional[float] = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise SimulationError("crash time must be >= 0")
        if self.worker < 0:
            raise SimulationError("crash worker must be >= 0")
        if self.downtime is not None and self.downtime <= 0:
            raise SimulationError("crash downtime must be > 0 (or None)")


@dataclass(frozen=True)
class ControllerCrash:
    """A crash of the MAPE controller.

    While the controller is down the engine degrades gracefully to static
    operation: no repartitions are planned and per-barrier stats reports are
    lost; adaptivity resumes when the controller recovers.
    """

    time: float
    downtime: Optional[float] = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise SimulationError("controller crash time must be >= 0")
        if self.downtime is not None and self.downtime <= 0:
            raise SimulationError("controller downtime must be > 0 (or None)")


def _check_probability(name: str, value: Optional[float]) -> None:
    if value is not None and not 0.0 <= value < 1.0:
        raise SimulationError(f"{name} must be in [0, 1), got {value}")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of injected faults.

    Attributes
    ----------
    seed:
        Seeds the engine-side fault RNG stream
        (``default_rng([seed, 0xFA17])``) used for per-batch drop/duplicate
        and per-message control-loss draws.
    crashes / controller_crashes:
        Pre-scheduled crash-stop failures, injected as ordinary events.
    message_drop / message_duplicate:
        Global per-batch probabilities for vertex-message batches; ``None``
        defers to the per-link :class:`~repro.simulation.network
        .NetworkModel` fields, a float overrides every link.
    control_loss:
        Per-message loss probability for barrier acks (including the
        redundant all-worker acks of ``GLOBAL_PER_QUERY``).
    report_loss:
        Per-barrier loss probability for worker->controller stats reports
        (planning quality degrades; answers are unaffected).
    """

    seed: int = 0
    crashes: Tuple[WorkerCrash, ...] = ()
    controller_crashes: Tuple[ControllerCrash, ...] = ()
    message_drop: Optional[float] = None
    message_duplicate: Optional[float] = None
    control_loss: float = 0.0
    report_loss: float = 0.0

    def __post_init__(self) -> None:
        _check_probability("message_drop", self.message_drop)
        _check_probability("message_duplicate", self.message_duplicate)
        _check_probability("control_loss", self.control_loss)
        _check_probability("report_loss", self.report_loss)

    # ------------------------------------------------------------------
    def has_crashes(self) -> bool:
        """Whether any worker crash is scheduled (requires checkpointing)."""
        return bool(self.crashes)

    def is_noop(self) -> bool:
        """True when the plan injects nothing at all.

        A no-op plan must be indistinguishable from running without a fault
        layer; the engine normalizes it to ``None`` so not even RNG
        construction differs.  (Per-link drop/duplicate probabilities on the
        cluster's :class:`NetworkModel` links are checked separately by the
        engine — the plan cannot see the cluster.)
        """
        return (
            not self.crashes
            and not self.controller_crashes
            and (self.message_drop is None or self.message_drop == 0.0)
            and (self.message_duplicate is None or self.message_duplicate == 0.0)
            and self.control_loss == 0.0
            and self.report_loss == 0.0
        )

    def make_rng(self) -> np.random.Generator:
        """The plan's private RNG stream (independent of workload/churn)."""
        return np.random.default_rng([self.seed, FAULT_STREAM_KEY])

    def validate_for(self, num_workers: int) -> None:
        """Check crash targets against the cluster size."""
        for crash in self.crashes:
            if crash.worker >= num_workers:
                raise SimulationError(
                    f"FaultPlan crashes worker {crash.worker} but the cluster "
                    f"has only {num_workers} workers"
                )
        permanent = {c.worker for c in self.crashes if c.downtime is None}
        if len(permanent) >= num_workers:
            raise SimulationError(
                "FaultPlan permanently crashes every worker — nothing left "
                "to recover onto"
            )
