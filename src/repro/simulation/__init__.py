"""Discrete-event simulation substrate: virtual cluster, network, tracing."""

from repro.simulation.cluster import C1_NODE, ClusterSpec, M1, M2, MachineProfile, make_cluster
from repro.simulation.events import Event, EventQueue
from repro.simulation.faults import ControllerCrash, FaultPlan, WorkerCrash
from repro.simulation.network import NetworkModel, ethernet_1g, loopback_tcp, zero_cost
from repro.simulation.tracing import (
    GraphChurnRecord,
    MetricsTrace,
    QueryRecord,
    RecoveryRecord,
    RepartitionRecord,
)

__all__ = [
    "ClusterSpec",
    "MachineProfile",
    "make_cluster",
    "M1",
    "M2",
    "C1_NODE",
    "Event",
    "EventQueue",
    "FaultPlan",
    "WorkerCrash",
    "ControllerCrash",
    "NetworkModel",
    "loopback_tcp",
    "ethernet_1g",
    "zero_cost",
    "MetricsTrace",
    "QueryRecord",
    "RepartitionRecord",
    "GraphChurnRecord",
    "RecoveryRecord",
]
