"""Linear deterministic greedy (LDG) streaming partitioner.

Stanton & Kliot, KDD 2012 — reference [36] of the paper, the
"state-of-the-art partitioning algorithm" that §4.1 tested and excluded
because the skewed query workload made its partitions unusable (2-6x worse
latency).  We implement the standard formulation: vertices arrive in a
stream; vertex ``v`` goes to the partition maximising

    |N(v) ∩ P_i| * (1 - |P_i| / C)

where ``C = (1 + slack) * n / k`` is the per-partition capacity.  Ties are
broken toward the smaller partition, then the lower index (deterministic).

The default :meth:`~LdgPartitioner.partition` is *batched*: the stream is
processed in chunks whose undirected neighbourhoods are pre-gathered from
the cached CSR views, and each vertex's neighbour-partition counts are one
``bincount`` over its slice.  :meth:`~LdgPartitioner.partition_reference`
keeps the original per-neighbour Python loop as the equivalence oracle —
both paths produce identical assignments.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.graph.digraph import DiGraph
from repro.partitioning.base import Partitioner, iter_neighbor_chunks

__all__ = ["LdgPartitioner", "ldg_place_vertices"]


def ldg_place_vertices(
    graph: DiGraph,
    new_ids: np.ndarray,
    assignment: np.ndarray,
    k: int,
    slack: float = 0.1,
) -> np.ndarray:
    """Streaming LDG placement of vertices appended to a running system.

    This is the incremental form of :class:`LdgPartitioner`: the existing
    ``assignment`` fixes the partitions, and each new vertex (in id order —
    its arrival order in the graph stream) goes to the partition maximising
    ``|N(v) ∩ P_i| * (1 - |P_i| / C)`` with the same deterministic
    tie-breaks, where ``N(v)`` is the undirected neighbourhood already
    materialised in the graph.  Earlier new vertices count as placed when
    scoring later ones.  Returns the owner of each id in ``new_ids``.
    """
    new_ids = np.asarray(new_ids, dtype=np.int64)
    sizes = np.bincount(assignment, minlength=k)[:k].astype(np.int64)
    total = assignment.size + new_ids.size
    capacity = (1.0 + slack) * total / k if total else 1.0
    combined = np.full(graph.num_vertices, -1, dtype=np.int64)
    combined[: assignment.size] = assignment
    placed = np.empty(new_ids.size, dtype=np.int64)
    for i, v in enumerate(new_ids):
        neighbors = np.concatenate(
            [graph.out_neighbors(int(v)), graph.in_neighbors(int(v))]
        )
        owners = combined[neighbors] if neighbors.size else np.empty(0, np.int64)
        neighbor_counts = np.bincount(
            owners[owners >= 0], minlength=k
        ).astype(np.float64)[:k]
        penalty = 1.0 - sizes / capacity
        scores = neighbor_counts * np.maximum(penalty, 0.0)
        best = np.flatnonzero(scores == scores.max())
        if best.size > 1:
            best = best[np.argsort(sizes[best], kind="stable")]
        choice = int(best[0])
        if sizes[choice] >= capacity:
            choice = int(np.argmin(sizes))
        combined[v] = choice
        placed[i] = choice
        sizes[choice] += 1
    return placed


class LdgPartitioner(Partitioner):
    """Streaming LDG with configurable stream order.

    Parameters
    ----------
    slack:
        Capacity slack; capacity per partition is ``(1 + slack) * n / k``.
    order:
        ``"natural"`` (vertex id order — spatially correlated for our road
        networks, the favourable case), ``"random"``, or ``"bfs"``.
    """

    name = "ldg"

    def __init__(self, slack: float = 0.1, order: str = "natural", seed: int = 0) -> None:
        if order not in ("natural", "random", "bfs"):
            raise ValueError(f"unknown stream order {order!r}")
        self.slack = float(slack)
        self.order = order
        self.seed = int(seed)

    # ------------------------------------------------------------------
    def _stream(self, graph: DiGraph) -> np.ndarray:
        n = graph.num_vertices
        if self.order == "natural":
            return np.arange(n, dtype=np.int64)
        if self.order == "random":
            rng = np.random.default_rng(self.seed)
            return rng.permutation(n).astype(np.int64)
        return np.asarray(self._bfs_order(graph), dtype=np.int64)

    def _bfs_order(self, graph: DiGraph) -> Iterable[int]:
        n = graph.num_vertices
        seen = np.zeros(n, dtype=bool)
        order = []
        from collections import deque

        for root in range(n):
            if seen[root]:
                continue
            seen[root] = True
            queue = deque([root])
            while queue:
                u = queue.popleft()
                order.append(u)
                for v in graph.out_neighbors(u):
                    if not seen[v]:
                        seen[v] = True
                        queue.append(int(v))
        return order

    # ------------------------------------------------------------------
    def partition(self, graph: DiGraph, k: int) -> np.ndarray:
        self._check_k(graph, k)
        n = graph.num_vertices
        assignment = np.full(n, -1, dtype=np.int64)
        sizes = np.zeros(k, dtype=np.int64)
        capacity = (1.0 + self.slack) * n / k if n else 1.0

        for chunk, neighbors, offsets in iter_neighbor_chunks(
            graph, self._stream(graph)
        ):
            for i in range(chunk.size):
                owners = assignment[neighbors[offsets[i] : offsets[i + 1]]]
                neighbor_counts = np.bincount(
                    owners[owners >= 0], minlength=k
                ).astype(np.float64)
                penalty = 1.0 - sizes / capacity
                scores = neighbor_counts * np.maximum(penalty, 0.0)
                best = np.flatnonzero(scores == scores.max())
                if best.size > 1:
                    # tie-break toward the least loaded, then lowest index
                    best = best[np.argsort(sizes[best], kind="stable")]
                choice = int(best[0])
                if sizes[choice] >= capacity:
                    choice = int(np.argmin(sizes))
                assignment[chunk[i]] = choice
                sizes[choice] += 1
        return assignment

    # ------------------------------------------------------------------
    def partition_reference(self, graph: DiGraph, k: int) -> np.ndarray:
        """Original per-neighbour scoring loop (equivalence oracle)."""
        self._check_k(graph, k)
        n = graph.num_vertices
        assignment = np.full(n, -1, dtype=np.int64)
        sizes = np.zeros(k, dtype=np.int64)
        capacity = (1.0 + self.slack) * n / k if n else 1.0

        for v in self._stream(graph):
            neighbor_counts = np.zeros(k, dtype=np.float64)
            for u in graph.out_neighbors(v):
                a = assignment[u]
                if a >= 0:
                    neighbor_counts[a] += 1.0
            for u in graph.in_neighbors(v):
                a = assignment[u]
                if a >= 0:
                    neighbor_counts[a] += 1.0
            penalty = 1.0 - sizes / capacity
            scores = neighbor_counts * np.maximum(penalty, 0.0)
            best = np.flatnonzero(scores == scores.max())
            if best.size > 1:
                best = best[np.argsort(sizes[best], kind="stable")]
            choice = int(best[0])
            if sizes[choice] >= capacity:
                choice = int(np.argmin(sizes))
            assignment[v] = choice
            sizes[choice] += 1
        return assignment
