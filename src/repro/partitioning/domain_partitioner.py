"""Domain partitioning — the paper's best-case static expert baseline.

§4.1: "Domain serves as a best-case static partitioning algorithm: a domain
expert, who already knows the hotspots of the query distribution in advance,
manually partitions the graph such that each hotspot is assigned to a single
partition."

We emulate the expert with balanced geographic clustering of the hotspot
cities: cities are grouped onto ``k`` workers such that every city (hotspot)
lies entirely within one partition and groups are geographically contiguous;
every other vertex joins the worker of its nearest city centre.  Because the
expert balances *area*, not *query load*, the population skew of the hotspots
translates into the workload imbalance the paper observes for Domain
(Figure 6e).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import PartitioningError
from repro.graph.digraph import DiGraph
from repro.graph.road_network import RoadNetwork
from repro.partitioning.base import Partitioner

__all__ = ["DomainPartitioner", "group_cities_geographically"]


def group_cities_geographically(
    centers: np.ndarray, k: int, seed: int = 0, rounds: int = 25
) -> np.ndarray:
    """Cluster city centres into ``k`` equally sized geographic groups.

    A balanced variant of Lloyd's algorithm: in every round each city is
    (re-)assigned greedily, nearest-centroid first, subject to a per-group
    capacity of ``ceil(c / k)`` cities.  Deterministic given the seed.
    """
    c = centers.shape[0]
    if k > c:
        raise PartitioningError(f"cannot spread {c} cities over {k} workers")
    rng = np.random.default_rng(seed)
    # initialise centroids with k distinct cities (k-means++-flavoured spread)
    first = int(rng.integers(0, c))
    chosen = [first]
    for _ in range(k - 1):
        d2 = np.full(c, np.inf)
        for idx in chosen:
            d2 = np.minimum(
                d2,
                (centers[:, 0] - centers[idx, 0]) ** 2
                + (centers[:, 1] - centers[idx, 1]) ** 2,
            )
        chosen.append(int(np.argmax(d2)))
    centroids = centers[chosen].copy()

    capacity = int(np.ceil(c / k))
    groups = np.zeros(c, dtype=np.int64)
    for _ in range(rounds):
        counts = np.zeros(k, dtype=np.int64)
        order_cost = np.min(
            np.linalg.norm(centers[:, None, :] - centroids[None, :, :], axis=2),
            axis=1,
        )
        new_groups = np.zeros(c, dtype=np.int64)
        for city in np.argsort(order_cost):
            dists = np.linalg.norm(centroids - centers[city], axis=1)
            for g in np.argsort(dists):
                if counts[g] < capacity:
                    new_groups[city] = g
                    counts[g] += 1
                    break
        if np.array_equal(new_groups, groups):
            break
        groups = new_groups
        for g in range(k):
            members = centers[groups == g]
            if members.size:
                centroids[g] = members.mean(axis=0)
    return groups


class DomainPartitioner(Partitioner):
    """Hotspot-aware expert partitioning for road networks.

    Parameters
    ----------
    road_network:
        The generated network whose city metadata defines the hotspots.
        When absent, the partitioner falls back to coordinate-grid slicing
        (useful for non-road graphs with coordinates).
    """

    name = "domain"

    def __init__(
        self, road_network: Optional[RoadNetwork] = None, seed: int = 0
    ) -> None:
        self.road_network = road_network
        self.seed = int(seed)

    # ------------------------------------------------------------------
    def partition(self, graph: DiGraph, k: int) -> np.ndarray:
        self._check_k(graph, k)
        if self.road_network is not None:
            return self._partition_road_network(self.road_network, graph, k)
        if graph.has_coords():
            return self._partition_by_coordinates(graph, k)
        raise PartitioningError(
            "DomainPartitioner needs a RoadNetwork or vertex coordinates"
        )

    def _partition_road_network(
        self, rn: RoadNetwork, graph: DiGraph, k: int
    ) -> np.ndarray:
        if rn.graph.num_vertices != graph.num_vertices:
            raise PartitioningError("road network does not match graph")
        centers = np.array([c.center for c in rn.cities])
        groups = group_cities_geographically(centers, k, seed=self.seed)
        assignment = np.empty(graph.num_vertices, dtype=np.int64)
        # city vertices follow their city's group — every hotspot is whole
        for city in rn.cities:
            assignment[city.vertex_ids] = groups[city.city_id]
        # highway vertices join the nearest city's worker
        outside = np.flatnonzero(rn.city_of_vertex < 0)
        if outside.size:
            coords = graph.coords
            if coords is None:
                assignment[outside] = 0
            else:
                for v in outside:
                    d = np.linalg.norm(centers - coords[v], axis=1)
                    assignment[v] = groups[int(np.argmin(d))]
        return assignment

    def _partition_by_coordinates(self, graph: DiGraph, k: int) -> np.ndarray:
        """Fallback: recursive coordinate bisection into k equal strips."""
        coords = graph.coords
        if coords is None:  # survives python -O, unlike the assert it replaces
            raise PartitioningError(
                "coordinate bisection fallback requires vertex coordinates"
            )
        order = np.lexsort((coords[:, 1], coords[:, 0]))
        assignment = np.empty(graph.num_vertices, dtype=np.int64)
        bounds = np.linspace(0, graph.num_vertices, k + 1).astype(np.int64)
        for g in range(k):
            assignment[order[bounds[g] : bounds[g + 1]]] = g
        return assignment


def hotspot_groups(
    rn: RoadNetwork, k: int, seed: int = 0
) -> List[Sequence[int]]:
    """Convenience: the city ids grouped per worker (for inspection/tests)."""
    centers = np.array([c.center for c in rn.cities])
    groups = group_cities_geographically(centers, k, seed=seed)
    return [list(np.flatnonzero(groups == g)) for g in range(k)]
