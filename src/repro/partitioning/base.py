"""Partitioner interface.

A *partitioning* in this library is simply a numpy ``int64`` array mapping
each vertex id to a worker id in ``[0, k)`` — the assignment function
``A : V -> W`` of §2 at a fixed point in time.  Dynamic reassignment (the
``A : V x T -> W`` of the paper) is carried out by the engine applying the
controller's move requests on top of an initial static partitioning.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import PartitioningError
from repro.graph.digraph import DiGraph
from repro.util import concat_ranges

__all__ = ["Partitioner", "validate_partitioning", "iter_neighbor_chunks"]


def _gather_ranges(
    src: np.ndarray,
    starts: np.ndarray,
    counts: np.ndarray,
    dst: np.ndarray,
    dst_starts: np.ndarray,
) -> None:
    """Copy ``src[starts[i] : starts[i]+counts[i]]`` into ``dst`` at
    ``dst_starts[i]`` for all ``i`` without a Python loop."""
    dst[concat_ranges(dst_starts, counts)] = src[concat_ranges(starts, counts)]


def iter_neighbor_chunks(graph: DiGraph, order: np.ndarray, chunk_size: int = 2048):
    """Stream ``order`` in chunks with pre-gathered undirected neighbourhoods.

    For each chunk of stream vertices this yields ``(vertices, neighbors,
    offsets)`` where ``neighbors[offsets[i] : offsets[i+1]]`` are the out-
    plus in-neighbours of ``vertices[i]``, gathered from the cached
    :meth:`~repro.graph.digraph.DiGraph.csr` / ``csr_in`` views in a handful
    of vectorized copies per chunk.  The streaming partitioners then score
    each vertex with a single ``bincount`` over its slice instead of a
    per-neighbour Python loop.
    """
    out = graph.csr()
    rin = graph.csr_in()
    for lo in range(0, order.size, chunk_size):
        vs = order[lo : lo + chunk_size]
        out_counts = out.indptr[vs + 1] - out.indptr[vs]
        in_counts = rin.indptr[vs + 1] - rin.indptr[vs]
        degrees = out_counts + in_counts
        offsets = np.zeros(vs.size + 1, dtype=np.int64)
        np.cumsum(degrees, out=offsets[1:])
        neighbors = np.empty(offsets[-1], dtype=np.int64)
        _gather_ranges(out.indices, out.indptr[vs], out_counts, neighbors, offsets[:-1])
        _gather_ranges(
            rin.indices, rin.indptr[vs], in_counts, neighbors, offsets[:-1] + out_counts
        )
        yield vs, neighbors, offsets


class Partitioner(abc.ABC):
    """Strategy interface for computing an initial static partitioning."""

    #: Human-readable name used in benchmark reports.
    name: str = "base"

    @abc.abstractmethod
    def partition(self, graph: DiGraph, k: int) -> np.ndarray:
        """Assign every vertex of ``graph`` to one of ``k`` workers.

        Returns
        -------
        numpy.ndarray
            int64 array of shape ``(graph.num_vertices,)`` with values in
            ``[0, k)``.
        """

    def _check_k(self, graph: DiGraph, k: int) -> None:
        if k < 1:
            raise PartitioningError("k must be >= 1")
        if graph.num_vertices > 0 and k > graph.num_vertices:
            raise PartitioningError(
                f"cannot split {graph.num_vertices} vertices into {k} parts"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def validate_partitioning(graph: DiGraph, assignment: np.ndarray, k: int) -> None:
    """Raise :class:`PartitioningError` unless ``assignment`` is well formed."""
    assignment = np.asarray(assignment)
    if assignment.shape != (graph.num_vertices,):
        raise PartitioningError(
            f"expected shape ({graph.num_vertices},), got {assignment.shape}"
        )
    if assignment.size == 0:
        return
    if assignment.min() < 0 or assignment.max() >= k:
        raise PartitioningError("assignment values must lie in [0, k)")
