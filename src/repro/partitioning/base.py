"""Partitioner interface.

A *partitioning* in this library is simply a numpy ``int64`` array mapping
each vertex id to a worker id in ``[0, k)`` — the assignment function
``A : V -> W`` of §2 at a fixed point in time.  Dynamic reassignment (the
``A : V x T -> W`` of the paper) is carried out by the engine applying the
controller's move requests on top of an initial static partitioning.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import PartitioningError
from repro.graph.digraph import DiGraph

__all__ = ["Partitioner", "validate_partitioning"]


class Partitioner(abc.ABC):
    """Strategy interface for computing an initial static partitioning."""

    #: Human-readable name used in benchmark reports.
    name: str = "base"

    @abc.abstractmethod
    def partition(self, graph: DiGraph, k: int) -> np.ndarray:
        """Assign every vertex of ``graph`` to one of ``k`` workers.

        Returns
        -------
        numpy.ndarray
            int64 array of shape ``(graph.num_vertices,)`` with values in
            ``[0, k)``.
        """

    def _check_k(self, graph: DiGraph, k: int) -> None:
        if k < 1:
            raise PartitioningError("k must be >= 1")
        if graph.num_vertices > 0 and k > graph.num_vertices:
            raise PartitioningError(
                f"cannot split {graph.num_vertices} vertices into {k} parts"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def validate_partitioning(graph: DiGraph, assignment: np.ndarray, k: int) -> None:
    """Raise :class:`PartitioningError` unless ``assignment`` is well formed."""
    assignment = np.asarray(assignment)
    if assignment.shape != (graph.num_vertices,):
        raise PartitioningError(
            f"expected shape ({graph.num_vertices},), got {assignment.shape}"
        )
    if assignment.size == 0:
        return
    if assignment.min() < 0 or assignment.max() >= k:
        raise PartitioningError("assignment values must lie in [0, k)")
