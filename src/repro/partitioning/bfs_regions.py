"""Balanced multi-source BFS region growing.

A simple contiguity-preserving baseline: ``k`` seeds spread across the graph
grow regions breadth-first in round-robin fashion, so each partition is a
connected ball and partitions have equal vertex counts (±1).  Useful for
graphs without coordinates where :class:`DomainPartitioner` cannot run, and
as a locality-without-expert-knowledge reference point.
"""

from __future__ import annotations

from collections import deque
from typing import List

import numpy as np

from repro.graph.digraph import DiGraph
from repro.partitioning.base import Partitioner

__all__ = ["BfsRegionPartitioner"]


class BfsRegionPartitioner(Partitioner):
    """Round-robin balanced BFS region growing from k spread-out seeds."""

    name = "bfs-regions"

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def _spread_seeds(self, graph: DiGraph, k: int) -> List[int]:
        """Pick k mutually distant seeds via iterated farthest-point BFS."""
        n = graph.num_vertices
        rng = np.random.default_rng(self.seed)
        seeds = [int(rng.integers(0, n))]
        dist = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
        for _ in range(k - 1):
            # BFS from the newest seed, keep the minimum hop distance to any seed
            queue = deque([seeds[-1]])
            local = np.full(n, -1, dtype=np.int64)
            local[seeds[-1]] = 0
            while queue:
                u = queue.popleft()
                for v in graph.out_neighbors(u):
                    if local[v] < 0:
                        local[v] = local[u] + 1
                        queue.append(int(v))
            reachable = local >= 0
            dist[reachable] = np.minimum(dist[reachable], local[reachable])
            dist[~reachable] = np.iinfo(np.int64).max
            candidates = np.where(dist == dist.max())[0]
            seeds.append(int(candidates[0]))
        return seeds

    def partition(self, graph: DiGraph, k: int) -> np.ndarray:
        self._check_k(graph, k)
        n = graph.num_vertices
        assignment = np.full(n, -1, dtype=np.int64)
        if n == 0:
            return assignment
        capacity = int(np.ceil(n / k))
        seeds = self._spread_seeds(graph, k)
        queues = [deque([s]) for s in seeds]
        sizes = np.zeros(k, dtype=np.int64)
        for g, s in enumerate(seeds):
            if assignment[s] < 0:
                assignment[s] = g
                sizes[g] += 1
        remaining = n - int(np.count_nonzero(assignment >= 0))
        while remaining > 0:
            progressed = False
            for g in range(k):
                if sizes[g] >= capacity:
                    continue
                queue = queues[g]
                claimed = False
                while queue and not claimed:
                    u = queue.popleft()
                    for v in graph.out_neighbors(u):
                        if assignment[v] < 0:
                            assignment[v] = g
                            sizes[g] += 1
                            remaining -= 1
                            queue.append(int(v))
                            claimed = True
                            progressed = True
                            if sizes[g] >= capacity:
                                break
                    else:
                        continue
                    queue.appendleft(u)  # u may still have free neighbours
                    break
            if not progressed:
                # disconnected leftovers: hand them to the least loaded worker
                leftovers = np.flatnonzero(assignment < 0)
                for v in leftovers:
                    g = int(np.argmin(sizes))
                    assignment[v] = g
                    sizes[g] += 1
                    queues[g].append(int(v))
                remaining = 0
        return assignment
