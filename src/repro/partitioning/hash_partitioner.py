"""Hash partitioning — the paper's balanced, locality-oblivious baseline.

§4.1: "Hash leads to ideal workload balancing".  A multiplicative integer
hash (a Fibonacci/splitmix-style mixer) decorrelates the assignment from the
spatial vertex layout, so neighbouring road junctions land on arbitrary
workers: near-perfect vertex balance, near-zero query locality.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import DiGraph
from repro.partitioning.base import Partitioner

__all__ = ["HashPartitioner"]


def _mix64(x: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer — a high-quality stateless integer mixer."""
    x = x.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        x += np.uint64(0x9E3779B97F4A7C15)
        x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        x = x ^ (x >> np.uint64(31))
    return x


class HashPartitioner(Partitioner):
    """Assign vertex ``v`` to ``mix64(v + seed) mod k``."""

    name = "hash"

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def partition(self, graph: DiGraph, k: int) -> np.ndarray:
        self._check_k(graph, k)
        ids = np.arange(graph.num_vertices, dtype=np.uint64) + np.uint64(
            self.seed & 0xFFFFFFFF
        )
        return (_mix64(ids) % np.uint64(k)).astype(np.int64)
