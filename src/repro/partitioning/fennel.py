"""FENNEL streaming partitioner.

Tsourakakis et al., WSDM 2014 — reference [37] of the paper, included as an
additional query-agnostic baseline in our ablation benches.  Vertex ``v`` is
assigned to the partition maximising

    |N(v) ∩ P_i| - alpha * gamma * |P_i|^(gamma - 1)

with the standard parameterisation ``gamma = 1.5`` and
``alpha = sqrt(k) * m / n^1.5``.

Like LDG, the default :meth:`~FennelPartitioner.partition` is batched over
pre-gathered CSR neighbourhood chunks (one ``bincount`` per vertex);
:meth:`~FennelPartitioner.partition_reference` retains the per-neighbour
loop as the equivalence oracle.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import DiGraph
from repro.partitioning.base import Partitioner, iter_neighbor_chunks

__all__ = ["FennelPartitioner"]


class FennelPartitioner(Partitioner):
    """Streaming FENNEL with natural or seeded-random stream order."""

    name = "fennel"

    def __init__(
        self,
        gamma: float = 1.5,
        balance_slack: float = 0.1,
        order: str = "natural",
        seed: int = 0,
    ) -> None:
        if order not in ("natural", "random"):
            raise ValueError(f"unknown stream order {order!r}")
        self.gamma = float(gamma)
        self.balance_slack = float(balance_slack)
        self.order = order
        self.seed = int(seed)

    def _stream(self, graph: DiGraph) -> np.ndarray:
        n = graph.num_vertices
        if self.order == "natural":
            return np.arange(n, dtype=np.int64)
        return np.random.default_rng(self.seed).permutation(n).astype(np.int64)

    def partition(self, graph: DiGraph, k: int) -> np.ndarray:
        self._check_k(graph, k)
        n = graph.num_vertices
        m = graph.num_edges
        if n == 0:
            return np.empty(0, dtype=np.int64)
        alpha = np.sqrt(k) * m / max(n**1.5, 1.0)
        capacity = (1.0 + self.balance_slack) * n / k

        assignment = np.full(n, -1, dtype=np.int64)
        sizes = np.zeros(k, dtype=np.float64)
        for chunk, neighbors, offsets in iter_neighbor_chunks(
            graph, self._stream(graph)
        ):
            for i in range(chunk.size):
                owners = assignment[neighbors[offsets[i] : offsets[i + 1]]]
                neighbor_counts = np.bincount(
                    owners[owners >= 0], minlength=k
                ).astype(np.float64)
                penalty = alpha * self.gamma * np.power(
                    np.maximum(sizes, 0.0), self.gamma - 1.0
                )
                scores = neighbor_counts - penalty
                scores[sizes >= capacity] = -np.inf
                best = np.flatnonzero(scores == scores.max())
                if best.size > 1:
                    best = best[np.argsort(sizes[best], kind="stable")]
                choice = int(best[0])
                assignment[chunk[i]] = choice
                sizes[choice] += 1.0
        return assignment

    # ------------------------------------------------------------------
    def partition_reference(self, graph: DiGraph, k: int) -> np.ndarray:
        """Original per-neighbour scoring loop (equivalence oracle)."""
        self._check_k(graph, k)
        n = graph.num_vertices
        m = graph.num_edges
        if n == 0:
            return np.empty(0, dtype=np.int64)
        alpha = np.sqrt(k) * m / max(n**1.5, 1.0)
        capacity = (1.0 + self.balance_slack) * n / k

        assignment = np.full(n, -1, dtype=np.int64)
        sizes = np.zeros(k, dtype=np.float64)
        for v in self._stream(graph):
            neighbor_counts = np.zeros(k, dtype=np.float64)
            for u in graph.out_neighbors(v):
                a = assignment[u]
                if a >= 0:
                    neighbor_counts[a] += 1.0
            for u in graph.in_neighbors(v):
                a = assignment[u]
                if a >= 0:
                    neighbor_counts[a] += 1.0
            penalty = alpha * self.gamma * np.power(
                np.maximum(sizes, 0.0), self.gamma - 1.0
            )
            scores = neighbor_counts - penalty
            scores[sizes >= capacity] = -np.inf
            best = np.flatnonzero(scores == scores.max())
            if best.size > 1:
                best = best[np.argsort(sizes[best], kind="stable")]
            choice = int(best[0])
            assignment[v] = choice
            sizes[choice] += 1.0
        return assignment
