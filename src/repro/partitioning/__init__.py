"""Static graph partitioning baselines (the query-agnostic state of the art)."""

from repro.partitioning.base import Partitioner, validate_partitioning
from repro.partitioning.bfs_regions import BfsRegionPartitioner
from repro.partitioning.domain_partitioner import (
    DomainPartitioner,
    group_cities_geographically,
)
from repro.partitioning.fennel import FennelPartitioner
from repro.partitioning.hash_partitioner import HashPartitioner
from repro.partitioning.ldg import LdgPartitioner, ldg_place_vertices

__all__ = [
    "Partitioner",
    "validate_partitioning",
    "HashPartitioner",
    "DomainPartitioner",
    "group_cities_geographically",
    "LdgPartitioner",
    "ldg_place_vertices",
    "FennelPartitioner",
    "BfsRegionPartitioner",
]
