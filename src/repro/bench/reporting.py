"""Plain-text reporting helpers for the benchmark harness.

The paper's figures are latency bars/series; benchmarks print the same rows
and series as aligned ASCII tables so the shape comparison (who wins, by
what factor, where crossovers fall) is readable straight from the bench
output and from ``bench_output.txt``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["format_table", "format_series", "print_table", "print_series", "ratio"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
    float_format: str = "{:.4g}",
) -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = []
    for row in rows:
        rendered = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        str_rows.append(rendered)
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    series: Dict[str, Tuple[np.ndarray, np.ndarray]],
    num_points: int = 12,
    title: Optional[str] = None,
    value_format: str = "{:.3f}",
) -> str:
    """Render several (time, value) series resampled on a shared time grid."""
    if not series:
        return title or ""
    t_max = max(float(t[-1]) for (t, _v) in series.values() if len(t))
    if t_max <= 0:
        return title or ""
    grid = np.linspace(0.0, t_max, num_points + 1)[1:]
    headers = ["t"] + list(series.keys())
    rows = []
    for t in grid:
        row: List[object] = [f"{t:.3f}"]
        for name, (times, values) in series.items():
            if len(times) == 0:
                row.append("-")
                continue
            idx = np.searchsorted(times, t, side="right")
            window = values[max(0, idx - 3) : idx]  # smooth over recent points
            row.append(value_format.format(float(np.mean(window))) if len(window) else "-")
        rows.append(row)
    return format_table(headers, rows, title=title)


def print_table(*args, **kwargs) -> None:
    print("\n" + format_table(*args, **kwargs))


def print_series(*args, **kwargs) -> None:
    print("\n" + format_series(*args, **kwargs))


def ratio(a: float, b: float) -> float:
    """Safe ratio a/b (nan when b == 0)."""
    return a / b if b else float("nan")
