"""Experiment harness used by every benchmark and the examples.

One :class:`Scenario` describes an experiment arm — graph preset, scale,
infrastructure, initial partitioner, synchronization mode, adaptivity,
workload — and :func:`run_scenario` executes it deterministically, returning
the metric trace plus derived statistics.

Scaling: the benchmark suite honours the ``REPRO_SCALE`` environment
variable (``small`` — default, ``medium``, ``paper``).  Query counts and
graph sizes are scaled down so the whole suite runs in minutes; the
experiment *shapes* (who wins, crossovers) are preserved.  Controller timing
parameters are scaled with the graphs: our road networks are ~100x smaller
than the OSM extracts, so virtual-time constants (monitoring window μ,
Q-cut budget) shrink accordingly — the mapping is documented in
``docs/experiments.md``, alongside the scheduler/arrival knobs.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.controller import Controller, ControllerConfig
from repro.engine.barriers import SyncMode
from repro.engine.engine import EngineConfig, QGraphEngine
from repro.errors import ReproError
from repro.graph.delta import MutableDiGraph
from repro.graph.road_network import (
    RoadNetwork,
    baden_wuerttemberg_like,
    germany_like,
)
from repro.partitioning import (
    BfsRegionPartitioner,
    DomainPartitioner,
    FennelPartitioner,
    HashPartitioner,
    LdgPartitioner,
)
from repro.simulation.cluster import make_cluster
from repro.simulation.faults import FaultPlan
from repro.simulation.tracing import MetricsTrace
from repro.workload.generator import PhaseSpec, WorkloadGenerator

__all__ = [
    "Scenario",
    "ScenarioResult",
    "run_scenario",
    "get_scale",
    "scale_queries",
    "graph_scale_for",
    "default_controller_config",
    "road_network_for",
]

_SCALE_ENV = "REPRO_SCALE"

#: query-count multiplier and graph-size multiplier per scale level
_SCALES: Dict[str, Tuple[float, float]] = {
    "small": (1.0 / 8.0, 1.0),
    "medium": (1.0 / 4.0, 1.25),
    "paper": (1.0, 2.0),
}

_NETWORK_CACHE: Dict[Tuple[str, float, int], RoadNetwork] = {}


def get_scale() -> str:
    """The active scale level (``REPRO_SCALE`` env var, default ``small``)."""
    level = os.environ.get(_SCALE_ENV, "small").lower()
    if level not in _SCALES:
        raise ReproError(
            f"unknown {_SCALE_ENV}={level!r}; pick one of {sorted(_SCALES)}"
        )
    return level


def scale_queries(paper_count: int, minimum: int = 16) -> int:
    """Scale a paper query count to the active level."""
    factor, _ = _SCALES[get_scale()]
    return max(int(paper_count * factor), minimum)


def graph_scale_for(preset: str) -> float:
    """Graph-size multiplier for the active level (GY gets an extra cut)."""
    _, gfactor = _SCALES[get_scale()]
    if preset == "gy":
        return gfactor * 0.5
    return gfactor


def road_network_for(preset: str, scale: Optional[float] = None, seed: int = 0) -> RoadNetwork:
    """Cached road-network construction (presets ``"bw"`` / ``"gy"``)."""
    if scale is None:
        scale = graph_scale_for(preset)
    key = (preset, round(float(scale), 4), seed)
    if key not in _NETWORK_CACHE:
        if preset == "bw":
            _NETWORK_CACHE[key] = baden_wuerttemberg_like(scale=scale, seed=7 + seed)
        elif preset == "gy":
            _NETWORK_CACHE[key] = germany_like(scale=scale, seed=11 + seed)
        else:
            raise ReproError(f"unknown graph preset {preset!r}")
    return _NETWORK_CACHE[key]


def default_controller_config(**overrides) -> ControllerConfig:
    """Controller parameters calibrated for the scaled simulations.

    The paper's values (μ=240 s, 2 s Q-cut budget) assume multi-second query
    latencies on 1.8M-11.8M-vertex graphs; our scaled graphs run queries in
    tens of virtual milliseconds, so the window and budget shrink by the
    same two orders of magnitude while keeping Φ=0.7 and δ=0.25 untouched.
    """
    base = dict(
        mu=0.1,
        phi=0.7,
        delta=0.25,
        max_tracked_queries=64,
        clusters_per_worker=4,
        qcut_compute_time=0.004,
        ils_rounds=60,
        qcut_cooldown=0.03,
        min_queries_for_qcut=8,
        seed=0,
    )
    base.update(overrides)
    return ControllerConfig(**base)


@dataclass(frozen=True)
class Scenario:
    """One experiment arm.

    ``scheduler`` selects the admission policy (``"fifo"`` — the
    historical order — ``"locality"``, ``"shortest_scope"``,
    ``"phase_round_robin"``); ``arrival``/``arrival_rate`` select the
    arrival process of the workload phases (``"batch"`` — everything at
    t=0, the paper's setup — ``"poisson"`` or ``"burst"``).  The
    ``"mixed"`` workload blends all seven query programs.
    ``repartition_mode`` picks the STOP/START barrier scope
    (``"global"`` — the paper's whole-cluster drain — or ``"partial"``,
    which halts only the move plan's involved workers).
    ``churn > 0`` superimposes a graph-stream churn process (topology
    mutations applied through :class:`~repro.graph.delta.MutableDiGraph`)
    at that many events per virtual second over a ``churn_span`` horizon;
    the scenario's road network is deep-copied before mutation so the
    harness cache stays pristine.
    ``faults`` injects a deterministic
    :class:`~repro.simulation.faults.FaultPlan` (worker crashes, message
    drops/duplicates, control loss); ``checkpoint_interval > 0`` enables
    barrier-aligned checkpointing, required whenever the plan schedules
    crashes.
    """

    name: str
    graph_preset: str = "bw"
    infrastructure: str = "M2"
    k: int = 8
    partitioner: str = "hash"
    sync_mode: SyncMode = SyncMode.HYBRID
    adaptive: bool = True
    workload: str = "sssp"
    main_queries: int = 256
    disturbance_queries: int = 0
    max_parallel: int = 16
    scheduler: str = "fifo"
    repartition_mode: str = "global"
    arrival: str = "batch"
    arrival_rate: float = 0.0
    churn: float = 0.0
    churn_span: float = 0.5
    churn_batch: int = 4
    seed: int = 0
    graph_scale: Optional[float] = None
    workload_bucket: float = 0.05
    controller_overrides: Tuple[Tuple[str, object], ...] = ()
    faults: Optional[FaultPlan] = None
    checkpoint_interval: int = 0

    def controller_config(self) -> ControllerConfig:
        return default_controller_config(**dict(self.controller_overrides))


@dataclass
class ScenarioResult:
    """Trace plus derived statistics of one scenario run."""

    scenario: Scenario
    trace: MetricsTrace
    controller: Controller
    engine: QGraphEngine
    wall_seconds: float

    # headline numbers -------------------------------------------------
    @property
    def total_latency(self) -> float:
        return self.trace.total_latency()

    @property
    def mean_latency(self) -> float:
        return self.trace.mean_latency()

    @property
    def makespan(self) -> float:
        return self.trace.makespan()

    @property
    def mean_locality(self) -> float:
        return self.trace.mean_locality()

    @property
    def mean_imbalance(self) -> float:
        return self.trace.mean_workload_imbalance(self.scenario.k)

    def summary(self) -> Dict[str, float]:
        return {
            "total_latency": self.total_latency,
            "mean_latency": self.mean_latency,
            "makespan": self.makespan,
            "locality": self.mean_locality,
            "imbalance": self.mean_imbalance,
            "repartitions": float(len(self.trace.repartitions)),
            "queries": float(len(self.trace.finished_queries())),
        }


def _build_partitioner(name: str, rn: RoadNetwork, seed: int):
    if name == "hash":
        return HashPartitioner(seed=seed)
    if name == "domain":
        return DomainPartitioner(road_network=rn, seed=seed)
    if name == "ldg":
        return LdgPartitioner(seed=seed)
    if name == "fennel":
        return FennelPartitioner(seed=seed)
    if name == "bfs":
        return BfsRegionPartitioner(seed=seed)
    raise ReproError(f"unknown partitioner {name!r}")


def run_scenario(scenario: Scenario) -> ScenarioResult:
    """Execute one experiment arm end to end (deterministic)."""
    t0 = time.perf_counter()
    rn = road_network_for(scenario.graph_preset, scenario.graph_scale, seed=0)
    graph = rn.graph
    if scenario.churn > 0:
        # the cached network is shared across scenarios — mutate a copy
        graph = MutableDiGraph.from_digraph(graph)

    partitioner = _build_partitioner(scenario.partitioner, rn, scenario.seed)
    assignment = partitioner.partition(graph, scenario.k)

    cluster = make_cluster(scenario.infrastructure, scenario.k)
    controller = Controller(scenario.k, scenario.controller_config())
    trace = MetricsTrace(workload_bucket=scenario.workload_bucket)
    engine = QGraphEngine(
        graph,
        cluster,
        assignment,
        controller=controller,
        config=EngineConfig(
            sync_mode=scenario.sync_mode,
            max_parallel_queries=scenario.max_parallel,
            scheduler=scenario.scheduler,
            adaptive=scenario.adaptive,
            repartition_mode=scenario.repartition_mode,
            checkpoint_interval=scenario.checkpoint_interval,
        ),
        trace=trace,
        faults=scenario.faults,
    )

    generator = WorkloadGenerator(rn, seed=scenario.seed + 1)
    churn_kwargs = dict(
        churn_rate=scenario.churn,
        churn_span=scenario.churn_span,
        churn_batch=scenario.churn_batch,
    )
    if scenario.workload == "sssp":
        wl = generator.paper_sssp_workload(
            main_queries=scenario.main_queries,
            disturbance_queries=scenario.disturbance_queries,
            arrival=scenario.arrival,
            arrival_rate=scenario.arrival_rate,
            **churn_kwargs,
        )
    elif scenario.workload == "poi":
        wl = generator.paper_poi_workload(
            num_queries=scenario.main_queries,
            arrival=scenario.arrival,
            arrival_rate=scenario.arrival_rate,
            **churn_kwargs,
        )
    elif scenario.workload == "mixed":
        wl = generator.mixed_kind_workload(
            num_queries=scenario.main_queries,
            arrival=scenario.arrival,
            arrival_rate=scenario.arrival_rate,
            **churn_kwargs,
        )
    else:
        raise ReproError(f"unknown workload {scenario.workload!r}")
    wl.submit_all(engine)
    engine.run()

    return ScenarioResult(
        scenario=scenario,
        trace=trace,
        controller=controller,
        engine=engine,
        wall_seconds=time.perf_counter() - t0,
    )


def compare(
    base: Scenario, variants: Dict[str, Dict[str, object]]
) -> Dict[str, ScenarioResult]:
    """Run the base scenario and named variations (``replace`` overrides)."""
    results = {base.name: run_scenario(base)}
    for name, overrides in variants.items():
        results[name] = run_scenario(replace(base, name=name, **overrides))
    return results
