"""Benchmark harness: scenario runner and ASCII reporting."""

from repro.bench.harness import (
    Scenario,
    ScenarioResult,
    compare,
    default_controller_config,
    get_scale,
    graph_scale_for,
    road_network_for,
    run_scenario,
    scale_queries,
)
from repro.bench.reporting import (
    format_series,
    format_table,
    print_series,
    print_table,
    ratio,
)

__all__ = [
    "Scenario",
    "ScenarioResult",
    "run_scenario",
    "compare",
    "get_scale",
    "scale_queries",
    "graph_scale_for",
    "road_network_for",
    "default_controller_config",
    "format_table",
    "format_series",
    "print_table",
    "print_series",
    "ratio",
]
