"""Q-Graph core: the paper's primary contribution.

Q-cut query-aware partitioning (iterated local search over high-level query
scopes), the centralized MAPE controller, and the monitoring machinery.
"""

from repro.core.api import (
    BarrierReadyMessage,
    BarrierSynchMessage,
    ExecuteQueryMessage,
    MoveRequest,
    ScheduleQueryMessage,
    StatsMessage,
)
from repro.core.clustering import UnionFind, cluster_queries
from repro.core.controller import Controller, ControllerConfig, MovePlan
from repro.core.cost import (
    assignment_cost,
    assignment_cost_from_sizes,
    query_cut,
    query_cut_excess,
    query_cut_excess_from_sizes,
    query_cut_from_sizes,
)
from repro.core.ils import IlsResult, iterated_local_search
from repro.core.local_search import best_successor, local_search
from repro.core.monitoring import QueryMonitor, QueryStats
from repro.core.perturbation import perturb
from repro.core.scopes import (
    QueryScopes,
    ScopeStore,
    pairwise_intersections,
    pairwise_intersections_arrays,
    scope_worker_counts,
)
from repro.core.state import Fragment, Move, QcutState

__all__ = [
    "Controller",
    "ControllerConfig",
    "MovePlan",
    "QcutState",
    "Fragment",
    "Move",
    "iterated_local_search",
    "IlsResult",
    "local_search",
    "best_successor",
    "perturb",
    "cluster_queries",
    "UnionFind",
    "QueryScopes",
    "ScopeStore",
    "pairwise_intersections",
    "pairwise_intersections_arrays",
    "scope_worker_counts",
    "QueryMonitor",
    "QueryStats",
    "query_cut",
    "query_cut_excess",
    "assignment_cost",
    "query_cut_from_sizes",
    "query_cut_excess_from_sizes",
    "assignment_cost_from_sizes",
    "StatsMessage",
    "BarrierSynchMessage",
    "ScheduleQueryMessage",
    "MoveRequest",
    "BarrierReadyMessage",
    "ExecuteQueryMessage",
]
