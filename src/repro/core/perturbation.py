"""Perturbation subroutine — Appendix A.2 (Figure 8).

*"A good perturbation is neither too small (i.e., the algorithm gets stuck
in local minima), nor too large (i.e., the algorithm becomes uninformed)."*

The paper's strategy, reproduced verbatim:

I.   Randomly select a query (cluster) spread across at least two workers.
II.  Move all its local scopes to the worker with its largest local scope.
III. Re-establish workload balance by moving random local scopes from the
     maximally to the least loaded worker.

This injects "informed disorder": it merges one query, possibly overloading
a worker, and the rebalancing shuffles other scopes — a new basin for the
next local search without degenerating into a random restart.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.state import QcutState

__all__ = ["perturb"]


def _pick_split_unit(state: QcutState, rng: np.random.Generator) -> Optional[int]:
    """A random cluster whose scope spans >= 2 workers (step I)."""
    spread = (state.weighted > 0).sum(axis=1)
    candidates = np.flatnonzero(spread >= 2)
    if candidates.size == 0:
        return None
    return int(candidates[int(rng.integers(0, candidates.size))])


def perturb(
    state: QcutState,
    rng: np.random.Generator,
    max_rebalance_moves: int = 200,
) -> QcutState:
    """Apply the Figure 8 perturbation to (a copy of) ``state``.

    Returns a new state; the input is left untouched so ILS can keep its
    incumbent.  If no cluster is split (already perfect locality), a random
    cluster is bounced to a random other worker instead so the search still
    explores.
    """
    out = state.copy()
    k = out.num_workers
    if k < 2 or out.num_units == 0:
        return out

    unit = _pick_split_unit(out, rng)
    if unit is None:
        # perfect locality: nudge a random unit to a random worker
        unit = int(rng.integers(0, out.num_units))
        sources = np.flatnonzero(out.weighted[unit] > 0)
        if sources.size == 0:
            return out
        src = int(sources[0])
        dst_choices = [w for w in range(k) if w != src]
        dst = int(dst_choices[int(rng.integers(0, len(dst_choices)))])
        out.apply_move(unit, src, dst)
    else:
        # step II: fuse the unit on its largest-scope worker
        target = int(np.argmax(out.weighted[unit]))
        for src in np.flatnonzero(out.weighted[unit] > 0):
            if int(src) != target:
                out.apply_move(unit, int(src), target)

    # step III: rebalance max-loaded -> least-loaded until δ holds.  The
    # moves are random (per the paper), so we keep the best state seen in
    # case the walk never satisfies δ exactly.
    best = out.copy()
    best_imbalance = best.max_imbalance()
    for _ in range(max_rebalance_moves):
        if out.is_balanced():
            return out
        loads = out.loads()
        w_max = int(np.argmax(loads))
        w_min = int(np.argmin(loads))
        movable = np.flatnonzero(out.weighted[:, w_max] > 0)
        if movable.size == 0:
            break
        choice = int(movable[int(rng.integers(0, movable.size))])
        out.apply_move(choice, w_max, w_min)
        imbalance = out.max_imbalance()
        if imbalance < best_imbalance:
            best = out.copy()
            best_imbalance = imbalance
    return best
