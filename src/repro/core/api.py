"""The Q-Graph API (Table 2 of the paper).

These message types formalise the controller/worker protocol:

=====================  =========================================================
Controller API          (worker -> controller)
=====================  =========================================================
``stats(q, |LS|, I, w)``       worker updates the controller with statistics
``barrierSynch(q, w)``         worker finished the current iteration of q
``scheduleQuery(q)``           user schedules a query
=====================  =========================================================

=====================  =========================================================
Worker API              (controller -> worker)
=====================  =========================================================
``move(LS(q,w), w, w')``       move a local query scope to another worker
``barrierReady(q)``            release a worker waiting on q's barrier
``executeQuery(q)``            start executing query q
=====================  =========================================================

The simulation engine constructs these dataclasses at the corresponding
protocol points; they double as a stable public API for users embedding the
controller logic elsewhere.  Statistics are piggybacked onto barrier
synchronization messages exactly as §3.4 describes ("to increase
communication efficiency, we piggyback statistics messages with barrier
synchronization messages").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Tuple

import numpy as np

__all__ = [
    "StatsMessage",
    "BarrierSynchMessage",
    "ScheduleQueryMessage",
    "MoveRequest",
    "BarrierReadyMessage",
    "ExecuteQueryMessage",
]


# ----------------------------------------------------------------------
# Controller API (worker -> controller)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StatsMessage:
    """``stats(q, |LS(q, w)|, I_w, w)``.

    ``intersections`` carries the local intersection function ``I_w``:
    the number of vertices shared between combinations of local query scopes
    on the sending worker, keyed by the (frozen) query-id sets.
    """

    query_id: int
    local_scope_size: int
    worker: int
    intersections: Dict[FrozenSet[int], int] = field(default_factory=dict)


@dataclass(frozen=True)
class BarrierSynchMessage:
    """``barrierSynch(q, w)`` — iteration complete, optionally with stats."""

    query_id: int
    worker: int
    iteration: int
    stats: Tuple[StatsMessage, ...] = ()


@dataclass(frozen=True)
class ScheduleQueryMessage:
    """``scheduleQuery(q)`` — user front-end request."""

    query_id: int


# ----------------------------------------------------------------------
# Worker API (controller -> worker)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MoveRequest:
    """``move(LS(q, w), w, w')`` — reassign a local scope's vertices.

    ``vertices`` is the concrete vertex set of the local scope at plan time
    (the low-level translation of the high-level Q-cut move).
    """

    src: int
    dst: int
    vertices: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "vertices", np.asarray(self.vertices, dtype=np.int64)
        )

    @property
    def size(self) -> int:
        return int(self.vertices.size)


@dataclass(frozen=True)
class BarrierReadyMessage:
    """``barrierReady(q)`` — barrier released, start the next iteration."""

    query_id: int
    iteration: int


@dataclass(frozen=True)
class ExecuteQueryMessage:
    """``executeQuery(q)`` — controller forwards a scheduled query."""

    query_id: int
