"""Iterated local search — Algorithm 1 of the paper.

::

    state s_hat <- InitialSolution()
    while not Terminated():
        s <- Perturbation(s_hat)
        s <- LocalSearch(s)
        if c_s < c_s_hat:
            s_hat <- s

Requirements from §3.2.2: (a) retrieve low-cost solutions effectively when
given time, (b) provide the best found solution when interrupted, (c) avoid
overfitting to specific workloads.  The implementation is interruptible
(budget by rounds and/or wall-clock seconds, matching the paper's 2-second
controller budget and its "terminate when a result is needed" criterion) and
records a cost trace for the Figure 6g convergence plot.

One deliberate refinement: the initial solution is local-searched before the
loop starts, so the incumbent after round 0 is already a local minimum (the
paper's InitialSolution is the current partitioning "as received by the
workers"; descending from it first never hurts and matches the figure, whose
trace starts with a steep drop before the first perturbation marker).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.core.local_search import local_search
from repro.core.perturbation import perturb
from repro.core.state import QcutState

__all__ = ["IlsResult", "iterated_local_search"]


@dataclass
class IlsResult:
    """Outcome of one ILS run."""

    best_state: QcutState
    initial_cost: float
    best_cost: float
    rounds: int
    #: (round index, incumbent cost after the round) — round 0 is the
    #: initial local search; later rounds follow perturbations.
    cost_trace: List[Tuple[int, float]] = field(default_factory=list)
    #: round indices at which a perturbation was applied (Fig. 6g markers)
    perturbation_rounds: List[int] = field(default_factory=list)

    @property
    def improvement(self) -> float:
        """Relative cost reduction achieved (0..1)."""
        if self.initial_cost <= 0:
            return 0.0
        return 1.0 - self.best_cost / self.initial_cost


def iterated_local_search(
    initial: QcutState,
    max_rounds: int = 50,
    time_budget: Optional[float] = None,
    seed: int = 0,
    terminated: Optional[Callable[[], bool]] = None,
) -> IlsResult:
    """Run Algorithm 1 starting from ``initial`` (which is not mutated).

    Parameters
    ----------
    max_rounds:
        Deterministic round budget (each round = perturbation + local
        search).  This is the reproducible stand-in for the paper's
        wall-clock budget.
    time_budget:
        Optional wall-clock cap in seconds (the paper uses 2 s); checked
        between rounds, so the best-so-far solution is always available —
        requirement (b) of §3.2.2.
    terminated:
        Optional external interrupt (the adaptivity module "interrupting the
        computation as soon as a result is needed", Appendix A.3).
    """
    rng = np.random.default_rng(seed)
    # opt-in wall-clock budget (paper's 2 s cap, §3.2.2); off by default —
    # the deterministic max_rounds budget is the reproducible bound
    t_start = time.perf_counter()  # repro-lint: disable=wall-clock -- opt-in time_budget knob, off by default; max_rounds is the deterministic bound

    def better(a: QcutState, b: QcutState) -> bool:
        """Lexicographic acceptance: balance dominates, then cost.

        Appendix A.1 requires "all solution states have balanced workload";
        a δ-balanced state therefore always beats an unbalanced one, and a
        less-unbalanced state beats a more-unbalanced one — which is what
        lets Q-cut *repair* an unbalanced initial partitioning (Domain)
        rather than freezing on its low-cost but skewed incumbent.
        """
        a_ok, b_ok = a.is_balanced(), b.is_balanced()
        if a_ok != b_ok:
            return a_ok
        if a_ok:
            return a.cost() < b.cost()
        return (a.max_imbalance(), a.cost()) < (b.max_imbalance(), b.cost())

    incumbent = local_search(initial.copy())
    initial_cost = initial.cost()
    best_cost = incumbent.cost()
    trace: List[Tuple[int, float]] = [(0, best_cost)]
    perturbation_rounds: List[int] = []

    def out_of_budget() -> bool:
        if terminated is not None and terminated():
            return True
        if time_budget is not None and time.perf_counter() - t_start >= time_budget:  # repro-lint: disable=wall-clock -- guarded by the opt-in time_budget knob
            return True
        return False

    rounds = 0
    for round_idx in range(1, max_rounds + 1):
        if out_of_budget():
            break
        rounds = round_idx
        candidate = perturb(incumbent, rng)
        perturbation_rounds.append(round_idx)
        candidate = local_search(candidate)
        if better(candidate, incumbent):
            incumbent = candidate
            best_cost = candidate.cost()
        trace.append((round_idx, best_cost))
        if best_cost == 0.0 and incumbent.is_balanced():
            break

    return IlsResult(
        best_state=incumbent,
        initial_cost=initial_cost,
        best_cost=best_cost,
        rounds=rounds,
        cost_trace=trace,
        perturbation_rounds=perturbation_rounds,
    )
