"""Query clustering for the Q-cut preprocessing step (Appendix A.1).

*"As the number of these combinations can be very high, we clustered the
queries as a preprocessing step into 4k clusters using a variant of the
well-known Karger's algorithm with linear runtime complexity [16] and moved
whole clusters between workers."*

Karger's algorithm contracts randomly chosen edges of a multigraph.  Our
variant runs on the *query overlap graph* (vertices = queries, edge weight =
global scope intersection size) and contracts edges in a random
weight-biased order until at most ``4k`` clusters remain — overlapping
queries end up in the same cluster, so moving a cluster never tears shared
vertices apart.  Queries without overlap stay singletons; if there are more
non-overlapping groups than ``4k``, the smallest groups are merged last
(they are cheap to move anyway).
"""

from __future__ import annotations

import heapq
from typing import Dict, Sequence, Tuple

import numpy as np

__all__ = ["UnionFind", "cluster_queries"]


class UnionFind:
    """Disjoint-set forest with path compression and union by size."""

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))
        self.size = [1] * n
        self.count = n

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        self.count -= 1
        return True


def cluster_queries(
    query_ids: Sequence[int],
    overlaps: Dict[Tuple[int, int], int],
    max_clusters: int,
    seed: int = 0,
) -> Dict[int, int]:
    """Contract the overlap graph down to at most ``max_clusters`` clusters.

    Parameters
    ----------
    query_ids:
        The queries to cluster.
    overlaps:
        ``(qi, qj) -> |GS(qi) ∩ GS(qj)|`` with ``qi < qj`` (only positive
        entries need to be present).
    max_clusters:
        Target cluster count — the paper uses ``4k`` for ``k`` workers.
    seed:
        RNG seed for the contraction order.

    Returns
    -------
    dict
        ``query_id -> cluster index`` with cluster indices in
        ``[0, num_clusters)``.
    """
    ids = list(query_ids)
    n = len(ids)
    if n == 0:
        return {}
    index = {qid: i for i, qid in enumerate(ids)}
    uf = UnionFind(n)
    rng = np.random.default_rng(seed)

    if overlaps and uf.count > max_clusters:
        # sorted so the contraction order depends only on the overlap
        # *contents*, not on dict insertion order — the vectorized and
        # reference intersection paths then cluster identically
        pairs = sorted(
            (index[a], index[b], w)
            for (a, b), w in overlaps.items()
            if a in index and b in index and w > 0
        )
        if pairs:
            weights = np.array([w for (_, _, w) in pairs], dtype=np.float64)
            # Karger: pick edges with probability proportional to weight.
            # Sampling a full random order biased by weight = weighted shuffle
            # via exponential race (linear-time, deterministic given seed).
            keys = rng.exponential(1.0, size=len(pairs)) / weights
            order = np.argsort(keys)
            for idx in order:
                if uf.count <= max_clusters:
                    break
                a, b, _w = pairs[idx]
                uf.union(a, b)

    # Merge overlapping groups first; if still too many clusters (many
    # disjoint queries), merge smallest-first to respect the hard cap.  A
    # size-keyed heap with lazy invalidation keeps the disjoint-singleton
    # case O(n log n); entries are stale once their root was absorbed or
    # grew, and are simply discarded on pop.
    if uf.count > max_clusters:
        heap = [(uf.size[r], r) for r in {uf.find(i) for i in range(n)}]
        heapq.heapify(heap)

        def pop_root() -> int:
            while True:
                size, root = heapq.heappop(heap)
                if uf.find(root) == root and uf.size[root] == size:
                    return root

        while uf.count > max_clusters:
            a = pop_root()
            b = pop_root()
            uf.union(a, b)
            merged = uf.find(a)
            heapq.heappush(heap, (uf.size[merged], merged))

    # densify cluster labels
    label: Dict[int, int] = {}
    out: Dict[int, int] = {}
    for qid in ids:
        root = uf.find(index[qid])
        if root not in label:
            label[root] = len(label)
        out[qid] = label[root]
    return out
