"""Local search heuristic — Algorithm 2 of the paper.

Repeatedly enumerate all successor states reachable by moving one cluster's
local scope from one worker to another (subject to the δ balance check of
line 15), take the successor with minimal cost, and stop at the first local
minimum.

The enumeration is vectorised: with ``U`` clusters and ``k`` workers the
``U x k x k`` candidate tensor is evaluated in a handful of numpy
operations per step, which is what makes the controller's 2-second budget
realistic even in Python ("query-aware partitioning is fast because it
operates on a small number of queries rather than a large number of
vertices", §1).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.state import QcutState

__all__ = ["best_successor", "local_search"]


def _candidate_tensor(state: QcutState) -> Tuple[np.ndarray, np.ndarray]:
    """Evaluate every (unit, w_from, w_to) move.

    Returns
    -------
    (delta_cost, feasible):
        ``delta_cost[u, a, b]`` — cost change of moving unit ``u``'s mass
        from worker ``a`` to worker ``b``;
        ``feasible[u, a, b]`` — whether the move exists (mass > 0, a != b)
        and passes the balance constraint of Algorithm 2 line 15.
    """
    weighted = state.weighted  # (U, k): drives cost and the workload term
    union = state.union  # (U, k): distinct vertices, drives |V(w)|
    U, k = weighted.shape
    if U == 0:
        empty = np.zeros((0, k, k))
        return empty, np.zeros((0, k, k), dtype=bool)

    xw = weighted[:, :, None]  # weighted mass moved, broadcast over targets
    # --- new per-unit row maxima of the weighted matrix after the move -----
    # new row = original with source zeroed and target incremented.
    order = np.argsort(weighted, axis=1)
    top1_idx = order[:, -1]
    rows = np.arange(U)
    top1 = weighted[rows, top1_idx]
    top2 = weighted[rows, order[:, -2]] if k >= 2 else np.zeros(U)
    # max of the row excluding column a: top1 unless a IS the argmax column
    max_excl = np.repeat(top1[:, None], k, axis=1)
    max_excl[rows, top1_idx] = top2
    target_val = weighted[:, None, :] + xw  # value at column b after the move
    # the max over w != a is covered by max_excl (with b's growth dominated
    # by target_val, since target_val >= weighted[u, b])
    new_max = np.maximum(max_excl[:, :, None], target_val)  # (U, a, b)

    totals = weighted.sum(axis=1)  # invariant under moves
    old_contrib = totals - top1
    new_contrib = totals[:, None, None] - new_max
    delta = new_contrib - old_contrib[:, None, None]

    # --- feasibility ---------------------------------------------------------
    feasible = np.broadcast_to(weighted[:, :, None] > 0, (U, k, k)).copy()
    diag = np.arange(k)
    feasible[:, diag, diag] = False
    # balance check: the load change of the move is (union + weighted) / 2
    x_load = (union[:, :, None] + xw) / 2.0
    loads = state.loads()
    lf = loads[None, :, None] - x_load  # (U, a, b): source load after move
    lt = loads[None, None, :] + x_load  # (U, a, b): target load after move
    top = np.abs(lf - lt)
    bottom = np.maximum(lf, lt)
    with np.errstate(divide="ignore", invalid="ignore"):
        imbalance = np.where(bottom > 0, top / bottom, 0.0)
    feasible &= imbalance < state.delta
    return delta, feasible


def best_successor(state: QcutState) -> Optional[Tuple[int, int, int, float]]:
    """The (unit, w_from, w_to, delta_cost) of the best feasible move.

    Returns ``None`` when no feasible move exists.  Ties are broken
    deterministically by flat index.
    """
    delta, feasible = _candidate_tensor(state)
    if not feasible.any():
        return None
    masked = np.where(feasible, delta, np.inf)
    flat = int(np.argmin(masked))
    u, a, b = np.unravel_index(flat, masked.shape)
    return int(u), int(a), int(b), float(masked[u, a, b])


def local_search(state: QcutState, max_steps: int = 10_000) -> QcutState:
    """Algorithm 2: descend to a local minimum by best-improvement moves.

    Mutates and returns ``state``.  Only strictly improving moves are taken
    (``c_{s'} < c_s``), so termination is guaranteed; ``max_steps`` is a
    safety net.
    """
    for _ in range(max_steps):
        best = best_successor(state)
        if best is None:
            break
        unit, w_from, w_to, delta_cost = best
        if delta_cost >= 0.0:
            break
        state.apply_move(unit, w_from, w_to)
    return state
