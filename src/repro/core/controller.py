"""The centralized controller (§3.1, §3.2, §3.4).

The controller owns the MAPE loop:

* **Monitor** — workers piggyback stats on barrier messages; the controller
  tracks windowed query locality (:class:`~repro.core.monitoring.QueryMonitor`)
  and global query scopes (:class:`~repro.core.scopes.QueryScopes`).
* **Analyze** — when the average query locality over the window falls below
  the threshold Φ, repartitioning is warranted (§3.4).
* **Plan** — queries are clustered (Karger variant, Appendix A.1) into
  ``4k`` clusters, a high-level :class:`~repro.core.state.QcutState` is
  built, and Algorithm 1 (ILS) searches for a low-cost Q-cut.  This runs
  *asynchronously* to graph processing — the engine charges the configured
  virtual compute time but lets workers continue.
* **Execute** — the resulting high-level moves are translated back into
  low-level :class:`~repro.core.api.MoveRequest` vertex sets, applied under
  a global STOP/START barrier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.api import MoveRequest
from repro.core.clustering import cluster_queries
from repro.core.ils import IlsResult, iterated_local_search
from repro.core.monitoring import QueryMonitor
from repro.core.scopes import QueryScopes, ScopeStore, pairwise_intersections
from repro.core.state import Fragment, QcutState
from repro.errors import ControllerError
from repro.graph.digraph import DiGraph

__all__ = ["ControllerConfig", "MovePlan", "Controller"]


@dataclass(frozen=True)
class ControllerConfig:
    """Tunable parameters (defaults follow §4.1 System Settings).

    Attributes
    ----------
    mu:
        Monitoring window in (virtual) seconds — how long old queries stay
        in the controller's global view (paper: 240 s).
    phi:
        Locality threshold triggering Q-cut (paper: 0.7; robust in
        [0.3, 0.99]).
    delta:
        Maximum allowed workload imbalance (paper: 0.25).
    max_tracked_queries:
        Hard cap on the number of windowed queries (paper: 128).
    clusters_per_worker:
        Query clusters per worker for the Karger preprocessing (paper: 4,
        i.e. "4k clusters").
    qcut_compute_time:
        Virtual seconds the controller spends computing a Q-cut (paper: 2 s)
        — overlapped with worker execution.
    ils_rounds:
        Deterministic ILS round budget standing in for the wall-clock limit.
    qcut_cooldown:
        Minimum virtual seconds between consecutive repartitionings.
    min_queries_for_qcut:
        Do not bother repartitioning with fewer observed queries.
    planning_backend:
        ``"vectorized"`` (default) runs Monitor/Plan on the array-backed
        :class:`~repro.core.scopes.ScopeStore`; ``"reference"`` keeps the
        original set-based path (used by the equivalence tests and the
        planning benchmark).  Both produce the same :class:`MovePlan`.
    """

    mu: float = 240.0
    phi: float = 0.7
    delta: float = 0.25
    max_tracked_queries: int = 128
    clusters_per_worker: int = 4
    qcut_compute_time: float = 2.0
    ils_rounds: int = 40
    qcut_cooldown: float = 20.0
    min_queries_for_qcut: int = 4
    seed: int = 0
    planning_backend: str = "vectorized"


@dataclass
class MovePlan:
    """The Execute-step payload: low-level vertex moves plus provenance."""

    moves: List[MoveRequest] = field(default_factory=list)
    cost_before: float = 0.0
    cost_after: float = 0.0
    ils_result: Optional[IlsResult] = None
    #: workers that source or receive vertices under this plan — the seed of
    #: the engine's partial STOP/START halt set (the engine widens it with
    #: the mailbox owners of queries whose state the moves touch)
    involved_workers: FrozenSet[int] = frozenset()

    @property
    def moved_vertices(self) -> int:
        return int(sum(m.size for m in self.moves))

    def __bool__(self) -> bool:
        return bool(self.moves)


class Controller:
    """Centralized graph-management layer."""

    def __init__(self, num_workers: int, config: Optional[ControllerConfig] = None) -> None:
        if num_workers < 1:
            raise ControllerError("need at least one worker")
        self.k = num_workers
        self.config = config or ControllerConfig()
        if self.config.planning_backend not in ("vectorized", "reference"):
            raise ControllerError(
                f"unknown planning backend {self.config.planning_backend!r}"
            )
        self.monitor = QueryMonitor(
            window=self.config.mu, max_queries=self.config.max_tracked_queries
        )
        self.scopes = (
            ScopeStore()
            if self.config.planning_backend == "vectorized"
            else QueryScopes()
        )
        self.last_qcut_time = -float("inf")
        self._qcut_running = False
        self._snapshot: Optional[Tuple[QcutState, Dict[Tuple[int, int], np.ndarray]]] = None
        self._qcut_count = 0
        #: exponential backoff applied to the cooldown when consecutive
        #: Q-cuts stop improving (the workload's locality has plateaued at
        #: its balance-constrained optimum — no point thrashing)
        self._backoff = 1.0
        #: vertices tombstoned by graph churn — future activation reports
        #: (workers may still be flushing pre-churn iterations) are
        #: filtered against this so dead ids never re-enter the scopes
        self._dead_vertices: Set[int] = set()
        #: workers currently known crashed (fault tolerance): placement and
        #: move planning must not target them until they recover
        self._down_workers: FrozenSet[int] = frozenset()

    # ------------------------------------------------------------------
    # fault awareness
    # ------------------------------------------------------------------
    def set_down_workers(self, workers: FrozenSet[int]) -> None:
        """Sync the engine's crash knowledge into the planning layer."""
        if len(workers) >= self.k:
            raise ControllerError("every worker reported down")
        self._down_workers = frozenset(workers)

    def _redirect_off_down_workers(self, owners: np.ndarray) -> np.ndarray:
        """Remap any owner choice that landed on a down worker.

        Deterministic round-robin over the live workers, so placement stays
        reproducible for a pinned fault schedule.
        """
        if not self._down_workers:
            return owners
        down = np.isin(owners, sorted(self._down_workers))
        if not down.any():
            return owners
        live = np.array(
            [w for w in range(self.k) if w not in self._down_workers],
            dtype=owners.dtype,
        )
        owners = owners.copy()
        owners[down] = live[np.arange(int(down.sum())) % live.size]
        return owners

    # ------------------------------------------------------------------
    # Monitor
    # ------------------------------------------------------------------
    def on_query_started(self, query_id: int, now: float) -> None:
        for evicted in self.monitor.record_start(query_id, now):
            self.scopes.drop(evicted)

    def on_iteration(
        self,
        query_id: int,
        involved_workers: int,
        activated_vertices: List[int],
        now: float,
    ) -> None:
        """Digest one piggybacked stats + barrierSynch round for a query."""
        for evicted in self.monitor.record_iteration(query_id, involved_workers, now):
            self.scopes.drop(evicted)
        if activated_vertices:
            if self._dead_vertices:
                activated_vertices = [
                    v for v in activated_vertices if v not in self._dead_vertices
                ]
            if activated_vertices:
                self.scopes.add_activations(query_id, activated_vertices)

    def on_query_finished(self, query_id: int, now: float) -> None:
        self.monitor.record_finish(query_id, now)
        for stale in self.monitor.evict_stale(now):
            self.scopes.drop(stale)

    def on_graph_mutation(self, removed_vertices: Sequence[int]) -> None:
        """Digest a graph-churn epoch (the Execute side of topology streams).

        Tombstoned vertices are truncated out of every tracked scope so the
        next Q-cut snapshot never plans moves of dead ids, and remembered so
        late-arriving activation reports cannot re-introduce them.
        """
        if not removed_vertices:
            return
        self._dead_vertices.update(int(v) for v in removed_vertices)
        self.scopes.remove_vertices(removed_vertices)

    def place_new_vertices(
        self, graph: DiGraph, new_ids: np.ndarray, assignment: np.ndarray
    ) -> np.ndarray:
        """Owners for vertices appended by graph churn (streaming LDG).

        New junctions join the partition holding most of their already-placed
        neighbourhood, subject to the usual LDG capacity penalty — the
        natural incremental complement to whatever initial partitioner built
        ``assignment``.
        """
        from repro.partitioning.ldg import ldg_place_vertices

        owners = ldg_place_vertices(graph, new_ids, assignment, self.k)
        return self._redirect_off_down_workers(owners)

    def average_locality(self) -> float:
        """Monitored average query locality (the Φ signal)."""
        return self.monitor.average_locality()

    def estimate_imbalance(self, assignment: np.ndarray) -> float:
        """Windowed workload imbalance under the A.1 load model.

        ``L_w = (|V(w)| + sum_q |LS(q, w)|) / 2`` computed from the scope
        table; returns ``(max - min) / max`` over workers.
        """
        tracked = self.monitor.tracked_queries()
        if isinstance(self.scopes, ScopeStore):
            # one bincount over the incidence structure for all queries
            scope_mass = self.scopes.scope_mass(
                assignment, self.k, query_ids=tracked
            ).astype(np.float64)
        else:
            scope_mass = np.zeros(self.k, dtype=np.float64)
            for qid in tracked:
                if self.scopes.global_scope_size(qid):
                    scope_mass += self.scopes.local_scope_sizes(
                        qid, assignment, self.k
                    )
        vertices = np.bincount(assignment, minlength=self.k).astype(np.float64)
        loads = (vertices + scope_mass) / 2.0
        top = loads.max()
        if top <= 0:
            return 0.0
        return float((top - loads.min()) / top)

    # ------------------------------------------------------------------
    # Analyze
    # ------------------------------------------------------------------
    def should_trigger_qcut(
        self, now: float, assignment: Optional[np.ndarray] = None
    ) -> bool:
        """Whether to kick off an asynchronous Q-cut computation.

        §3.4 triggers "when the statistics indicate that the current
        partitioning is suboptimal": average query locality below Φ, or —
        the balance half of the objective — windowed workload imbalance
        beyond δ (this is what lets Q-cut repair Domain's straggler
        problem even though Domain's locality is excellent).
        """
        if self._qcut_running:
            return False
        if now - self.last_qcut_time < self.config.qcut_cooldown * self._backoff:
            return False
        if len(self.monitor) < self.config.min_queries_for_qcut:
            return False
        if self.average_locality() < self.config.phi:
            return True
        if assignment is not None:
            return self.estimate_imbalance(assignment) >= self.config.delta * 2.0
        return False

    # ------------------------------------------------------------------
    # Plan
    # ------------------------------------------------------------------
    def begin_qcut(self, assignment: np.ndarray, now: float) -> float:
        """Snapshot the high-level state; returns the virtual compute time.

        The engine should schedule the ``qcut_done`` event after the returned
        duration and then call :meth:`complete_qcut`.
        """
        if self._qcut_running:
            raise ControllerError("a Q-cut computation is already running")
        self._qcut_running = True
        self._snapshot = self._build_snapshot(assignment)
        return self.config.qcut_compute_time

    def _build_snapshot(
        self, assignment: np.ndarray
    ) -> Tuple[QcutState, Dict[Tuple[int, int], np.ndarray]]:
        """High-level representation: clusters -> per-worker fragments."""
        if self.config.planning_backend == "vectorized" and isinstance(
            self.scopes, ScopeStore
        ):
            return self._build_snapshot_vectorized(assignment)
        return self._build_snapshot_reference(assignment)

    def _nonempty_tracked_queries(self) -> List[int]:
        return [
            qid
            for qid in self.monitor.tracked_queries()
            if self.scopes.global_scope_size(qid) > 0
        ]

    def _build_snapshot_vectorized(
        self, assignment: np.ndarray
    ) -> Tuple[QcutState, Dict[Tuple[int, int], np.ndarray]]:
        """Array-backed snapshot: every per-query/per-cluster loop of the
        reference path becomes a bincount/unique pass over the scope store's
        incidence structure.  Produces the same fragments (and therefore the
        same :class:`MovePlan`) as :meth:`_build_snapshot_reference`."""
        store: ScopeStore = self.scopes
        query_ids = self._nonempty_tracked_queries()
        overlaps = store.pairwise_intersections(query_ids=query_ids)
        max_clusters = max(self.config.clusters_per_worker * self.k, 1)
        labels = cluster_queries(
            query_ids, overlaps, max_clusters, seed=self.config.seed + self._qcut_count
        )
        num_units = max(labels.values()) + 1 if labels else 0
        if num_units == 0:
            return self._finalize_snapshot(assignment, num_units, [], {})

        # per-query local sizes -> per-cluster weighted masses in one
        # scatter-add (shared vertices count once per member query)
        sizes, row_qids = store.local_size_matrix(assignment, self.k, query_ids)
        unit_of_row = np.array([labels[int(q)] for q in row_qids], dtype=np.int64)
        weighted = np.zeros((num_units, self.k), dtype=np.int64)
        np.add.at(weighted, unit_of_row, sizes)

        # distinct (unit, vertex) incidences via one encoded np.unique —
        # the union mass is what a move actually relocates
        verts, scope_sizes, _qids = store.incidence(query_ids)
        units = np.repeat(unit_of_row, scope_sizes)
        n = assignment.size
        uniq = np.unique(units * n + verts)
        unit_u = uniq // n
        vert_u = uniq % n
        owners = assignment[vert_u]

        # group by (unit, owner): fragments come out sorted exactly like the
        # reference path's sorted(cluster)/unique(owner) double loop
        order = np.lexsort((vert_u, owners, unit_u))
        u_s = unit_u[order]
        w_s = owners[order]
        v_s = vert_u[order]
        change = np.empty(u_s.size, dtype=bool)
        change[0] = True
        change[1:] = (u_s[1:] != u_s[:-1]) | (w_s[1:] != w_s[:-1])
        starts = np.flatnonzero(change)
        ends = np.append(starts[1:], u_s.size)

        fragments: List[Fragment] = []
        fragment_vertices: Dict[Tuple[int, int], np.ndarray] = {}
        for s, e in zip(starts, ends):
            unit = int(u_s[s])
            w = int(w_s[s])
            members = v_s[s:e]
            fragments.append(
                Fragment(
                    unit=unit,
                    origin_worker=w,
                    union_size=int(members.size),
                    weighted_size=int(max(weighted[unit, w], members.size)),
                )
            )
            fragment_vertices[(unit, w)] = members
        return self._finalize_snapshot(
            assignment, num_units, fragments, fragment_vertices
        )

    def _build_snapshot_reference(
        self, assignment: np.ndarray
    ) -> Tuple[QcutState, Dict[Tuple[int, int], np.ndarray]]:
        """Original set-based snapshot path (the equivalence oracle)."""
        query_ids = self._nonempty_tracked_queries()
        scope_map = {qid: self.scopes.global_scope(qid) for qid in query_ids}
        overlaps = pairwise_intersections(scope_map)
        max_clusters = max(self.config.clusters_per_worker * self.k, 1)
        labels = cluster_queries(
            query_ids, overlaps, max_clusters, seed=self.config.seed + self._qcut_count
        )
        num_units = max(labels.values()) + 1 if labels else 0

        # union scopes per cluster, then split into per-worker fragments;
        # the weighted mass counts shared vertices once per member query
        # (the paper's sum_q |LS(q, w)| workload term), the union mass counts
        # distinct vertices (what a move actually relocates).
        cluster_scopes: Dict[int, set] = {}
        cluster_members: Dict[int, List[int]] = {}
        for qid, unit in labels.items():
            cluster_scopes.setdefault(unit, set()).update(scope_map[qid])
            cluster_members.setdefault(unit, []).append(qid)

        fragments: List[Fragment] = []
        fragment_vertices: Dict[Tuple[int, int], np.ndarray] = {}
        for unit, scope in sorted(cluster_scopes.items()):
            vertices = np.fromiter(scope, dtype=np.int64, count=len(scope))
            owners = assignment[vertices]
            weighted_per_worker = np.zeros(self.k, dtype=np.int64)
            for qid in cluster_members[unit]:
                weighted_per_worker += self.scopes.local_scope_sizes(
                    qid, assignment, self.k
                )
            for w in np.unique(owners):
                members = vertices[owners == w]
                fragments.append(
                    Fragment(
                        unit=unit,
                        origin_worker=int(w),
                        union_size=int(members.size),
                        weighted_size=int(
                            max(weighted_per_worker[int(w)], members.size)
                        ),
                    )
                )
                fragment_vertices[(unit, int(w))] = members
        return self._finalize_snapshot(
            assignment, num_units, fragments, fragment_vertices
        )

    def _finalize_snapshot(
        self,
        assignment: np.ndarray,
        num_units: int,
        fragments: List[Fragment],
        fragment_vertices: Dict[Tuple[int, int], np.ndarray],
    ) -> Tuple[QcutState, Dict[Tuple[int, int], np.ndarray]]:
        scope_vertex_count = np.zeros(self.k, dtype=np.int64)
        for (_unit, w), members in fragment_vertices.items():
            scope_vertex_count[w] += members.size
        totals = np.bincount(assignment, minlength=self.k).astype(np.float64)
        base = np.maximum(totals - scope_vertex_count, 0.0)
        state = QcutState(
            num_units=num_units,
            num_workers=self.k,
            fragments=fragments,
            base_vertices=base,
            delta=self.config.delta,
        )
        return state, fragment_vertices

    def complete_qcut(self, now: float) -> MovePlan:
        """Run the ILS on the snapshot and emit the low-level move plan."""
        if not self._qcut_running or self._snapshot is None:
            raise ControllerError("no Q-cut computation in progress")
        state, fragment_vertices = self._snapshot
        self._snapshot = None
        self._qcut_running = False
        self.last_qcut_time = now
        self._qcut_count += 1

        if state.num_units == 0:
            return MovePlan()

        result = iterated_local_search(
            state,
            max_rounds=self.config.ils_rounds,
            seed=self.config.seed + self._qcut_count,
        )
        plan = MovePlan(
            cost_before=result.initial_cost,
            cost_after=result.best_cost,
            ils_result=result,
        )
        for unit, origin, current in result.best_state.relocated_fragments():
            vertices = fragment_vertices.get((unit, origin))
            if vertices is None or vertices.size == 0:
                continue
            if origin in self._down_workers or current in self._down_workers:
                # a crashed worker can neither ship nor receive state; the
                # post-recovery Q-cut replans with the survivors
                continue
            plan.moves.append(MoveRequest(src=origin, dst=current, vertices=vertices))
        # annotate the plan with the workers the Execute step touches — a
        # subset of the solution-level relocation workers
        # (QcutState.relocation_workers), narrowed to the moves that still
        # carry vertices: empty fragments never make it into the plan
        plan.involved_workers = frozenset(
            w for m in plan.moves for w in (m.src, m.dst)
        )

        # adaptive backoff: when the ILS stops finding substantial
        # improvements, the partitioning has converged to its
        # balance-constrained optimum — repartitioning again would only
        # shuffle vertices and pay global barriers for nothing.
        if not plan.moves or result.improvement < 0.15:
            self._backoff = min(self._backoff * 2.0, 16.0)
        else:
            self._backoff = 1.0
        return plan

    @property
    def qcut_running(self) -> bool:
        return self._qcut_running

    @property
    def qcut_count(self) -> int:
        """Completed Q-cut computations so far."""
        return self._qcut_count
