"""Query-cut cost functions (§2 and §3.2.2).

Two granularities:

* :func:`query_cut` / :func:`query_cut_excess` — the *metric* of §2:
  number of non-empty local query scopes (used to evaluate partitionings
  and in the Figure 1 motivating example);
* :func:`assignment_cost` — the *ILS cost function* of §3.2.2: for each
  query, the number of scope vertices not assigned to the worker holding its
  largest local scope.  Zero iff every query is fully local somewhere.

Both are defined on raw ``(scopes, assignment)`` inputs so they can score
real partitionings in tests and benchmarks; the incremental ILS-internal
version lives on :class:`repro.core.state.QcutState`.

The per-scope bincount lives in :func:`repro.core.scopes.scope_worker_counts`
(one shared copy for this module and both scope stores).  The ``*_from_sizes``
variants score a precomputed query × worker local-size matrix — the output of
:meth:`repro.core.scopes.ScopeStore.local_size_matrix` — so the whole metric
is two numpy reductions instead of a per-query Python loop.
"""

from __future__ import annotations

from typing import Dict, Set

import numpy as np

from repro.core.scopes import scope_worker_counts

__all__ = [
    "query_cut",
    "query_cut_excess",
    "assignment_cost",
    "query_cut_from_sizes",
    "query_cut_excess_from_sizes",
    "assignment_cost_from_sizes",
]


# ----------------------------------------------------------------------
# matrix forms (rows = queries, columns = workers)
# ----------------------------------------------------------------------
def query_cut_from_sizes(sizes: np.ndarray) -> int:
    """§2 metric from a ``(Q, k)`` local-size matrix."""
    return int(np.count_nonzero(sizes))


def query_cut_excess_from_sizes(sizes: np.ndarray) -> int:
    """Query-cut excess from a ``(Q, k)`` local-size matrix."""
    nonzero = np.count_nonzero(sizes, axis=1)
    return int(nonzero.sum() - np.count_nonzero(nonzero))


def assignment_cost_from_sizes(sizes: np.ndarray) -> float:
    """§3.2.2 ILS cost from a ``(Q, k)`` local-size matrix."""
    if sizes.size == 0:
        return 0.0
    return float((sizes.sum(axis=1) - sizes.max(axis=1)).sum())


# ----------------------------------------------------------------------
# reference forms on raw (scopes, assignment) inputs
# ----------------------------------------------------------------------
def query_cut(
    scopes: Dict[int, Set[int]], assignment: np.ndarray, k: int
) -> int:
    """§2 metric: ``sum_q |{w : LS(q, w) != {}}|``."""
    total = 0
    for scope in scopes.values():
        counts = scope_worker_counts(scope, assignment, k)
        total += int(np.count_nonzero(counts))
    return total


def query_cut_excess(
    scopes: Dict[int, Set[int]], assignment: np.ndarray, k: int
) -> int:
    """Query-cut minus the number of non-empty queries (Figure 1 counting).

    0 means no query is split across workers.
    """
    total = 0
    for scope in scopes.values():
        counts = scope_worker_counts(scope, assignment, k)
        nonzero = int(np.count_nonzero(counts))
        if nonzero:
            total += nonzero - 1
    return total


def assignment_cost(
    scopes: Dict[int, Set[int]], assignment: np.ndarray, k: int
) -> float:
    """§3.2.2 ILS cost on a concrete assignment.

    ``sum_q sum_{w != argmax_w' |LS(q, w')|} |LS(q, w)|`` — "the number of
    vertices that are not assigned to the worker with the largest query
    scope".  Zero when two workers execute two queries completely
    independently (the paper's example).
    """
    total = 0.0
    for scope in scopes.values():
        counts = scope_worker_counts(scope, assignment, k)
        if counts.sum() == 0:
            continue
        total += float(counts.sum() - counts.max())
    return total
