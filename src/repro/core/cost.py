"""Query-cut cost functions (§2 and §3.2.2).

Two granularities:

* :func:`query_cut` / :func:`query_cut_excess` — the *metric* of §2:
  number of non-empty local query scopes (used to evaluate partitionings
  and in the Figure 1 motivating example);
* :func:`assignment_cost` — the *ILS cost function* of §3.2.2: for each
  query, the number of scope vertices not assigned to the worker holding its
  largest local scope.  Zero iff every query is fully local somewhere.

Both are defined on raw ``(scopes, assignment)`` inputs so they can score
real partitionings in tests and benchmarks; the incremental ILS-internal
version lives on :class:`repro.core.state.QcutState`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

import numpy as np

__all__ = ["query_cut", "query_cut_excess", "assignment_cost"]


def _scope_worker_counts(
    scope: Set[int], assignment: np.ndarray, k: int
) -> np.ndarray:
    if not scope:
        return np.zeros(k, dtype=np.int64)
    vertices = np.fromiter(scope, dtype=np.int64, count=len(scope))
    counts = np.bincount(assignment[vertices], minlength=k)
    return counts[:k]


def query_cut(
    scopes: Dict[int, Set[int]], assignment: np.ndarray, k: int
) -> int:
    """§2 metric: ``sum_q |{w : LS(q, w) != {}}|``."""
    total = 0
    for scope in scopes.values():
        counts = _scope_worker_counts(scope, assignment, k)
        total += int(np.count_nonzero(counts))
    return total


def query_cut_excess(
    scopes: Dict[int, Set[int]], assignment: np.ndarray, k: int
) -> int:
    """Query-cut minus the number of non-empty queries (Figure 1 counting).

    0 means no query is split across workers.
    """
    total = 0
    for scope in scopes.values():
        counts = _scope_worker_counts(scope, assignment, k)
        nonzero = int(np.count_nonzero(counts))
        if nonzero:
            total += nonzero - 1
    return total


def assignment_cost(
    scopes: Dict[int, Set[int]], assignment: np.ndarray, k: int
) -> float:
    """§3.2.2 ILS cost on a concrete assignment.

    ``sum_q sum_{w != argmax_w' |LS(q, w')|} |LS(q, w)|`` — "the number of
    vertices that are not assigned to the worker with the largest query
    scope".  Zero when two workers execute two queries completely
    independently (the paper's example).
    """
    total = 0.0
    for scope in scopes.values():
        counts = _scope_worker_counts(scope, assignment, k)
        if counts.sum() == 0:
            continue
        total += float(counts.sum() - counts.max())
    return total
