"""Workload monitoring (§3.4 — the Monitor step of the MAPE loop).

The controller maintains query statistics for a *tumbling monitoring window*
of μ seconds (the window parameter of §2/§3.4) capped at a maximum number of
queries (the paper uses 128): per query it tracks iteration counts, how many
of those iterations ran completely locally on one worker, and the last
activity time.  The **query locality** — "the percentage of iterations which
a query executes completely locally on a single worker" — is the signal that
triggers repartitioning when its average drops below the threshold Φ.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["QueryStats", "QueryMonitor"]


@dataclass
class QueryStats:
    """Windowed per-query counters."""

    query_id: int
    first_seen: float
    last_activity: float
    iterations: int = 0
    local_iterations: int = 0
    finished: bool = False

    @property
    def locality(self) -> float:
        """Fraction of fully-local iterations (1.0 before any iteration)."""
        if self.iterations == 0:
            return 1.0
        return self.local_iterations / self.iterations


class QueryMonitor:
    """Tumbling-window statistics store on the controller."""

    def __init__(self, window: float = 240.0, max_queries: int = 128) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        if max_queries < 1:
            raise ValueError("max_queries must be >= 1")
        self.window = window
        self.max_queries = max_queries
        self._stats: Dict[int, QueryStats] = {}

    # ------------------------------------------------------------------
    def record_start(self, query_id: int, now: float) -> None:
        self._stats[query_id] = QueryStats(
            query_id=query_id, first_seen=now, last_activity=now
        )
        self._enforce_cap()

    def record_iteration(self, query_id: int, involved_workers: int, now: float) -> None:
        stats = self._stats.get(query_id)
        if stats is None:
            stats = QueryStats(query_id=query_id, first_seen=now, last_activity=now)
            self._stats[query_id] = stats
            self._enforce_cap()
        stats.iterations += 1
        if involved_workers <= 1:
            stats.local_iterations += 1
        stats.last_activity = now

    def record_finish(self, query_id: int, now: float) -> None:
        stats = self._stats.get(query_id)
        if stats is not None:
            stats.finished = True
            stats.last_activity = now

    # ------------------------------------------------------------------
    def evict_stale(self, now: float) -> List[int]:
        """Drop queries outside the monitoring window; returns evicted ids."""
        cutoff = now - self.window
        stale = [
            qid
            for qid, s in self._stats.items()
            if s.finished and s.last_activity < cutoff
        ]
        for qid in stale:
            del self._stats[qid]
        return stale

    def _enforce_cap(self) -> None:
        """Bound to ``max_queries`` by evicting the oldest finished entries."""
        if len(self._stats) <= self.max_queries:
            return
        removable = sorted(
            (s for s in self._stats.values() if s.finished),
            key=lambda s: s.last_activity,
        )
        excess = len(self._stats) - self.max_queries
        for s in removable[:excess]:
            del self._stats[s.query_id]
        # if still above cap (all running), evict oldest regardless
        if len(self._stats) > self.max_queries:
            oldest = sorted(self._stats.values(), key=lambda s: s.last_activity)
            for s in oldest[: len(self._stats) - self.max_queries]:
                del self._stats[s.query_id]

    # ------------------------------------------------------------------
    def tracked_queries(self) -> List[int]:
        return sorted(self._stats)

    def stats(self, query_id: int) -> Optional[QueryStats]:
        return self._stats.get(query_id)

    def average_locality(self, min_iterations: int = 1) -> float:
        """Mean per-query locality over the window (the Φ trigger signal)."""
        values = [
            s.locality
            for s in self._stats.values()
            if s.iterations >= min_iterations
        ]
        if not values:
            return 1.0
        return sum(values) / len(values)

    def __len__(self) -> int:
        return len(self._stats)
