"""Workload monitoring (§3.4 — the Monitor step of the MAPE loop).

The controller maintains query statistics for a *tumbling monitoring window*
of μ seconds (the window parameter of §2/§3.4) capped at a maximum number of
queries (the paper uses 128): per query it tracks iteration counts, how many
of those iterations ran completely locally on one worker, and the last
activity time.  The **query locality** — "the percentage of iterations which
a query executes completely locally on a single worker" — is the signal that
triggers repartitioning when its average drops below the threshold Φ.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["QueryStats", "QueryMonitor"]


@dataclass
class QueryStats:
    """Windowed per-query counters."""

    query_id: int
    first_seen: float
    last_activity: float
    iterations: int = 0
    local_iterations: int = 0
    finished: bool = False
    #: monotonic insertion counter — deterministic eviction tie-break
    seq: int = 0

    @property
    def locality(self) -> float:
        """Fraction of fully-local iterations (1.0 before any iteration)."""
        if self.iterations == 0:
            return 1.0
        return self.local_iterations / self.iterations


class QueryMonitor:
    """Tumbling-window statistics store on the controller."""

    def __init__(self, window: float = 240.0, max_queries: int = 128) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        if max_queries < 1:
            raise ValueError("max_queries must be >= 1")
        self.window = window
        self.max_queries = max_queries
        self._stats: Dict[int, QueryStats] = {}
        self._seq = 0
        #: lazy min-heap of ``(last_activity, seq, query_id)`` over finished
        #: entries; stale items (evicted, restarted, or re-activated queries)
        #: are detected by seq/timestamp mismatch and dropped on pop
        self._finished_heap: List[Tuple[float, int, int]] = []

    # ------------------------------------------------------------------
    def _new_stats(self, query_id: int, now: float) -> QueryStats:
        self._seq += 1
        return QueryStats(
            query_id=query_id, first_seen=now, last_activity=now, seq=self._seq
        )

    def record_start(self, query_id: int, now: float) -> List[int]:
        """Track a new query; returns ids evicted to honour the cap."""
        self._stats[query_id] = self._new_stats(query_id, now)
        return self._enforce_cap()

    def record_iteration(
        self, query_id: int, involved_workers: int, now: float
    ) -> List[int]:
        """Digest one iteration report; returns ids evicted to honour the cap."""
        evicted: List[int] = []
        stats = self._stats.get(query_id)
        if stats is None:
            stats = self._new_stats(query_id, now)
            self._stats[query_id] = stats
            evicted = self._enforce_cap()
        stats.iterations += 1
        if involved_workers <= 1:
            stats.local_iterations += 1
        stats.last_activity = now
        if stats.finished:
            # keep the heap entry in sync with the bumped activity time
            heapq.heappush(
                self._finished_heap, (stats.last_activity, stats.seq, query_id)
            )
        return evicted

    def record_finish(self, query_id: int, now: float) -> None:
        stats = self._stats.get(query_id)
        if stats is not None:
            stats.finished = True
            stats.last_activity = now
            heapq.heappush(
                self._finished_heap, (stats.last_activity, stats.seq, query_id)
            )

    def _compact_heap(self) -> None:
        """Rebuild the finished-heap from live entries when stale items
        (window-evicted or restarted queries) dominate it.

        Called from :meth:`evict_stale` — under window-based eviction the
        cap is rarely hit, so stale heap tuples would otherwise accumulate
        for the lifetime of the process.
        """
        if len(self._finished_heap) <= max(64, 2 * len(self._stats)):
            return
        self._finished_heap = [
            (s.last_activity, s.seq, s.query_id)
            for s in self._stats.values()
            if s.finished
        ]
        heapq.heapify(self._finished_heap)

    # ------------------------------------------------------------------
    def evict_stale(self, now: float) -> List[int]:
        """Drop queries outside the monitoring window; returns evicted ids.

        A tumbling window evicts on *activity*, not on completion: a
        long-running query that has not reported an iteration for a full
        window is just as stale as a finished one, and keeping it would pin
        its companion state (the controller's scope store) forever — a real
        leak once graph churn can delete the vertices its scope references.
        Evicted running queries that later report again are simply re-tracked
        from scratch by :meth:`record_iteration`.
        """
        cutoff = now - self.window
        stale = [
            qid for qid, s in self._stats.items() if s.last_activity < cutoff
        ]
        for qid in stale:
            del self._stats[qid]
        self._compact_heap()
        return stale

    def _enforce_cap(self) -> List[int]:
        """Bound to ``max_queries`` by evicting the oldest finished entries.

        One heap pop per eviction (amortised ``O(log n)``) instead of the
        former two full sorts of the table per over-cap insert; only when no
        finished query exists does it fall back to a single linear scan for
        the oldest running entry.  Returns the evicted ids so the caller can
        drop companion state (the controller's scope store).
        """
        evicted: List[int] = []
        while len(self._stats) > self.max_queries:
            popped = self._pop_oldest_finished()
            if popped is None:
                # all running: evict the oldest regardless (one min pass)
                victim = min(
                    self._stats.values(), key=lambda s: (s.last_activity, s.seq)
                )
                popped = victim.query_id
                del self._stats[popped]
            evicted.append(popped)
        return evicted

    def _pop_oldest_finished(self) -> Optional[int]:
        """Evict and return the finished query with the oldest activity."""
        heap = self._finished_heap
        while heap:
            last_activity, seq, query_id = heapq.heappop(heap)
            stats = self._stats.get(query_id)
            if (
                stats is not None
                and stats.finished
                and stats.seq == seq
                and stats.last_activity == last_activity
            ):
                del self._stats[query_id]
                return query_id
        return None

    # ------------------------------------------------------------------
    def tracked_queries(self) -> List[int]:
        return sorted(self._stats)

    def stats(self, query_id: int) -> Optional[QueryStats]:
        return self._stats.get(query_id)

    def average_locality(self, min_iterations: int = 1) -> float:
        """Mean per-query locality over the window (the Φ trigger signal)."""
        values = [
            s.locality
            for s in self._stats.values()
            if s.iterations >= min_iterations
        ]
        if not values:
            return 1.0
        return sum(values) / len(values)

    def __len__(self) -> int:
        return len(self._stats)
