"""Query scope bookkeeping (§2 definitions).

* **Global query scope** ``GS(q)`` — all vertices activated by query ``q``
  within the monitoring window of μ seconds.
* **Local query scope** ``LS(q, w)`` — the subset of ``GS(q)`` assigned to
  worker ``w`` under the current assignment ``A``.
* **Intersection function** ``I_w`` — the number of vertices shared between
  local query scopes on a worker; the controller aggregates these into
  global intersections, which drive the query clustering of the Q-cut
  preprocessing step.

Two implementations live here:

:class:`ScopeStore`
    The production store.  Each ``GS(q)`` is a sorted ``int64`` numpy array;
    a lazily rebuilt CSR-style *query × vertex incidence* structure (row
    pointer + concatenated vertex column) lets every scope statistic —
    per-worker local-scope sizes, spanning workers, the query-cut metric,
    the per-worker scope mass — be computed for **all queries at once** with
    a single encoded ``bincount`` pass, and lets global pairwise
    intersections be counted by sorting the incidence pairs and bincounting
    co-occurring query pairs.  Ingestion is incremental: new activations are
    buffered per query and merged into the sorted arrays on demand.

:class:`QueryScopes`
    The original set-based store, retained as the *reference
    implementation*: the equivalence tests and the controller-planning
    benchmark assert that the vectorized path reproduces it exactly.

The controller stores each ``GS(q)`` once and *derives* the local scopes
from the assignment array — a single source of truth that stays consistent
through repartitioning.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.util import concat_ranges

__all__ = [
    "QueryScopes",
    "ScopeStore",
    "scope_worker_counts",
    "pairwise_intersections",
    "pairwise_intersections_arrays",
]

_EMPTY = np.empty(0, dtype=np.int64)


def scope_worker_counts(
    scope: "Set[int] | np.ndarray | Sequence[int]", assignment: np.ndarray, k: int
) -> np.ndarray:
    """Per-worker vertex counts ``|LS(q, w)|`` of one scope.

    The single shared bincount path (``minlength=k`` then a ``[:k]`` slice,
    so out-of-range worker ids can neither truncate nor blow up the result).
    Accepts a vertex set, sequence, or int64 array.
    """
    if isinstance(scope, np.ndarray):
        vertices = scope
    elif scope:
        vertices = np.fromiter(scope, dtype=np.int64, count=len(scope))
    else:
        vertices = _EMPTY
    if vertices.size == 0:
        return np.zeros(k, dtype=np.int64)
    counts = np.bincount(assignment[vertices], minlength=k)
    return counts[:k]


class QueryScopes:
    """Set-based reference store for global scopes and local-scope stats."""

    def __init__(self) -> None:
        self._scopes: Dict[int, Set[int]] = {}

    # ------------------------------------------------------------------
    def add_activations(self, query_id: int, vertices: Iterable[int]) -> None:
        """Record vertices activated by a query (workers' stats messages)."""
        self._scopes.setdefault(query_id, set()).update(int(v) for v in vertices)

    def drop(self, query_id: int) -> None:
        """Forget a query (window eviction)."""
        self._scopes.pop(query_id, None)

    def remove_vertices(self, vertices: Iterable[int]) -> None:
        """Strip tombstoned vertex ids from every tracked scope (graph churn)."""
        dead = {int(v) for v in vertices}
        if not dead:
            return
        for scope in self._scopes.values():
            scope.difference_update(dead)

    def queries(self) -> List[int]:
        """Ids of all tracked queries."""
        return sorted(self._scopes)

    def global_scope(self, query_id: int) -> Set[int]:
        """``GS(q)`` — empty set when unknown."""
        return self._scopes.get(query_id, set())

    def global_scope_size(self, query_id: int) -> int:
        """``|GS(q)|``."""
        return len(self._scopes.get(query_id, ()))

    # ------------------------------------------------------------------
    def local_scope(self, query_id: int, worker: int, assignment: np.ndarray) -> Set[int]:
        """``LS(q, w)`` under the given assignment."""
        scope = self._scopes.get(query_id)
        if not scope:
            return set()
        return {v for v in scope if assignment[v] == worker}

    def local_scope_sizes(self, query_id: int, assignment: np.ndarray, k: int) -> np.ndarray:
        """Vector of ``|LS(q, w)|`` for all workers."""
        return scope_worker_counts(self._scopes.get(query_id, set()), assignment, k)

    def spanning_workers(self, query_id: int, assignment: np.ndarray) -> Set[int]:
        """Workers with non-empty local scope (the query-cut contribution)."""
        scope = self._scopes.get(query_id)
        if not scope:
            return set()
        owners = assignment[np.fromiter(scope, dtype=np.int64, count=len(scope))]
        return set(int(w) for w in np.unique(owners))

    # ------------------------------------------------------------------
    def query_cut(self, assignment: np.ndarray) -> int:
        """The query-cut metric of §2.

        ``sum_q |{w in W : LS(q, w) != {}}|`` — the number of non-empty local
        query scopes across all tracked queries.  A query fully local on one
        worker contributes 1; the theoretical minimum is ``|Q|``.
        """
        return sum(
            len(self.spanning_workers(q, assignment)) for q in self._scopes
        )

    def query_cut_excess(self, assignment: np.ndarray) -> int:
        """Query-cut minus its minimum ``|Q|`` (the figure-1 counting).

        Figure 1 labels a partitioning that splits no query with
        ``|Query-cut| = 0``; that corresponds to this excess form.
        """
        nonempty = [
            len(self.spanning_workers(q, assignment))
            for q in self._scopes
            if self._scopes[q]
        ]
        return int(sum(nonempty) - len(nonempty))


class ScopeStore:
    """Array-backed scope store with a CSR query × vertex incidence view.

    Per query the store keeps a sorted, duplicate-free ``int64`` vertex
    array.  New activations are appended to a per-query pending buffer and
    merged (sort + unique) only when the query's array — or the flat
    incidence view — is next needed, so repeated small activation batches
    cost amortised ``O(total)``.

    The flat view is the classic CSR triple over the *sorted* query ids:
    ``row_qids[i]`` is the query of row ``i``, ``indptr`` delimits rows, and
    ``vertices`` is the concatenation of all scope arrays.  Every aggregate
    below is one vectorized pass over that structure.
    """

    def __init__(self) -> None:
        self._arrays: Dict[int, np.ndarray] = {}
        self._pending: Dict[int, List[np.ndarray]] = {}
        self._flat: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def add_activations(self, query_id: int, vertices: Iterable[int]) -> None:
        """Record vertices activated by a query (workers' stats messages)."""
        query_id = int(query_id)
        if isinstance(vertices, np.ndarray):
            # always copy: the chunk is buffered until the next read, so an
            # alias of a caller-reused buffer would corrupt the scope
            chunk = vertices.astype(np.int64, copy=True)
        else:
            chunk = np.asarray(list(vertices), dtype=np.int64)
        self._arrays.setdefault(query_id, _EMPTY)
        if chunk.size:
            self._pending.setdefault(query_id, []).append(chunk)
            self._flat = None

    def drop(self, query_id: int) -> None:
        """Forget a query (window eviction)."""
        had = self._arrays.pop(query_id, None) is not None
        had |= self._pending.pop(query_id, None) is not None
        if had:
            self._flat = None

    def remove_vertices(self, vertices: "Iterable[int] | np.ndarray") -> None:
        """Strip tombstoned vertex ids from every tracked scope (graph churn).

        Filters both the consolidated sorted arrays and the per-query
        pending activation buffers, so a dead id can survive in neither
        representation; the flat incidence view is invalidated when
        anything changed.
        """
        if isinstance(vertices, np.ndarray):
            dead = np.unique(vertices.astype(np.int64, copy=False))
        else:
            dead = np.unique(np.asarray(list(vertices), dtype=np.int64))
        if dead.size == 0:
            return
        changed = False
        for qid, arr in self._arrays.items():
            if arr.size == 0:
                continue
            # arr is sorted and duplicate-free: membership via searchsorted
            pos = np.searchsorted(dead, arr)
            hit = (pos < dead.size) & (dead[np.minimum(pos, dead.size - 1)] == arr)
            if hit.any():
                self._arrays[qid] = arr[~hit]
                changed = True
        for qid, chunks in self._pending.items():
            fresh_chunks = []
            for chunk in chunks:
                keep = ~np.isin(chunk, dead)
                if not keep.all():
                    chunk = chunk[keep]
                    changed = True
                if chunk.size:
                    fresh_chunks.append(chunk)
            self._pending[qid] = fresh_chunks
        if changed:
            self._flat = None

    # ------------------------------------------------------------------
    # per-query access
    # ------------------------------------------------------------------
    def _consolidate(self, query_id: int) -> np.ndarray:
        chunks = self._pending.pop(query_id, None)
        base = self._arrays.get(query_id, _EMPTY)
        if chunks:
            base = np.unique(np.concatenate([base] + chunks))
            self._arrays[query_id] = base
        return base

    def queries(self) -> List[int]:
        """Ids of all tracked queries."""
        return sorted(self._arrays)

    def scope_array(self, query_id: int) -> np.ndarray:
        """``GS(q)`` as a sorted int64 array — empty when unknown."""
        if query_id not in self._arrays:
            return _EMPTY
        return self._consolidate(query_id)

    def global_scope(self, query_id: int) -> Set[int]:
        """``GS(q)`` as a Python set (API parity with :class:`QueryScopes`)."""
        return set(self.scope_array(query_id).tolist())

    def global_scope_size(self, query_id: int) -> int:
        """``|GS(q)|``."""
        return int(self.scope_array(query_id).size)

    # ------------------------------------------------------------------
    # flat incidence view
    # ------------------------------------------------------------------
    def _flat_view(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(row_qids, indptr, vertices)`` CSR triple over sorted query ids."""
        if self._flat is None:
            qids = sorted(self._arrays)
            arrays = [self._consolidate(q) for q in qids]
            sizes = np.array([a.size for a in arrays], dtype=np.int64)
            indptr = np.zeros(len(qids) + 1, dtype=np.int64)
            np.cumsum(sizes, out=indptr[1:])
            vertices = np.concatenate(arrays) if arrays else _EMPTY
            self._flat = (np.asarray(qids, dtype=np.int64), indptr, vertices)
        return self._flat

    def _rows_for(self, query_ids: Optional[Sequence[int]]) -> Tuple[np.ndarray, np.ndarray]:
        """Row indices (into the flat view) for ``query_ids`` plus their ids."""
        qids, _indptr, _vertices = self._flat_view()
        if query_ids is None:
            return np.arange(qids.size, dtype=np.int64), qids
        wanted = np.asarray(list(query_ids), dtype=np.int64)
        rows = np.searchsorted(qids, wanted)
        ok = (rows < qids.size) & (qids[np.minimum(rows, qids.size - 1)] == wanted) \
            if qids.size else np.zeros(wanted.size, dtype=bool)
        return rows[ok], wanted[ok]

    # ------------------------------------------------------------------
    # vectorized aggregates (all queries in one pass)
    # ------------------------------------------------------------------
    def incidence(
        self, query_ids: Optional[Sequence[int]] = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(vertices, counts, qids)`` — the concatenated scope arrays.

        ``vertices`` holds the selected queries' scope arrays back to back,
        ``counts[i]`` is the scope size of ``qids[i]``.  Selected ids
        preserve the order given in ``query_ids`` (unknown ids dropped);
        the default is all tracked queries in sorted-id order.  This is the
        single gather every aggregate below (and the controller's snapshot
        builder) shares.
        """
        rows, out_qids = self._rows_for(query_ids)
        _qids, indptr, vertices = self._flat_view()
        counts = indptr[rows + 1] - indptr[rows]
        verts = vertices[_ranges(indptr[rows], counts)]
        return verts, counts, out_qids

    def local_size_matrix(
        self,
        assignment: np.ndarray,
        k: int,
        query_ids: Optional[Sequence[int]] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(sizes, qids)`` — the dense query × worker local-scope matrix.

        ``sizes[i, w] == |LS(qids[i], w)|`` for every tracked (or selected)
        query, computed with one encoded ``bincount`` over the incidence
        structure instead of per-query loops.
        """
        verts, counts, out_qids = self.incidence(query_ids)
        sizes = np.zeros((counts.size, k), dtype=np.int64)
        if verts.size == 0:
            return sizes, out_qids
        owners = assignment[verts]
        row_idx = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
        valid = (owners >= 0) & (owners < k)
        if not valid.all():
            owners = owners[valid]
            row_idx = row_idx[valid]
        flat = np.bincount(row_idx * k + owners, minlength=counts.size * k)
        sizes[:, :] = flat.reshape(counts.size, k)
        return sizes, out_qids

    def scope_mass(
        self,
        assignment: np.ndarray,
        k: int,
        query_ids: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Per-worker ``sum_q |LS(q, w)|`` — one bincount over the incidence."""
        verts, _counts, _qids = self.incidence(query_ids)
        if verts.size == 0:
            return np.zeros(k, dtype=np.int64)
        owners = assignment[verts]
        return np.bincount(owners[(owners >= 0) & (owners < k)], minlength=k)[:k]

    def local_scope(self, query_id: int, worker: int, assignment: np.ndarray) -> Set[int]:
        """``LS(q, w)`` under the given assignment."""
        scope = self.scope_array(query_id)
        if scope.size == 0:
            return set()
        return set(scope[assignment[scope] == worker].tolist())

    def local_scope_sizes(self, query_id: int, assignment: np.ndarray, k: int) -> np.ndarray:
        """Vector of ``|LS(q, w)|`` for all workers."""
        return scope_worker_counts(self.scope_array(query_id), assignment, k)

    def spanning_workers(self, query_id: int, assignment: np.ndarray) -> Set[int]:
        """Workers with non-empty local scope (the query-cut contribution)."""
        scope = self.scope_array(query_id)
        if scope.size == 0:
            return set()
        return set(int(w) for w in np.unique(assignment[scope]))

    def query_cut(self, assignment: np.ndarray) -> int:
        """§2 metric ``sum_q |{w : LS(q, w) != {}}|`` in one vectorized pass."""
        k = self._infer_k(assignment)
        sizes, _ = self.local_size_matrix(assignment, k)
        return int(np.count_nonzero(sizes))

    def query_cut_excess(self, assignment: np.ndarray) -> int:
        """Query-cut minus the number of non-empty queries (Figure 1 form)."""
        k = self._infer_k(assignment)
        sizes, _ = self.local_size_matrix(assignment, k)
        nonzero = (sizes > 0).sum(axis=1)
        return int(nonzero.sum() - np.count_nonzero(nonzero))

    def _infer_k(self, assignment: np.ndarray) -> int:
        return int(assignment.max()) + 1 if assignment.size else 1

    # ------------------------------------------------------------------
    # pairwise intersections
    # ------------------------------------------------------------------
    def pairwise_intersections(
        self,
        min_overlap: int = 1,
        query_ids: Optional[Sequence[int]] = None,
    ) -> Dict[Tuple[int, int], int]:
        """Global ``|GS(qi) ∩ GS(qj)|`` for all pairs, fully vectorized.

        Sorts the concatenated (vertex, query) incidence pairs, expands each
        vertex's co-occurring query group into its ``g*(g-1)/2`` ordered
        pairs with range arithmetic, and counts pair keys with
        ``unique``/``bincount`` — no Python dict of lists.
        """
        verts, counts, out_qids = self.incidence(query_ids)
        if verts.size == 0:
            return {}
        row_idx = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
        return _count_pair_overlaps(verts, row_idx, out_qids, min_overlap)


# the shared range-expansion helper (also used by the batched partitioners)
_ranges = concat_ranges


def _count_pair_overlaps(
    verts: np.ndarray,
    row_idx: np.ndarray,
    row_qids: np.ndarray,
    min_overlap: int,
    max_pairs_per_chunk: int = 1_000_000,
) -> Dict[Tuple[int, int], int]:
    """Count co-occurring query pairs from (vertex, query-row) incidences.

    ``verts``/``row_idx`` must contain each (vertex, row) pair at most once.
    Pair expansion is streamed in bounded chunks, so dense overlap cannot
    blow up peak memory and the chunk temporaries stay allocator-warm;
    per-chunk key counts are merged at the end.
    """
    num_rows = int(row_qids.size)
    if num_rows < 2 or verts.size == 0:
        return {}
    order = np.lexsort((row_idx, verts))
    v = verts[order]
    # int32 positions/rows halve the bandwidth of the pair expansion; the
    # incidence table is far below 2^31 entries by construction
    r = row_idx[order].astype(np.int32)
    new_group = np.empty(v.size, dtype=bool)
    new_group[0] = True
    np.not_equal(v[1:], v[:-1], out=new_group[1:])
    group_start = np.flatnonzero(new_group)
    group_size = np.diff(np.append(group_start, v.size))
    gi = np.cumsum(new_group) - 1
    # successors of each entry inside its vertex group = its pair fan-out
    pos = np.arange(v.size, dtype=np.int64) - group_start[gi]
    fanout = group_size[gi] - 1 - pos

    # accumulate encoded-pair counts chunk by chunk.  With Q rows the key
    # space is Q^2; for the controller's windowed query counts (<= a couple
    # thousand, 4M keys = 32 MB) a dense bincount accumulator is both the
    # fastest and the simplest merge — beyond that, sort-based merging
    # keeps memory proportional to the distinct pairs instead.
    dense = num_rows * num_rows <= 4_000_000
    key_dtype = np.int32 if dense else np.int64
    acc = np.zeros(num_rows * num_rows, dtype=np.int64) if dense else None
    keys_parts: List[np.ndarray] = []
    counts_parts: List[np.ndarray] = []
    cum = np.cumsum(fanout)
    total_pairs = int(cum[-1]) if cum.size else 0
    start = 0
    emitted = 0
    while emitted < total_pairs:
        stop = int(np.searchsorted(cum, emitted + max_pairs_per_chunk, side="right"))
        stop = max(stop, start + 1)
        rep = fanout[start:stop]
        n_pairs = int(rep.sum())
        if n_pairs:
            # rows are sorted within a vertex group, so the repeated entry's
            # row is always < its successors' rows.  right[j] enumerates the
            # successor positions: for pair j in the chunk it equals
            # (entry position + 1 + offset-within-the-entry's-fan-out).
            rep32 = rep.astype(np.int32)
            idx = np.arange(start, stop, dtype=np.int32)
            base = np.repeat(idx + 1 - (np.cumsum(rep32) - rep32), rep32)
            base += np.arange(n_pairs, dtype=np.int32)
            keys = np.repeat(r[start:stop].astype(key_dtype), rep32)
            keys *= num_rows
            keys += r[base]
            if dense:
                acc += np.bincount(keys, minlength=acc.size)
            else:
                uniq, cnt = np.unique(keys, return_counts=True)
                keys_parts.append(uniq)
                counts_parts.append(cnt)
        emitted += n_pairs
        start = stop
    if dense:
        if acc is None:
            return {}
        uniq = np.flatnonzero(acc >= min_overlap)
        totals = acc[uniq]
    else:
        if not keys_parts:
            return {}
        all_keys = np.concatenate(keys_parts)
        all_counts = np.concatenate(counts_parts)
        uniq, inverse = np.unique(all_keys, return_inverse=True)
        totals = np.bincount(inverse, weights=all_counts).astype(np.int64)
        keep = totals >= min_overlap
        uniq = uniq[keep]
        totals = totals[keep]
    ia = (uniq // num_rows).astype(np.int64)
    ib = (uniq % num_rows).astype(np.int64)
    # positions orient pairs by row order, which need not follow query-id
    # order when the caller selected an unsorted query subset — normalize
    # to the reference (qi < qj) key convention
    qa = row_qids[ia]
    qb = row_qids[ib]
    lo = np.minimum(qa, qb)
    hi = np.maximum(qa, qb)
    return {
        (int(a), int(b)): int(c) for a, b, c in zip(lo, hi, totals)
    }


def pairwise_intersections_arrays(
    scopes: Dict[int, "np.ndarray | Set[int] | Sequence[int]"],
    min_overlap: int = 1,
) -> Dict[Tuple[int, int], int]:
    """Vectorized ``pairwise_intersections`` over a plain scope mapping.

    Accepts the same ``query_id -> vertices`` mapping as the reference
    implementation (sets, sequences, or arrays; duplicates within one scope
    are ignored) and produces identical contents via the encoded-pair
    bincount path.
    """
    qids = sorted(scopes)
    arrays = []
    for qid in qids:
        scope = scopes[qid]
        if isinstance(scope, np.ndarray):
            arrays.append(np.unique(scope.astype(np.int64, copy=False)))
        else:
            arrays.append(np.unique(np.asarray(list(scope), dtype=np.int64)))
    sizes = np.array([a.size for a in arrays], dtype=np.int64)
    if not qids or int(sizes.sum()) == 0:
        return {}
    verts = np.concatenate(arrays)
    row_idx = np.repeat(np.arange(len(qids), dtype=np.int64), sizes)
    return _count_pair_overlaps(
        verts, row_idx, np.asarray(qids, dtype=np.int64), min_overlap
    )


def pairwise_intersections(
    scopes: Dict[int, Set[int]], min_overlap: int = 1
) -> Dict[Tuple[int, int], int]:
    """Global intersection sizes ``|GS(qi) ∩ GS(qj)|`` for all query pairs.

    Reference implementation: an inverted vertex -> queries index so the
    cost is proportional to the total overlap rather than ``|Q|^2`` set
    intersections.  Kept as the oracle for the vectorized
    :func:`pairwise_intersections_arrays` / :meth:`ScopeStore.pairwise_intersections`.
    """
    inverted: Dict[int, List[int]] = {}
    for qid, scope in scopes.items():
        for v in scope:
            inverted.setdefault(v, []).append(qid)
    counts: Dict[Tuple[int, int], int] = {}
    for members in inverted.values():
        if len(members) < 2:
            continue
        members = sorted(members)
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                key = (members[i], members[j])
                counts[key] = counts.get(key, 0) + 1
    return {k: c for k, c in counts.items() if c >= min_overlap}
