"""Query scope bookkeeping (§2 definitions).

* **Global query scope** ``GS(q)`` — all vertices activated by query ``q``
  within the monitoring window of μ seconds.
* **Local query scope** ``LS(q, w)`` — the subset of ``GS(q)`` assigned to
  worker ``w`` under the current assignment ``A``.
* **Intersection function** ``I_w`` — the number of vertices shared between
  local query scopes on a worker; the controller aggregates these into
  global intersections, which drive the query clustering of the Q-cut
  preprocessing step.

The controller stores each ``GS(q)`` as a vertex set and *derives* the local
scopes from the assignment array — a single source of truth that stays
consistent through repartitioning.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

import numpy as np

__all__ = ["QueryScopes", "pairwise_intersections"]


class QueryScopes:
    """Tracks global scopes and derives local-scope statistics."""

    def __init__(self) -> None:
        self._scopes: Dict[int, Set[int]] = {}

    # ------------------------------------------------------------------
    def add_activations(self, query_id: int, vertices: Iterable[int]) -> None:
        """Record vertices activated by a query (workers' stats messages)."""
        self._scopes.setdefault(query_id, set()).update(int(v) for v in vertices)

    def drop(self, query_id: int) -> None:
        """Forget a query (window eviction)."""
        self._scopes.pop(query_id, None)

    def queries(self) -> List[int]:
        """Ids of all tracked queries."""
        return sorted(self._scopes)

    def global_scope(self, query_id: int) -> Set[int]:
        """``GS(q)`` — empty set when unknown."""
        return self._scopes.get(query_id, set())

    def global_scope_size(self, query_id: int) -> int:
        """``|GS(q)|``."""
        return len(self._scopes.get(query_id, ()))

    # ------------------------------------------------------------------
    def local_scope(self, query_id: int, worker: int, assignment: np.ndarray) -> Set[int]:
        """``LS(q, w)`` under the given assignment."""
        scope = self._scopes.get(query_id)
        if not scope:
            return set()
        return {v for v in scope if assignment[v] == worker}

    def local_scope_sizes(self, query_id: int, assignment: np.ndarray, k: int) -> np.ndarray:
        """Vector of ``|LS(q, w)|`` for all workers."""
        scope = self._scopes.get(query_id)
        sizes = np.zeros(k, dtype=np.int64)
        if scope:
            owners = assignment[np.fromiter(scope, dtype=np.int64, count=len(scope))]
            counts = np.bincount(owners, minlength=k)
            sizes[: counts.size] = counts[:k]
        return sizes

    def spanning_workers(self, query_id: int, assignment: np.ndarray) -> Set[int]:
        """Workers with non-empty local scope (the query-cut contribution)."""
        scope = self._scopes.get(query_id)
        if not scope:
            return set()
        owners = assignment[np.fromiter(scope, dtype=np.int64, count=len(scope))]
        return set(int(w) for w in np.unique(owners))

    # ------------------------------------------------------------------
    def query_cut(self, assignment: np.ndarray) -> int:
        """The query-cut metric of §2.

        ``sum_q |{w in W : LS(q, w) != {}}|`` — the number of non-empty local
        query scopes across all tracked queries.  A query fully local on one
        worker contributes 1; the theoretical minimum is ``|Q|``.
        """
        return sum(
            len(self.spanning_workers(q, assignment)) for q in self._scopes
        )

    def query_cut_excess(self, assignment: np.ndarray) -> int:
        """Query-cut minus its minimum ``|Q|`` (the figure-1 counting).

        Figure 1 labels a partitioning that splits no query with
        ``|Query-cut| = 0``; that corresponds to this excess form.
        """
        nonempty = [
            len(self.spanning_workers(q, assignment))
            for q in self._scopes
            if self._scopes[q]
        ]
        return int(sum(nonempty) - len(nonempty))


def pairwise_intersections(
    scopes: Dict[int, Set[int]], min_overlap: int = 1
) -> Dict[Tuple[int, int], int]:
    """Global intersection sizes ``|GS(qi) ∩ GS(qj)|`` for all query pairs.

    Uses an inverted vertex -> queries index so the cost is proportional to
    the total overlap rather than ``|Q|^2`` set intersections.
    """
    inverted: Dict[int, List[int]] = {}
    for qid, scope in scopes.items():
        for v in scope:
            inverted.setdefault(v, []).append(qid)
    counts: Dict[Tuple[int, int], int] = {}
    for members in inverted.values():
        if len(members) < 2:
            continue
        members = sorted(members)
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                key = (members[i], members[j])
                counts[key] = counts.get(key, 0) + 1
    return {k: c for k, c in counts.items() if c >= min_overlap}
