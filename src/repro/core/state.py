"""High-level Q-cut solution state (§3.2).

The controller's "scalable representation of global knowledge": instead of
vertices and edges, the optimization state tracks *scope fragments* — for
each query cluster ``u`` and worker ``w``, how much scope mass of ``u``
currently sits on ``w`` plus the identity of the original fragment, so the
final solution can be translated back into low-level ``move`` requests (the
Execute step of the MAPE loop).

Each fragment carries **two masses**:

``weighted``
    ``sum_{q in u} |LS(q, w)|`` — the per-query sum of §2/§A.1.  Overlapping
    queries count shared vertices once *per query*, so hotspot regions that
    many queries touch are heavy.  Used by both the cost function and the
    workload term.
``union``
    ``|union_{q in u} LS(q, w)|`` — the number of distinct vertices, i.e.
    how many vertices a move actually relocates.  Used for the ``|V(w)|``
    term and the move-transfer cost.

Workload model (Appendix A.1)::

    L_w = (|V(w)| + sum_q |LS(q, w)|) / 2

with the balance constraint of Algorithm 2 line 15: a move of mass ``x``
(here ``x = (x_union + x_weighted) / 2``, the load change it causes) must
keep ``|(L_w - x) - (L_w' + x)| / max(L_w - x, L_w' + x) < delta``.

Because non-scope vertices never move, we store ``base[w]`` (vertices on
``w`` outside every tracked scope); ``|V(w)| = base[w] + U[w]`` with ``U``
the union mass per worker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

import numpy as np

from repro.errors import ControllerError

__all__ = ["Fragment", "QcutState", "Move"]


@dataclass(frozen=True)
class Fragment:
    """A local cluster scope at snapshot time: cluster ``u`` on worker ``w0``."""

    unit: int
    origin_worker: int
    #: distinct scope vertices of the cluster on the worker
    union_size: int
    #: per-query sum of local scope sizes (>= union_size when queries overlap)
    weighted_size: int


@dataclass(frozen=True)
class Move:
    """A high-level move: all of cluster ``unit``'s mass on ``src`` -> ``dst``."""

    unit: int
    src: int
    dst: int
    union_size: int
    weighted_size: int


class QcutState:
    """Mutable ILS solution state over cluster-scope fragments.

    Parameters
    ----------
    num_units:
        Number of query clusters (``<= 4k`` after Karger clustering).
    num_workers:
        ``k``.
    fragments:
        The snapshot fragments.
    base_vertices:
        Per-worker count of vertices outside every tracked scope.
    delta:
        Maximum allowed pairwise load imbalance (paper: 0.25).
    """

    def __init__(
        self,
        num_units: int,
        num_workers: int,
        fragments: List[Fragment],
        base_vertices: np.ndarray,
        delta: float = 0.25,
    ) -> None:
        if num_workers < 1:
            raise ControllerError("need at least one worker")
        base_vertices = np.asarray(base_vertices, dtype=np.float64)
        if base_vertices.shape != (num_workers,):
            raise ControllerError("base_vertices must have one entry per worker")
        self.num_units = num_units
        self.num_workers = num_workers
        self.delta = float(delta)
        self.base = base_vertices
        #: dense (units x workers) query-weighted scope-mass matrix
        self.weighted = np.zeros((num_units, num_workers), dtype=np.float64)
        #: dense (units x workers) distinct-vertex matrix
        self.union = np.zeros((num_units, num_workers), dtype=np.float64)
        #: fragment -> current worker
        self.placement: Dict[Tuple[int, int], int] = {}
        #: immutable snapshot masses by (unit, origin worker)
        self.fragment_sizes: Dict[Tuple[int, int], Tuple[int, int]] = {}
        #: immutable unit -> fragment keys index (saves apply_move a scan
        #: over the whole placement table on every ILS move)
        self.unit_keys: Dict[int, List[Tuple[int, int]]] = {}
        for frag in fragments:
            if not 0 <= frag.unit < num_units:
                raise ControllerError(f"fragment references unknown unit {frag.unit}")
            if not 0 <= frag.origin_worker < num_workers:
                raise ControllerError(
                    f"fragment references unknown worker {frag.origin_worker}"
                )
            if frag.weighted_size < frag.union_size:
                raise ControllerError("weighted mass cannot be below union mass")
            key = (frag.unit, frag.origin_worker)
            if key in self.fragment_sizes:
                raise ControllerError(f"duplicate fragment {key}")
            self.fragment_sizes[key] = (int(frag.union_size), int(frag.weighted_size))
            self.placement[key] = frag.origin_worker
            self.unit_keys.setdefault(frag.unit, []).append(key)
            self.union[frag.unit, frag.origin_worker] += frag.union_size
            self.weighted[frag.unit, frag.origin_worker] += frag.weighted_size

    # ------------------------------------------------------------------
    # load / balance
    # ------------------------------------------------------------------
    def scope_mass(self) -> np.ndarray:
        """Query-weighted scope mass ``sum_q |LS(q, w)|`` per worker."""
        return self.weighted.sum(axis=0)

    def vertex_counts(self) -> np.ndarray:
        """``|V(w)| = base[w] + union mass``."""
        return self.base + self.union.sum(axis=0)

    def loads(self) -> np.ndarray:
        """``L_w = (|V(w)| + sum_q |LS(q, w)|) / 2`` (Appendix A.1)."""
        return (self.vertex_counts() + self.scope_mass()) / 2.0

    def move_load(self, unit: int, worker: int) -> float:
        """Load change a move of this unit-worker mass would cause."""
        return (self.union[unit, worker] + self.weighted[unit, worker]) / 2.0

    def pair_balance_ok(self, w_from: int, w_to: int, x: float) -> bool:
        """Algorithm 2 line 15: balance check for moving load ``x``."""
        loads = self.loads()
        lf = loads[w_from] - x
        lt = loads[w_to] + x
        top = abs(lf - lt)
        bottom = max(lf, lt)
        if bottom <= 0:
            return True
        return top / bottom < self.delta

    def max_imbalance(self) -> float:
        """Worst pairwise imbalance ``|L_w - L_w'| / max(...)`` of the state."""
        loads = self.loads()
        top = loads.max() - loads.min()
        bottom = loads.max()
        return float(top / bottom) if bottom > 0 else 0.0

    def is_balanced(self) -> bool:
        """Whether every worker pair satisfies the δ constraint."""
        return self.max_imbalance() < self.delta

    # ------------------------------------------------------------------
    # cost (§3.2.2)
    # ------------------------------------------------------------------
    def cost(self) -> float:
        """Query-cut cost: weighted mass not on each cluster's top worker.

        ``sum_u sum_{w != argmax_w' weighted[u, w']} weighted[u, w]`` — zero
        when every cluster is fully local somewhere.
        """
        if self.num_units == 0:
            return 0.0
        totals = self.weighted.sum(axis=1)
        maxima = self.weighted.max(axis=1)
        return float((totals - maxima).sum())

    def unit_cost(self, unit: int) -> float:
        """Cost contribution of one cluster."""
        row = self.weighted[unit]
        return float(row.sum() - row.max())

    # ------------------------------------------------------------------
    # moves
    # ------------------------------------------------------------------
    def apply_move(self, unit: int, w_from: int, w_to: int) -> Move:
        """Move all of ``unit``'s scope mass on ``w_from`` to ``w_to``."""
        if w_from == w_to:
            raise ControllerError("move source equals destination")
        xu = self.union[unit, w_from]
        xw = self.weighted[unit, w_from]
        if xw <= 0:
            raise ControllerError(
                f"unit {unit} has no scope mass on worker {w_from}"
            )
        self.union[unit, w_from] = 0.0
        self.union[unit, w_to] += xu
        self.weighted[unit, w_from] = 0.0
        self.weighted[unit, w_to] += xw
        for key in self.unit_keys.get(unit, ()):
            if self.placement[key] == w_from:
                self.placement[key] = w_to
        return Move(
            unit=unit, src=w_from, dst=w_to, union_size=int(xu), weighted_size=int(xw)
        )

    def copy(self) -> "QcutState":
        """Deep copy (ILS keeps the incumbent while exploring)."""
        clone = object.__new__(QcutState)
        clone.num_units = self.num_units
        clone.num_workers = self.num_workers
        clone.delta = self.delta
        clone.base = self.base  # immutable by convention
        clone.weighted = self.weighted.copy()
        clone.union = self.union.copy()
        clone.placement = dict(self.placement)
        clone.fragment_sizes = self.fragment_sizes  # immutable by convention
        clone.unit_keys = self.unit_keys  # immutable by convention
        return clone

    # ------------------------------------------------------------------
    # solution extraction
    # ------------------------------------------------------------------
    def relocated_fragments(self) -> List[Tuple[int, int, int]]:
        """Fragments that ended up away from home: (unit, origin, current)."""
        out = []
        for (unit, origin), current in sorted(self.placement.items()):
            if current != origin:
                out.append((unit, origin, current))
        return out

    def relocation_workers(self) -> FrozenSet[int]:
        """Workers touched by the solution's relocations (origins ∪ targets).

        The superset of the workers a partial STOP/START barrier must halt
        for this solution; the controller narrows it to the moves that
        still carry vertices when it emits the low-level plan.
        """
        workers = set()
        for _unit, origin, current in self.relocated_fragments():
            workers.add(origin)
            workers.add(current)
        return frozenset(workers)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QcutState(units={self.num_units}, k={self.num_workers}, "
            f"cost={self.cost():.0f}, imbalance={self.max_imbalance():.3f})"
        )
