"""Q-Graph: preserving query locality in multi-query graph processing.

A from-scratch Python reproduction of Mayer et al., GRADES-NDA'18
(https://doi.org/10.1145/3210259.3210265): the Q-cut query-aware
partitioner, hybrid barrier synchronization, the adaptive MAPE controller,
and all substrates (graph storage, partitioning baselines, a discrete-event
cluster simulation, the multi-query vertex-centric engine, query programs,
and hotspot workload generation).

Quickstart::

    from repro.bench import Scenario, run_scenario

    result = run_scenario(Scenario(name="demo", main_queries=64))
    print(result.summary())
"""

__version__ = "1.0.0"

from repro import bench, core, engine, graph, partitioning, queries, simulation, workload
from repro.errors import ReproError

__all__ = [
    "bench",
    "core",
    "engine",
    "graph",
    "partitioning",
    "queries",
    "simulation",
    "workload",
    "ReproError",
    "__version__",
]
