"""Exception hierarchy for the Q-Graph reproduction library.

All library-raised errors derive from :class:`ReproError` so that callers can
catch any library failure with a single ``except`` clause while still being
able to distinguish the individual failure classes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class GraphError(ReproError):
    """Raised for malformed graph construction or out-of-range vertex ids."""


class GraphFormatError(GraphError):
    """Raised when a persisted graph file cannot be parsed."""


class PartitioningError(ReproError):
    """Raised when a partitioner receives inconsistent inputs
    (e.g. ``k`` larger than the vertex count, or an unbalanced request
    that cannot be satisfied)."""


class SimulationError(ReproError):
    """Raised for inconsistencies inside the discrete-event simulation,
    for example events scheduled in the past."""


class EngineError(ReproError):
    """Raised by the vertex-centric engine for protocol violations,
    e.g. sending a message to a non-existent vertex."""


class QueryError(EngineError):
    """Raised for invalid query definitions (empty initial vertex set,
    unknown start vertex, ...)."""


class ControllerError(ReproError):
    """Raised by the centralized controller for inconsistent statistics or
    move requests that reference unknown workers/queries."""


class WorkloadError(ReproError):
    """Raised by the workload generators for invalid parameters."""
