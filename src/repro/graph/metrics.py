"""Partitioning-quality metrics on graphs.

These are the classic *query-agnostic* metrics (edge-cut, vertex-cut,
vertex/edge balance) that the paper's Figure 1 contrasts against the
*query-aware* query-cut metric (which lives in :mod:`repro.core.cost`
because it needs query scopes, not just structure).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.errors import PartitioningError
from repro.graph.digraph import DiGraph

__all__ = [
    "edge_cut",
    "vertex_cut",
    "vertex_balance",
    "edge_balance",
    "partition_sizes",
    "replication_factor",
]


def _validate_assignment(graph: DiGraph, assignment: np.ndarray) -> np.ndarray:
    assignment = np.asarray(assignment, dtype=np.int64)
    if assignment.shape != (graph.num_vertices,):
        raise PartitioningError(
            f"assignment must have shape ({graph.num_vertices},), got {assignment.shape}"
        )
    if assignment.size and assignment.min() < 0:
        raise PartitioningError("assignment contains negative worker ids")
    return assignment


def edge_cut(graph: DiGraph, assignment: np.ndarray) -> int:
    """Number of directed edges whose endpoints live on different workers."""
    assignment = _validate_assignment(graph, assignment)
    sources, targets, _ = graph.edge_array()
    return int(np.count_nonzero(assignment[sources] != assignment[targets]))


def vertex_cut(graph: DiGraph, assignment: np.ndarray) -> int:
    """Number of vertices with at least one neighbour on a different worker.

    This is the (edge-partitioning dual) metric PowerGraph-style systems
    minimise; for a vertex partitioning it counts frontier vertices.
    """
    assignment = _validate_assignment(graph, assignment)
    sources, targets, _ = graph.edge_array()
    boundary = assignment[sources] != assignment[targets]
    cut_vertices = np.zeros(graph.num_vertices, dtype=bool)
    cut_vertices[sources[boundary]] = True
    cut_vertices[targets[boundary]] = True
    return int(np.count_nonzero(cut_vertices))


def partition_sizes(graph: DiGraph, assignment: np.ndarray, k: int) -> np.ndarray:
    """Vertices per worker as a length-``k`` vector."""
    assignment = _validate_assignment(graph, assignment)
    if assignment.size and assignment.max() >= k:
        raise PartitioningError("assignment references worker >= k")
    return np.bincount(assignment, minlength=k).astype(np.int64)


def vertex_balance(graph: DiGraph, assignment: np.ndarray, k: int) -> float:
    """Max/mean vertex-count ratio; 1.0 is perfectly balanced."""
    sizes = partition_sizes(graph, assignment, k)
    mean = sizes.mean()
    if mean == 0:
        return 1.0
    return float(sizes.max() / mean)


def edge_balance(graph: DiGraph, assignment: np.ndarray, k: int) -> float:
    """Max/mean out-edge-count ratio across workers; 1.0 is perfect."""
    assignment = _validate_assignment(graph, assignment)
    if assignment.size and assignment.max() >= k:
        raise PartitioningError("assignment references worker >= k")
    sources, _, _ = graph.edge_array()
    counts = np.bincount(assignment[sources], minlength=k).astype(np.float64)
    mean = counts.mean()
    if mean == 0:
        return 1.0
    return float(counts.max() / mean)


def replication_factor(graph: DiGraph, assignment: np.ndarray) -> float:
    """Average number of distinct workers adjacent to a vertex (incl. its own).

    Used when discussing the future-work item of partial vertex replication
    (§6 of the paper): a lower replication factor means cheaper mirroring.
    """
    assignment = _validate_assignment(graph, assignment)
    n = graph.num_vertices
    if n == 0:
        return 0.0
    sources, targets, _ = graph.edge_array()
    owners: Dict[int, set] = {}
    for u, v in zip(sources.tolist(), targets.tolist()):
        owners.setdefault(u, set()).add(int(assignment[v]))
        owners.setdefault(v, set()).add(int(assignment[u]))
    total = 0
    for v in range(n):
        touching = owners.get(v, set())
        touching.add(int(assignment[v]))
        total += len(touching)
    return total / n
