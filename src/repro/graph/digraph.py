"""Compressed-sparse-row directed graph.

This is the storage substrate every other subsystem builds on.  The paper's
system (25k lines of Java) stores the road network as an adjacency structure
with per-edge travel-time weights; we use the classic CSR layout on top of
numpy arrays, which gives O(1) out-neighbour slicing and a compact memory
footprint even for the GY-scale graphs.

Both the out-adjacency (for message sending) and the in-adjacency (for
reverse traversals and some analytics) are materialised.  The graph is
immutable after construction; bulk construction happens through
:class:`repro.graph.builder.GraphBuilder`, and streaming topology mutation
through the :class:`repro.graph.delta.MutableDiGraph` subclass (batched
deltas with periodic CSR rebuilds).

Vertices are dense integer ids ``0 .. n-1``.  Optional per-vertex attributes
used by the reproduction:

``coords``
    (n, 2) float array of planar coordinates (road networks, Domain
    partitioning, Euclidean query generation).
``tags``
    boolean array marking point-of-interest vertices (gas stations in the
    paper's POI query, §4.1).
"""

from __future__ import annotations

from typing import Iterator, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.errors import GraphError

__all__ = ["DiGraph", "CSRView"]


class CSRView(NamedTuple):
    """Borrowed view of the out-adjacency CSR arrays.

    Handed to the vectorized iteration kernels so the hot path does a single
    attribute lookup per iteration instead of three property calls per edge
    expansion.  The arrays are the graph's own buffers — do not mutate.
    """

    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray


class DiGraph:
    """An immutable weighted directed graph in CSR form.

    Parameters
    ----------
    indptr, indices, weights:
        Standard CSR arrays for the out-adjacency: the out-neighbours of
        vertex ``v`` are ``indices[indptr[v]:indptr[v+1]]`` with edge weights
        ``weights[indptr[v]:indptr[v+1]]``.
    coords:
        Optional (n, 2) array of planar vertex coordinates.
    tags:
        Optional (n,) boolean array of point-of-interest markers.

    Notes
    -----
    The constructor validates the CSR invariants; use
    :class:`~repro.graph.builder.GraphBuilder` or the generator functions in
    :mod:`repro.graph.generators` to obtain well-formed instances.
    """

    __slots__ = (
        "_indptr",
        "_indices",
        "_weights",
        "_rindptr",
        "_rindices",
        "_rweights",
        "_coords",
        "_tags",
        "_csr_view",
        "_csr_in_view",
        "name",
    )

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
        coords: Optional[np.ndarray] = None,
        tags: Optional[np.ndarray] = None,
        name: str = "graph",
    ) -> None:
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.float64)
        if indptr.ndim != 1 or indptr.size == 0:
            raise GraphError("indptr must be a non-empty 1-d array")
        if indptr[0] != 0:
            raise GraphError("indptr must start at 0")
        if np.any(np.diff(indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        if indptr[-1] != indices.size:
            raise GraphError(
                f"indptr[-1]={indptr[-1]} does not match number of edges {indices.size}"
            )
        if weights.size != indices.size:
            raise GraphError("weights and indices must have equal length")
        n = indptr.size - 1
        if indices.size and (indices.min() < 0 or indices.max() >= n):
            raise GraphError("edge endpoint out of range")
        if np.any(weights < 0):
            raise GraphError("negative edge weights are not supported")

        self._indptr = indptr
        self._indices = indices
        self._weights = weights
        self.name = name

        if coords is not None:
            coords = np.asarray(coords, dtype=np.float64)
            if coords.shape != (n, 2):
                raise GraphError(f"coords must have shape ({n}, 2), got {coords.shape}")
        self._coords = coords

        if tags is not None:
            tags = np.asarray(tags, dtype=bool)
            if tags.shape != (n,):
                raise GraphError(f"tags must have shape ({n},), got {tags.shape}")
        self._tags = tags

        self._csr_view: Optional[CSRView] = None
        self._csr_in_view: Optional[CSRView] = None
        self._rindptr, self._rindices, self._rweights = self._build_reverse()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _build_reverse(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Materialise the in-adjacency (reverse CSR) from the out-adjacency."""
        n = self.num_vertices
        m = self.num_edges
        rindptr = np.zeros(n + 1, dtype=np.int64)
        if m == 0:
            return rindptr, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        counts = np.bincount(self._indices, minlength=n)
        rindptr[1:] = np.cumsum(counts)
        sources = np.repeat(np.arange(n, dtype=np.int64), np.diff(self._indptr))
        order = np.argsort(self._indices, kind="stable")
        return rindptr, sources[order], self._weights[order]

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self._indptr.size - 1

    @property
    def num_edges(self) -> int:
        """Number of directed edges ``m``."""
        return self._indices.size

    @property
    def indptr(self) -> np.ndarray:
        """CSR row-pointer array of the out-adjacency (read-only view)."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """CSR column-index array of the out-adjacency (read-only view)."""
        return self._indices

    @property
    def weights(self) -> np.ndarray:
        """CSR edge-weight array of the out-adjacency (read-only view)."""
        return self._weights

    @property
    def coords(self) -> Optional[np.ndarray]:
        """Planar vertex coordinates or ``None``."""
        return self._coords

    @property
    def tags(self) -> Optional[np.ndarray]:
        """Boolean point-of-interest markers or ``None``."""
        return self._tags

    def csr(self) -> CSRView:
        """Cached :class:`CSRView` of the out-adjacency for the kernel layer.

        The view is built on first use and cached; :class:`DiGraph` is
        immutable, but any future mutating subclass must call
        :meth:`_invalidate_csr` after changing the adjacency arrays.
        """
        view = self._csr_view
        if view is None:
            view = CSRView(self._indptr, self._indices, self._weights)
            self._csr_view = view
        return view

    def csr_in(self) -> CSRView:
        """Cached :class:`CSRView` of the in-adjacency (reverse CSR).

        The batched streaming partitioners score a vertex's undirected
        neighbourhood from one forward and one reverse CSR slice; like
        :meth:`csr` the view is built on first use and cached.
        """
        view = self._csr_in_view
        if view is None:
            view = CSRView(self._rindptr, self._rindices, self._rweights)
            self._csr_in_view = view
        return view

    def _invalidate_csr(self) -> None:
        """Drop the cached CSR views (call after mutating adjacency arrays)."""
        self._csr_view = None
        self._csr_in_view = None

    def has_coords(self) -> bool:
        """Whether planar coordinates are attached."""
        return self._coords is not None

    def has_tags(self) -> bool:
        """Whether point-of-interest tags are attached."""
        return self._tags is not None

    # ------------------------------------------------------------------
    # adjacency access
    # ------------------------------------------------------------------
    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self.num_vertices:
            raise GraphError(f"vertex {v} out of range [0, {self.num_vertices})")

    def out_neighbors(self, v: int) -> np.ndarray:
        """Out-neighbour ids of ``v`` as a numpy view."""
        self._check_vertex(v)
        return self._indices[self._indptr[v] : self._indptr[v + 1]]

    def out_weights(self, v: int) -> np.ndarray:
        """Weights of the out-edges of ``v``, aligned with :meth:`out_neighbors`."""
        self._check_vertex(v)
        return self._weights[self._indptr[v] : self._indptr[v + 1]]

    def out_edges(self, v: int) -> Iterator[Tuple[int, float]]:
        """Iterate ``(neighbor, weight)`` pairs for the out-edges of ``v``."""
        lo, hi = self._indptr[v], self._indptr[v + 1]
        for i in range(lo, hi):
            yield int(self._indices[i]), float(self._weights[i])

    def in_neighbors(self, v: int) -> np.ndarray:
        """In-neighbour ids of ``v`` as a numpy view."""
        self._check_vertex(v)
        return self._rindices[self._rindptr[v] : self._rindptr[v + 1]]

    def in_weights(self, v: int) -> np.ndarray:
        """Weights of the in-edges of ``v``, aligned with :meth:`in_neighbors`."""
        self._check_vertex(v)
        return self._rweights[self._rindptr[v] : self._rindptr[v + 1]]

    def out_degree(self, v: int) -> int:
        """Number of out-edges of ``v``."""
        self._check_vertex(v)
        return int(self._indptr[v + 1] - self._indptr[v])

    def in_degree(self, v: int) -> int:
        """Number of in-edges of ``v``."""
        self._check_vertex(v)
        return int(self._rindptr[v + 1] - self._rindptr[v])

    def out_degrees(self) -> np.ndarray:
        """Vector of out-degrees for all vertices."""
        return np.diff(self._indptr)

    def in_degrees(self) -> np.ndarray:
        """Vector of in-degrees for all vertices."""
        return np.diff(self._rindptr)

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the directed edge ``u -> v`` exists."""
        self._check_vertex(u)
        self._check_vertex(v)
        return bool(np.any(self.out_neighbors(u) == v))

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of edge ``u -> v``; raises :class:`GraphError` if absent.

        If parallel edges exist, the smallest weight is returned (consistent
        with shortest-path semantics).
        """
        neigh = self.out_neighbors(u)
        mask = neigh == v
        if not np.any(mask):
            raise GraphError(f"edge {u}->{v} does not exist")
        return float(self.out_weights(u)[mask].min())

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        """Iterate all edges as ``(u, v, weight)`` triples."""
        for u in range(self.num_vertices):
            lo, hi = self._indptr[u], self._indptr[u + 1]
            for i in range(lo, hi):
                yield u, int(self._indices[i]), float(self._weights[i])

    def edge_array(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(sources, targets, weights)`` arrays of all edges."""
        sources = np.repeat(
            np.arange(self.num_vertices, dtype=np.int64), np.diff(self._indptr)
        )
        return sources, self._indices.copy(), self._weights.copy()

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def tagged_vertices(self) -> np.ndarray:
        """Ids of vertices with a point-of-interest tag."""
        if self._tags is None:
            return np.empty(0, dtype=np.int64)
        return np.flatnonzero(self._tags)

    def euclidean(self, u: int, v: int) -> float:
        """Euclidean distance between the coordinates of two vertices."""
        if self._coords is None:
            raise GraphError("graph has no coordinates")
        self._check_vertex(u)
        self._check_vertex(v)
        return float(np.linalg.norm(self._coords[u] - self._coords[v]))

    def subgraph_edge_count(self, vertex_set: Sequence[int]) -> int:
        """Number of edges with both endpoints inside ``vertex_set``."""
        members = np.zeros(self.num_vertices, dtype=bool)
        members[np.asarray(list(vertex_set), dtype=np.int64)] = True
        sources, targets, _ = self.edge_array()
        return int(np.count_nonzero(members[sources] & members[targets]))

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DiGraph(name={self.name!r}, n={self.num_vertices}, "
            f"m={self.num_edges}, coords={self.has_coords()}, tags={self.has_tags()})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        same_structure = (
            np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._indices, other._indices)
            and np.allclose(self._weights, other._weights)
        )
        if not same_structure:
            return False
        if (self._coords is None) != (other._coords is None):
            return False
        if self._coords is not None and not np.allclose(self._coords, other._coords):
            return False
        if (self._tags is None) != (other._tags is None):
            return False
        if self._tags is not None and not np.array_equal(self._tags, other._tags):
            return False
        return True

    def __hash__(self) -> int:  # graphs are mutable-free; identity hash is fine
        return id(self)
