"""Streaming topology mutation: delta buffers over the CSR graph.

The reproduction's :class:`~repro.graph.digraph.DiGraph` is immutable — the
right call for the steady-state hot path, where the kernels want stable CSR
buffers, but it closes off the *graph-churn* scenario axis of continuous
multi-query processing over graph streams (road closures, new road segments,
traffic-induced weight changes, junction churn).

This module adds mutation as a layer on top of the CSR substrate instead of
rewriting it:

:class:`GraphDelta`
    A batched buffer of topology mutations — edge inserts, edge deletes,
    weight updates, vertex additions (:class:`NewVertexSpec`) and vertex
    removals.  Deltas are plain data: workload generators build them against
    the initial topology and the engine applies them later, so application
    is *tolerant* — deleting an edge a previous delta already removed, or
    wiring a new edge to a since-removed vertex, is counted and skipped, not
    an error (exactly like a road authority's change feed).

:class:`MutableDiGraph`
    A :class:`DiGraph` subclass with a pending-delta buffer and a periodic
    CSR rebuild.  Mutations accumulate in the buffer; :meth:`~MutableDiGraph.flush`
    rebuilds the forward CSR (in the same ``(src, dst)`` lexicographic order
    :class:`~repro.graph.builder.GraphBuilder` produces, so a rebuilt graph
    is array-for-array identical to fresh construction from the same edge
    list), rebuilds the reverse CSR, and invalidates the cached
    :meth:`~repro.graph.digraph.DiGraph.csr` / ``csr_in`` views the kernels
    and batched partitioners hold.  Reads always reflect the last flush.

Vertex removal is by *tombstone*: the id space ``0 .. n-1`` stays dense
(everything downstream — assignment arrays, kernel state buffers, scope
stores — indexes by vertex id), the vertex keeps its slot but loses all
incident edges and is marked dead in :attr:`MutableDiGraph.dead_mask`.
Vertex addition appends fresh ids at the end; callers that hold per-vertex
dense state (the engine's assignment, the kernels' distance buffers) grow
their arrays when :meth:`MutableDiGraph.flush` reports growth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.builder import csr_arrays_from_edges
from repro.graph.digraph import DiGraph

__all__ = ["NewVertexSpec", "GraphDelta", "DeltaResult", "MutableDiGraph", "fresh_rebuild"]


@dataclass(frozen=True)
class NewVertexSpec:
    """One vertex to be added, with its initial incident edges.

    The new id is assigned at application time (``n`` at that moment), so
    specs compose across deltas generated up front.  ``edges`` reference
    *existing* vertex ids; edges to since-removed endpoints are skipped.
    """

    x: Optional[float] = None
    y: Optional[float] = None
    tag: bool = False
    #: ``(neighbor, weight)`` pairs; added bidirectionally when
    #: ``bidirectional`` (road segments are two-way)
    edges: Tuple[Tuple[int, float], ...] = ()
    bidirectional: bool = True


@dataclass
class GraphDelta:
    """A batch of topology mutations, applied atomically by one flush."""

    #: ``(u, v, weight)`` directed edges to insert
    insert_edges: List[Tuple[int, int, float]] = field(default_factory=list)
    #: ``(u, v)`` pairs to delete (all parallel ``u -> v`` edges)
    delete_edges: List[Tuple[int, int]] = field(default_factory=list)
    #: ``(u, v, weight)`` — set the weight of all ``u -> v`` edges
    update_weights: List[Tuple[int, int, float]] = field(default_factory=list)
    #: vertices to append (ids assigned at application time)
    new_vertices: List[NewVertexSpec] = field(default_factory=list)
    #: vertex ids to tombstone (incident edges dropped, slot kept)
    remove_vertices: List[int] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(
            self.insert_edges
            or self.delete_edges
            or self.update_weights
            or self.new_vertices
            or self.remove_vertices
        )

    @property
    def num_mutations(self) -> int:
        return (
            len(self.insert_edges)
            + len(self.delete_edges)
            + len(self.update_weights)
            + len(self.new_vertices)
            + len(self.remove_vertices)
        )

    def merge(self, other: "GraphDelta") -> None:
        """Append another delta's mutations (application order preserved)."""
        self.insert_edges.extend(other.insert_edges)
        self.delete_edges.extend(other.delete_edges)
        self.update_weights.extend(other.update_weights)
        self.new_vertices.extend(other.new_vertices)
        self.remove_vertices.extend(other.remove_vertices)


@dataclass(frozen=True)
class DeltaResult:
    """What one flush actually changed (after tolerance filtering)."""

    #: id of the first appended vertex (``None`` when none were added)
    first_new_vertex: Optional[int] = None
    added_vertices: int = 0
    #: ids newly tombstoned by this flush
    removed_vertices: Tuple[int, ...] = ()
    inserted_edges: int = 0
    deleted_edges: int = 0
    updated_weights: int = 0
    #: mutations skipped by tolerance (absent edges, dead endpoints, ...)
    skipped: int = 0

    def __bool__(self) -> bool:
        return bool(
            self.added_vertices
            or self.removed_vertices
            or self.inserted_edges
            or self.deleted_edges
            or self.updated_weights
        )


class MutableDiGraph(DiGraph):
    """A CSR graph with buffered mutations and periodic rebuilds.

    Mutation methods append to a pending :class:`GraphDelta`;
    :meth:`flush` applies the buffer in one vectorized rebuild.  The cached
    ``csr()`` / ``csr_in()`` views are invalidated on every rebuild (this is
    the mutating subclass :meth:`DiGraph._invalidate_csr` anticipated), so
    kernel iterations dispatched after a flush see the new topology while
    borrowed views from before the flush keep referencing the old arrays —
    never a torn state.

    ``auto_flush_threshold`` bounds the buffer: exceeding it triggers a
    flush on the next mutation, so interactive use cannot accumulate an
    unbounded delta.  The engine flushes explicitly at every
    ``graph_update`` event (one event = one churn epoch).
    """

    __slots__ = ("_pending", "_dead", "auto_flush_threshold", "churn_epochs")

    def __init__(self, *args, auto_flush_threshold: int = 100_000, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._pending = GraphDelta()
        self._dead = np.zeros(self.num_vertices, dtype=bool)
        self.auto_flush_threshold = int(auto_flush_threshold)
        #: completed flushes that changed anything
        self.churn_epochs = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_digraph(
        cls, graph: DiGraph, auto_flush_threshold: int = 100_000
    ) -> "MutableDiGraph":
        """A mutable deep copy of an (immutable) graph.

        Copies the CSR arrays so mutating never corrupts the source — the
        harness's road networks are cached and shared across scenarios.
        """
        coords = graph.coords.copy() if graph.coords is not None else None
        tags = graph.tags.copy() if graph.tags is not None else None
        out = cls(
            graph.indptr.copy(),
            graph.indices.copy(),
            graph.weights.copy(),
            coords=coords,
            tags=tags,
            name=graph.name,
            auto_flush_threshold=auto_flush_threshold,
        )
        if isinstance(graph, MutableDiGraph):
            out._dead = graph.dead_mask.copy()
            # buffered-but-unflushed mutations are part of the source's
            # logical state; the entries are immutable tuples/specs, so
            # extending a fresh delta with them is a safe deep-enough copy
            out._pending.merge(graph._pending)
        return out

    # ------------------------------------------------------------------
    # mutation buffer
    # ------------------------------------------------------------------
    @property
    def dead_mask(self) -> np.ndarray:
        """Boolean tombstone mask (read-only view; reflects the last flush)."""
        return self._dead

    @property
    def num_live_vertices(self) -> int:
        return int(self.num_vertices - np.count_nonzero(self._dead))

    @property
    def pending_mutations(self) -> int:
        return self._pending.num_mutations

    def _maybe_auto_flush(self) -> None:
        if self._pending.num_mutations >= self.auto_flush_threshold:
            self.flush()

    def insert_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Buffer a directed edge insertion."""
        if weight < 0:
            raise GraphError("negative edge weights are not supported")
        self._pending.insert_edges.append((int(u), int(v), float(weight)))
        self._maybe_auto_flush()

    def delete_edge(self, u: int, v: int) -> None:
        """Buffer the deletion of all parallel ``u -> v`` edges."""
        self._pending.delete_edges.append((int(u), int(v)))
        self._maybe_auto_flush()

    def update_weight(self, u: int, v: int, weight: float) -> None:
        """Buffer a weight change for all parallel ``u -> v`` edges."""
        if weight < 0:
            raise GraphError("negative edge weights are not supported")
        self._pending.update_weights.append((int(u), int(v), float(weight)))
        self._maybe_auto_flush()

    def add_vertex(self, spec: NewVertexSpec) -> None:
        """Buffer a vertex addition (id assigned at the next flush)."""
        self._pending.new_vertices.append(spec)
        self._maybe_auto_flush()

    def remove_vertex(self, v: int) -> None:
        """Buffer a vertex tombstone (drops all incident edges at flush)."""
        self._pending.remove_vertices.append(int(v))
        self._maybe_auto_flush()

    def buffer_delta(self, delta: GraphDelta) -> None:
        """Merge a whole delta into the pending buffer (no flush)."""
        self._pending.merge(delta)
        self._maybe_auto_flush()

    def apply_delta(self, delta: GraphDelta) -> DeltaResult:
        """Buffer ``delta`` and flush immediately (one churn epoch)."""
        self._pending.merge(delta)
        return self.flush()

    # ------------------------------------------------------------------
    # the rebuild
    # ------------------------------------------------------------------
    def flush(self) -> DeltaResult:
        """Apply the pending buffer in one vectorized CSR rebuild.

        Ordering matters only between conflicting mutations on the same
        edge; the application order within one flush is: weight updates,
        deletions, vertex removals, then insertions / vertex additions (a
        delta that deletes and re-inserts the same edge ends up with the
        edge present).
        """
        delta = self._pending
        self._pending = GraphDelta()
        if not delta:
            return DeltaResult()

        # negative weights violate the graph invariant everywhere else
        # (constructor, builder, the buffering mutation methods) — a delta
        # carrying one is a programming error, not a change-feed conflict,
        # so reject it up front before any state is touched
        negative = (
            any(wt < 0 for _u, _v, wt in delta.update_weights)
            or any(wt < 0 for _u, _v, wt in delta.insert_edges)
            or any(
                wt < 0 for spec in delta.new_vertices for _n, wt in spec.edges
            )
        )
        if negative:
            raise GraphError("negative edge weights are not supported")

        old_n = self.num_vertices
        src, dst, w = self.edge_array()
        skipped = 0

        # --- weight updates: match encoded (u, v) keys against the edges
        updated = 0
        if delta.update_weights:
            uu, uv, uw = _edge_triples(delta.update_weights)
            valid = _endpoints_alive(uu, uv, old_n, self._dead)
            skipped += int(np.count_nonzero(~valid))
            uu, uv, uw = uu[valid], uv[valid], uw[valid]
            if uu.size:
                keys = src * old_n + dst
                want = uu * old_n + uv
                order = np.argsort(keys, kind="stable")
                sorted_keys = keys[order]
                # applied in delta order: the last update to the same (u, v)
                # within one flush wins
                for i in range(uu.size):
                    lo = np.searchsorted(sorted_keys, want[i], side="left")
                    hi = np.searchsorted(sorted_keys, want[i], side="right")
                    if lo == hi:
                        skipped += 1
                        continue
                    w[order[lo:hi]] = uw[i]
                    updated += int(hi - lo)

        # --- deletions (edges, then whole vertices)
        keep = np.ones(src.size, dtype=bool)
        deleted = 0
        if delta.delete_edges:
            du = np.asarray([u for u, _v in delta.delete_edges], dtype=np.int64)
            dv = np.asarray([v for _u, v in delta.delete_edges], dtype=np.int64)
            valid = (du >= 0) & (du < old_n) & (dv >= 0) & (dv < old_n)
            skipped += int(np.count_nonzero(~valid))
            du, dv = du[valid], dv[valid]
            if du.size:
                keys = src * old_n + dst
                want = np.unique(du * old_n + dv)
                hit = np.isin(keys, want)
                deleted += int(np.count_nonzero(hit & keep))
                # deletions of already-absent edges are tolerated silently
                # (counted per requested pair, not per matched edge)
                present = np.isin(want, keys)
                skipped += int(np.count_nonzero(~present))
                keep &= ~hit

        newly_dead: Tuple[int, ...] = ()
        if delta.remove_vertices:
            rv = np.unique(np.asarray(delta.remove_vertices, dtype=np.int64))
            valid = (rv >= 0) & (rv < old_n) & ~self._dead[rv]
            skipped += int(np.count_nonzero(~valid))
            rv = rv[valid]
            if rv.size:
                dead = self._dead.copy()
                dead[rv] = True
                incident = dead[src] | dead[dst]
                deleted += int(np.count_nonzero(incident & keep))
                keep &= ~incident
                self._dead = dead
                newly_dead = tuple(int(v) for v in rv)

        if not keep.all():
            src, dst, w = src[keep], dst[keep], w[keep]

        # --- vertex additions: assign ids, extend coords/tags/dead mask
        first_new: Optional[int] = None
        added = 0
        pending_edges: List[Tuple[int, int, float]] = list(delta.insert_edges)
        if delta.new_vertices:
            first_new = old_n
            added = len(delta.new_vertices)
            has_coords = self._coords is not None
            new_coords = np.zeros((added, 2), dtype=np.float64)
            new_tags = np.zeros(added, dtype=bool)
            for i, spec in enumerate(delta.new_vertices):
                vid = old_n + i
                if has_coords:
                    new_coords[i, 0] = spec.x if spec.x is not None else 0.0
                    new_coords[i, 1] = spec.y if spec.y is not None else 0.0
                new_tags[i] = spec.tag
                for neighbor, weight in spec.edges:
                    pending_edges.append((vid, int(neighbor), float(weight)))
                    if spec.bidirectional:
                        pending_edges.append((int(neighbor), vid, float(weight)))
            if has_coords:
                self._coords = np.vstack([self._coords, new_coords])
            if self._tags is not None:
                self._tags = np.concatenate([self._tags, new_tags])
            elif new_tags.any():
                tags = np.zeros(old_n + added, dtype=bool)
                tags[old_n:] = new_tags
                self._tags = tags
            self._dead = np.concatenate([self._dead, np.zeros(added, dtype=bool)])

        n = old_n + added

        # --- insertions (tolerant of dead / out-of-range endpoints)
        inserted = 0
        if pending_edges:
            iu, iv, iw = _edge_triples(pending_edges)
            valid = _endpoints_alive(iu, iv, n, self._dead)
            skipped += int(np.count_nonzero(~valid))
            iu, iv, iw = iu[valid], iv[valid], iw[valid]
            inserted = int(iu.size)
            if inserted:
                src = np.concatenate([src, iu])
                dst = np.concatenate([dst, iv])
                w = np.concatenate([w, iw])

        # --- CSR rebuild through the shared canonical construction, so the
        # result is array-for-array identical to fresh construction
        self._indptr, self._indices, self._weights = csr_arrays_from_edges(
            src, dst, w, n
        )
        self._invalidate_csr()
        self._rindptr, self._rindices, self._rweights = self._build_reverse()

        result = DeltaResult(
            first_new_vertex=first_new,
            added_vertices=added,
            removed_vertices=newly_dead,
            inserted_edges=inserted,
            deleted_edges=deleted,
            updated_weights=updated,
            skipped=skipped,
        )
        if result:
            self.churn_epochs += 1
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MutableDiGraph(name={self.name!r}, n={self.num_vertices}, "
            f"m={self.num_edges}, dead={int(np.count_nonzero(self._dead))}, "
            f"pending={self.pending_mutations})"
        )


def _edge_triples(
    triples: List[Tuple[int, int, float]]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    u = np.asarray([t[0] for t in triples], dtype=np.int64)
    v = np.asarray([t[1] for t in triples], dtype=np.int64)
    w = np.asarray([t[2] for t in triples], dtype=np.float64)
    return u, v, w


def _endpoints_alive(
    u: np.ndarray, v: np.ndarray, n: int, dead: np.ndarray
) -> np.ndarray:
    """Mask of edges whose endpoints are in range and not tombstoned."""
    valid = (u >= 0) & (u < n) & (v >= 0) & (v < n)
    alive = valid.copy()
    if dead.size:
        inb = valid
        alive[inb] &= ~(dead[u[inb]] | dead[v[inb]])
    return alive


def fresh_rebuild(graph: DiGraph) -> DiGraph:
    """An immutable :class:`DiGraph` built fresh from ``graph``'s edge list.

    Uses the same array pipeline as :class:`~repro.graph.builder.GraphBuilder`
    (lexsort by ``(src, dst)``); the churn-equivalence tests assert a
    flushed :class:`MutableDiGraph` matches this array-for-array.
    """
    src, dst, w = graph.edge_array()
    n = graph.num_vertices
    indptr, dst, w = csr_arrays_from_edges(src, dst, w, n)
    coords = graph.coords.copy() if graph.coords is not None else None
    tags = graph.tags.copy() if graph.tags is not None else None
    return DiGraph(indptr, dst, w, coords=coords, tags=tags, name=graph.name)
