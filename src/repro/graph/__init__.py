"""Graph substrate: CSR storage, builders, IO, generators, metrics."""

from repro.graph.builder import GraphBuilder, csr_arrays_from_edges
from repro.graph.delta import (
    DeltaResult,
    GraphDelta,
    MutableDiGraph,
    NewVertexSpec,
    fresh_rebuild,
)
from repro.graph.digraph import CSRView, DiGraph
from repro.graph.generators import (
    NY_CUTS,
    NY_DISTRICT_NAMES,
    NY_QUERY_SCOPES,
    barabasi_albert,
    erdos_renyi,
    grid_graph,
    new_york_districts,
    random_geometric,
    rmat_graph,
    watts_strogatz,
)
from repro.graph.io import load_edge_list, load_npz, save_edge_list, save_npz
from repro.graph.metrics import (
    edge_balance,
    edge_cut,
    partition_sizes,
    replication_factor,
    vertex_balance,
    vertex_cut,
)
from repro.graph.road_network import (
    City,
    RoadNetwork,
    baden_wuerttemberg_like,
    generate_road_network,
    germany_like,
)

__all__ = [
    "DiGraph",
    "CSRView",
    "GraphBuilder",
    "csr_arrays_from_edges",
    "GraphDelta",
    "DeltaResult",
    "MutableDiGraph",
    "NewVertexSpec",
    "fresh_rebuild",
    "new_york_districts",
    "NY_CUTS",
    "NY_DISTRICT_NAMES",
    "NY_QUERY_SCOPES",
    "grid_graph",
    "erdos_renyi",
    "random_geometric",
    "watts_strogatz",
    "barabasi_albert",
    "load_edge_list",
    "save_edge_list",
    "load_npz",
    "save_npz",
    "edge_cut",
    "vertex_cut",
    "vertex_balance",
    "edge_balance",
    "partition_sizes",
    "replication_factor",
    "City",
    "RoadNetwork",
    "generate_road_network",
    "baden_wuerttemberg_like",
    "germany_like",
]
