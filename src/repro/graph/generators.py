"""Synthetic graph generators.

Everything here is implemented from scratch on top of
:class:`~repro.graph.builder.GraphBuilder` with seeded ``numpy`` RNG streams so
that every experiment is reproducible bit-for-bit.

The generators cover the three application domains from the paper's
introduction:

* road networks (Application 1) live in :mod:`repro.graph.road_network`;
* social networks with high clustering coefficient (Application 2) —
  :func:`watts_strogatz`;
* knowledge graphs with popularity hubs (Application 3) —
  :func:`barabasi_albert`.

Additionally :func:`new_york_districts` reconstructs the 10-vertex district
neighbourhood multigraph of the paper's Figure 1, with highway multiplicities
chosen such that the three cuts discussed in §2 have exactly the edge-cut
sizes 6, 8 and 2 reported in the figure.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraph

__all__ = [
    "new_york_districts",
    "NY_DISTRICT_NAMES",
    "NY_CUTS",
    "NY_QUERY_SCOPES",
    "grid_graph",
    "erdos_renyi",
    "random_geometric",
    "watts_strogatz",
    "barabasi_albert",
    "rmat_graph",
]


#: District index -> name, matching the legend of Figure 1 (0-based ids).
NY_DISTRICT_NAMES: Dict[int, str] = {
    0: "Western NY",
    1: "Finger Lakes",
    2: "Southern Tier",
    3: "Central NY",
    4: "North Country",
    5: "Mohawk Valley",
    6: "Capital District",
    7: "Hudson Valley",
    8: "NYC",
    9: "Long Island",
}

#: The three cuts of Figure 1, given as the vertex set of one side.
NY_CUTS: Dict[str, frozenset] = {
    # cut 1 separates the western districts; edge-cut 6, no query split
    "cut1": frozenset({0, 1, 2}),
    # cut 2 separates west+north from east; edge-cut 8, no query split
    "cut2": frozenset({0, 1, 2, 3, 4}),
    # cut 3 separates NYC + Long Island; edge-cut 2 but splits query q2
    "cut3": frozenset({8, 9}),
}

#: The two localized queries drawn in Figure 1 (their global scopes).
NY_QUERY_SCOPES: Dict[str, frozenset] = {
    "q1": frozenset({0, 1, 2}),  # upstate query
    "q2": frozenset({7, 8, 9}),  # Hudson Valley / NYC / Long Island query
}

# (u, v, multiplicity): number of parallel highway connections between
# adjacent districts.  Multiplicities are calibrated so that the cuts above
# have edge-cut sizes 6 / 8 / 2 exactly as printed in Figure 1.
_NY_ADJACENCY: List[Tuple[int, int, int]] = [
    (0, 1, 2),  # Western NY - Finger Lakes
    (0, 2, 1),  # Western NY - Southern Tier
    (1, 2, 1),  # Finger Lakes - Southern Tier
    (1, 3, 2),  # Finger Lakes - Central NY        (crosses cut 1)
    (2, 3, 2),  # Southern Tier - Central NY       (crosses cut 1)
    (2, 5, 2),  # Southern Tier - Mohawk Valley    (crosses cuts 1 and 2)
    (3, 4, 2),  # Central NY - North Country
    (3, 5, 3),  # Central NY - Mohawk Valley       (crosses cut 2)
    (4, 5, 2),  # North Country - Mohawk Valley    (crosses cut 2)
    (3, 6, 1),  # Central NY - Capital District    (crosses cut 2)
    (5, 6, 2),  # Mohawk Valley - Capital District
    (6, 7, 2),  # Capital District - Hudson Valley
    (7, 8, 1),  # Hudson Valley - NYC              (crosses cut 3)
    (7, 9, 1),  # Hudson Valley - Long Island      (crosses cut 3)
    (8, 9, 1),  # NYC - Long Island
]

# Rough planar positions for plotting / Domain partitioning demos.
_NY_COORDS: List[Tuple[float, float]] = [
    (0.5, 2.6),  # Western NY
    (1.6, 2.7),  # Finger Lakes
    (1.6, 1.7),  # Southern Tier
    (2.7, 2.8),  # Central NY
    (3.4, 4.0),  # North Country
    (3.6, 2.8),  # Mohawk Valley
    (4.6, 2.8),  # Capital District
    (4.6, 1.6),  # Hudson Valley
    (4.4, 0.6),  # NYC
    (5.4, 0.5),  # Long Island
]


def new_york_districts() -> DiGraph:
    """The Figure 1 district neighbourhood graph of New York state.

    Edges are bidirectional with unit weight; parallel edges model multiple
    highway connections between adjacent districts so that the edge-cut sizes
    of the figure's three cuts are reproduced exactly
    (``cut1 -> 6``, ``cut2 -> 8``, ``cut3 -> 2`` crossing connections,
    counting each undirected connection once).
    """
    builder = GraphBuilder(10)
    for u, v, multiplicity in _NY_ADJACENCY:
        for _ in range(multiplicity):
            builder.add_bidirectional_edge(u, v, 1.0)
    for v, (x, y) in enumerate(_NY_COORDS):
        builder.set_coord(v, x, y)
    return builder.build(name="new-york-districts")


def grid_graph(rows: int, cols: int, weight: float = 1.0) -> DiGraph:
    """A ``rows x cols`` 4-neighbour grid with bidirectional unit edges."""
    if rows <= 0 or cols <= 0:
        raise GraphError("grid dimensions must be positive")
    builder = GraphBuilder(rows * cols)
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            builder.set_coord(v, float(c), float(r))
            if c + 1 < cols:
                builder.add_bidirectional_edge(v, v + 1, weight)
            if r + 1 < rows:
                builder.add_bidirectional_edge(v, v + cols, weight)
    return builder.build(name=f"grid-{rows}x{cols}")


def erdos_renyi(n: int, p: float, seed: int = 0, weight: float = 1.0) -> DiGraph:
    """G(n, p) random directed graph (both directions sampled independently)."""
    if not 0.0 <= p <= 1.0:
        raise GraphError("p must be in [0, 1]")
    rng = np.random.default_rng(seed)
    builder = GraphBuilder(n)
    # Vectorised sampling of the adjacency matrix upper/lower triangles would
    # need O(n^2) memory for large n; sample per-row instead.
    for u in range(n):
        draws = rng.random(n)
        targets = np.flatnonzero(draws < p)
        for v in targets:
            if v != u:
                builder.add_edge(u, int(v), weight)
    return builder.build(name=f"er-{n}-{p}")


def random_geometric(
    n: int, radius: float, seed: int = 0, box: float = 1.0
) -> DiGraph:
    """Random geometric graph: vertices uniform in a box, edges within radius.

    Edge weights are the Euclidean distances, making the graph a reasonable
    unit-disk stand-in for ad-hoc spatial networks.
    """
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 2)) * box
    builder = GraphBuilder(n)
    for v in range(n):
        builder.set_coord(v, pts[v, 0], pts[v, 1])
    # simple cell-grid spatial index to stay near O(n) for sparse radii
    cell = max(radius, 1e-12)
    grid: Dict[Tuple[int, int], List[int]] = {}
    for v in range(n):
        key = (int(pts[v, 0] / cell), int(pts[v, 1] / cell))
        grid.setdefault(key, []).append(v)
    for v in range(n):
        cx, cy = int(pts[v, 0] / cell), int(pts[v, 1] / cell)
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for u in grid.get((cx + dx, cy + dy), ()):
                    if u <= v:
                        continue
                    d = float(np.linalg.norm(pts[u] - pts[v]))
                    if d <= radius:
                        builder.add_bidirectional_edge(v, u, d)
    return builder.build(name=f"rgg-{n}")


def watts_strogatz(
    n: int, k: int, beta: float, seed: int = 0, weight: float = 1.0
) -> DiGraph:
    """Watts–Strogatz small-world graph [40 in the paper].

    High clustering coefficient with short average path length — the paper
    cites exactly this model to justify overlapping social circles
    (Application 2).  ``k`` must be even; each vertex connects to its ``k``
    ring neighbours and each edge is rewired with probability ``beta``.
    """
    if k % 2 != 0 or k <= 0:
        raise GraphError("k must be positive and even")
    if not 0.0 <= beta <= 1.0:
        raise GraphError("beta must be in [0, 1]")
    if k >= n:
        raise GraphError("k must be smaller than n")
    rng = np.random.default_rng(seed)
    edges = set()
    for v in range(n):
        for j in range(1, k // 2 + 1):
            u = (v + j) % n
            edges.add((min(v, u), max(v, u)))
    rewired = set()
    for (u, v) in sorted(edges):
        if rng.random() < beta:
            w = int(rng.integers(0, n))
            attempts = 0
            while (w == u or (min(u, w), max(u, w)) in edges
                   or (min(u, w), max(u, w)) in rewired) and attempts < 32:
                w = int(rng.integers(0, n))
                attempts += 1
            if attempts < 32:
                rewired.add((min(u, w), max(u, w)))
                continue
        rewired.add((u, v))
    builder = GraphBuilder(n)
    angles = np.linspace(0.0, 2.0 * np.pi, n, endpoint=False)
    for v in range(n):
        builder.set_coord(v, float(np.cos(angles[v])), float(np.sin(angles[v])))
    for (u, v) in sorted(rewired):
        builder.add_bidirectional_edge(u, v, weight)
    return builder.build(name=f"ws-{n}-{k}-{beta}")


def barabasi_albert(n: int, m: int, seed: int = 0, weight: float = 1.0) -> DiGraph:
    """Barabási–Albert preferential attachment graph.

    Produces the skewed degree distribution with hub vertices that the paper
    associates with knowledge-graph popularity hotspots (Application 3) and
    the future-work web-graph scenario (§6).
    """
    if m < 1 or m >= n:
        raise GraphError("need 1 <= m < n")
    rng = np.random.default_rng(seed)
    targets_pool: List[int] = list(range(m))  # seed clique endpoints
    edges: List[Tuple[int, int]] = []
    repeated: List[int] = list(range(m))
    for v in range(m, n):
        chosen = set()
        while len(chosen) < m:
            pick = repeated[int(rng.integers(0, len(repeated)))]
            if pick != v:
                chosen.add(pick)
        for u in chosen:
            edges.append((v, u))
            repeated.append(u)
            repeated.append(v)
    builder = GraphBuilder(n)
    for (u, v) in edges:
        builder.add_bidirectional_edge(u, v, weight)
    del targets_pool
    return builder.build(name=f"ba-{n}-{m}")


def rmat_graph(
    n: int,
    edge_factor: int = 8,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    weight_range: Tuple[float, float] = (1.0, 2.0),
) -> DiGraph:
    """Recursive-matrix (R-MAT, Graph500-style) power-law random graph.

    Samples ``n * edge_factor`` directed edges by recursively descending the
    adjacency matrix with quadrant probabilities ``(a, b, c, 1-a-b-c)``;
    endpoint bits beyond ``log2(n)`` are folded back with a modulo, so the
    graph has exactly ``n`` vertices for any ``n``.  Self-loops are dropped.
    Edge weights are uniform in ``weight_range`` (set both ends equal for an
    unweighted graph).  This is the scale-free workhorse for the kernel
    benchmarks — it stresses the frontier-vectorized iteration path with the
    skewed degree distribution of web/social graphs.
    """
    if n < 2:
        raise GraphError("rmat_graph needs n >= 2")
    if edge_factor < 1:
        raise GraphError("edge_factor must be >= 1")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0.0:
        raise GraphError("quadrant probabilities must be non-negative")
    rng = np.random.default_rng(seed)
    scale = int(np.ceil(np.log2(n)))
    m = int(n) * int(edge_factor)
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for _level in range(scale):
        u = rng.random(m)
        src_bit = u >= a + b
        dst_bit = ((u >= a) & (u < a + b)) | (u >= a + b + c)
        src = (src << 1) | src_bit
        dst = (dst << 1) | dst_bit
    src %= n
    dst %= n
    keep = src != dst
    src, dst = src[keep], dst[keep]
    lo, hi = weight_range
    weights = (
        np.full(src.size, float(lo))
        if lo == hi
        else rng.uniform(float(lo), float(hi), src.size)
    )
    order = np.lexsort((dst, src))
    src, dst, weights = src[order], dst[order], weights[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    indptr[1:] = np.cumsum(np.bincount(src, minlength=n))
    return DiGraph(indptr, dst, weights, name=f"rmat-{n}-{edge_factor}")
