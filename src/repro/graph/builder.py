"""Mutable builder producing immutable :class:`~repro.graph.digraph.DiGraph`.

The builder accumulates edges in simple Python lists (cheap appends) and
performs a single vectorised CSR conversion in :meth:`GraphBuilder.build`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.digraph import DiGraph

__all__ = ["GraphBuilder", "csr_arrays_from_edges"]


def csr_arrays_from_edges(
    src: np.ndarray, dst: np.ndarray, weights: np.ndarray, num_vertices: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Canonical CSR arrays from an edge list: ``(indptr, indices, weights)``.

    Edges are ordered by ``(src, dst)`` lexicographically.  This is *the*
    construction every CSR producer shares (:meth:`GraphBuilder.build`, the
    churn layer's :meth:`~repro.graph.delta.MutableDiGraph.flush` rebuild
    and its :func:`~repro.graph.delta.fresh_rebuild` oracle), so a rebuilt
    graph is array-for-array identical to fresh construction by design
    rather than by parallel-maintained copies.
    """
    n = int(num_vertices)
    order = np.lexsort((dst, src)) if src.size else np.empty(0, dtype=np.int64)
    src, dst, weights = src[order], dst[order], weights[order]
    indptr = np.zeros(n + 1, dtype=np.int64)
    if src.size:
        indptr[1:] = np.cumsum(np.bincount(src, minlength=n))
    return indptr, dst, weights


class GraphBuilder:
    """Incrementally assemble a directed weighted graph.

    Parameters
    ----------
    num_vertices:
        Number of vertices; may be grown later with :meth:`add_vertices`.

    Examples
    --------
    >>> b = GraphBuilder(3)
    >>> b.add_edge(0, 1, 2.0)
    >>> b.add_edge(1, 2, 1.5)
    >>> g = b.build(name="tiny")
    >>> g.num_edges
    2
    """

    def __init__(self, num_vertices: int = 0) -> None:
        if num_vertices < 0:
            raise GraphError("num_vertices must be non-negative")
        self._n = int(num_vertices)
        self._src: List[int] = []
        self._dst: List[int] = []
        self._w: List[float] = []
        self._coords: Dict[int, Tuple[float, float]] = {}
        self._tags: Dict[int, bool] = {}

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Current number of vertices."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of edges added so far."""
        return len(self._src)

    def add_vertices(self, count: int) -> int:
        """Append ``count`` fresh vertices; returns the id of the first one."""
        if count < 0:
            raise GraphError("count must be non-negative")
        first = self._n
        self._n += count
        return first

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add the directed edge ``u -> v``."""
        if not (0 <= u < self._n and 0 <= v < self._n):
            raise GraphError(f"edge ({u}, {v}) references unknown vertex")
        if weight < 0:
            raise GraphError("negative edge weights are not supported")
        self._src.append(int(u))
        self._dst.append(int(v))
        self._w.append(float(weight))

    def add_bidirectional_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add both ``u -> v`` and ``v -> u`` (road segments are two-way)."""
        self.add_edge(u, v, weight)
        self.add_edge(v, u, weight)

    def add_edges(self, edges: Iterable[Tuple[int, int, float]]) -> None:
        """Add many ``(u, v, weight)`` triples."""
        for u, v, w in edges:
            self.add_edge(u, v, w)

    def set_coord(self, v: int, x: float, y: float) -> None:
        """Attach a planar coordinate to vertex ``v``."""
        if not 0 <= v < self._n:
            raise GraphError(f"vertex {v} out of range")
        self._coords[v] = (float(x), float(y))

    def set_tag(self, v: int, tagged: bool = True) -> None:
        """Mark vertex ``v`` as a point of interest."""
        if not 0 <= v < self._n:
            raise GraphError(f"vertex {v} out of range")
        self._tags[v] = bool(tagged)

    # ------------------------------------------------------------------
    def build(self, name: str = "graph", deduplicate: bool = False) -> DiGraph:
        """Produce the immutable CSR graph.

        Parameters
        ----------
        name:
            Human-readable graph name carried on the result.
        deduplicate:
            When True, parallel edges ``(u, v)`` are merged keeping the
            minimum weight (shortest-path semantics).
        """
        n = self._n
        src = np.asarray(self._src, dtype=np.int64)
        dst = np.asarray(self._dst, dtype=np.int64)
        w = np.asarray(self._w, dtype=np.float64)

        if deduplicate and src.size:
            # Sort by (src, dst, weight) so the first of each (src, dst) group
            # carries the minimum weight, then drop the rest of the group.
            order = np.lexsort((w, dst, src))
            src, dst, w = src[order], dst[order], w[order]
            keep = np.ones(src.size, dtype=bool)
            keep[1:] = (src[1:] != src[:-1]) | (dst[1:] != dst[:-1])
            src, dst, w = src[keep], dst[keep], w[keep]

        indptr, dst, w = csr_arrays_from_edges(src, dst, w, n)

        coords: Optional[np.ndarray] = None
        if self._coords:
            coords = np.zeros((n, 2), dtype=np.float64)
            for v, (x, y) in self._coords.items():
                coords[v, 0] = x
                coords[v, 1] = y

        tags: Optional[np.ndarray] = None
        if self._tags:
            tags = np.zeros(n, dtype=bool)
            for v, t in self._tags.items():
                tags[v] = t

        return DiGraph(indptr, dst, w, coords=coords, tags=tags, name=name)
