"""Graph persistence.

Two formats are supported:

* a human-readable edge-list text format (``.txt``), compatible with the
  classic SNAP / METIS-ish conventions used by the paper's published data, and
* a binary ``.npz`` container that round-trips every attribute exactly.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraph

__all__ = [
    "save_edge_list",
    "load_edge_list",
    "save_npz",
    "load_npz",
]


def save_edge_list(graph: DiGraph, path: str) -> None:
    """Write ``u v weight`` lines, one directed edge per line.

    A header comment records the vertex count so isolated trailing vertices
    survive the round trip.
    """
    with open(path, "w", encoding="utf-8") as f:
        f.write(f"# repro-edge-list v1 n={graph.num_vertices} m={graph.num_edges}\n")
        for u, v, w in graph.edges():
            f.write(f"{u} {v} {w:.17g}\n")


def load_edge_list(path: str, name: Optional[str] = None) -> DiGraph:
    """Parse a file written by :func:`save_edge_list` (or any ``u v [w]`` list)."""
    if not os.path.exists(path):
        raise GraphFormatError(f"no such file: {path}")
    declared_n: Optional[int] = None
    edges = []
    max_vertex = -1
    with open(path, "r", encoding="utf-8") as f:
        for lineno, raw in enumerate(f, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                for token in line.split():
                    if token.startswith("n="):
                        try:
                            declared_n = int(token[2:])
                        except ValueError as exc:
                            raise GraphFormatError(
                                f"{path}:{lineno}: bad vertex count {token!r}"
                            ) from exc
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise GraphFormatError(
                    f"{path}:{lineno}: expected 'u v [weight]', got {line!r}"
                )
            try:
                u, v = int(parts[0]), int(parts[1])
                w = float(parts[2]) if len(parts) == 3 else 1.0
            except ValueError as exc:
                raise GraphFormatError(f"{path}:{lineno}: unparsable edge") from exc
            if u < 0 or v < 0:
                raise GraphFormatError(f"{path}:{lineno}: negative vertex id")
            edges.append((u, v, w))
            max_vertex = max(max_vertex, u, v)

    n = declared_n if declared_n is not None else max_vertex + 1
    if max_vertex >= n:
        raise GraphFormatError(
            f"{path}: header declares n={n} but vertex {max_vertex} appears"
        )
    builder = GraphBuilder(n)
    builder.add_edges(edges)
    return builder.build(name=name or os.path.basename(path))


def save_npz(graph: DiGraph, path: str) -> None:
    """Persist the full graph (structure + coords + tags) as a ``.npz``."""
    payload = {
        "indptr": graph.indptr,
        "indices": graph.indices,
        "weights": graph.weights,
        "name": np.array(graph.name),
    }
    if graph.has_coords():
        payload["coords"] = graph.coords
    if graph.has_tags():
        payload["tags"] = graph.tags
    np.savez_compressed(path, **payload)


def load_npz(path: str) -> DiGraph:
    """Load a graph written by :func:`save_npz`."""
    if not os.path.exists(path):
        raise GraphFormatError(f"no such file: {path}")
    try:
        with np.load(path, allow_pickle=False) as data:
            return DiGraph(
                data["indptr"],
                data["indices"],
                data["weights"],
                coords=data["coords"] if "coords" in data else None,
                tags=data["tags"] if "tags" in data else None,
                name=str(data["name"]) if "name" in data else os.path.basename(path),
            )
    except (KeyError, ValueError) as exc:
        raise GraphFormatError(f"{path}: corrupt graph container: {exc}") from exc
