"""Synthetic hierarchical road networks.

The paper evaluates on OpenStreetMap extracts of Baden-Wuerttemberg (BW,
1.8M vertices) and Germany (GY, 11.8M vertices) with edge weights equal to
segment length divided by speed limit (§4.1).  Those extracts are not
available offline, so this module generates *structurally equivalent*
networks at a configurable scale:

* a set of cities with Zipf-distributed populations placed in the plane
  (these become the query hotspots of §4.1);
* a dense urban street grid per city whose size is proportional to the
  city's population (urban streets, low speed limit);
* inter-city highways along a Delaunay triangulation of the city centres
  (sparse, high speed limit), discretised into highway segments; and
* point-of-interest tags assigned with a fixed per-vertex probability,
  mirroring the paper's gas-station tagging for the POI query.

The properties that the Q-cut evaluation depends on — near-planarity,
population-skewed hotspots, low-speed local streets vs. fast long-distance
corridors, and localized shortest-path scopes — are all preserved.  Edge
weights are travel times in minutes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraph

__all__ = [
    "City",
    "RoadNetwork",
    "generate_road_network",
    "baden_wuerttemberg_like",
    "germany_like",
]


@dataclass(frozen=True)
class City:
    """A query hotspot: an urban area with population-proportional size."""

    city_id: int
    center: Tuple[float, float]
    population: int
    vertex_ids: np.ndarray = field(repr=False)

    @property
    def num_vertices(self) -> int:
        return int(self.vertex_ids.size)


@dataclass
class RoadNetwork:
    """A generated road network plus the metadata the rest of the system needs.

    Attributes
    ----------
    graph:
        The CSR road graph with coordinates and POI tags.
    cities:
        City list ordered by descending population (rank order).
    city_of_vertex:
        Per-vertex city id, ``-1`` for highway vertices outside any city.
    """

    graph: DiGraph
    cities: List[City]
    city_of_vertex: np.ndarray

    @property
    def num_cities(self) -> int:
        return len(self.cities)

    def city_vertices(self, city_id: int) -> np.ndarray:
        """Vertex ids belonging to a city."""
        if not 0 <= city_id < len(self.cities):
            raise GraphError(f"unknown city {city_id}")
        return self.cities[city_id].vertex_ids

    def population_weights(self) -> np.ndarray:
        """Normalised population shares (used for hotspot query sampling)."""
        pops = np.array([c.population for c in self.cities], dtype=np.float64)
        return pops / pops.sum()

    def nearest_city(self, x: float, y: float) -> int:
        """Id of the city whose centre is closest to ``(x, y)``."""
        centers = np.array([c.center for c in self.cities])
        return int(np.argmin(np.hypot(centers[:, 0] - x, centers[:, 1] - y)))


def _zipf_populations(
    num_cities: int, total_population: int, exponent: float, rng: np.random.Generator
) -> np.ndarray:
    """Rank-based Zipf populations with small multiplicative noise."""
    ranks = np.arange(1, num_cities + 1, dtype=np.float64)
    shares = ranks ** (-exponent)
    noise = rng.uniform(0.85, 1.15, size=num_cities)
    shares = shares * noise
    shares /= shares.sum()
    pops = np.maximum((shares * total_population).astype(np.int64), 1000)
    return -np.sort(-pops)  # descending


def _place_city_centers(
    num_cities: int, region_size: float, rng: np.random.Generator
) -> np.ndarray:
    """Poisson-disk-ish rejection sampling of city centres."""
    min_sep = region_size / (2.2 * np.sqrt(num_cities))
    centers: List[Tuple[float, float]] = []
    attempts = 0
    margin = 0.08 * region_size
    while len(centers) < num_cities and attempts < 50000:
        attempts += 1
        x = rng.uniform(margin, region_size - margin)
        y = rng.uniform(margin, region_size - margin)
        ok = all((x - cx) ** 2 + (y - cy) ** 2 >= min_sep**2 for cx, cy in centers)
        if ok:
            centers.append((x, y))
    if len(centers) < num_cities:
        # fall back to jittered grid placement for the remainder
        side = int(np.ceil(np.sqrt(num_cities)))
        pitch = region_size / (side + 1)
        for gx in range(side):
            for gy in range(side):
                if len(centers) >= num_cities:
                    break
                centers.append(
                    (
                        pitch * (gx + 1) + rng.uniform(-0.2, 0.2) * pitch,
                        pitch * (gy + 1) + rng.uniform(-0.2, 0.2) * pitch,
                    )
                )
    return np.asarray(centers[:num_cities], dtype=np.float64)


def _urban_grid_offsets(count: int) -> np.ndarray:
    """The ``count`` integer grid offsets closest to the origin (a disk)."""
    radius = int(np.ceil(np.sqrt(count / np.pi))) + 2
    xs, ys = np.meshgrid(
        np.arange(-radius, radius + 1), np.arange(-radius, radius + 1)
    )
    offs = np.stack([xs.ravel(), ys.ravel()], axis=1)
    dist = np.hypot(offs[:, 0], offs[:, 1])
    order = np.lexsort((offs[:, 1], offs[:, 0], dist))
    return offs[order[:count]]


def _delaunay_edges(centers: np.ndarray) -> Set[Tuple[int, int]]:
    """Highway corridors between cities: Delaunay edges of the centres.

    Falls back to a chain plus nearest-neighbour links when scipy is not
    available or the point set is degenerate.
    """
    n = centers.shape[0]
    if n <= 1:
        return set()
    if n == 2:
        return {(0, 1)}
    try:
        from scipy.spatial import Delaunay  # local import keeps scipy optional

        tri = Delaunay(centers)
        edges: Set[Tuple[int, int]] = set()
        for simplex in tri.simplices:
            for a in range(3):
                u, v = int(simplex[a]), int(simplex[(a + 1) % 3])
                edges.add((min(u, v), max(u, v)))
        return edges
    except Exception:
        edges = set()
        order = np.argsort(centers[:, 0])
        for i in range(n - 1):
            edges.add(
                (min(int(order[i]), int(order[i + 1])),
                 max(int(order[i]), int(order[i + 1])))
            )
        for u in range(n):
            d = np.hypot(centers[:, 0] - centers[u, 0], centers[:, 1] - centers[u, 1])
            d[u] = np.inf
            v = int(np.argmin(d))
            edges.add((min(u, v), max(u, v)))
        return edges


def generate_road_network(
    num_cities: int,
    num_urban_vertices: int,
    seed: int = 0,
    region_size: float = 200.0,
    total_population: int = 10_000_000,
    zipf_exponent: float = 1.0,
    urban_spacing: float = 0.25,
    urban_speed: float = 50.0,
    highway_speed: float = 110.0,
    highway_spacing: float = 4.0,
    tag_probability: float = 1.0 / 800.0,
    diagonal_fraction: float = 0.15,
    name: str = "road-network",
) -> RoadNetwork:
    """Generate a hierarchical synthetic road network.

    Parameters
    ----------
    num_cities:
        Number of urban hotspots (16 for the BW-like preset, 64 for GY-like,
        matching §4.1's "16 biggest cities in BW" / "64 biggest cities in GY").
    num_urban_vertices:
        Total urban street-junction budget, split across cities in proportion
        to their Zipf populations.
    region_size:
        Side length of the square region in kilometres.
    urban_spacing / urban_speed:
        Street-grid pitch (km) and urban speed limit (km/h).
    highway_speed / highway_spacing:
        Speed limit (km/h) and vertex pitch (km) of inter-city highways.
    tag_probability:
        Per-vertex probability of carrying a point-of-interest tag (§4.1 uses
        the gas-station/segment ratio; we scale it with graph size).

    Returns
    -------
    RoadNetwork
        Graph (weights = travel-time minutes) plus city metadata.
    """
    if num_cities < 1:
        raise GraphError("need at least one city")
    if num_urban_vertices < num_cities * 4:
        raise GraphError("need at least 4 urban vertices per city")
    rng = np.random.default_rng(seed)

    populations = _zipf_populations(num_cities, total_population, zipf_exponent, rng)
    centers = _place_city_centers(num_cities, region_size, rng)

    shares = populations / populations.sum()
    budgets = np.maximum((shares * num_urban_vertices).astype(np.int64), 4)

    builder = GraphBuilder(0)
    city_vertex_ids: List[np.ndarray] = []
    coords_accum: List[Tuple[float, float]] = []

    # ------------------------------------------------------------------
    # 1. urban street grids
    # ------------------------------------------------------------------
    for ci in range(num_cities):
        count = int(budgets[ci])
        offsets = _urban_grid_offsets(count)
        first = builder.add_vertices(count)
        ids = np.arange(first, first + count, dtype=np.int64)
        city_vertex_ids.append(ids)
        slot_to_vid = {}
        for j in range(count):
            ox, oy = int(offsets[j, 0]), int(offsets[j, 1])
            jitter = rng.uniform(-0.15, 0.15, size=2) * urban_spacing
            x = centers[ci, 0] + ox * urban_spacing + jitter[0]
            y = centers[ci, 1] + oy * urban_spacing + jitter[1]
            builder.set_coord(first + j, x, y)
            coords_accum.append((x, y))
            slot_to_vid[(ox, oy)] = first + j
        # 4-neighbour streets + a sprinkle of diagonals
        for (ox, oy), vid in slot_to_vid.items():
            for dx, dy in ((1, 0), (0, 1)):
                other = slot_to_vid.get((ox + dx, oy + dy))
                if other is not None:
                    length = urban_spacing * (1.0 + rng.uniform(0.0, 0.2))
                    minutes = length / urban_speed * 60.0
                    builder.add_bidirectional_edge(vid, other, minutes)
            if rng.random() < diagonal_fraction:
                other = slot_to_vid.get((ox + 1, oy + 1))
                if other is not None:
                    length = urban_spacing * np.sqrt(2.0)
                    minutes = length / urban_speed * 60.0
                    builder.add_bidirectional_edge(vid, other, minutes)

    # ------------------------------------------------------------------
    # 2. inter-city highways along Delaunay corridors
    # ------------------------------------------------------------------
    def nearest_urban_vertex(ci: int, toward: np.ndarray) -> int:
        ids = city_vertex_ids[ci]
        pts = np.array([coords_accum[v] for v in ids])
        d = np.hypot(pts[:, 0] - toward[0], pts[:, 1] - toward[1])
        return int(ids[int(np.argmin(d))])

    highway_ids: List[int] = []
    for (a, b) in sorted(_delaunay_edges(centers)):
        start = nearest_urban_vertex(a, centers[b])
        end = nearest_urban_vertex(b, centers[a])
        p0 = np.array(coords_accum[start])
        p1 = np.array(coords_accum[end])
        dist = float(np.linalg.norm(p1 - p0))
        segments = max(int(dist / highway_spacing), 1)
        prev = start
        for s in range(1, segments):
            t = s / segments
            pos = p0 + t * (p1 - p0)
            pos = pos + rng.uniform(-0.3, 0.3, size=2)
            vid = builder.add_vertices(1)
            builder.set_coord(vid, pos[0], pos[1])
            coords_accum.append((float(pos[0]), float(pos[1])))
            highway_ids.append(vid)
            seg_len = dist / segments
            minutes = seg_len / highway_speed * 60.0
            builder.add_bidirectional_edge(prev, vid, minutes)
            prev = vid
        minutes = (dist / segments) / highway_speed * 60.0
        builder.add_bidirectional_edge(prev, end, minutes)

    # ------------------------------------------------------------------
    # 3. point-of-interest tags
    # ------------------------------------------------------------------
    n = builder.num_vertices
    tags = rng.random(n) < tag_probability
    for v in np.flatnonzero(tags):
        builder.set_tag(int(v), True)
    if not tags.any() and n > 0:
        # guarantee at least one POI so POI queries can terminate
        builder.set_tag(int(rng.integers(0, n)), True)

    graph = builder.build(name=name)

    city_of_vertex = np.full(n, -1, dtype=np.int64)
    cities: List[City] = []
    for ci in range(num_cities):
        ids = city_vertex_ids[ci]
        city_of_vertex[ids] = ci
        cities.append(
            City(
                city_id=ci,
                center=(float(centers[ci, 0]), float(centers[ci, 1])),
                population=int(populations[ci]),
                vertex_ids=ids,
            )
        )

    return RoadNetwork(graph=graph, cities=cities, city_of_vertex=city_of_vertex)


def baden_wuerttemberg_like(
    scale: float = 1.0, seed: int = 7, tag_probability: Optional[float] = None
) -> RoadNetwork:
    """BW-like preset: 16 hotspot cities (§4.1), ~12k urban vertices at scale 1.

    The real BW extract has 1.8M vertices; query behaviour (localized scopes
    around 16 population-ranked hotspots) is preserved at this scale.
    """
    num_urban = max(int(12_000 * scale), 16 * 4)
    return generate_road_network(
        num_cities=16,
        num_urban_vertices=num_urban,
        seed=seed,
        region_size=180.0,
        total_population=11_000_000,
        zipf_exponent=0.45,
        tag_probability=tag_probability if tag_probability is not None else 1 / 700.0,
        name=f"bw-like-x{scale:g}",
    )


def germany_like(
    scale: float = 1.0, seed: int = 11, tag_probability: Optional[float] = None
) -> RoadNetwork:
    """GY-like preset: 64 hotspot cities (§4.1), ~40k urban vertices at scale 1."""
    num_urban = max(int(40_000 * scale), 64 * 4)
    return generate_road_network(
        num_cities=64,
        num_urban_vertices=num_urban,
        seed=seed,
        region_size=650.0,
        total_population=83_000_000,
        zipf_exponent=1.1,
        tag_probability=tag_probability if tag_probability is not None else 1 / 900.0,
        name=f"gy-like-x{scale:g}",
    )
