"""Core machinery of ``repro-lint``: file contexts, suppressions, registry.

A :class:`Rule` inspects one parsed file (:class:`FileContext`) and yields
:class:`Violation` records.  Rules are registered globally via
:func:`register` so the CLI, the reporters and the test-suite all see one
catalog.  Findings are filtered through *suppression comments*::

    offending_line()  # repro-lint: disable=rule-name -- why this is safe

The reason after ``--`` is mandatory: a suppression without one is itself
reported (``suppression-format``), so every silenced finding carries an
explanation into the diff.  ``disable-file=rule`` (anywhere in the file,
conventionally the top) silences a rule for the whole file; ``disable=all``
silences every rule on one line.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Violation",
    "FileContext",
    "Rule",
    "register",
    "all_rules",
    "lint_source",
    "lint_file",
    "lint_paths",
    "iter_python_files",
    "infer_role",
]

#: rule applicability domains: ``src`` is library code under ``src/repro``
#: (minus the bench harness), ``bench`` is the harness / benchmark / example
#: scripts (wall-clock and ambient RNG are legitimate there), ``tests`` is
#: the pytest suite.
ROLES = ("src", "bench", "tests")

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable|disable-file)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)"
    r"(?P<tail>.*)$"
)
_REASON_RE = re.compile(r"^\s*--\s*\S")


@dataclass(frozen=True)
class Violation:
    """One finding: a rule fired at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


@dataclass
class FileContext:
    """One file under analysis, parsed once and shared by every rule."""

    path: str
    role: str
    source: str
    tree: ast.Module
    #: line -> rule names silenced on that line (``{"all"}`` silences all)
    line_suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    #: rule names silenced for the whole file
    file_suppressions: Set[str] = field(default_factory=set)
    #: malformed suppression comments (missing ``-- reason``)
    suppression_errors: List[Violation] = field(default_factory=list)

    @classmethod
    def parse(cls, source: str, path: str, role: str) -> "FileContext":
        tree = ast.parse(source, filename=path)
        ctx = cls(path=path, role=role, source=source, tree=tree)
        ctx._scan_suppressions()
        return ctx

    def _scan_suppressions(self) -> None:
        for lineno, text in enumerate(self.source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            names = {part.strip() for part in match.group("rules").split(",")}
            if not _REASON_RE.match(match.group("tail")):
                self.suppression_errors.append(
                    Violation(
                        rule="suppression-format",
                        path=self.path,
                        line=lineno,
                        col=match.start(),
                        message=(
                            "suppression comment needs a reason: "
                            "'# repro-lint: disable=<rule> -- <why>'"
                        ),
                    )
                )
                continue
            if match.group("kind") == "disable-file":
                self.file_suppressions |= names
            else:
                self.line_suppressions.setdefault(lineno, set()).update(names)

    def suppressed(self, violation: Violation) -> bool:
        if {"all", violation.rule} & self.file_suppressions:
            return True
        on_line = self.line_suppressions.get(violation.line, ())
        return "all" in on_line or violation.rule in on_line


class Rule:
    """Base class for one lint rule.

    Subclasses set :attr:`name` / :attr:`description` / :attr:`roles` and
    implement :meth:`check`, yielding violations for one file.  Use
    :meth:`violation` to stamp findings with the rule's name.
    """

    #: unique kebab-case identifier (used in reports and suppressions)
    name: str = ""
    #: one-line summary for ``--list-rules`` and the docs
    description: str = ""
    #: which file roles the rule applies to
    roles: Sequence[str] = ("src",)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, ctx: FileContext, node: ast.AST, message: str) -> Violation:
        return Violation(
            rule=self.name,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


_REGISTRY: Dict[str, Rule] = {}


def register(rule_cls: type) -> type:
    """Class decorator adding one :class:`Rule` subclass to the catalog."""
    rule = rule_cls()
    if not rule.name:
        raise ValueError(f"rule {rule_cls.__name__} has no name")
    if rule.name in _REGISTRY:
        raise ValueError(f"duplicate rule name {rule.name!r}")
    unknown = set(rule.roles) - set(ROLES)
    if unknown:
        raise ValueError(f"rule {rule.name!r} has unknown roles {sorted(unknown)}")
    _REGISTRY[rule.name] = rule
    return rule_cls


def all_rules() -> Dict[str, Rule]:
    """The registered rule catalog, name -> rule instance."""
    return dict(_REGISTRY)


def infer_role(path: Path) -> str:
    """Classify a file into a lint role from its repo-relative location."""
    parts = path.parts
    if "tests" in parts or path.name.startswith("test_"):
        return "tests"
    if "benchmarks" in parts or "examples" in parts:
        return "bench"
    if "repro" in parts and "bench" in parts[parts.index("repro") :]:
        return "bench"
    return "src"


def lint_source(
    source: str,
    path: str = "<string>",
    role: str = "src",
    select: Optional[Iterable[str]] = None,
) -> List[Violation]:
    """Lint one source string; returns unsuppressed violations, sorted."""
    ctx = FileContext.parse(source, path, role)
    selected = set(select) if select is not None else None
    findings: List[Violation] = list(ctx.suppression_errors)
    for name, rule in sorted(_REGISTRY.items()):
        if selected is not None and name not in selected:
            continue
        if ctx.role not in rule.roles:
            continue
        for violation in rule.check(ctx):
            if not ctx.suppressed(violation):
                findings.append(violation)
    return sorted(findings, key=Violation.sort_key)


def lint_file(
    path: Path,
    root: Optional[Path] = None,
    select: Optional[Iterable[str]] = None,
) -> List[Violation]:
    """Lint one file on disk (role inferred from its path)."""
    rel = path.relative_to(root) if root is not None else path
    return lint_source(
        path.read_text(encoding="utf-8"),
        path=str(rel),
        role=infer_role(rel),
        select=select,
    )


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``*.py`` files."""
    seen: Set[Path] = set()
    for base in paths:
        if base.is_dir():
            candidates = sorted(base.rglob("*.py"))
        else:
            candidates = [base]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def lint_paths(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    select: Optional[Iterable[str]] = None,
) -> List[Violation]:
    """Lint every ``*.py`` file under the given paths."""
    findings: List[Violation] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, root=root, select=select))
    return sorted(findings, key=Violation.sort_key)
