"""Core machinery of ``repro-lint``: file contexts, suppressions, registry.

A :class:`Rule` inspects one parsed file (:class:`FileContext`) and yields
:class:`Violation` records.  Rules are registered globally via
:func:`register` so the CLI, the reporters and the test-suite all see one
catalog.  Findings are filtered through *suppression comments*::

    offending_line()  # repro-lint: disable=rule-name -- why this is safe

The reason after ``--`` is mandatory: a suppression without one is itself
reported (``suppression-format``), so every silenced finding carries an
explanation into the diff.  ``disable-file=rule`` (anywhere in the file,
conventionally the top) silences a rule for the whole file; ``disable=all``
silences every rule on one line.
"""

from __future__ import annotations

import ast
import re
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

__all__ = [
    "Violation",
    "FileContext",
    "ProjectContext",
    "Rule",
    "ProjectRule",
    "register",
    "register_project",
    "all_rules",
    "all_project_rules",
    "lint_source",
    "lint_sources",
    "lint_file",
    "lint_paths",
    "lint_project",
    "load_project",
    "iter_python_files",
    "infer_role",
]

#: rule applicability domains: ``src`` is library code under ``src/repro``
#: (minus the bench harness), ``bench`` is the harness / benchmark / example
#: scripts (wall-clock and ambient RNG are legitimate there), ``tests`` is
#: the pytest suite.
ROLES = ("src", "bench", "tests")

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable|disable-file)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)"
    r"(?P<tail>.*)$"
)
_REASON_RE = re.compile(r"^\s*--\s*\S")


@dataclass(frozen=True)
class Violation:
    """One finding: a rule fired at a source location.

    ``fingerprint`` is a location-independent identity for whole-program
    findings (stable across unrelated edits), used by the checked-in
    baseline to accept known hazards without pinning line numbers.  Empty
    for per-file findings, which are never baselined.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    fingerprint: str = ""

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


@dataclass
class FileContext:
    """One file under analysis, parsed once and shared by every rule."""

    path: str
    role: str
    source: str
    tree: ast.Module
    #: line -> rule names silenced on that line (``{"all"}`` silences all)
    line_suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    #: rule names silenced for the whole file
    file_suppressions: Set[str] = field(default_factory=set)
    #: malformed suppression comments (missing ``-- reason``)
    suppression_errors: List[Violation] = field(default_factory=list)

    @classmethod
    def parse(cls, source: str, path: str, role: str) -> "FileContext":
        tree = ast.parse(source, filename=path)
        ctx = cls(path=path, role=role, source=source, tree=tree)
        ctx._scan_suppressions()
        return ctx

    def _scan_suppressions(self) -> None:
        for lineno, text in enumerate(self.source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            names = {part.strip() for part in match.group("rules").split(",")}
            if not _REASON_RE.match(match.group("tail")):
                self.suppression_errors.append(
                    Violation(
                        rule="suppression-format",
                        path=self.path,
                        line=lineno,
                        col=match.start(),
                        message=(
                            "suppression comment needs a reason: "
                            "'# repro-lint: disable=<rule> -- <why>'"
                        ),
                    )
                )
                continue
            if match.group("kind") == "disable-file":
                self.file_suppressions |= names
            else:
                self.line_suppressions.setdefault(lineno, set()).update(names)

    def suppressed(self, violation: Violation) -> bool:
        if {"all", violation.rule} & self.file_suppressions:
            return True
        on_line = self.line_suppressions.get(violation.line, ())
        return "all" in on_line or violation.rule in on_line


class Rule:
    """Base class for one lint rule.

    Subclasses set :attr:`name` / :attr:`description` / :attr:`roles` and
    implement :meth:`check`, yielding violations for one file.  Use
    :meth:`violation` to stamp findings with the rule's name.
    """

    #: unique kebab-case identifier (used in reports and suppressions)
    name: str = ""
    #: one-line summary for ``--list-rules`` and the docs
    description: str = ""
    #: which file roles the rule applies to
    roles: Sequence[str] = ("src",)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, ctx: FileContext, node: ast.AST, message: str) -> Violation:
        return Violation(
            rule=self.name,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


@dataclass
class ProjectContext:
    """Every file of one analysis run, parsed once, for whole-program rules."""

    files: List[FileContext]
    #: checked-in state classifications (``"Cls.attr" -> {kind, reason}``)
    #: from the baseline's ``state_manifest`` — consumed by the lifecycle
    #: rules; empty when no baseline is in play
    state_manifest: Dict[str, Dict[str, str]] = field(default_factory=dict)

    def by_path(self) -> Dict[str, FileContext]:
        return {ctx.path: ctx for ctx in self.files}

    def with_roles(self, roles: Sequence[str]) -> "ProjectContext":
        """The sub-project visible to a rule scoped to the given roles."""
        return ProjectContext(
            [ctx for ctx in self.files if ctx.role in roles],
            state_manifest=self.state_manifest,
        )


class ProjectRule:
    """Base class for one *whole-program* rule.

    Unlike :class:`Rule`, a project rule sees every file of the run at once
    (``check_project``) — call graphs, cross-module data flow and handler
    interleavings live here.  The project it receives is already filtered
    to the rule's :attr:`roles`.  Findings should carry a location-free
    :attr:`Violation.fingerprint` so the effect baseline can accept known
    hazards without pinning line numbers.
    """

    name: str = ""
    description: str = ""
    roles: Sequence[str] = ("src",)

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(
        self,
        ctx: FileContext,
        node: ast.AST,
        message: str,
        fingerprint: str = "",
    ) -> Violation:
        return Violation(
            rule=self.name,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            fingerprint=fingerprint,
        )


_REGISTRY: Dict[str, Rule] = {}
_PROJECT_REGISTRY: Dict[str, ProjectRule] = {}


def _validate_rule(rule: object, other_names: Iterable[str]) -> None:
    name = getattr(rule, "name", "")
    if not name:
        raise ValueError(f"rule {type(rule).__name__} has no name")
    if name in other_names:
        raise ValueError(f"duplicate rule name {name!r}")
    unknown = set(rule.roles) - set(ROLES)  # type: ignore[attr-defined]
    if unknown:
        raise ValueError(f"rule {name!r} has unknown roles {sorted(unknown)}")


def register(rule_cls: type) -> type:
    """Class decorator adding one :class:`Rule` subclass to the catalog."""
    rule = rule_cls()
    _validate_rule(rule, set(_REGISTRY) | set(_PROJECT_REGISTRY))
    _REGISTRY[rule.name] = rule
    return rule_cls


def register_project(rule_cls: type) -> type:
    """Class decorator adding one :class:`ProjectRule` to the catalog."""
    rule = rule_cls()
    _validate_rule(rule, set(_REGISTRY) | set(_PROJECT_REGISTRY))
    _PROJECT_REGISTRY[rule.name] = rule
    return rule_cls


def all_rules() -> Dict[str, Rule]:
    """The registered per-file rule catalog, name -> rule instance."""
    return dict(_REGISTRY)


def all_project_rules() -> Dict[str, ProjectRule]:
    """The registered whole-program rule catalog, name -> rule instance."""
    return dict(_PROJECT_REGISTRY)


def infer_role(path: Path) -> str:
    """Classify a file into a lint role from its repo-relative location.

    Checked-in lint fixtures (``**/fixtures/**``) model *library* code —
    they get the ``src`` role so linting one directly reproduces the
    finding it distills — but directory walks skip them entirely (see
    :func:`iter_python_files`), so repo-wide runs stay clean.
    """
    parts = path.parts
    if "fixtures" in parts:
        return "src"
    if "tests" in parts or path.name.startswith("test_"):
        return "tests"
    if "benchmarks" in parts or "examples" in parts:
        return "bench"
    if "repro" in parts and "bench" in parts[parts.index("repro") :]:
        return "bench"
    return "src"


def _lint_context(
    ctx: FileContext, select: Optional[Iterable[str]] = None
) -> List[Violation]:
    """Per-file rules + suppression-format errors for one parsed file."""
    selected = set(select) if select is not None else None
    findings: List[Violation] = list(ctx.suppression_errors)
    for name, rule in sorted(_REGISTRY.items()):
        if selected is not None and name not in selected:
            continue
        if ctx.role not in rule.roles:
            continue
        for violation in rule.check(ctx):
            if not ctx.suppressed(violation):
                findings.append(violation)
    return findings


def lint_source(
    source: str,
    path: str = "<string>",
    role: str = "src",
    select: Optional[Iterable[str]] = None,
) -> List[Violation]:
    """Lint one source string; returns unsuppressed violations, sorted."""
    ctx = FileContext.parse(source, path, role)
    return sorted(_lint_context(ctx, select=select), key=Violation.sort_key)


def lint_file(
    path: Path,
    root: Optional[Path] = None,
    select: Optional[Iterable[str]] = None,
) -> List[Violation]:
    """Lint one file on disk (role inferred from its path)."""
    rel = path.relative_to(root) if root is not None else path
    return lint_source(
        path.read_text(encoding="utf-8"),
        path=str(rel),
        role=infer_role(rel),
        select=select,
    )


#: directory components skipped by directory walks: compiled caches, and
#: checked-in lint fixtures (deliberate violations used by the tests and
#: the historical-bug corpus — lintable only by naming them explicitly)
_SKIPPED_DIR_PARTS = frozenset({"__pycache__", "fixtures"})


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``*.py`` files.

    Directory walks skip ``__pycache__`` and ``fixtures`` components;
    explicitly named files are always yielded.
    """
    seen: Set[Path] = set()
    for base in paths:
        if base.is_dir():
            candidates = [
                p
                for p in sorted(base.rglob("*.py"))
                if not (_SKIPPED_DIR_PARTS & set(p.relative_to(base).parts[:-1]))
            ]
        else:
            candidates = [base]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def lint_paths(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    select: Optional[Iterable[str]] = None,
) -> List[Violation]:
    """Lint every ``*.py`` file under the given paths (per-file rules only).

    Whole-program rules need every file parsed together — use
    :func:`lint_project` for the full pipeline.
    """
    findings: List[Violation] = []
    for path in iter_python_files(paths):
        findings.extend(lint_file(path, root=root, select=select))
    return sorted(findings, key=Violation.sort_key)


def load_project(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    jobs: int = 1,
    manifest: Optional[Dict[str, Dict[str, str]]] = None,
) -> ProjectContext:
    """Parse every ``*.py`` file under the given paths into a project.

    ``jobs > 1`` reads and parses files on a thread pool (file IO releases
    the GIL); the resulting file order is path-sorted either way, so the
    report and the effect baseline are deterministic regardless of ``jobs``.
    ``manifest`` is the baseline's ``state_manifest``, consumed by the
    lifecycle and protocol analyses.
    """
    files = list(iter_python_files(paths))

    def _load(path: Path) -> FileContext:
        rel = path.relative_to(root) if root is not None else path
        return FileContext.parse(
            path.read_text(encoding="utf-8"), str(rel), infer_role(rel)
        )

    if jobs > 1 and len(files) > 1:
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            contexts = list(pool.map(_load, files))
    else:
        contexts = [_load(path) for path in files]
    contexts.sort(key=lambda ctx: ctx.path)
    return ProjectContext(contexts, state_manifest=dict(manifest or {}))


def _run_project_rules(
    project: ProjectContext,
    select: Optional[Iterable[str]] = None,
    accepted: Optional[Mapping[str, str]] = None,
) -> List[Violation]:
    """Run registered project rules; filter suppressions + baseline."""
    selected = set(select) if select is not None else None
    by_path = project.by_path()
    findings: List[Violation] = []
    for name, rule in sorted(_PROJECT_REGISTRY.items()):
        if selected is not None and name not in selected:
            continue
        for violation in rule.check_project(project.with_roles(rule.roles)):
            ctx = by_path.get(violation.path)
            if ctx is not None and ctx.suppressed(violation):
                continue
            if accepted and violation.fingerprint in accepted:
                continue
            findings.append(violation)
    return findings


def lint_project(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    select: Optional[Iterable[str]] = None,
    jobs: int = 1,
    accepted: Optional[Mapping[str, str]] = None,
    manifest: Optional[Dict[str, Dict[str, str]]] = None,
) -> List[Violation]:
    """Full pipeline: per-file rules on each file + whole-program rules.

    ``accepted`` maps baseline fingerprints to their acceptance reasons;
    matching whole-program findings are dropped (see
    :mod:`repro.analysis.baseline`).  ``manifest`` is the baseline's
    ``state_manifest`` (state classifications for the lifecycle rules).
    """
    project = load_project(paths, root=root, jobs=jobs)
    if manifest:
        project.state_manifest = manifest
    selected = list(select) if select is not None else None
    findings: List[Violation] = []
    for ctx in project.files:
        findings.extend(_lint_context(ctx, select=selected))
    findings.extend(_run_project_rules(project, select=selected, accepted=accepted))
    return sorted(findings, key=Violation.sort_key)


def lint_sources(
    sources: Mapping[str, str],
    select: Optional[Iterable[str]] = None,
    accepted: Optional[Mapping[str, str]] = None,
    manifest: Optional[Dict[str, Dict[str, str]]] = None,
) -> List[Violation]:
    """Lint a path -> source mapping as one project (fixture helper).

    Roles are inferred from the mapping's paths, so multi-file fixtures can
    model cross-subsystem layouts (``src/repro/workload/gen.py`` + …)
    without touching disk.
    """
    project = ProjectContext(
        [
            FileContext.parse(source, path, infer_role(Path(path)))
            for path, source in sorted(sources.items())
        ],
        state_manifest=dict(manifest or {}),
    )
    selected = list(select) if select is not None else None
    findings: List[Violation] = []
    for ctx in project.files:
        findings.extend(_lint_context(ctx, select=selected))
    findings.extend(_run_project_rules(project, select=selected, accepted=accepted))
    return sorted(findings, key=Violation.sort_key)
