"""Checked-in effect-summary baseline for the whole-program analyses.

``analysis_baseline.json`` (repo root) pins four things:

``effects``
    The :meth:`EffectAnalysis.effect_summary` of every event handler —
    the transitive read/write/guard sets and schedule points the race
    rules reason over.  CI regenerates the summary and uploads the drift
    against this file as a review artifact, so an engine change that
    silently widens a handler's write set is visible in the PR even when
    no rule fires.
``accepted``
    Finding fingerprints (location-independent, see
    :attr:`Violation.fingerprint`) that are understood and intentionally
    tolerated, each with a mandatory reason.  Whole-program findings whose
    fingerprint appears here are dropped — CI therefore fails only on
    *new* hazards, never on re-flagging an already-reviewed one after an
    unrelated line shift.
``state_manifest``
    The state-lifecycle inventory (see :mod:`repro.analysis.lifecycle`):
    every handler-written ``Class.attr``, classified ``per-query`` /
    ``engine-global`` / ``derived`` with a mandatory reason.
    ``--write-baseline`` keeps the hand-written classifications for
    attributes still in the inventory, drops rotted entries, and emits
    new attributes as ``unclassified`` with an empty reason — the
    lifecycle rules then treat them as per-query (the conservative
    default) until a human classifies them.
``protocol``
    The extracted protocol automata (see
    :mod:`repro.analysis.protocol`): per dispatcher, the waiting states
    with their manifest classification, the declared barrier-ack
    couples, and per-handler transitions (enters/releases/guards/
    schedules).  Fully generated — ``--protocol-diff`` reports drift
    for review artifacts.

Regenerate with ``python -m repro.analysis --write-baseline`` after an
intentional engine change; the ``accepted`` block is carried over
verbatim (it is hand-curated, never generated).  The baseline-stability
test asserts the checked-in file matches a fresh regeneration, so a
stale baseline — or a stale ``state_manifest`` — fails tier-1 rather
than rotting.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.effects import effect_analysis_for
from repro.analysis.lifecycle import MANIFEST_KINDS, state_inventory
from repro.analysis.protocol import protocol_summary
from repro.analysis.visitor import ProjectContext

__all__ = [
    "BASELINE_NAME",
    "Baseline",
    "load_baseline",
    "find_baseline",
    "render_baseline",
    "render_manifest",
    "diff_effects",
    "diff_manifest",
    "diff_protocol",
]

BASELINE_NAME = "analysis_baseline.json"
_VERSION = 1


@dataclass
class Baseline:
    """Parsed ``analysis_baseline.json``."""

    version: int = _VERSION
    #: dispatcher class -> {event kind -> handler summary}
    effects: Dict[str, Dict[str, object]] = field(default_factory=dict)
    #: accepted finding fingerprint -> reason
    accepted: Dict[str, str] = field(default_factory=dict)
    #: ``"Cls.attr" -> {"kind": ..., "reason": ...}`` state classifications
    state_manifest: Dict[str, Dict[str, str]] = field(default_factory=dict)
    #: dispatcher class -> extracted protocol automaton summary
    protocol: Dict[str, object] = field(default_factory=dict)


def _validate_manifest(path: Path, manifest: object) -> Dict[str, Dict[str, str]]:
    if not isinstance(manifest, dict):
        raise ValueError(f"{path}: state_manifest must be an object")
    out: Dict[str, Dict[str, str]] = {}
    for attr, entry in manifest.items():
        if not isinstance(entry, dict) or entry.get("kind") not in MANIFEST_KINDS:
            raise ValueError(
                f"{path}: state_manifest[{attr!r}] needs a kind in "
                f"{MANIFEST_KINDS}"
            )
        kind = str(entry["kind"])
        reason = str(entry.get("reason", ""))
        # classification without justification is just a silenced finding;
        # only the generated "unclassified" placeholder may lack one
        if kind != "unclassified" and not reason.strip():
            raise ValueError(
                f"{path}: state_manifest[{attr!r}] is {kind!r} without a reason"
            )
        out[str(attr)] = {"kind": kind, "reason": reason}
    return out


def load_baseline(path: Path) -> Baseline:
    raw = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(raw, dict) or raw.get("version") != _VERSION:
        raise ValueError(
            f"{path}: unsupported baseline format "
            f"(want version {_VERSION}, got {raw.get('version')!r})"
        )
    accepted = raw.get("accepted", {})
    bad = [fp for fp, why in accepted.items() if not str(why).strip()]
    if bad:
        raise ValueError(
            f"{path}: accepted fingerprints without a reason: {', '.join(bad)}"
        )
    protocol = raw.get("protocol", {})
    if not isinstance(protocol, dict):
        raise ValueError(f"{path}: protocol must be an object")
    return Baseline(
        version=_VERSION,
        effects=raw.get("effects", {}),
        accepted={fp: str(why) for fp, why in accepted.items()},
        state_manifest=_validate_manifest(path, raw.get("state_manifest", {})),
        protocol=protocol,
    )


def find_baseline(start: Optional[Path] = None) -> Optional[Path]:
    """The checked-in baseline next to the lint roots, if present."""
    candidate = (start or Path.cwd()) / BASELINE_NAME
    return candidate if candidate.is_file() else None


def render_manifest(
    project: ProjectContext,
    curated: Optional[Dict[str, Dict[str, str]]] = None,
) -> Dict[str, Dict[str, str]]:
    """A fresh ``state_manifest``: inventory merged with curated entries.

    Hand-written classifications survive for attributes still in the
    inventory; attributes no longer written by any handler are dropped
    (rot), and newly written attributes appear as ``unclassified`` with
    an empty reason for a human to fill in.
    """
    curated = curated or {}
    manifest: Dict[str, Dict[str, str]] = {}
    for attr in state_inventory(project):
        entry = curated.get(attr)
        if entry is not None:
            manifest[attr] = {
                "kind": str(entry.get("kind", "unclassified")),
                "reason": str(entry.get("reason", "")),
            }
        else:
            manifest[attr] = {"kind": "unclassified", "reason": ""}
    return manifest


def render_baseline(
    project: ProjectContext,
    accepted: Optional[Dict[str, str]] = None,
    state_manifest: Optional[Dict[str, Dict[str, str]]] = None,
) -> str:
    """Serialize a fresh baseline; deterministic byte-for-byte."""
    if state_manifest and not project.state_manifest:
        # the protocol section summarizes each automaton state with its
        # curated manifest classification — thread it through so a
        # baseline regenerated from a fresh ``load_project`` doesn't
        # demote every state to "unclassified"
        project.state_manifest = dict(state_manifest)
    analysis = effect_analysis_for(project)
    payload = {
        "version": _VERSION,
        "effects": analysis.effect_summary(),
        "accepted": dict(sorted((accepted or {}).items())),
        "protocol": protocol_summary(project),
        "state_manifest": render_manifest(project, curated=state_manifest),
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def diff_effects(
    old: Dict[str, Dict[str, object]], new: Dict[str, Dict[str, object]]
) -> List[str]:
    """Human-readable drift between two effect summaries (for CI artifacts)."""
    lines: List[str] = []
    for cls in sorted(set(old) | set(new)):
        old_kinds = old.get(cls, {})
        new_kinds = new.get(cls, {})
        for kind in sorted(set(old_kinds) | set(new_kinds)):
            if kind not in old_kinds:
                lines.append(f"+ {cls}.{kind}: new handler")
                continue
            if kind not in new_kinds:
                lines.append(f"- {cls}.{kind}: handler removed")
                continue
            before, after = old_kinds[kind], new_kinds[kind]
            if before == after:
                continue
            for section in ("reads", "writes", "guards", "schedules"):
                b = {json.dumps(x) for x in before.get(section, [])}
                a = {json.dumps(x) for x in after.get(section, [])}
                for item in sorted(a - b):
                    lines.append(f"+ {cls}.{kind}.{section}: {item}")
                for item in sorted(b - a):
                    lines.append(f"- {cls}.{kind}.{section}: {item}")
            if before.get("guarded") != after.get("guarded"):
                lines.append(
                    f"! {cls}.{kind}.guarded: "
                    f"{before.get('guarded')} -> {after.get('guarded')}"
                )
    return lines


def diff_manifest(
    old: Dict[str, Dict[str, str]], new: Dict[str, Dict[str, str]]
) -> List[str]:
    """Human-readable drift between two state manifests (for CI artifacts)."""
    lines: List[str] = []
    for attr in sorted(set(old) | set(new)):
        before, after = old.get(attr), new.get(attr)
        if before is None and after is not None:
            lines.append(f"+ {attr}: new state ({after.get('kind')})")
        elif after is None and before is not None:
            lines.append(f"- {attr}: no longer handler-written")
        elif before is not None and after is not None:
            if before.get("kind") != after.get("kind"):
                lines.append(
                    f"! {attr}: {before.get('kind')} -> {after.get('kind')}"
                )
    return lines


def diff_protocol(
    old: Dict[str, object], new: Dict[str, object]
) -> List[str]:
    """Human-readable drift between two protocol-automaton summaries."""
    lines: List[str] = []
    for cls in sorted(set(old) | set(new)):
        raw_before, raw_after = old.get(cls), new.get(cls)
        before: Dict[str, object] = (
            raw_before if isinstance(raw_before, dict) else {}
        )
        after: Dict[str, object] = (
            raw_after if isinstance(raw_after, dict) else {}
        )
        if cls not in old:
            lines.append(f"+ {cls}: new dispatcher automaton")
        elif cls not in new:
            lines.append(f"- {cls}: dispatcher automaton removed")
        b_states = before.get("states", {}) or {}
        a_states = after.get("states", {}) or {}
        if isinstance(b_states, dict) and isinstance(a_states, dict):
            for attr in sorted(set(b_states) | set(a_states)):
                if attr not in b_states:
                    lines.append(
                        f"+ {cls}.states: {attr} ({a_states[attr]})"
                    )
                elif attr not in a_states:
                    lines.append(f"- {cls}.states: {attr}")
                elif b_states[attr] != a_states[attr]:
                    lines.append(
                        f"! {cls}.states: {attr} "
                        f"{b_states[attr]} -> {a_states[attr]}"
                    )
        b_couples = {json.dumps(c) for c in before.get("couples", []) or []}
        a_couples = {json.dumps(c) for c in after.get("couples", []) or []}
        for item in sorted(a_couples - b_couples):
            lines.append(f"+ {cls}.couples: {item}")
        for item in sorted(b_couples - a_couples):
            lines.append(f"- {cls}.couples: {item}")
        b_trans = before.get("transitions", {}) or {}
        a_trans = after.get("transitions", {}) or {}
        if not (isinstance(b_trans, dict) and isinstance(a_trans, dict)):
            continue
        for kind in sorted(set(b_trans) | set(a_trans)):
            if kind not in b_trans:
                lines.append(f"+ {cls}.{kind}: new transition")
                continue
            if kind not in a_trans:
                lines.append(f"- {cls}.{kind}: transition removed")
                continue
            t_before, t_after = b_trans[kind], a_trans[kind]
            if t_before == t_after:
                continue
            for section in ("enters", "releases", "guards", "schedules"):
                b = set(t_before.get(section, []))
                a = set(t_after.get(section, []))
                for item in sorted(a - b):
                    lines.append(f"+ {cls}.{kind}.{section}: {item}")
                for item in sorted(b - a):
                    lines.append(f"- {cls}.{kind}.{section}: {item}")
            if t_before.get("guarded") != t_after.get("guarded"):
                lines.append(
                    f"! {cls}.{kind}.guarded: "
                    f"{t_before.get('guarded')} -> {t_after.get('guarded')}"
                )
    return lines
