"""Event-handler effect analysis: dispatch tables and read/write sets.

The engine routes every popped event through ``getattr(self,
f"_on_{event.kind}")`` — the dispatch table is implicit in method names.
This module recovers it statically and computes, for every handler, the
*transitive* set of attributes it reads and writes across the call graph
(attributed to the class owning the attribute: ``QGraphEngine._outstanding``,
``QueryRuntime.acked``, ``SimWorker.busy_until``, …), the *guard*
attributes it tests in conditionals (epoch/phase fencing), and every
event it schedules (with a coarse delay class).  The race rules in
:mod:`repro.analysis.races` and the checked-in effect baseline are both
built from these summaries.

Delay classes for schedule points:

``zero``
    Scheduled at exactly ``now`` — ties with anything already pending at
    the current timestamp.
``delayed``
    ``now + <expr>`` — *usually* later, but simulated costs may be
    configured to zero, so a delayed event can still tie.
``constant`` / ``unknown``
    An absolute time or an unclassifiable expression.

Only ``delayed``-exclusively-scheduled kinds are considered tie-free by
the race detector; everything else can share a timestamp (the event queue
breaks ties by schedule order, which is exactly the fragile property the
detector polices).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import CallGraph, SymbolTable, project_graph
from repro.analysis.visitor import ProjectContext

__all__ = [
    "HandlerEffects",
    "EffectAnalysis",
    "effect_analysis_for",
    "GUARD_ATTR_RE",
    "BENIGN_CLASSES",
    "BENIGN_ATTRS",
]

#: classes whose attribute writes never constitute a hazard between
#: handlers: pure observers (metrics, the sanitizer's own bookkeeping) and
#: the event queue itself, whose (time, seq) tie-break is the ordering
#: mechanism under analysis rather than racy state
BENIGN_CLASSES = frozenset({"MetricsTrace", "SimulationSanitizer", "EventQueue"})
#: individual attributes excluded from hazard overlap (counters/diagnostics)
BENIGN_ATTRS = frozenset({"QGraphEngine._events_processed"})

#: attribute-name shapes that act as epoch/phase fences when read in a
#: conditional: a handler testing one of these before touching shared
#: state is ordering itself against the barrier protocol, not against
#: schedule order
GUARD_ATTR_RE = re.compile(
    r"epoch|phase|halt|stop|paus|dead|crash|taint|recover|barrier|generation"
    r"|in_progress|inflight|in_flight|outstanding|quiesc|down|pending|active"
)

#: in-place mutators: a call ``x.attr.<m>(...)`` writes ``x.attr``
_MUTATOR_METHODS = frozenset(
    {
        "append", "appendleft", "extend", "insert", "add", "discard", "remove",
        "pop", "popleft", "popitem", "clear", "update", "setdefault", "sort",
        "reverse", "fill", "put",
    }
)


#: a schedule point: (kind or None, delay class, line, follower lines)
_SchedulePoint = Tuple[Optional[str], str, int, FrozenSet[int]]


@dataclass
class _DirectEffects:
    """Per-function direct effects (before call-graph propagation)."""

    reads: Set[str] = field(default_factory=set)
    writes: Set[str] = field(default_factory=set)
    guards: Set[str] = field(default_factory=set)
    #: (attr effect, line) for ordered effect-after-schedule checks
    write_sites: List[Tuple[str, int]] = field(default_factory=list)
    schedules: List[_SchedulePoint] = field(default_factory=list)


@dataclass
class HandlerEffects:
    """Transitive effect summary of one event handler."""

    kind: str
    qname: str
    reads: Set[str]
    writes: Set[str]
    guards: Set[str]
    schedules: List[_SchedulePoint]
    direct: _DirectEffects

    def hazardous_writes(self) -> Set[str]:
        return {
            w
            for w in self.writes
            if w not in BENIGN_ATTRS and w.split(".")[0] not in BENIGN_CLASSES
        }

    def is_guarded(self) -> bool:
        """Whether any conditional in the handler tests a fence attribute."""
        return any(GUARD_ATTR_RE.search(g.split(".")[-1]) for g in self.guards)

    def summary(self) -> Dict[str, object]:
        """JSON-stable form for the checked-in effect baseline."""
        return {
            "handler": self.qname,
            "reads": sorted(self.reads),
            "writes": sorted(self.writes),
            "guards": sorted(self.guards),
            "guarded": self.is_guarded(),
            "schedules": sorted(
                {(k or "?", delay) for k, delay, *_ in self.schedules}
            ),
        }


def _short(qname: str) -> str:
    return qname.split(".")[-1]


def _is_schedule_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "schedule"
        and len(node.args) >= 2
    )


def _stmt_lines(stmt: ast.stmt) -> Set[int]:
    return {n.lineno for n in ast.walk(stmt) if hasattr(n, "lineno")}


def _schedule_followers(fn_node: ast.AST) -> Dict[int, Set[int]]:
    """Map each schedule call (by node id) to lines that may run after it.

    Line-number comparison alone over-reports: a ``schedule(...); return``
    branch is never followed by the statements lexically below it.  This
    walks the statement structure instead — followers are the remaining
    statements of every enclosing suite, cut off at ``return``/``raise``
    (and at an ``if``/``else`` where *both* arms terminate).  Loop
    iterations are deliberately NOT carried around: in the engine's
    per-object loops (``for w in sorted(...)``) a later iteration's write
    touches a *different* worker/query than the earlier iteration's
    scheduled event, and this analysis is attribute- not object-sensitive
    — carrying the backedge would drown the rule in cross-object noise.
    Over-approximate on ``try`` edges — extra followers only ever cost a
    reviewed finding, never hide one.
    """
    out: Dict[int, Set[int]] = {}

    def process(stmts: Sequence[ast.stmt]) -> Tuple[List[int], bool]:
        """Returns (schedule ids escaping this suite, suite terminates)."""
        open_ids: List[int] = []
        for stmt in stmts:
            lines = _stmt_lines(stmt)
            for sid in open_ids:
                out[sid] |= lines
            if isinstance(stmt, (ast.Return, ast.Raise)):
                for node in ast.walk(stmt):
                    if _is_schedule_call(node):
                        out.setdefault(id(node), set())
                return [], True
            if isinstance(stmt, (ast.Break, ast.Continue)):
                # control re-enters at the loop level; the whole-loop line
                # add below covers the repeated body, and post-loop
                # statements legitimately follow once the loop exits
                return open_ids, True
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested scopes run at call time, not here
            sub_suites: List[Sequence[ast.stmt]] = []
            if isinstance(stmt, (ast.If, ast.While, ast.For, ast.AsyncFor)):
                sub_suites = [stmt.body, stmt.orelse]
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                sub_suites = [stmt.body]
            elif isinstance(stmt, ast.Try):
                sub_suites = [stmt.body, *[h.body for h in stmt.handlers], stmt.orelse, stmt.finalbody]
            if not sub_suites:
                for node in ast.walk(stmt):
                    if _is_schedule_call(node):
                        out.setdefault(id(node), set())
                        open_ids.append(id(node))
                continue
            inner = {
                id(node)
                for suite in sub_suites
                for sub in suite
                for node in ast.walk(sub)
            }
            for node in ast.walk(stmt):
                if id(node) not in inner and _is_schedule_call(node):
                    out.setdefault(id(node), set())
                    open_ids.append(id(node))
            escaped: List[int] = []
            terms: List[bool] = []
            for suite in sub_suites:
                if not suite:
                    terms.append(False)
                    continue
                esc, term = process(suite)
                escaped.extend(esc)
                terms.append(term)
            open_ids.extend(escaped)
            if isinstance(stmt, ast.If) and stmt.orelse and all(terms):
                return [], True
        return open_ids, False

    body = getattr(fn_node, "body", None)
    if isinstance(body, list):
        process(body)
    return out


class EffectAnalysis:
    """Dispatch tables + per-handler transitive effect summaries."""

    def __init__(self, project: ProjectContext) -> None:
        self.project = project
        self.table: SymbolTable
        self.graph: CallGraph
        self.table, self.graph = project_graph(project)
        #: dispatcher class qname -> {event kind -> handler qname}
        self.dispatch: Dict[str, Dict[str, str]] = self._extract_dispatch_tables()
        self._direct: Dict[str, _DirectEffects] = {}
        for fn in self.graph.iter_functions():
            self._direct[fn.qname] = self._direct_effects(fn.qname)
        #: dispatcher class qname -> {kind -> HandlerEffects}
        self.handlers: Dict[str, Dict[str, HandlerEffects]] = {}
        for cls, kinds in self.dispatch.items():
            self.handlers[cls] = {
                kind: self._summarize(kind, handler)
                for kind, handler in kinds.items()
            }
        #: every (kind, delay class) schedule point in the project — used
        #: for tie-eligibility, so producers outside handlers count too
        self.kind_delays: Dict[str, Set[str]] = {}
        for direct in self._direct.values():
            for kind, delay, *_ in direct.schedules:
                if kind is not None:
                    self.kind_delays.setdefault(kind, set()).add(delay)

    # ------------------------------------------------------------------
    # dispatch-table extraction
    # ------------------------------------------------------------------
    @staticmethod
    def _is_handler_getattr(node: ast.Call) -> bool:
        """Matches ``getattr(self, f"_on_{...}", ...)``."""
        if not (isinstance(node.func, ast.Name) and node.func.id == "getattr"):
            return False
        if len(node.args) < 2:
            return False
        pattern = node.args[1]
        if not isinstance(pattern, ast.JoinedStr) or not pattern.values:
            return False
        first = pattern.values[0]
        return (
            isinstance(first, ast.Constant)
            and isinstance(first.value, str)
            and first.value.startswith("_on_")
        )

    def _extract_dispatch_tables(self) -> Dict[str, Dict[str, str]]:
        tables: Dict[str, Dict[str, str]] = {}
        for cls_qname, info in self.table.classes.items():
            dispatches = False
            for method_qname in info.methods.values():
                fn = self.table.functions[method_qname]
                for node in ast.walk(fn.node):
                    if isinstance(node, ast.Call) and self._is_handler_getattr(node):
                        dispatches = True
                        break
                if dispatches:
                    break
            if not dispatches:
                continue
            kinds: Dict[str, str] = {}
            for ancestor in self.table.ancestors(cls_qname):
                for name, method_qname in self.table.classes[ancestor].methods.items():
                    if name.startswith("_on_") and len(name) > 4:
                        kinds.setdefault(name[4:], method_qname)
            if kinds:
                tables[cls_qname] = kinds
        return tables

    # ------------------------------------------------------------------
    # direct effects
    # ------------------------------------------------------------------
    def _effect_name(self, fn_qname: str, node: ast.Attribute) -> Optional[str]:
        base = self.graph.expr_type(fn_qname, node.value)
        if base is None or base.cls is None:
            return None
        if base.cls not in self.table.classes:
            return None
        return f"{_short(base.cls)}.{node.attr}"

    @staticmethod
    def _delay_class(node: ast.AST) -> str:
        if isinstance(node, ast.Name):
            return "zero" if node.id == "now" else "unknown"
        if isinstance(node, ast.Constant):
            return "constant"
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
            left = node.left
            if isinstance(left, ast.Name) and left.id == "now":
                return "delayed"
            if isinstance(left, ast.BinOp):
                return EffectAnalysis._delay_class(left)
        return "unknown"

    def _direct_effects(self, fn_qname: str) -> _DirectEffects:
        fn = self.table.functions[fn_qname]
        out = _DirectEffects()
        role_src = fn.ctx.role == "src"
        followers = _schedule_followers(fn.node) if role_src else {}
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Attribute):
                effect = self._effect_name(fn_qname, node)
                if effect is None:
                    continue
                if isinstance(node.ctx, (ast.Store, ast.Del)):
                    out.writes.add(effect)
                    out.write_sites.append((effect, node.lineno))
                else:
                    out.reads.add(effect)
            elif isinstance(node, ast.Subscript):
                # ``x.attr[i] = v`` / ``del x.attr[i]`` writes the slot
                if isinstance(node.ctx, (ast.Store, ast.Del)) and isinstance(
                    node.value, ast.Attribute
                ):
                    effect = self._effect_name(fn_qname, node.value)
                    if effect is not None:
                        out.writes.add(effect)
                        out.write_sites.append((effect, node.lineno))
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATOR_METHODS
                    and isinstance(func.value, ast.Attribute)
                ):
                    effect = self._effect_name(fn_qname, func.value)
                    if effect is not None:
                        out.writes.add(effect)
                        out.write_sites.append((effect, node.lineno))
                if role_src and _is_schedule_call(node):
                    kind_arg = node.args[1]
                    kind = (
                        kind_arg.value
                        if isinstance(kind_arg, ast.Constant)
                        and isinstance(kind_arg.value, str)
                        else None
                    )
                    out.schedules.append(
                        (
                            kind,
                            self._delay_class(node.args[0]),
                            node.lineno,
                            frozenset(followers.get(id(node), ())),
                        )
                    )
            elif isinstance(node, (ast.If, ast.While)):
                self._collect_guards(fn_qname, node.test, out)
            elif isinstance(node, ast.IfExp):
                self._collect_guards(fn_qname, node.test, out)
            elif isinstance(node, ast.Assert):
                self._collect_guards(fn_qname, node.test, out)
        return out

    def _collect_guards(
        self, fn_qname: str, test: ast.AST, out: _DirectEffects
    ) -> None:
        for node in ast.walk(test):
            if isinstance(node, ast.Attribute):
                effect = self._effect_name(fn_qname, node)
                if effect is not None:
                    out.guards.add(effect)

    # ------------------------------------------------------------------
    # transitive summaries
    # ------------------------------------------------------------------
    def _summarize(self, kind: str, handler_qname: str) -> HandlerEffects:
        reads: Set[str] = set()
        writes: Set[str] = set()
        guards: Set[str] = set()
        schedules: List[_SchedulePoint] = []
        for callee in sorted(self.graph.transitive(handler_qname)):
            direct = self._direct.get(callee)
            if direct is None:
                continue
            reads |= direct.reads
            writes |= direct.writes
            guards |= direct.guards
            schedules.extend(direct.schedules)
        return HandlerEffects(
            kind=kind,
            qname=handler_qname,
            reads=reads,
            writes=writes,
            guards=guards,
            schedules=schedules,
            direct=self._direct[handler_qname],
        )

    # ------------------------------------------------------------------
    # tie-eligibility
    # ------------------------------------------------------------------
    def may_tie(self, kind_a: str, kind_b: str) -> bool:
        """Whether two event kinds can pop at the same virtual timestamp.

        A kind scheduled *only* with ``now + <expr>`` delays is treated as
        tie-free against other delayed kinds; any ``zero``/``constant``/
        ``unknown`` schedule point (or a kind with no visible producer —
        an external entry point) makes ties possible.
        """
        delays_a = self.kind_delays.get(kind_a, {"unknown"})
        delays_b = self.kind_delays.get(kind_b, {"unknown"})
        ties_a = delays_a != {"delayed"}
        ties_b = delays_b != {"delayed"}
        return ties_a or ties_b

    def effect_summary(self) -> Dict[str, Dict[str, object]]:
        """Deterministic whole-project summary for the checked-in baseline."""
        out: Dict[str, Dict[str, object]] = {}
        for cls in sorted(self.handlers):
            per_kind = {
                kind: effects.summary()
                for kind, effects in sorted(self.handlers[cls].items())
            }
            out[_short(cls)] = per_kind
        return out


#: (file-context identity tuple) -> analysis; same FIFO discipline as the
#: call-graph cache in :mod:`repro.analysis.callgraph`.  One ``lint_project``
#: run fans the same parsed files out to every project rule (each receives a
#: fresh role-filtered ``ProjectContext`` *sharing* the ``FileContext``
#: objects), so keying on file identity lets the race, lifecycle and
#: protocol rules all reuse a single dispatch/effect build instead of each
#: reconstructing it — the dominant cost of a whole-repo lint.
_EFFECTS_CACHE: Dict[Tuple[int, ...], "EffectAnalysis"] = {}
_EFFECTS_CACHE_LIMIT = 8


def effect_analysis_for(project: ProjectContext) -> EffectAnalysis:
    """The shared per-project :class:`EffectAnalysis` (built at most once)."""
    key = tuple(sorted(id(ctx) for ctx in project.files))
    cached = _EFFECTS_CACHE.get(key)
    if cached is not None:
        return cached
    analysis = EffectAnalysis(project)
    if len(_EFFECTS_CACHE) >= _EFFECTS_CACHE_LIMIT:
        _EFFECTS_CACHE.pop(next(iter(_EFFECTS_CACHE)))
    _EFFECTS_CACHE[key] = analysis
    return analysis
