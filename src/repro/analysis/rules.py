"""The built-in ``repro-lint`` rule catalog.

Each rule encodes one project invariant that the discrete-event simulation
relies on (see ``docs/analysis.md`` for the rationale and examples):

``module-rng``
    No calls into the *ambient* RNGs (``random.*`` module functions,
    ``np.random.*`` legacy globals) in library code — randomness must flow
    through an explicitly threaded ``np.random.Generator`` (seeded streams
    keep event orderings reproducible).
``wall-clock``
    No wall-clock reads (``time.time``/``perf_counter``/``datetime.now``
    …) in library code: the engine runs in virtual time, and a wall-clock
    dependence makes runs machine-dependent.  The bench harness is exempt.
``csr-mutation``
    Never write through a cached ``DiGraph.csr()`` / ``csr_in()`` view —
    the arrays are the graph's own buffers, shared by every kernel.
``bare-assert``
    No bare ``assert`` for runtime invariants in library code: asserts are
    stripped under ``python -O``; raise a :class:`repro.errors.ReproError`
    subclass instead.
``mutable-default``
    No mutable default argument values (shared across calls).
``unordered-iteration``
    No iteration over ``set`` expressions in loops that submit simulation
    events — set order is not part of the program's semantics; iterate
    ``sorted(...)``.
``shadow-builtin``
    Do not bind names that shadow common builtins (``id``, ``type``, …).
``untyped-def``
    Strict-typing gate for ``repro/core``, ``repro/engine`` and
    ``repro/analysis``: every
    function signature fully annotated (checked by mypy in CI; this rule
    keeps the annotation *coverage* honest without needing mypy locally).
``swallowed-error``
    No broad exception handlers that silently discard the error (``except:
    pass`` / ``except Exception: pass``) in library code — a swallowed
    error in the simulation turns a hard failure into silent divergence.
    Narrow handlers (``except KeyError: pass``) and broad handlers that
    actually *do* something (log, re-raise, fall back) stay legal.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.visitor import FileContext, Rule, Violation, register

__all__ = [
    "ModuleRngRule",
    "WallClockRule",
    "CsrMutationRule",
    "BareAssertRule",
    "MutableDefaultRule",
    "UnorderedIterationRule",
    "ShadowBuiltinRule",
    "SwallowedErrorRule",
    "UntypedDefRule",
]


# ----------------------------------------------------------------------
# shared helpers
# ----------------------------------------------------------------------
def dotted_parts(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` -> ``["a", "b", "c"]``; None for non-name chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


class ImportTracker(ast.NodeVisitor):
    """Resolves local names to the stdlib/numpy modules they alias.

    Tracks ``import random as r`` / ``import numpy as np`` /
    ``import numpy.random as nr`` / ``from numpy import random`` /
    ``from random import shuffle as sh`` — enough to resolve every
    realistic spelling of an ambient-RNG or wall-clock call.
    """

    def __init__(self) -> None:
        #: local alias -> canonical module path ("random", "numpy", ...)
        self.module_aliases: Dict[str, str] = {}
        #: local name -> (module, function) for from-imports
        self.from_imports: Dict[str, Tuple[str, str]] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            if alias.asname is None:
                # ``import numpy.random`` binds "numpy"
                self.module_aliases[local] = alias.name.split(".")[0]
            else:
                self.module_aliases[local] = alias.name

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return
        for alias in node.names:
            local = alias.asname or alias.name
            submodule = f"{node.module}.{alias.name}"
            if submodule in ("numpy.random", "datetime.datetime"):
                self.module_aliases[local] = submodule
            else:
                self.from_imports[local] = (node.module, alias.name)

    def resolve_call(self, func: ast.AST) -> Optional[Tuple[str, str]]:
        """Canonical ``(module, function)`` of a call target, if resolvable."""
        if isinstance(func, ast.Name):
            return self.from_imports.get(func.id)
        parts = dotted_parts(func)
        if not parts or len(parts) < 2:
            return None
        head = self.module_aliases.get(parts[0])
        if head is None:
            return None
        full = [head] + parts[1:]
        return ".".join(full[:-1]), full[-1]


def tracked_imports(ctx: FileContext) -> ImportTracker:
    tracker = ImportTracker()
    tracker.visit(ctx.tree)
    return tracker


# ----------------------------------------------------------------------
# module-rng
# ----------------------------------------------------------------------
#: np.random entry points that *construct* explicit generators (allowed)
_EXPLICIT_RNG_CONSTRUCTORS = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
)


@register
class ModuleRngRule(Rule):
    name = "module-rng"
    description = (
        "no ambient RNG calls (random.* / np.random.* globals) in library "
        "code; thread an explicit np.random.Generator"
    )
    roles = ("src",)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        tracker = tracked_imports(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = tracker.resolve_call(node.func)
            if resolved is None:
                continue
            module, func = resolved
            if module == "random" or (
                module == "numpy" and func == "random"
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"ambient RNG call {module}.{func}() — thread an explicit "
                    "np.random.Generator (seeded stream) instead",
                )
            elif module == "numpy.random" and func not in _EXPLICIT_RNG_CONSTRUCTORS:
                yield self.violation(
                    ctx,
                    node,
                    f"ambient RNG call np.random.{func}() draws from the "
                    "process-global stream — use np.random.default_rng(seed)",
                )


# ----------------------------------------------------------------------
# wall-clock
# ----------------------------------------------------------------------
_WALL_CLOCK_FUNCS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "clock",
        "sleep",
    }
)
_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})


@register
class WallClockRule(Rule):
    name = "wall-clock"
    description = (
        "no wall-clock reads in library code (the engine runs in virtual "
        "time); bench harness is exempt"
    )
    roles = ("src",)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        tracker = tracked_imports(ctx)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = tracker.resolve_call(node.func)
            if resolved is None:
                continue
            module, func = resolved
            if module == "time" and func in _WALL_CLOCK_FUNCS:
                yield self.violation(
                    ctx,
                    node,
                    f"wall-clock call time.{func}() in simulated code — use "
                    "virtual time (EventQueue.now) or move it to the bench "
                    "harness",
                )
            elif (
                module in ("datetime", "datetime.datetime")
                and func in _DATETIME_FUNCS
            ):
                yield self.violation(
                    ctx,
                    node,
                    f"wall-clock call datetime {func}() in simulated code",
                )


# ----------------------------------------------------------------------
# csr-mutation
# ----------------------------------------------------------------------
_NDARRAY_MUTATORS = frozenset(
    {"fill", "sort", "put", "resize", "partition", "itemset", "byteswap", "setfield"}
)
_CSR_FIELDS = frozenset({"indptr", "indices", "weights"})


class _CsrScopeVisitor(ast.NodeVisitor):
    """Walks one function (or module) scope tracking csr-view bindings."""

    def __init__(
        self, rule: "CsrMutationRule", ctx: FileContext, names: Set[str]
    ) -> None:
        self.rule = rule
        self.ctx = ctx
        #: names bound to a CSRView (``view = g.csr()``)
        self.view_names = set(names)
        #: names bound to one of a view's arrays (``indptr, ... = g.csr()``)
        self.array_names: Set[str] = set()
        self.findings: List[Violation] = []

    # -- binding tracking ------------------------------------------------
    @staticmethod
    def _is_csr_call(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("csr", "csr_in")
        )

    def _root_kind(self, node: ast.AST) -> Optional[str]:
        """Whether an expression reads through a csr view.

        Returns ``"view"`` for the view itself, ``"array"`` once the walk
        crosses a CSR field access or an array alias, else ``None``.
        """
        depth_fields = 0
        while True:
            if isinstance(node, ast.Subscript):
                node = node.value
            elif isinstance(node, ast.Attribute):
                if node.attr in _CSR_FIELDS:
                    depth_fields += 1
                node = node.value
            else:
                break
        if self._is_csr_call(node):
            return "array" if depth_fields else "view"
        if isinstance(node, ast.Name):
            if node.id in self.view_names:
                return "array" if depth_fields else "view"
            if node.id in self.array_names:
                return "array"
        return None

    def visit_Assign(self, node: ast.Assign) -> None:
        self._flag_write_targets(node.targets, node)
        if self._is_csr_call(node.value) or (
            isinstance(node.value, ast.Name) and node.value.id in self.view_names
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.view_names.add(target.id)
                elif isinstance(target, ast.Tuple):
                    # ``indptr, indices, weights = graph.csr()``
                    for elt in target.elts:
                        if isinstance(elt, ast.Name):
                            self.array_names.add(elt.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._flag_write_targets([node.target], node)
        if node.value is not None and self._is_csr_call(node.value):
            if isinstance(node.target, ast.Name):
                self.view_names.add(node.target.id)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._flag_write_targets([node.target], node)
        self.generic_visit(node)

    def _flag_write_targets(self, targets: Sequence[ast.AST], stmt: ast.AST) -> None:
        for target in targets:
            if isinstance(target, (ast.Subscript, ast.Attribute)):
                if self._root_kind(target) is not None:
                    self.findings.append(
                        self.rule.violation(
                            self.ctx,
                            stmt,
                            "write through a cached csr()/csr_in() view — the "
                            "arrays are the graph's shared buffers; copy() "
                            "before mutating",
                        )
                    )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _NDARRAY_MUTATORS
            and self._root_kind(func.value) == "array"
        ):
            self.findings.append(
                self.rule.violation(
                    self.ctx,
                    node,
                    f"in-place .{func.attr}() on a cached csr()/csr_in() "
                    "array — copy() before mutating",
                )
            )
        self.generic_visit(node)

    # nested scopes get a copy of the current bindings
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._nested(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._nested(node)

    def _nested(self, node: ast.AST) -> None:
        inner = _CsrScopeVisitor(self.rule, self.ctx, self.view_names)
        inner.array_names = set(self.array_names)
        for stmt in getattr(node, "body", []):
            inner.visit(stmt)
        self.findings.extend(inner.findings)


@register
class CsrMutationRule(Rule):
    name = "csr-mutation"
    description = "no mutation of cached DiGraph.csr()/csr_in() views"
    roles = ("src", "bench")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        visitor = _CsrScopeVisitor(self, ctx, set())
        visitor.visit(ctx.tree)
        yield from visitor.findings


# ----------------------------------------------------------------------
# bare-assert
# ----------------------------------------------------------------------
@register
class BareAssertRule(Rule):
    name = "bare-assert"
    description = (
        "no bare assert for runtime invariants in library code "
        "(stripped under python -O); raise a ReproError subclass"
    )
    roles = ("src",)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assert):
                yield self.violation(
                    ctx,
                    node,
                    "assert is stripped under python -O — raise "
                    "EngineError/ReproError (or SanitizerError) instead",
                )


# ----------------------------------------------------------------------
# mutable-default
# ----------------------------------------------------------------------
_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "Counter", "OrderedDict", "deque"}
)


@register
class MutableDefaultRule(Rule):
    name = "mutable-default"
    description = "no mutable default argument values (shared across calls)"
    roles = ("src", "bench", "tests")

    @staticmethod
    def _is_mutable(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            return name in _MUTABLE_FACTORIES
        return False

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            args = node.args
            for default in list(args.defaults) + [
                d for d in args.kw_defaults if d is not None
            ]:
                if self._is_mutable(default):
                    yield self.violation(
                        ctx,
                        default,
                        "mutable default argument is shared across calls — "
                        "default to None and allocate inside the function",
                    )


# ----------------------------------------------------------------------
# unordered-iteration
# ----------------------------------------------------------------------
_EVENT_SUBMISSION_ATTRS = frozenset(
    {"schedule", "submit", "submit_update", "submit_all"}
)
_SET_ANNOTATIONS = frozenset({"Set", "set", "FrozenSet", "frozenset", "MutableSet"})


class _SetAnnotationCollector(ast.NodeVisitor):
    """Collects names/attributes annotated as sets anywhere in the file."""

    def __init__(self) -> None:
        self.set_names: Set[str] = set()
        self.set_attrs: Set[str] = set()

    @staticmethod
    def _annotation_is_set(node: ast.AST) -> bool:
        if isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Name):
            return node.id in _SET_ANNOTATIONS
        if isinstance(node, ast.Attribute):  # typing.Set[...]
            return node.attr in _SET_ANNOTATIONS
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            head = node.value.split("[", 1)[0].strip()
            return head.split(".")[-1] in _SET_ANNOTATIONS
        return False

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if self._annotation_is_set(node.annotation):
            if isinstance(node.target, ast.Name):
                self.set_names.add(node.target.id)
            elif isinstance(node.target, ast.Attribute):
                self.set_attrs.add(node.target.attr)
        self.generic_visit(node)


@register
class UnorderedIterationRule(Rule):
    name = "unordered-iteration"
    description = (
        "no iteration over sets in loops that submit simulation events "
        "(set order is arbitrary); iterate sorted(...)"
    )
    roles = ("src",)

    def _is_set_expr(self, node: ast.AST, names: Set[str], attrs: Set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("set", "frozenset"):
                return True
        if isinstance(node, ast.Name):
            return node.id in names
        if isinstance(node, ast.Attribute):
            return node.attr in attrs
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(node.left, names, attrs) or self._is_set_expr(
                node.right, names, attrs
            )
        return False

    @staticmethod
    def _submits_events(body: Sequence[ast.stmt]) -> bool:
        for stmt in body:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _EVENT_SUBMISSION_ATTRS
                ):
                    return True
        return False

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        collector = _SetAnnotationCollector()
        collector.visit(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            if not self._is_set_expr(node.iter, collector.set_names, collector.set_attrs):
                continue
            if self._submits_events(node.body):
                yield self.violation(
                    ctx,
                    node,
                    "iterating a set while submitting events makes the event "
                    "order depend on hash order — iterate sorted(...)",
                )


# ----------------------------------------------------------------------
# shadow-builtin
# ----------------------------------------------------------------------
_SHADOW_DENYLIST = frozenset(
    {
        "id", "type", "list", "dict", "set", "tuple", "frozenset",
        "input", "filter", "map", "next", "iter", "range", "len",
        "sum", "min", "max", "all", "any", "sorted", "reversed",
        "str", "int", "float", "bool", "bytes", "object", "zip",
        "open", "hash", "format", "vars", "dir", "print", "repr",
        "round", "abs", "pow", "slice", "property", "enumerate",
        "callable", "compile", "eval", "exec", "bytearray",
    }
)


@register
class ShadowBuiltinRule(Rule):
    name = "shadow-builtin"
    description = "no bindings that shadow common builtins (id, type, ...)"
    roles = ("src",)

    def _flag(self, ctx: FileContext, node: ast.AST, name: str) -> Violation:
        return self.violation(
            ctx, node, f"binding {name!r} shadows the builtin of the same name"
        )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                args = node.args
                for arg in (
                    list(args.posonlyargs)
                    + list(args.args)
                    + list(args.kwonlyargs)
                    + ([args.vararg] if args.vararg else [])
                    + ([args.kwarg] if args.kwarg else [])
                ):
                    if arg.arg in _SHADOW_DENYLIST:
                        yield self._flag(ctx, arg, arg.arg)
                if (
                    not isinstance(node, ast.Lambda)
                    and node.name in _SHADOW_DENYLIST
                ):
                    yield self._flag(ctx, node, node.name)
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                if node.id in _SHADOW_DENYLIST:
                    yield self._flag(ctx, node, node.id)
            elif isinstance(node, ast.ExceptHandler):
                if node.name in _SHADOW_DENYLIST:
                    yield self._flag(ctx, node, node.name)


# ----------------------------------------------------------------------
# swallowed-error
# ----------------------------------------------------------------------
_BROAD_EXCEPTION_NAMES = frozenset({"Exception", "BaseException"})


@register
class SwallowedErrorRule(Rule):
    name = "swallowed-error"
    description = (
        "no broad exception handlers that silently discard the error "
        "(except: pass / except Exception: pass) in library code"
    )
    roles = ("src",)

    @classmethod
    def _is_broad(cls, node: Optional[ast.expr]) -> bool:
        """Whether the handler catches Exception/BaseException (or everything)."""
        if node is None:  # bare ``except:``
            return True
        if isinstance(node, ast.Name):
            return node.id in _BROAD_EXCEPTION_NAMES
        if isinstance(node, ast.Attribute):  # builtins.Exception
            return node.attr in _BROAD_EXCEPTION_NAMES
        if isinstance(node, ast.Tuple):
            return any(cls._is_broad(elt) for elt in node.elts)
        return False

    @staticmethod
    def _is_inert(stmt: ast.stmt) -> bool:
        """A statement that cannot handle the error: pass / ... / docstring."""
        if isinstance(stmt, ast.Pass):
            return True
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            return True  # ``...`` or a bare string
        return False

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not self._is_broad(node.type):
                continue
            if all(self._is_inert(stmt) for stmt in node.body):
                yield self.violation(
                    ctx,
                    node,
                    "broad except silently swallows the error — catch the "
                    "specific exception, or handle/log/re-raise it",
                )


# ----------------------------------------------------------------------
# untyped-def (strict typing gate for core/, engine/ and analysis/)
# ----------------------------------------------------------------------
_TYPED_PACKAGES = ("repro/core/", "repro/engine/", "repro/analysis/")


@register
class UntypedDefRule(Rule):
    name = "untyped-def"
    description = (
        "strict typing gate: functions in repro/core, repro/engine and "
        "repro/analysis must have fully annotated signatures"
    )
    roles = ("src",)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        normalized = ctx.path.replace("\\", "/")
        if not any(pkg in normalized for pkg in _TYPED_PACKAGES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            missing: List[str] = []
            args = node.args
            named = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            for index, arg in enumerate(named):
                if index == 0 and arg.arg in ("self", "cls"):
                    continue
                if arg.annotation is None:
                    missing.append(arg.arg)
            if node.returns is None:
                missing.append("return")
            if missing:
                yield self.violation(
                    ctx,
                    node,
                    f"def {node.name}() is missing annotations for: "
                    + ", ".join(missing),
                )
