"""State-lifecycle analysis: checkpoint completeness, restore symmetry,
per-query reset coverage and atomic invariant-group mutation.

PR 7's recovery guarantee ("answers after injected crashes are
bit-identical to fault-free runs") rests on :class:`QueryCheckpoint`
``capture``/``restore`` *happening* to enumerate every mutable field the
engine's event handlers touch, and on ``_finish_query`` releasing every
engine-side per-query entry.  Nothing enforced either contract — a new
per-query field silently survives a crash un-restored, or leaks across
queries after finish.  This module turns the PR 8 effect summaries into
that contract:

state inventory
    Every ``Class.attr`` transitively *written* by any event handler of a
    dispatcher class (see :attr:`EffectAnalysis.dispatch`), minus benign
    observers and exception classes.  Each attribute is classified in the
    checked-in ``state_manifest`` section of ``analysis_baseline.json``:

    ``per-query``
        Belongs to one query's lifecycle — must be checkpointed (if it
        lives on the checkpoint's runtime class) or released on the
        finish path (if it lives engine-side, keyed by query id).
    ``engine-global``
        Cluster/controller state that outlives any single query.
    ``derived``
        Reconstructible from other state (barrier transients rebuilt by
        ``reset_barrier_protocol``, dense caches, kernel scratch).
    ``unclassified``
        What ``--write-baseline`` emits for a new attribute; rules treat
        it as ``per-query`` (the conservative reading) until a human
        classifies it with a reason.

``checkpoint-gap``
    A per-query attribute on a checkpoint's runtime class that
    ``capture`` (transitively) never reads.
``restore-asymmetry``
    An attribute ``capture`` reads but ``restore`` never writes back, or
    a ``restore`` assignment sourcing a checkpoint slot whose value was
    never captured.
``finish-leak``
    A per-query attribute living *outside* the runtime class (engine-side
    maps keyed by query id) with no *clearing* write — ``pop``/``del``/
    ``clear``/empty-literal assignment — anywhere on the dispatcher's
    ``_finish_query`` path.
``atomic-mutation``
    A function on a handler path that can ``raise`` between writes to two
    members of a declared ``STATE_INVARIANT_GROUPS`` couple, leaving
    recovery-visible partial state (the sanitizer's message-conservation
    and state-shape invariants assume these attributes move together).

Like everything on the call graph this is an under-approximation of
reachability: an unresolvable helper contributes no reads/writes, so a
clean report means "no gap *found*", never "provably complete".
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import CallGraph, SymbolTable, project_graph
from repro.analysis.effects import (
    EffectAnalysis,
    _stmt_lines,
    effect_analysis_for,
)
from repro.analysis.visitor import (
    FileContext,
    ProjectContext,
    ProjectRule,
    Violation,
    register_project,
)

__all__ = [
    "MANIFEST_KINDS",
    "CheckpointSpec",
    "StateLifecycleAnalysis",
    "state_inventory",
    "CheckpointGapRule",
    "RestoreAsymmetryRule",
    "FinishLeakRule",
    "AtomicMutationRule",
]

#: legal ``kind`` values of a ``state_manifest`` entry
MANIFEST_KINDS = ("per-query", "engine-global", "derived", "unclassified")

#: the module-level constant declaring atomicity couples; a tuple of
#: tuples of ``"ShortClass.attr"`` strings, scanned from every src module
INVARIANT_GROUPS_NAME = "STATE_INVARIANT_GROUPS"

#: classes whose attributes never enter the inventory: exception payloads
#: are diagnostics, not engine state
_EXCEPTION_CLASS_RE = re.compile(r"(?:Error|Exception)$")

#: in-place mutators that *release* a slot (vs. the additive ones —
#: ``append``/``add``/``setdefault`` — which grow per-query state and
#: therefore never count as a finish-path clear)
_CLEARING_MUTATORS = frozenset(
    {"pop", "popitem", "popleft", "clear", "discard", "remove"}
)

#: constructor names whose zero-arg call is an empty-container literal
_EMPTY_CONSTRUCTORS = frozenset({"set", "dict", "list", "frozenset", "tuple"})


def _short(qname: str) -> str:
    return qname.split(".")[-1]


def _line_followers(fn_node: ast.AST) -> Dict[int, Set[int]]:
    """Map every statement line to the lines that may execute after it.

    The atomic-mutation generalization of
    :func:`repro.analysis.effects._schedule_followers`: instead of
    tracking schedule *calls*, every line of every statement becomes a
    key, and its followers are the remaining statements of each enclosing
    suite — cut off at ``return``/``raise`` (statements after an
    unconditional ``raise`` are dead, not followers) and at an
    ``if``/``else`` whose arms both terminate.  Loop backedges are not
    carried, matching the object-insensitivity rationale documented on
    the schedule variant.
    """
    out: Dict[int, Set[int]] = {}

    def process(stmts: Sequence[ast.stmt]) -> Tuple[Set[int], bool]:
        """Returns (lines escaping this suite, suite terminates)."""
        open_lines: Set[int] = set()
        for stmt in stmts:
            lines = _stmt_lines(stmt)
            for ln in open_lines:
                out[ln] |= lines
            for ln in lines:
                out.setdefault(ln, set())
            if isinstance(stmt, (ast.Return, ast.Raise)):
                return set(), True
            if isinstance(stmt, (ast.Break, ast.Continue)):
                return open_lines, True
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue  # nested scopes run at call time, not here
            sub_suites: List[Sequence[ast.stmt]] = []
            if isinstance(stmt, (ast.If, ast.While, ast.For, ast.AsyncFor)):
                sub_suites = [stmt.body, stmt.orelse]
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                sub_suites = [stmt.body]
            elif isinstance(stmt, ast.Try):
                sub_suites = [
                    stmt.body,
                    *[h.body for h in stmt.handlers],
                    stmt.orelse,
                    stmt.finalbody,
                ]
            if not sub_suites:
                open_lines |= lines
                continue
            inner = {
                ln
                for suite in sub_suites
                for sub in suite
                for ln in _stmt_lines(sub)
            }
            open_lines |= lines - inner
            escaped: Set[int] = set()
            terms: List[bool] = []
            for suite in sub_suites:
                if not suite:
                    terms.append(False)
                    continue
                esc, term = process(suite)
                escaped |= esc
                terms.append(term)
            open_lines |= escaped
            if isinstance(stmt, ast.If) and stmt.orelse and all(terms):
                return set(), True
        return open_lines, False

    body = getattr(fn_node, "body", None)
    if isinstance(body, list):
        process(body)
    return out


@dataclass
class CheckpointSpec:
    """One discovered checkpoint class: capture/restore pair + runtime."""

    cls_qname: str
    runtime_cls: str
    capture_qname: str
    restore_qname: str
    #: runtime attributes transitively *read* by ``capture``
    captured: Set[str] = field(default_factory=set)
    #: runtime attributes transitively *written* by ``restore``
    restored: Set[str] = field(default_factory=set)
    #: runtime attr -> line of a ``restore`` assignment sourcing a
    #: checkpoint slot (``qr.x = f(self.y)``) — the "restored" direction
    #: of the symmetry check
    slot_restores: Dict[str, int] = field(default_factory=dict)


class StateLifecycleAnalysis:
    """State inventory + checkpoint/finish/invariant-group extraction."""

    def __init__(self, project: ProjectContext) -> None:
        self.project = project
        self.effects: EffectAnalysis = effect_analysis_for(project)
        self.table: SymbolTable = self.effects.table
        self.graph: CallGraph = self.effects.graph
        #: every handler-written ``ShortClass.attr`` (the inventory)
        self.inventory: Set[str] = self._build_inventory()
        #: checkpoint specs, keyed by checkpoint class qname
        self.specs: Dict[str, CheckpointSpec] = self._find_checkpoints()
        #: dispatcher class qname -> attrs cleared on its finish path
        self.finish_clears: Dict[str, Set[str]] = {}
        #: dispatcher class qname -> its ``_finish_query`` qname
        self.finish_methods: Dict[str, str] = {}
        for cls in self.effects.dispatch:
            finish = self.table.method(cls, "_finish_query")
            if finish is None:
                continue
            self.finish_methods[cls] = finish
            self.finish_clears[cls] = self._clearing_writes(finish)
        #: declared invariant groups, in declaration order
        self.invariant_groups: List[Tuple[str, ...]] = self._find_groups()

    # ------------------------------------------------------------------
    # manifest access
    # ------------------------------------------------------------------
    def kind_of(self, attr: str) -> str:
        """Manifest kind of an inventory attribute (missing -> unclassified)."""
        entry = self.project.state_manifest.get(attr)
        if isinstance(entry, dict):
            kind = entry.get("kind")
            if kind in MANIFEST_KINDS:
                return str(kind)
        return "unclassified"

    def _per_query(self, attr: str) -> bool:
        """Whether rules must treat the attribute as per-query state."""
        return self.kind_of(attr) in ("per-query", "unclassified")

    def _classification_note(self, attr: str) -> str:
        if attr in self.project.state_manifest:
            return ""
        return " (not classified in state_manifest — treated as per-query)"

    # ------------------------------------------------------------------
    # inventory
    # ------------------------------------------------------------------
    def _build_inventory(self) -> Set[str]:
        inventory: Set[str] = set()
        for handlers in self.effects.handlers.values():
            for effects in handlers.values():
                inventory |= effects.hazardous_writes()
        return {
            attr
            for attr in inventory
            if not _EXCEPTION_CLASS_RE.search(attr.split(".")[0])
        }

    # ------------------------------------------------------------------
    # checkpoint specs
    # ------------------------------------------------------------------
    def _find_checkpoints(self) -> Dict[str, CheckpointSpec]:
        """Any class defining both ``capture`` and ``restore`` methods.

        The runtime class is the annotated type of ``capture``'s first
        non-``self``/``cls`` parameter; a capture without one (or with an
        unresolvable annotation) is skipped — the rules only reason about
        pairs whose state home they can actually see.
        """
        specs: Dict[str, CheckpointSpec] = {}
        for cls_qname, info in sorted(self.table.classes.items()):
            capture = info.methods.get("capture")
            restore = info.methods.get("restore")
            if capture is None or restore is None:
                continue
            runtime = self._runtime_param(capture)
            if runtime is None:
                continue
            spec = CheckpointSpec(
                cls_qname=cls_qname,
                runtime_cls=runtime,
                capture_qname=capture,
                restore_qname=restore,
            )
            runtime_short = _short(runtime)
            for callee in self.graph.transitive(capture):
                direct = self.effects._direct.get(callee)
                if direct is None:
                    continue
                for attr in direct.reads:
                    cls, _, name = attr.partition(".")
                    if cls == runtime_short:
                        spec.captured.add(name)
            for callee in self.graph.transitive(restore):
                direct = self.effects._direct.get(callee)
                if direct is None:
                    continue
                for attr in direct.writes:
                    cls, _, name = attr.partition(".")
                    if cls == runtime_short:
                        spec.restored.add(name)
            self._extract_slot_restores(spec)
            specs[cls_qname] = spec
        return specs

    def _runtime_param(self, capture_qname: str) -> Optional[str]:
        fn = self.table.functions[capture_qname]
        args = fn.node.args
        named = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        for arg in named:
            if arg.arg in ("self", "cls"):
                continue
            resolved = self.table.resolve_annotation(fn.module, arg.annotation)
            if resolved is not None and resolved.cls in self.table.classes:
                return resolved.cls
        return None

    def _extract_slot_restores(self, spec: CheckpointSpec) -> None:
        """Direct ``restore`` assigns whose value flows from a checkpoint slot.

        ``qr.x = copy(self.y)`` restores runtime attr ``x`` *from the
        checkpoint* — if ``x`` was never captured, the slot it reads is
        stale garbage.  Resets that rebuild from the runtime itself
        (``qr.involved = set(qr.mailboxes)``) or from constants read no
        checkpoint slot and are deliberately not recorded.
        """
        fn = self.table.functions[spec.restore_qname]
        runtime_short = _short(spec.runtime_cls)
        ck_short = _short(spec.cls_qname)
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Assign):
                continue
            reads_slot = any(
                isinstance(sub, ast.Attribute)
                and isinstance(sub.ctx, ast.Load)
                and self._attr_owner(spec.restore_qname, sub) == ck_short
                for sub in ast.walk(node.value)
            )
            if not reads_slot:
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and self._attr_owner(spec.restore_qname, target)
                    == runtime_short
                ):
                    spec.slot_restores.setdefault(target.attr, target.lineno)

    def _attr_owner(self, fn_qname: str, node: ast.Attribute) -> Optional[str]:
        base = self.graph.expr_type(fn_qname, node.value)
        if base is None or base.cls is None:
            return None
        if base.cls not in self.table.classes:
            return None
        return _short(base.cls)

    # ------------------------------------------------------------------
    # finish-path clearing writes
    # ------------------------------------------------------------------
    def _clearing_writes(self, finish_qname: str) -> Set[str]:
        """``ShortClass.attr`` released anywhere on the finish closure.

        Only *clearing* shapes count — ``pop``/``del``/``clear``/
        empty-literal assignment.  The closure legitimately reaches
        ``_admit_pending`` -> ``_start_query`` (finishing one query admits
        the next), whose writes are all additive and therefore invisible
        here; counting plain writes instead would mark every attribute
        "released" the moment the next query starts.
        """
        cleared: Set[str] = set()
        for callee in sorted(self.graph.transitive(finish_qname)):
            fn = self.table.functions.get(callee)
            if fn is None or fn.ctx.role != "src":
                continue
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Call):
                    func = node.func
                    if (
                        isinstance(func, ast.Attribute)
                        and func.attr in _CLEARING_MUTATORS
                        and isinstance(func.value, ast.Attribute)
                    ):
                        effect = self.effects._effect_name(callee, func.value)
                        if effect is not None:
                            cleared.add(effect)
                elif isinstance(node, ast.Delete):
                    for target in node.targets:
                        attr_node: Optional[ast.AST] = None
                        if isinstance(target, ast.Attribute):
                            attr_node = target
                        elif isinstance(target, ast.Subscript) and isinstance(
                            target.value, ast.Attribute
                        ):
                            attr_node = target.value
                        if isinstance(attr_node, ast.Attribute):
                            effect = self.effects._effect_name(callee, attr_node)
                            if effect is not None:
                                cleared.add(effect)
                elif isinstance(node, ast.Assign):
                    if not self._is_empty_literal(node.value):
                        continue
                    for target in node.targets:
                        if isinstance(target, ast.Attribute):
                            effect = self.effects._effect_name(callee, target)
                            if effect is not None:
                                cleared.add(effect)
        return cleared

    @staticmethod
    def _is_empty_literal(node: ast.AST) -> bool:
        if isinstance(node, ast.Constant) and node.value is None:
            return True
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)) and not node.elts:
            return True
        if isinstance(node, ast.Dict) and not node.keys:
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _EMPTY_CONSTRUCTORS
            and not node.args
            and not node.keywords
        )

    # ------------------------------------------------------------------
    # invariant groups
    # ------------------------------------------------------------------
    def _find_groups(self) -> List[Tuple[str, ...]]:
        groups: List[Tuple[str, ...]] = []
        for module in sorted(self.table.modules):
            ctx = self.table.modules[module]
            if ctx.role != "src":
                continue
            for stmt in ctx.tree.body:
                value: Optional[ast.AST] = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target = stmt.targets[0]
                    if (
                        isinstance(target, ast.Name)
                        and target.id == INVARIANT_GROUPS_NAME
                    ):
                        value = stmt.value
                elif isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    if stmt.target.id == INVARIANT_GROUPS_NAME:
                        value = stmt.value
                if not isinstance(value, (ast.Tuple, ast.List)):
                    continue
                for elt in value.elts:
                    if not isinstance(elt, (ast.Tuple, ast.List)):
                        continue
                    members = tuple(
                        str(item.value)
                        for item in elt.elts
                        if isinstance(item, ast.Constant)
                        and isinstance(item.value, str)
                    )
                    if len(members) >= 2:
                        groups.append(members)
        return groups

    # ------------------------------------------------------------------
    # atomic-mutation extraction
    # ------------------------------------------------------------------
    def handler_reachable(self) -> Dict[str, Set[str]]:
        """fn qname -> event kinds whose handlers (transitively) reach it."""
        reached: Dict[str, Set[str]] = {}
        for handlers in self.effects.handlers.values():
            for kind, effects in handlers.items():
                for callee in self.graph.transitive(effects.qname):
                    reached.setdefault(callee, set()).add(kind)
        return reached

    def group_write_sites(
        self, fn_qname: str, group: Tuple[str, ...]
    ) -> List[Tuple[str, int]]:
        """(attr, line) writes of group members attributable to ``fn``.

        Direct attribute stores count at their own line; a call whose
        *transitive* writes intersect the group counts at the call line —
        a helper that re-homes mailboxes is one atomic step from the
        caller's perspective, but its call site still orders against the
        caller's raises.
        """
        members = set(group)
        sites: List[Tuple[str, int]] = []
        direct = self.effects._direct.get(fn_qname)
        if direct is not None:
            sites.extend(
                (attr, line)
                for attr, line in direct.write_sites
                if attr in members
            )
        for callee, call_node in self.graph.sites.get(fn_qname, ()):
            if callee == fn_qname:
                continue
            callee_writes: Set[str] = set()
            for sub in self.graph.transitive(callee):
                sub_direct = self.effects._direct.get(sub)
                if sub_direct is not None:
                    callee_writes |= sub_direct.writes
            for attr in sorted(callee_writes & members):
                sites.append((attr, call_node.lineno))
        return sites

    @staticmethod
    def raise_lines(fn_node: ast.AST) -> Set[int]:
        """Lines of ``raise`` statements directly inside the function."""
        lines: Set[int] = set()
        nested: Set[int] = set()
        for node in ast.walk(fn_node):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node is not fn_node
            ):
                nested |= {
                    getattr(sub, "lineno", -1) for sub in ast.walk(node)
                }
        for node in ast.walk(fn_node):
            if isinstance(node, ast.Raise) and node.lineno not in nested:
                lines.add(node.lineno)
        return lines


#: (file-context identity tuple) -> analysis; same FIFO discipline as the
#: call-graph cache — the four lifecycle rules of one run share one build
_ANALYSIS_CACHE: Dict[Tuple[int, ...], StateLifecycleAnalysis] = {}
_ANALYSIS_CACHE_LIMIT = 8


def _analysis_for(project: ProjectContext) -> StateLifecycleAnalysis:
    key = tuple(sorted(id(ctx) for ctx in project.files))
    cached = _ANALYSIS_CACHE.get(key)
    if cached is not None and cached.project.state_manifest == project.state_manifest:
        return cached
    analysis = StateLifecycleAnalysis(project)
    if len(_ANALYSIS_CACHE) >= _ANALYSIS_CACHE_LIMIT:
        _ANALYSIS_CACHE.pop(next(iter(_ANALYSIS_CACHE)))
    _ANALYSIS_CACHE[key] = analysis
    return analysis


def state_inventory(project: ProjectContext) -> List[str]:
    """Sorted handler-written attribute inventory (for ``--write-baseline``)."""
    return sorted(_analysis_for(project).inventory)


def _fn_anchor(
    analysis: StateLifecycleAnalysis, qname: str
) -> Tuple[FileContext, ast.AST]:
    fn = analysis.table.functions[qname]
    return fn.ctx, fn.node


@register_project
class CheckpointGapRule(ProjectRule):
    name = "checkpoint-gap"
    description = (
        "a per-query attribute of a checkpoint's runtime class that "
        "capture never reads — lost across crash recovery"
    )
    roles = ("src",)

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        analysis = _analysis_for(project)
        for cls_qname in sorted(analysis.specs):
            spec = analysis.specs[cls_qname]
            runtime_short = _short(spec.runtime_cls)
            ctx, node = _fn_anchor(analysis, spec.capture_qname)
            for attr in sorted(analysis.inventory):
                cls, _, name = attr.partition(".")
                if cls != runtime_short or name in spec.captured:
                    continue
                if not analysis._per_query(attr):
                    continue
                yield self.violation(
                    ctx,
                    node,
                    f"{_short(cls_qname)}.capture never reads {attr}, but "
                    "event handlers write it — the field is lost across "
                    "crash recovery; capture it or classify it as derived/"
                    "engine-global in the state_manifest"
                    + analysis._classification_note(attr),
                    fingerprint=f"checkpoint-gap::{_short(cls_qname)}::{attr}",
                )


@register_project
class RestoreAsymmetryRule(ProjectRule):
    name = "restore-asymmetry"
    description = (
        "a checkpoint attribute captured but never restored, or restored "
        "from a slot that capture never fills"
    )
    roles = ("src",)

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        analysis = _analysis_for(project)
        for cls_qname in sorted(analysis.specs):
            spec = analysis.specs[cls_qname]
            runtime_short = _short(spec.runtime_cls)
            ck_short = _short(cls_qname)
            ctx, node = _fn_anchor(analysis, spec.restore_qname)
            for name in sorted(spec.captured - spec.restored):
                yield self.violation(
                    ctx,
                    node,
                    f"{ck_short}.capture reads {runtime_short}.{name} but "
                    f"restore never writes it back — the captured value is "
                    "dead weight and recovery resumes with post-crash state",
                    fingerprint=(
                        f"restore-asymmetry::{ck_short}::captured::{name}"
                    ),
                )
            for name, line in sorted(spec.slot_restores.items()):
                if name in spec.captured:
                    continue
                yield Violation(
                    rule=self.name,
                    path=ctx.path,
                    line=line,
                    col=0,
                    message=(
                        f"{ck_short}.restore assigns {runtime_short}.{name} "
                        "from a checkpoint slot that capture never fills — "
                        "recovery would install stale or default data"
                    ),
                    fingerprint=(
                        f"restore-asymmetry::{ck_short}::restored::{name}"
                    ),
                )


@register_project
class FinishLeakRule(ProjectRule):
    name = "finish-leak"
    description = (
        "a per-query attribute outside the runtime class with no clearing "
        "write on the _finish_query path — state leaks across queries"
    )
    roles = ("src",)

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        analysis = _analysis_for(project)
        runtime_shorts = {
            _short(spec.runtime_cls) for spec in analysis.specs.values()
        }
        for cls_qname in sorted(analysis.finish_methods):
            finish = analysis.finish_methods[cls_qname]
            cleared = analysis.finish_clears[cls_qname]
            ctx, node = _fn_anchor(analysis, finish)
            for attr in sorted(analysis.inventory):
                cls, _, _name = attr.partition(".")
                if cls in runtime_shorts or attr in cleared:
                    continue
                if not analysis._per_query(attr):
                    continue
                yield self.violation(
                    ctx,
                    node,
                    f"per-query state {attr} is written by event handlers "
                    f"but never released (pop/del/clear) on the "
                    f"{_short(cls_qname)}._finish_query path — it leaks "
                    "across queries; release it or classify it as "
                    "engine-global in the state_manifest with a reason"
                    + analysis._classification_note(attr),
                    fingerprint=f"finish-leak::{_short(cls_qname)}::{attr}",
                )


@register_project
class AtomicMutationRule(ProjectRule):
    name = "atomic-mutation"
    description = (
        "a handler-path function can raise between writes to one declared "
        "STATE_INVARIANT_GROUPS couple, leaving partial state"
    )
    roles = ("src",)

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        analysis = _analysis_for(project)
        if not analysis.invariant_groups:
            return
        reached = analysis.handler_reachable()
        seen: Set[str] = set()
        for fn_qname in sorted(reached):
            fn = analysis.table.functions.get(fn_qname)
            if fn is None or fn.ctx.role != "src":
                continue
            raises = analysis.raise_lines(fn.node)
            if not raises:
                continue
            followers: Optional[Dict[int, Set[int]]] = None
            for group in analysis.invariant_groups:
                sites = analysis.group_write_sites(fn_qname, group)
                written_attrs = {attr for attr, _ in sites}
                if len(written_attrs) < 2:
                    continue
                if followers is None:
                    followers = _line_followers(fn.node)
                finding = self._torn_write(sites, raises, followers)
                if finding is None:
                    continue
                attr_a, attr_b, raise_line = finding
                first, second = sorted((attr_a, attr_b))
                fingerprint = (
                    f"atomic-mutation::{fn_qname}::{first}::{second}"
                )
                if fingerprint in seen:
                    continue
                seen.add(fingerprint)
                kinds = ", ".join(sorted(reached[fn_qname]))
                yield self.violation(
                    fn.ctx,
                    fn.node,
                    f"{fn.name} (reached from handler(s): {kinds}) can "
                    f"raise at line {raise_line} after writing {attr_a} "
                    f"but before writing {attr_b} — a torn update of the "
                    "declared invariant group "
                    f"({', '.join(group)}); hoist the raise above the "
                    "first write or make the group update atomic",
                    fingerprint=fingerprint,
                )

    @staticmethod
    def _torn_write(
        sites: List[Tuple[str, int]],
        raises: Set[int],
        followers: Dict[int, Set[int]],
    ) -> Optional[Tuple[str, str, int]]:
        """A (written attr, later attr, raise line) tear, if one exists."""
        for attr_a, line_a in sorted(sites, key=lambda s: s[1]):
            after_a = followers.get(line_a, set())
            live_raises = sorted(raises & after_a)
            if not live_raises:
                continue
            for attr_b, line_b in sites:
                if attr_b == attr_a or line_b not in after_a:
                    continue
                for raise_line in live_raises:
                    if line_b > raise_line:
                        return (attr_a, attr_b, raise_line)
        return None
