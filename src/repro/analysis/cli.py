"""Command-line front end: ``python -m repro.analysis [paths...]``.

With no paths, lints ``src/``, ``tests/``, ``benchmarks/`` and
``examples/`` relative to the current directory (the repo-root CI
invocation) — per-file rules on each file, then the whole-program rules
(call graph, RNG stream flow, virtual-time races) over everything parsed
together.  Exit status is 0 when clean, 1 on findings, 2 on usage errors.

``analysis_baseline.json`` in the current directory is picked up
automatically (override with ``--baseline``): its ``accepted``
fingerprints filter whole-program findings (so CI fails only on *new*
hazards) and its ``state_manifest`` classifies the state inventory the
lifecycle rules check.  ``--write-baseline`` regenerates the effect
summaries and the manifest in place (carrying the hand-curated
``accepted`` block and existing classifications); ``--effects-diff`` /
``--manifest-diff`` / ``--protocol-diff`` print the drift between the
checked-in baseline and HEAD for review artifacts, and
``--protocol-tables`` renders the extracted protocol automata as the
markdown block embedded in ``docs/engine.md``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis import lifecycle as _lifecycle  # noqa: F401  (project rules)
from repro.analysis import protocol as _protocol  # noqa: F401  (project rules)
from repro.analysis import races as _races  # noqa: F401  (registers project rules)
from repro.analysis import rngflow as _rngflow  # noqa: F401
from repro.analysis import rules as _rules  # noqa: F401  (registers the catalog)
from repro.analysis.baseline import (
    BASELINE_NAME,
    Baseline,
    diff_effects,
    diff_manifest,
    diff_protocol,
    find_baseline,
    load_baseline,
    render_baseline,
    render_manifest,
)
from repro.analysis.effects import effect_analysis_for
from repro.analysis.protocol import protocol_summary, render_protocol_tables
from repro.analysis.reporting import render_github, render_json, render_text
from repro.analysis.visitor import (
    all_project_rules,
    all_rules,
    lint_project,
    load_project,
)

__all__ = ["main", "build_parser"]

DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Simulation-safety static analysis for the Q-graph repo.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="report format (default: text; 'github' emits ::error annotations)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="parse input files on N threads (output is order-stable)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help=(
            f"effect/acceptance baseline (default: ./{BASELINE_NAME} "
            "when present; 'none' disables discovery)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate the baseline's effect summaries and exit",
    )
    parser.add_argument(
        "--effects-diff",
        action="store_true",
        help="print effect-summary drift vs the baseline and exit 0",
    )
    parser.add_argument(
        "--manifest-diff",
        action="store_true",
        help="print state-manifest drift vs the baseline and exit 0",
    )
    parser.add_argument(
        "--protocol-diff",
        action="store_true",
        help="print protocol-automaton drift vs the baseline and exit 0",
    )
    parser.add_argument(
        "--protocol-tables",
        action="store_true",
        help=(
            "print the extracted protocol automata as markdown tables "
            "(the docs/engine.md block) and exit 0"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _resolve_baseline(arg: Optional[str]) -> Optional[Path]:
    if arg == "none":
        return None
    if arg is not None:
        return Path(arg)
    return find_baseline()


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        catalog = {**all_rules(), **all_project_rules()}
        for name, rule in sorted(catalog.items()):
            roles = ",".join(rule.roles)
            scope = "project" if name in all_project_rules() else "file"
            print(f"{name:<22} [{roles}] ({scope}) {rule.description}")
        return 0

    if args.jobs < 1:
        print("repro-lint: --jobs must be >= 1", file=sys.stderr)
        return 2

    if args.paths:
        paths = [Path(p) for p in args.paths]
    else:
        paths = [Path(p) for p in DEFAULT_PATHS if Path(p).exists()]
        if not paths:
            print(
                "repro-lint: none of the default paths "
                f"{DEFAULT_PATHS} exist under {Path.cwd()}",
                file=sys.stderr,
            )
            return 2

    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"repro-lint: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    select: Optional[List[str]] = None
    if args.select:
        select = [name.strip() for name in args.select.split(",") if name.strip()]
        known = set(all_rules()) | set(all_project_rules())
        unknown = set(select) - known
        if unknown:
            # a typo'd --select silently selecting nothing would read as
            # "clean"; fail loudly and name the catalog
            print(
                f"repro-lint: unknown rule(s): {', '.join(sorted(unknown))}\n"
                f"valid rules: {', '.join(sorted(known))}",
                file=sys.stderr,
            )
            return 2

    baseline_path = _resolve_baseline(args.baseline)
    baseline = Baseline()
    if baseline_path is not None:
        if not baseline_path.is_file():
            print(f"repro-lint: no such baseline: {baseline_path}", file=sys.stderr)
            return 2
        try:
            baseline = load_baseline(baseline_path)
        except ValueError as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return 2

    if (
        args.write_baseline
        or args.effects_diff
        or args.manifest_diff
        or args.protocol_diff
        or args.protocol_tables
    ):
        # the effect summary is defined over the library sources only —
        # benchmarks/tests neither declare handlers nor shift effect sets;
        # the curated manifest rides along so the protocol automata carry
        # real state classifications instead of "unclassified"
        project = load_project(
            paths, jobs=args.jobs, manifest=baseline.state_manifest
        )
        if args.write_baseline:
            target = baseline_path or Path(BASELINE_NAME)
            target.write_text(
                render_baseline(
                    project,
                    accepted=baseline.accepted,
                    state_manifest=baseline.state_manifest,
                ),
                encoding="utf-8",
            )
            print(f"repro-lint: wrote {target}")
            return 0
        if args.protocol_tables:
            print(render_protocol_tables(project), end="")
            return 0
        if args.effects_diff:
            drift = diff_effects(
                baseline.effects,
                effect_analysis_for(project).effect_summary(),
            )
            for line in drift:
                print(line)
            print(f"repro-lint: {len(drift)} effect-summary change(s) vs baseline")
            return 0
        if args.protocol_diff:
            drift = diff_protocol(baseline.protocol, protocol_summary(project))
            for line in drift:
                print(line)
            print(
                f"repro-lint: {len(drift)} protocol-automaton change(s) "
                "vs baseline"
            )
            return 0
        drift = diff_manifest(
            baseline.state_manifest,
            render_manifest(project, curated=baseline.state_manifest),
        )
        for line in drift:
            print(line)
        print(f"repro-lint: {len(drift)} state-manifest change(s) vs baseline")
        return 0

    violations = lint_project(
        paths,
        select=select,
        jobs=args.jobs,
        accepted=baseline.accepted,
        manifest=baseline.state_manifest,
    )
    renderer = {
        "json": render_json,
        "github": render_github,
    }.get(args.format, render_text)
    print(renderer(violations))
    return 1 if violations else 0
