"""Command-line front end: ``python -m repro.analysis [paths...]``.

With no paths, lints ``src/`` and ``tests/`` relative to the current
directory (the repo-root CI invocation).  Exit status is the number of
files with findings capped at 1 — i.e. 0 when clean, 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis import rules as _rules  # noqa: F401  (registers the catalog)
from repro.analysis.reporting import render_json, render_text
from repro.analysis.visitor import all_rules, lint_paths

__all__ = ["main", "build_parser"]

DEFAULT_PATHS = ("src", "tests")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Simulation-safety static analysis for the Q-graph repo.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files or directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for name, rule in sorted(all_rules().items()):
            roles = ",".join(rule.roles)
            print(f"{name:<22} [{roles}] {rule.description}")
        return 0

    if args.paths:
        paths = [Path(p) for p in args.paths]
    else:
        paths = [Path(p) for p in DEFAULT_PATHS if Path(p).exists()]
        if not paths:
            print(
                "repro-lint: none of the default paths "
                f"{DEFAULT_PATHS} exist under {Path.cwd()}",
                file=sys.stderr,
            )
            return 2

    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"repro-lint: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    select: Optional[List[str]] = None
    if args.select:
        select = [name.strip() for name in args.select.split(",") if name.strip()]
        unknown = set(select) - set(all_rules())
        if unknown:
            print(
                f"repro-lint: unknown rule(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2

    violations = lint_paths(paths, select=select)
    renderer = render_json if args.format == "json" else render_text
    print(renderer(violations))
    return 1 if violations else 0
