"""Protocol-liveness analysis: barrier automata over the event handlers.

Q-graph's coordination protocols — the STOP/START repartition barrier
(stages A/B/C), recovery stage R, the SHARED_BSP superstep barrier and
the heartbeat/retry control plane — are all implemented as flag/counter
mutations spread across the engine's ``_on_*`` event handlers.  Every
protocol bug fixed so far (stale acks in PR 1, stranded barriers in
PR 4, mid-BSP STOP in PR 6, the PR 8 epoch-bump hoist) was a *liveness*
or *generation-fencing* hole in exactly that mutation web.  This module
makes the web explicit: it extracts, per dispatcher class, a **protocol
automaton** whose

states
    are the dispatcher's phase flags, epoch counters and parked-work
    buffers (``paused``, ``_outstanding``, ``_held_tasks``,
    ``barrier_epoch``, … — the waiting-shaped subset of PR 9's
    ``state_manifest`` inventory, each summarized with its manifest
    classification), plus the members of every declared barrier-ack
    couple (see :data:`BARRIER_PROTOCOLS_NAME`);
transitions
    are handler executions, annotated with the protocol states each
    handler (transitively) *enters* (parks a task, seeds a counter, sets
    a stop flag) or *releases* (clears, decrements, resets), the
    fence-shaped guards dominating its effects, and the event kinds it
    schedules — the automaton's edges to other transitions.

The extracted automata are persisted in the ``protocol`` section of
``analysis_baseline.json`` (``--write-baseline`` regenerates,
``--protocol-diff`` reports drift) and rendered as markdown tables for
``docs/engine.md`` via ``--protocol-tables``.  Four project rules prove
the protocols over the automata:

``barrier-liveness``
    Every waiting state some handler enters has a release transition in
    a handler that is actually schedulable — no terminal waiting state.
    A parked task buffer nobody clears, a stop flag nothing resets, an
    ack counter with no decrement path all strand the simulation at the
    barrier (the PR 4 bug class, generalized).
``ack-completeness``
    Every declared ack/participant/epoch couple stays generation-
    consistent: re-seeding the participant set resets the ack set,
    re-seeding the ack set bumps the epoch (else in-flight acks from the
    previous generation count toward the new barrier — the PR 1 stale-
    ack bug), bumping the epoch adjusts the ack set, and the accepting
    handler compares the message's epoch against the live one.
``epoch-fence``
    Every handler consuming a schedulable message with non-fence effects
    guards them behind an epoch/phase comparison — a message produced
    before a STOP/recovery boundary can be consumed after it, and an
    unfenced handler applies stale work (the PR 8 stale-dispatch bug
    class).
``event-kind-closure``
    Every kind passed to ``schedule`` resolves to a handler of some
    dispatcher, and every ``_on_*`` handler is reachable from at least
    one schedule site — a typo'd kind is silently dropped by the
    dispatch ``getattr`` default, and an unscheduled handler is dead
    protocol surface.

Like everything built on the call graph this under-approximates
reachability (an unresolvable helper contributes no effects), so a clean
report means "no hole *found*", never "protocol proven live".
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph, SymbolTable
from repro.analysis.effects import (
    EffectAnalysis,
    GUARD_ATTR_RE,
    HandlerEffects,
    effect_analysis_for,
)
from repro.analysis.lifecycle import MANIFEST_KINDS
from repro.analysis.visitor import (
    FileContext,
    ProjectContext,
    ProjectRule,
    Violation,
    register_project,
)

__all__ = [
    "BARRIER_PROTOCOLS_NAME",
    "WAITING_ATTR_RE",
    "ProtocolTransition",
    "ProtocolAutomaton",
    "ProtocolAnalysis",
    "protocol_summary",
    "render_protocol_tables",
    "BarrierLivenessRule",
    "AckCompletenessRule",
    "EpochFenceRule",
    "EventKindClosureRule",
]

#: the module-level constant declaring barrier-ack couples; a tuple of
#: ``("Cls.ack_set", "Cls.participant_set", "Cls.epoch")`` triples,
#: scanned from every src module (same discovery discipline as
#: ``STATE_INVARIANT_GROUPS``) — the declaration documents the protocol,
#: the ``ack-completeness`` rule proves the code against it
BARRIER_PROTOCOLS_NAME = "BARRIER_ACK_PROTOCOLS"

#: attribute-name shapes that denote a *waiting* protocol state: parked/
#: held work buffers, pending/outstanding counters, stop/pause/recovery
#: mode flags, crash bookkeeping.  Deliberately excludes epoch/generation
#: counters (monotonic by design — they never "release") and ack sets
#: (owned by the declared barrier couples instead).
WAITING_ATTR_RE = re.compile(
    r"held|park|wait|defer|pending|outstanding|paus|stop|halt|recover"
    r"|restor|taint|dead|down|crash|undetect|in_progress|inflight"
    r"|in_flight|quiesc|particip"
)

#: waiting-shaped names that are pure chronometry or statistics, not
#: protocol states (``_stop_begin_time`` records *when* the stop began,
#: not *that* one is pending)
_NON_WAITING_RE = re.compile(r"time|stamp|clock|count|total|history|stat")

#: in-place mutators that *enter* a waiting state (park work, grow a set)
_ENTER_MUTATORS = frozenset(
    {"append", "appendleft", "extend", "insert", "add", "setdefault",
     "update", "put"}
)
#: in-place mutators that *release* a waiting state
_RELEASE_MUTATORS = frozenset(
    {"pop", "popitem", "popleft", "clear", "discard", "remove"}
)
#: constructor names whose zero-arg call is an empty-container literal
_EMPTY_CONSTRUCTORS = frozenset({"set", "dict", "list", "frozenset", "tuple"})


def _short(qname: str) -> str:
    return qname.split(".")[-1]


def _is_reset_value(node: ast.AST) -> bool:
    """An assignment value that empties the target (the "reset" shape)."""
    if isinstance(node, ast.Constant) and (
        node.value is None or node.value is False
    ):
        return True
    if isinstance(node, (ast.List, ast.Tuple, ast.Set)) and not node.elts:
        return True
    if isinstance(node, ast.Dict) and not node.keys:
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _EMPTY_CONSTRUCTORS
        and not node.args
        and not node.keywords
    )


@dataclass
class ProtocolTransition:
    """One automaton transition: a handler execution, summarized."""

    kind: str
    qname: str
    #: protocol states this handler (transitively) enters / releases
    enters: List[str] = field(default_factory=list)
    releases: List[str] = field(default_factory=list)
    #: fence-shaped guard attributes dominating the handler's effects
    guards: List[str] = field(default_factory=list)
    #: event kinds this handler (transitively) schedules — automaton edges
    schedules: List[str] = field(default_factory=list)
    guarded: bool = False

    def summary(self) -> Dict[str, object]:
        """JSON-stable form for the baseline's ``protocol`` section."""
        return {
            "enters": list(self.enters),
            "releases": list(self.releases),
            "guards": list(self.guards),
            "schedules": list(self.schedules),
            "guarded": self.guarded,
        }


@dataclass
class ProtocolAutomaton:
    """One dispatcher's protocol state machine."""

    dispatcher: str
    #: protocol state -> manifest kind (per-query/engine-global/derived/
    #: unclassified) — the PR 9 classification, carried into the summary
    states: Dict[str, str] = field(default_factory=dict)
    #: declared barrier-ack couples whose classes this dispatcher touches
    couples: List[Tuple[str, str, str]] = field(default_factory=list)
    #: event kind -> transition
    transitions: Dict[str, ProtocolTransition] = field(default_factory=dict)

    def summary(self) -> Dict[str, object]:
        return {
            "states": dict(sorted(self.states.items())),
            "couples": [list(c) for c in sorted(self.couples)],
            "transitions": {
                kind: t.summary()
                for kind, t in sorted(self.transitions.items())
            },
        }


class ProtocolAnalysis:
    """Automaton extraction over the shared effect analysis."""

    def __init__(self, project: ProjectContext) -> None:
        self.project = project
        self.effects: EffectAnalysis = effect_analysis_for(project)
        self.table: SymbolTable = self.effects.table
        self.graph: CallGraph = self.effects.graph
        #: per-function write-shape map, built lazily
        self._shapes: Dict[str, Dict[str, Set[str]]] = {}
        #: declared ack/participant/epoch couples, in declaration order
        self.couples: List[Tuple[str, str, str]] = self._find_couples()
        #: event kind -> [(producing fn qname, schedule line)] across src
        self.kind_producers: Dict[str, List[Tuple[str, int]]] = (
            self._find_producers()
        )
        #: fn qname -> event kinds whose handlers (transitively) reach it
        self.on_handler_path: Dict[str, Set[str]] = self._handler_reachable()
        #: dispatcher class qname -> extracted automaton
        self.automata: Dict[str, ProtocolAutomaton] = {
            cls: self._extract_automaton(cls)
            for cls in sorted(self.effects.dispatch)
        }

    # ------------------------------------------------------------------
    # manifest access
    # ------------------------------------------------------------------
    def kind_of(self, attr: str) -> str:
        """Manifest kind of an attribute (missing -> unclassified)."""
        entry = self.project.state_manifest.get(attr)
        if isinstance(entry, dict):
            kind = entry.get("kind")
            if kind in MANIFEST_KINDS:
                return str(kind)
        return "unclassified"

    # ------------------------------------------------------------------
    # write-shape classification
    # ------------------------------------------------------------------
    def write_shapes(self, fn_qname: str) -> Dict[str, Set[str]]:
        """``attr -> {"enter"|"release"|"reset"}`` for one function.

        ``enter`` grows/sets protocol state (park a task, seed a counter,
        raise a flag); ``release`` clears it (pop, decrement, lower the
        flag); ``reset`` is the release subcase that re-seeds a container
        to empty — the shape that starts a fresh barrier generation.
        """
        cached = self._shapes.get(fn_qname)
        if cached is not None:
            return cached
        shapes: Dict[str, Set[str]] = {}
        fn = self.table.functions.get(fn_qname)
        if fn is None or fn.ctx.role != "src":
            self._shapes[fn_qname] = shapes
            return shapes

        def mark(node: ast.AST, *tags: str) -> None:
            attr_node: Optional[ast.Attribute] = None
            if isinstance(node, ast.Attribute):
                attr_node = node
            elif isinstance(node, ast.Subscript) and isinstance(
                node.value, ast.Attribute
            ):
                # a slot write grows the container, never empties it
                attr_node = node.value
                tags = ("enter",) if "enter" not in tags else tags
            if attr_node is None:
                return
            effect = self.effects._effect_name(fn_qname, attr_node)
            if effect is not None:
                shapes.setdefault(effect, set()).update(tags)

        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign):
                tags = (
                    ("release", "reset")
                    if _is_reset_value(node.value)
                    else ("enter",)
                )
                for target in node.targets:
                    elts = (
                        list(target.elts)
                        if isinstance(target, (ast.Tuple, ast.List))
                        else [target]
                    )
                    for elt in elts:
                        mark(elt, *tags)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                mark(
                    node.target,
                    *(
                        ("release", "reset")
                        if _is_reset_value(node.value)
                        else ("enter",)
                    ),
                )
            elif isinstance(node, ast.AugAssign):
                mark(
                    node.target,
                    "release" if isinstance(node.op, ast.Sub) else "enter",
                )
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Attribute):
                        mark(target, "release")
                    elif isinstance(target, ast.Subscript):
                        # ``del x.attr[k]`` releases the slot
                        if isinstance(target.value, ast.Attribute):
                            effect = self.effects._effect_name(
                                fn_qname, target.value
                            )
                            if effect is not None:
                                shapes.setdefault(effect, set()).add(
                                    "release"
                                )
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) and isinstance(
                    func.value, ast.Attribute
                ):
                    if func.attr in _ENTER_MUTATORS:
                        mark(func.value, "enter")
                    elif func.attr in _RELEASE_MUTATORS:
                        mark(func.value, "release")
        self._shapes[fn_qname] = shapes
        return shapes

    def closure_shapes(self, fn_qname: str) -> Dict[str, Set[str]]:
        """Write shapes of ``fn`` unioned over its transitive callees."""
        merged: Dict[str, Set[str]] = {}
        for callee in sorted(self.graph.transitive(fn_qname)):
            for attr, tags in self.write_shapes(callee).items():
                merged.setdefault(attr, set()).update(tags)
        return merged

    def closure_writes(self, fn_qname: str) -> Set[str]:
        """Transitive attribute write set of ``fn``."""
        writes: Set[str] = set()
        for callee in self.graph.transitive(fn_qname):
            direct = self.effects._direct.get(callee)
            if direct is not None:
                writes |= direct.writes
        return writes

    # ------------------------------------------------------------------
    # couple / producer / reachability discovery
    # ------------------------------------------------------------------
    def _find_couples(self) -> List[Tuple[str, str, str]]:
        couples: List[Tuple[str, str, str]] = []
        for module in sorted(self.table.modules):
            ctx = self.table.modules[module]
            if ctx.role != "src":
                continue
            for stmt in ctx.tree.body:
                value: Optional[ast.AST] = None
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target = stmt.targets[0]
                    if (
                        isinstance(target, ast.Name)
                        and target.id == BARRIER_PROTOCOLS_NAME
                    ):
                        value = stmt.value
                elif isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    if stmt.target.id == BARRIER_PROTOCOLS_NAME:
                        value = stmt.value
                if not isinstance(value, (ast.Tuple, ast.List)):
                    continue
                for elt in value.elts:
                    if not isinstance(elt, (ast.Tuple, ast.List)):
                        continue
                    members = [
                        str(item.value)
                        for item in elt.elts
                        if isinstance(item, ast.Constant)
                        and isinstance(item.value, str)
                    ]
                    if len(members) == 3:
                        couples.append((members[0], members[1], members[2]))
        return couples

    def _find_producers(self) -> Dict[str, List[Tuple[str, int]]]:
        producers: Dict[str, List[Tuple[str, int]]] = {}
        for fn_qname in sorted(self.effects._direct):
            direct = self.effects._direct[fn_qname]
            for kind, _delay, line, _followers in direct.schedules:
                if kind is not None:
                    producers.setdefault(kind, []).append((fn_qname, line))
        return producers

    def _handler_reachable(self) -> Dict[str, Set[str]]:
        reached: Dict[str, Set[str]] = {}
        for handlers in self.effects.handlers.values():
            for kind, he in handlers.items():
                for callee in self.graph.transitive(he.qname):
                    reached.setdefault(callee, set()).add(kind)
        return reached

    # ------------------------------------------------------------------
    # automaton extraction
    # ------------------------------------------------------------------
    def _protocol_classes(self, cls_qname: str) -> Set[str]:
        """Short class names whose attrs may be this dispatcher's states.

        The dispatcher itself, plus the owner class of every declared
        barrier couple the dispatcher's handlers actually write — the
        per-query runtime objects the barrier protocol manipulates.
        """
        classes = {_short(cls_qname)}
        written: Set[str] = set()
        for he in self.effects.handlers.get(cls_qname, {}).values():
            written |= he.writes
        for ack, _participants, _epoch in self.couples:
            if any(attr in written for attr in (ack, _participants, _epoch)):
                classes.add(ack.split(".")[0])
        return classes

    def _extract_automaton(self, cls_qname: str) -> ProtocolAutomaton:
        handlers = self.effects.handlers[cls_qname]
        classes = self._protocol_classes(cls_qname)
        written: Set[str] = set()
        for he in handlers.values():
            written |= he.hazardous_writes()
        states: Dict[str, str] = {}
        for attr in written:
            owner, _, name = attr.partition(".")
            if owner not in classes:
                continue
            if WAITING_ATTR_RE.search(name) and not _NON_WAITING_RE.search(
                name
            ):
                states[attr] = self.kind_of(attr)
        couples = [
            c
            for c in self.couples
            if c[0].split(".")[0] in classes or any(m in written for m in c)
        ]
        for couple in couples:
            for member in couple:
                states.setdefault(member, self.kind_of(member))
        auto = ProtocolAutomaton(
            dispatcher=_short(cls_qname), states=states, couples=couples
        )
        for kind in sorted(handlers):
            he = handlers[kind]
            shapes = self.closure_shapes(he.qname)
            enters = sorted(
                a for a, tags in shapes.items() if a in states and "enter" in tags
            )
            releases = sorted(
                a
                for a, tags in shapes.items()
                if a in states and "release" in tags
            )
            guards = sorted(
                g
                for g in he.guards
                if GUARD_ATTR_RE.search(g.split(".")[-1])
            )
            schedules = sorted(
                {k for k, _delay, _line, _f in he.schedules if k is not None}
            )
            auto.transitions[kind] = ProtocolTransition(
                kind=kind,
                qname=he.qname,
                enters=enters,
                releases=releases,
                guards=guards,
                schedules=schedules,
                guarded=he.is_guarded(),
            )
        return auto

    # ------------------------------------------------------------------
    # baseline / docs rendering
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """Deterministic whole-project summary for the checked-in baseline."""
        return {
            _short(cls): auto.summary()
            for cls, auto in sorted(self.automata.items())
        }

    def render_tables(self) -> str:
        """Markdown automaton tables for ``docs/engine.md``."""
        lines: List[str] = []
        for cls in sorted(self.automata):
            auto = self.automata[cls]
            lines.append(f"#### `{auto.dispatcher}` protocol automaton")
            lines.append("")
            if auto.states:
                lines.append(
                    "States (waiting flags/buffers and barrier-couple "
                    "members, with their `state_manifest` classification):"
                )
                lines.append("")
                for attr in sorted(auto.states):
                    lines.append(f"- `{attr}` — {auto.states[attr]}")
                lines.append("")
            for couple in auto.couples:
                ack, participants, epoch = couple
                lines.append(
                    f"Barrier-ack couple: acks `{ack}` counted against "
                    f"`{participants}`, fenced by `{epoch}`."
                )
                lines.append("")
            lines.append(
                "| event | guards | enters | releases | schedules |"
            )
            lines.append("| --- | --- | --- | --- | --- |")
            for kind in sorted(auto.transitions):
                t = auto.transitions[kind]

                def cell(items: List[str]) -> str:
                    return (
                        "<br>".join(f"`{i}`" for i in items) if items else "—"
                    )

                lines.append(
                    f"| `{kind}` | {cell(t.guards)} | {cell(t.enters)} "
                    f"| {cell(t.releases)} | {cell(t.schedules)} |"
                )
            lines.append("")
        return "\n".join(lines).rstrip() + "\n"


#: (file-context identity tuple) -> analysis; same FIFO discipline as the
#: effect-analysis cache — the four protocol rules of one run share one
#: extraction (and, through ``effect_analysis_for``, one effect build
#: with the race and lifecycle rules)
_ANALYSIS_CACHE: Dict[Tuple[int, ...], ProtocolAnalysis] = {}
_ANALYSIS_CACHE_LIMIT = 8


def _analysis_for(project: ProjectContext) -> ProtocolAnalysis:
    key = tuple(sorted(id(ctx) for ctx in project.files))
    cached = _ANALYSIS_CACHE.get(key)
    if cached is not None and cached.project.state_manifest == project.state_manifest:
        return cached
    analysis = ProtocolAnalysis(project)
    if len(_ANALYSIS_CACHE) >= _ANALYSIS_CACHE_LIMIT:
        _ANALYSIS_CACHE.pop(next(iter(_ANALYSIS_CACHE)))
    _ANALYSIS_CACHE[key] = analysis
    return analysis


def protocol_summary(project: ProjectContext) -> Dict[str, object]:
    """The extracted automata, JSON-stable (for ``--write-baseline``)."""
    return _analysis_for(project).summary()


def render_protocol_tables(project: ProjectContext) -> str:
    """Markdown automaton tables (for ``--protocol-tables`` and docs)."""
    return _analysis_for(project).render_tables()


def _fn_anchor(
    analysis: ProtocolAnalysis, qname: str
) -> Tuple[FileContext, ast.AST]:
    fn = analysis.table.functions[qname]
    return fn.ctx, fn.node


@register_project
class BarrierLivenessRule(ProjectRule):
    name = "barrier-liveness"
    description = (
        "a handler enters a waiting state (parks work, seeds a counter, "
        "sets a stop flag) that no schedulable handler ever releases"
    )
    roles = ("src",)

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        analysis = _analysis_for(project)
        scheduled = set(analysis.kind_producers)
        for cls in sorted(analysis.automata):
            auto = analysis.automata[cls]
            # generation counters are monotonic by design — bumping one is
            # not a wait, so they have no release transition to demand
            epochs = {couple[2] for couple in auto.couples}
            for attr in sorted(auto.states):
                if attr in epochs:
                    continue
                enter_kinds = sorted(
                    k
                    for k, t in auto.transitions.items()
                    if attr in t.enters
                )
                if not enter_kinds:
                    continue
                release_kinds = sorted(
                    k
                    for k, t in auto.transitions.items()
                    if attr in t.releases
                )
                live = [k for k in release_kinds if k in scheduled]
                if live:
                    continue
                if release_kinds:
                    detail = (
                        "its only release transitions "
                        f"({', '.join('_on_' + k for k in release_kinds)}) "
                        "are handlers no schedule site ever produces"
                    )
                else:
                    detail = "no handler ever releases it"
                anchor = auto.transitions[enter_kinds[0]]
                ctx, node = _fn_anchor(analysis, anchor.qname)
                yield self.violation(
                    ctx,
                    node,
                    f"waiting state {attr} is entered by handler(s) "
                    f"{', '.join('_on_' + k for k in enter_kinds)} but "
                    f"{detail} — a terminal waiting state strands the "
                    "protocol at the barrier; add a release path or drop "
                    "the parked state",
                    fingerprint=(
                        f"barrier-liveness::{auto.dispatcher}::{attr}"
                    ),
                )


@register_project
class AckCompletenessRule(ProjectRule):
    name = "ack-completeness"
    description = (
        "a declared barrier-ack couple re-seeded or epoch-bumped "
        "inconsistently — acks from one generation count toward another"
    )
    roles = ("src",)

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        analysis = _analysis_for(project)
        for couple in analysis.couples:
            ack, participants, epoch = couple
            yield from self._check_couple(analysis, ack, participants, epoch)

    def _check_couple(
        self,
        analysis: ProtocolAnalysis,
        ack: str,
        participants: str,
        epoch: str,
    ) -> Iterator[Violation]:
        for fn_qname in sorted(analysis.on_handler_path):
            fn = analysis.table.functions.get(fn_qname)
            if fn is None or fn.ctx.role != "src":
                continue
            shapes = analysis.write_shapes(fn_qname)
            direct = analysis.effects._direct.get(fn_qname)
            direct_writes = direct.writes if direct is not None else set()
            closure: Optional[Set[str]] = None

            def closure_writes() -> Set[str]:
                nonlocal closure
                if closure is None:
                    closure = analysis.closure_writes(fn_qname)
                return closure

            ctx, node = _fn_anchor(analysis, fn_qname)
            if participants in direct_writes and ack not in closure_writes():
                yield self.violation(
                    ctx,
                    node,
                    f"{fn.name} re-seeds the participant set {participants} "
                    f"without resetting the ack set {ack} — acks counted "
                    "for the previous membership complete a barrier the new "
                    "membership never joined",
                    fingerprint=f"ack-completeness::seed::{fn_qname}::{participants}",
                )
            if "reset" in shapes.get(ack, set()) and epoch not in closure_writes():
                yield self.violation(
                    ctx,
                    node,
                    f"{fn.name} re-seeds the ack set {ack} without bumping "
                    f"{epoch} — in-flight acks stamped with the previous "
                    "generation still pass the epoch fence and count toward "
                    "the new barrier (the stale-ack bug class)",
                    fingerprint=f"ack-completeness::reseed::{fn_qname}::{ack}",
                )
            if epoch in direct_writes and ack not in closure_writes():
                yield self.violation(
                    ctx,
                    node,
                    f"{fn.name} bumps {epoch} without adjusting the ack set "
                    f"{ack} — acks already counted under the old generation "
                    "survive into the new one",
                    fingerprint=f"ack-completeness::bump::{fn_qname}::{epoch}",
                )
        yield from self._check_accepts(analysis, ack, epoch)

    def _check_accepts(
        self, analysis: ProtocolAnalysis, ack: str, epoch: str
    ) -> Iterator[Violation]:
        """Epoch-stamped accept sites must guard on the live epoch."""
        epoch_attr = epoch.split(".")[-1]
        for cls in sorted(analysis.effects.handlers):
            handlers = analysis.effects.handlers[cls]
            for kind in sorted(handlers):
                he = handlers[kind]
                if not self._accepts_with_epoch_param(
                    analysis, he, ack, epoch_attr
                ):
                    continue
                if epoch in he.guards:
                    continue
                ctx, node = _fn_anchor(analysis, he.qname)
                yield self.violation(
                    ctx,
                    node,
                    f"_on_{kind} counts acks into {ack} and carries an "
                    f"epoch-shaped payload parameter, but never compares it "
                    f"against {epoch} — a stale ack from a previous barrier "
                    "generation is accepted as current",
                    fingerprint=(
                        f"ack-completeness::accept::{_short(cls)}::{kind}"
                    ),
                )

    @staticmethod
    def _accepts_with_epoch_param(
        analysis: ProtocolAnalysis,
        he: HandlerEffects,
        ack: str,
        epoch_attr: str,
    ) -> bool:
        """The handler closure adds to ``ack`` inside a function whose
        signature carries an epoch-shaped parameter (the message payload)."""
        for callee in analysis.graph.transitive(he.qname):
            fn = analysis.table.functions.get(callee)
            if fn is None:
                continue
            shapes = analysis.write_shapes(callee)
            if "enter" not in shapes.get(ack, set()):
                continue
            args = fn.node.args
            named = (
                list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
            )
            for arg in named:
                if arg.arg == epoch_attr or epoch_attr.endswith(
                    "_" + arg.arg
                ):
                    return True
        return False


@register_project
class EpochFenceRule(ProjectRule):
    name = "epoch-fence"
    description = (
        "a handler consuming a schedulable message applies non-fence "
        "effects without any epoch/phase guard — stale work after a "
        "STOP/recovery boundary"
    )
    roles = ("src",)

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        analysis = _analysis_for(project)
        for cls in sorted(analysis.automata):
            auto = analysis.automata[cls]
            # a dispatcher with no boundary flags has no boundary for a
            # message to straddle — nothing to fence against
            boundary = any(
                GUARD_ATTR_RE.search(attr.split(".")[-1])
                for t in auto.transitions.values()
                for attr in (*t.enters, *t.releases)
            )
            if not boundary:
                continue
            handlers = analysis.effects.handlers[
                next(
                    c
                    for c in analysis.effects.handlers
                    if _short(c) == auto.dispatcher
                )
            ]
            for kind in sorted(handlers):
                he = handlers[kind]
                if kind not in analysis.kind_producers:
                    continue  # event-kind-closure owns unreachable handlers
                exposed = sorted(
                    attr
                    for attr in he.hazardous_writes()
                    if not GUARD_ATTR_RE.search(attr.split(".")[-1])
                )
                if not exposed:
                    continue
                if he.is_guarded():
                    continue
                ctx, node = _fn_anchor(analysis, he.qname)
                shown = ", ".join(exposed[:4]) + (
                    "…" if len(exposed) > 4 else ""
                )
                yield self.violation(
                    ctx,
                    node,
                    f"_on_{kind} consumes a schedulable message and writes "
                    f"{shown} with no epoch/phase guard anywhere on its "
                    "path — a message produced before a STOP/recovery "
                    "boundary is applied unfenced after it (the "
                    "stale-dispatch bug class); compare the payload's "
                    "epoch or check a phase flag before the effects",
                    fingerprint=(
                        f"epoch-fence::{auto.dispatcher}::{kind}"
                    ),
                )


@register_project
class EventKindClosureRule(ProjectRule):
    name = "event-kind-closure"
    description = (
        "a scheduled event kind with no handler (silently dropped) or a "
        "handler no schedule site ever produces (dead protocol surface)"
    )
    roles = ("src",)

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        analysis = _analysis_for(project)
        if not analysis.effects.dispatch:
            return
        handled: Set[str] = set()
        for kinds in analysis.effects.dispatch.values():
            handled |= set(kinds)
        for kind in sorted(analysis.kind_producers):
            if kind in handled:
                continue
            producer, line = min(
                analysis.kind_producers[kind], key=lambda p: (p[0], p[1])
            )
            ctx, _node = _fn_anchor(analysis, producer)
            yield Violation(
                rule=self.name,
                path=ctx.path,
                line=line,
                col=0,
                message=(
                    f"{producer} schedules event kind '{kind}' but no "
                    "dispatcher defines _on_" + kind + " — the dispatch "
                    "getattr silently drops it (typo'd or dead kind)"
                ),
                fingerprint=f"event-kind-closure::kind::{kind}",
            )
        for cls in sorted(analysis.effects.dispatch):
            for kind in sorted(analysis.effects.dispatch[cls]):
                if kind in analysis.kind_producers:
                    continue
                he = analysis.effects.handlers[cls][kind]
                ctx, node = _fn_anchor(analysis, he.qname)
                yield self.violation(
                    ctx,
                    node,
                    f"handler _on_{kind} of {_short(cls)} is reachable from "
                    "no schedule site — dead protocol surface (or its "
                    "producer passes a non-literal kind the analysis "
                    "cannot see; schedule with a literal kind)",
                    fingerprint=(
                        f"event-kind-closure::handler::{_short(cls)}::{kind}"
                    ),
                )
