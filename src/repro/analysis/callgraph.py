"""Project-wide symbol table and call graph for whole-program rules.

Per-file rules see one AST at a time; the interprocedural analyses
(:mod:`repro.analysis.rngflow`, :mod:`repro.analysis.effects`,
:mod:`repro.analysis.races`) need to answer questions like *"which method
does ``self.queue.schedule(...)`` land on?"* across the whole tree.  This
module builds that substrate once per run:

:class:`SymbolTable`
    Modules, classes (with base-class resolution), functions/methods,
    import aliases, and *attribute typing* — ``self.x: T = ...``
    annotations, dataclass fields, and ``self.x = ClassName(...)``
    constructor assignments all type ``self.x`` so attribute calls
    resolve.  Container annotations (``Dict[int, QueryRuntime]``,
    ``List[SimWorker]``) record their element type, so ``self.runtimes[q]``
    and ``for w in self.workers`` are typed too.
:class:`CallGraph`
    One edge per resolvable call site (plain names, import aliases,
    ``self``-dispatch through inheritance, attribute calls on annotated
    values, ``ClassName(...)`` constructors), plus cached transitive
    closures.

Everything here is a *static under-approximation*: an unresolvable call
simply contributes no edge.  Rules built on top must therefore phrase
their findings as "provably hazardous", never "provably safe".
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.visitor import FileContext, ProjectContext

__all__ = [
    "TypeRef",
    "FunctionInfo",
    "ClassInfo",
    "SymbolTable",
    "CallGraph",
    "module_name_for",
    "subsystem_of",
    "project_graph",
]

#: annotation heads treated as containers whose subscript/iteration yields
#: the element type (value slice for mappings)
_CONTAINER_HEADS = frozenset(
    {
        "List", "list", "Sequence", "MutableSequence", "Tuple", "tuple",
        "Set", "set", "FrozenSet", "frozenset", "Iterable", "Iterator",
        "Deque", "deque",
    }
)
_MAPPING_HEADS = frozenset({"Dict", "dict", "Mapping", "MutableMapping", "DefaultDict"})
_WRAPPER_HEADS = frozenset({"Optional", "Union", "Final", "ClassVar", "Annotated"})


@dataclass(frozen=True)
class TypeRef:
    """A resolved static type: a (possibly external) class, or a container.

    ``cls`` is a dotted qualified name — project classes resolve into
    :attr:`SymbolTable.classes`, externals (``numpy.random.Generator``)
    stay as opaque names rules can still match on.  ``elem`` is the
    element type of a container (mapping *values*, sequence/set elements).
    """

    cls: Optional[str] = None
    elem: Optional["TypeRef"] = None


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qname: str
    module: str
    name: str
    cls: Optional[str]  # enclosing class qname, None for module-level
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    ctx: FileContext


@dataclass
class ClassInfo:
    """One class definition with resolved bases and typed attributes."""

    qname: str
    module: str
    name: str
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, str] = field(default_factory=dict)
    attr_types: Dict[str, TypeRef] = field(default_factory=dict)


def module_name_for(path: str) -> str:
    """Dotted module name of a repo-relative file path.

    ``src/repro/engine/engine.py`` -> ``repro.engine.engine``; paths
    outside a package root fall back to their stem.
    """
    parts = list(Path(path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for anchor in ("repro", "tests", "benchmarks", "examples"):
        if anchor in parts:
            return ".".join(parts[parts.index(anchor) :])
    if "src" in parts:
        return ".".join(parts[parts.index("src") + 1 :])
    return ".".join(parts[-1:]) if parts else "<unknown>"


def subsystem_of(module: str) -> str:
    """The stream-isolation domain a module belongs to.

    ``repro.workload.generator`` -> ``workload`` — the top-level package
    under ``repro``; modules outside the package tree are their own
    subsystem (fixtures model one subsystem per top-level module).
    """
    parts = module.split(".")
    if parts[0] == "repro" and len(parts) > 1:
        return parts[1]
    return parts[0]


def _attr_chain(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` -> ["a", "b", "c"]; None when the chain has a non-name root."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


class SymbolTable:
    """Modules, classes, functions and import aliases of one project."""

    def __init__(self) -> None:
        self.modules: Dict[str, FileContext] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: module -> local name -> qualified name (class/function/module)
        self.symbols: Dict[str, Dict[str, str]] = {}
        #: module -> name -> literal constant value (ints/floats/strings)
        self.constants: Dict[str, Dict[str, object]] = {}
        self._ancestor_cache: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, project: ProjectContext) -> "SymbolTable":
        table = cls()
        for ctx in project.files:
            table._index_module(ctx)
        for info in table.classes.values():
            table._resolve_bases(info)
        for info in table.classes.values():
            table._collect_attr_types(info)
        return table

    def _index_module(self, ctx: FileContext) -> None:
        module = module_name_for(ctx.path)
        self.modules[module] = ctx
        scope = self.symbols.setdefault(module, {})
        consts = self.constants.setdefault(module, {})
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.ClassDef):
                qname = f"{module}.{stmt.name}"
                info = ClassInfo(qname=qname, module=module, name=stmt.name, node=stmt)
                self.classes[qname] = info
                scope[stmt.name] = qname
                for member in stmt.body:
                    if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        fq = f"{qname}.{member.name}"
                        info.methods[member.name] = fq
                        self.functions[fq] = FunctionInfo(
                            qname=fq,
                            module=module,
                            name=member.name,
                            cls=qname,
                            node=member,
                            ctx=ctx,
                        )
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fq = f"{module}.{stmt.name}"
                scope[stmt.name] = fq
                self.functions[fq] = FunctionInfo(
                    qname=fq, module=module, name=stmt.name, cls=None, node=stmt, ctx=ctx
                )
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    local = alias.asname or alias.name.split(".")[0]
                    scope[local] = alias.name if alias.asname else alias.name.split(".")[0]
            elif isinstance(stmt, ast.ImportFrom):
                base = self._import_base(module, stmt)
                if base is None:
                    continue
                for alias in stmt.names:
                    local = alias.asname or alias.name
                    scope[local] = f"{base}.{alias.name}"
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name) and isinstance(stmt.value, ast.Constant):
                    consts[target.id] = stmt.value.value

    @staticmethod
    def _import_base(module: str, stmt: ast.ImportFrom) -> Optional[str]:
        if stmt.level == 0:
            return stmt.module
        # relative import: resolve against the importing module's package
        package = module.split(".")[: -stmt.level]
        if not package and stmt.module is None:
            return None
        return ".".join(package + ([stmt.module] if stmt.module else []))

    def _resolve_bases(self, info: ClassInfo) -> None:
        for base in info.node.bases:
            chain = _attr_chain(base)
            if chain is None:
                continue
            resolved = self.resolve_symbol(info.module, chain)
            if resolved in self.classes:
                info.bases.append(resolved)

    # ------------------------------------------------------------------
    # symbol + annotation resolution
    # ------------------------------------------------------------------
    def resolve_symbol(self, module: str, chain: Sequence[str]) -> Optional[str]:
        """Resolve a dotted name chain seen in ``module`` to a qualified name."""
        scope = self.symbols.get(module, {})
        head = scope.get(chain[0])
        if head is None:
            # a module referring to its own qualified prefix ("repro.x.y")
            joined = ".".join(chain)
            if joined in self.classes or joined in self.functions:
                return joined
            return None
        full = ".".join([head] + list(chain[1:]))
        # follow one level of re-export: "pkg.Name" where pkg maps the name
        if full not in self.classes and full not in self.functions:
            parts = full.split(".")
            for cut in range(len(parts) - 1, 0, -1):
                prefix, rest = ".".join(parts[:cut]), parts[cut:]
                inner = self.symbols.get(prefix, {}).get(rest[0]) if rest else None
                if inner is not None:
                    return ".".join([inner] + rest[1:])
        return full

    def resolve_annotation(self, module: str, node: Optional[ast.AST]) -> Optional[TypeRef]:
        """A :class:`TypeRef` for an annotation expression, if recognizable."""
        if node is None:
            return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(node, ast.Subscript):
            head = node.value
            head_name = None
            if isinstance(head, ast.Name):
                head_name = head.id
            elif isinstance(head, ast.Attribute):
                head_name = head.attr
            args: List[ast.AST] = (
                list(node.slice.elts) if isinstance(node.slice, ast.Tuple) else [node.slice]
            )
            if head_name in _WRAPPER_HEADS:
                for arg in args:
                    if isinstance(arg, ast.Constant) and arg.value is None:
                        continue
                    resolved = self.resolve_annotation(module, arg)
                    if resolved is not None:
                        return resolved
                return None
            if head_name in _MAPPING_HEADS and len(args) == 2:
                return TypeRef(elem=self.resolve_annotation(module, args[1]))
            if head_name in _CONTAINER_HEADS and args:
                return TypeRef(elem=self.resolve_annotation(module, args[0]))
            return None
        chain = _attr_chain(node)
        if chain is None:
            return None
        resolved = self.resolve_symbol(module, chain)
        if resolved is not None:
            return TypeRef(cls=resolved)
        # external dotted names stay opaque but matchable (numpy.random.Generator)
        scope = self.symbols.get(module, {})
        head = scope.get(chain[0], chain[0])
        return TypeRef(cls=".".join([head] + list(chain[1:])))

    def resolve_constant(self, module: str, node: ast.AST) -> Optional[object]:
        """Literal value of an expression: constants and module constants."""
        if isinstance(node, ast.Constant):
            return node.value
        chain = _attr_chain(node)
        if chain is not None and len(chain) == 1:
            return self.constants.get(module, {}).get(chain[0])
        if chain is not None and len(chain) == 2:
            # OtherModule.CONST through an import alias
            target = self.symbols.get(module, {}).get(chain[0])
            if target is not None:
                return self.constants.get(target, {}).get(chain[1])
        return None

    # ------------------------------------------------------------------
    # class structure
    # ------------------------------------------------------------------
    def ancestors(self, qname: str) -> List[str]:
        """The class and its project-internal bases, nearest first."""
        cached = self._ancestor_cache.get(qname)
        if cached is not None:
            return cached
        order: List[str] = []
        queue = [qname]
        while queue:
            current = queue.pop(0)
            if current in order or current not in self.classes:
                continue
            order.append(current)
            queue.extend(self.classes[current].bases)
        self._ancestor_cache[qname] = order
        return order

    def method(self, cls_qname: str, name: str) -> Optional[str]:
        """Resolve a method through the class and its bases."""
        for ancestor in self.ancestors(cls_qname):
            found = self.classes[ancestor].methods.get(name)
            if found is not None:
                return found
        return None

    def attr_type(self, cls_qname: str, attr: str) -> Optional[TypeRef]:
        """Static type of ``<instance>.<attr>`` through the class hierarchy."""
        for ancestor in self.ancestors(cls_qname):
            found = self.classes[ancestor].attr_types.get(attr)
            if found is not None:
                return found
        return None

    def return_type(self, fn_qname: str) -> Optional[TypeRef]:
        info = self.functions.get(fn_qname)
        if info is None:
            return None
        returns = getattr(info.node, "returns", None)
        resolved = self.resolve_annotation(info.module, returns)
        if resolved is not None:
            return resolved
        # a constructor "returns" its class
        if info.name == "__init__" and info.cls is not None:
            return TypeRef(cls=info.cls)
        return None

    # ------------------------------------------------------------------
    # attribute typing
    # ------------------------------------------------------------------
    def _collect_attr_types(self, info: ClassInfo) -> None:
        # class-level annotated fields (dataclasses and plain classes)
        for stmt in info.node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                resolved = self.resolve_annotation(info.module, stmt.annotation)
                if resolved is not None:
                    info.attr_types.setdefault(stmt.target.id, resolved)
        # ``self.x`` bindings inside methods (annotated or constructor-typed)
        for method_qname in info.methods.values():
            fn = self.functions[method_qname]
            for node in ast.walk(fn.node):
                if isinstance(node, ast.AnnAssign):
                    target = node.target
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        resolved = self.resolve_annotation(info.module, node.annotation)
                        if resolved is not None:
                            info.attr_types.setdefault(target.attr, resolved)
                elif isinstance(node, ast.Assign):
                    inferred = self._infer_value_type(info.module, node.value)
                    if inferred is None:
                        continue
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            info.attr_types.setdefault(target.attr, inferred)

    def _infer_value_type(self, module: str, value: ast.AST) -> Optional[TypeRef]:
        """Type of a constructor-shaped expression (``C()``, ``[C() ...]``)."""
        if isinstance(value, ast.Call):
            chain = _attr_chain(value.func)
            if chain is None:
                return None
            resolved = self.resolve_symbol(module, chain)
            if resolved in self.classes:
                return TypeRef(cls=resolved)
            if resolved in self.functions:
                return self.return_type(resolved)
            return None
        if isinstance(value, (ast.ListComp, ast.SetComp)):
            elem = self._infer_value_type(module, value.elt)
            if elem is not None:
                return TypeRef(elem=elem)
        return None


class CallGraph:
    """Resolvable call edges between the project's functions."""

    def __init__(self, table: SymbolTable) -> None:
        self.table = table
        self.edges: Dict[str, Set[str]] = {}
        #: call sites that resolved: fn qname -> [(callee qname, Call node)]
        self.sites: Dict[str, List[Tuple[str, ast.Call]]] = {}
        self._closure_cache: Dict[str, Set[str]] = {}
        self._local_env_cache: Dict[str, Dict[str, TypeRef]] = {}
        for fn in table.functions.values():
            self._build_edges(fn)

    # ------------------------------------------------------------------
    # local type environments
    # ------------------------------------------------------------------
    def local_env(self, fn_qname: str) -> Dict[str, TypeRef]:
        """name -> type for a function's parameters and inferable locals."""
        cached = self._local_env_cache.get(fn_qname)
        if cached is not None:
            return cached
        fn = self.table.functions[fn_qname]
        env: Dict[str, TypeRef] = {}
        args = fn.node.args
        named = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        for index, arg in enumerate(named):
            if index == 0 and fn.cls is not None and arg.arg in ("self", "cls"):
                env[arg.arg] = TypeRef(cls=fn.cls)
                continue
            resolved = self.table.resolve_annotation(fn.module, arg.annotation)
            if resolved is not None:
                env[arg.arg] = resolved
        # one forward pass over simple binding forms (no joins: last wins)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                resolved = self.table.resolve_annotation(fn.module, node.annotation)
                if resolved is not None:
                    env[node.target.id] = resolved
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                inferred = self.expr_type(fn_qname, node.value, env)
                if inferred is not None:
                    env[target.id] = inferred
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if isinstance(node.target, ast.Name):
                    iterated = self.expr_type(fn_qname, node.iter, env)
                    if iterated is not None and iterated.elem is not None:
                        env[node.target.id] = iterated.elem
        self._local_env_cache[fn_qname] = env
        return env

    def expr_type(
        self,
        fn_qname: str,
        node: ast.AST,
        env: Optional[Dict[str, TypeRef]] = None,
    ) -> Optional[TypeRef]:
        """Static type of an expression inside a function, if resolvable."""
        if env is None:
            env = self.local_env(fn_qname)
        fn = self.table.functions[fn_qname]
        if isinstance(node, ast.Name):
            return env.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.expr_type(fn_qname, node.value, env)
            if base is not None and base.cls is not None:
                return self.table.attr_type(base.cls, node.attr)
            return None
        if isinstance(node, ast.Subscript):
            base = self.expr_type(fn_qname, node.value, env)
            if base is not None:
                return base.elem
            return None
        if isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ("values", "get")
            ):
                base = self.expr_type(fn_qname, node.func.value, env)
                if base is not None and base.elem is not None:
                    # dict.values() yields the elements; dict.get() yields
                    # one element (Optional-ness is not modelled, same as
                    # subscript access)
                    if node.func.attr == "values":
                        return TypeRef(elem=base.elem)
                    return base.elem
            callees = self.resolve_call(fn_qname, node, env)
            for callee in callees:
                returned = self.table.return_type(callee)
                if returned is not None:
                    return returned
            inferred = self.table._infer_value_type(fn.module, node)
            return inferred
        if isinstance(node, ast.IfExp):
            return self.expr_type(fn_qname, node.body, env) or self.expr_type(
                fn_qname, node.orelse, env
            )
        return None

    # ------------------------------------------------------------------
    # call resolution
    # ------------------------------------------------------------------
    def resolve_call(
        self,
        fn_qname: str,
        call: ast.Call,
        env: Optional[Dict[str, TypeRef]] = None,
    ) -> List[str]:
        """Qualified names a call site can land on (possibly empty)."""
        fn = self.table.functions[fn_qname]
        func = call.func
        if isinstance(func, ast.Name):
            resolved = self.table.resolve_symbol(fn.module, [func.id])
            if resolved is None:
                return []
            if resolved in self.table.classes:
                init = self.table.method(resolved, "__init__")
                return [init] if init else []
            if resolved in self.table.functions:
                return [resolved]
            return []
        if isinstance(func, ast.Attribute):
            # fully dotted module path first (alias.helper(), pkg.mod.fn())
            chain = _attr_chain(func)
            if chain is not None:
                resolved = self.table.resolve_symbol(fn.module, chain)
                if resolved in self.table.functions:
                    return [resolved]
                if resolved in self.table.classes:
                    init = self.table.method(resolved, "__init__")
                    return [init] if init else []
            base = self.expr_type(fn_qname, func.value, env)
            if base is not None and base.cls is not None:
                found = self.table.method(base.cls, func.attr)
                if found is not None:
                    return [found]
        return []

    def _build_edges(self, fn: FunctionInfo) -> None:
        env = self.local_env(fn.qname)
        edges = self.edges.setdefault(fn.qname, set())
        sites = self.sites.setdefault(fn.qname, [])
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            for callee in self.resolve_call(fn.qname, node, env):
                edges.add(callee)
                sites.append((callee, node))

    def transitive(self, fn_qname: str) -> Set[str]:
        """The function plus every transitively resolvable callee."""
        cached = self._closure_cache.get(fn_qname)
        if cached is not None:
            return cached
        closure: Set[str] = set()
        stack = [fn_qname]
        while stack:
            current = stack.pop()
            if current in closure:
                continue
            closure.add(current)
            stack.extend(self.edges.get(current, ()))
        self._closure_cache[fn_qname] = closure
        return closure

    def iter_functions(self) -> Iterator[FunctionInfo]:
        for qname in sorted(self.table.functions):
            yield self.table.functions[qname]


#: (file-context identity tuple) -> (SymbolTable, CallGraph); every project
#: rule of one run sees the same FileContext objects, so the substrate is
#: built once per run instead of once per rule.  Bounded: old entries are
#: evicted FIFO (test suites build many tiny fixture projects).
_GRAPH_CACHE: Dict[Tuple[int, ...], Tuple[SymbolTable, CallGraph]] = {}
_GRAPH_CACHE_LIMIT = 8


def project_graph(project: ProjectContext) -> Tuple[SymbolTable, CallGraph]:
    """The (symbol table, call graph) pair for a project, cached per run."""
    key = tuple(sorted(id(ctx) for ctx in project.files))
    cached = _GRAPH_CACHE.get(key)
    if cached is not None:
        return cached
    table = SymbolTable.build(project)
    graph = CallGraph(table)
    if len(_GRAPH_CACHE) >= _GRAPH_CACHE_LIMIT:
        _GRAPH_CACHE.pop(next(iter(_GRAPH_CACHE)))
    _GRAPH_CACHE[key] = (table, graph)
    return table, graph
