"""Interprocedural RNG stream-flow analysis.

Determinism in this codebase hangs on *stream isolation*: every
``np.random.Generator`` is constructed from an explicit seeded stream key
(``default_rng([seed, 0xFA17])``-style) and owned by exactly one subsystem
— workload endpoints, churn schedules, fault plans each draw from their
own stream, so adding draws to one subsystem can never perturb another's
event sequence (the property PR 3/5/7 promise in prose).  The per-file
``module-rng`` rule bans *ambient* RNG; this module checks what it cannot:
where every explicitly constructed generator actually **flows**.

The analysis tracks each construction site through assignments, ``self``
attributes, call parameters and return values (a fixpoint over the
project call graph), records which subsystem every *draw* (method call on
a tracked generator) happens in, and reports:

``rng-stream-crossing``
    One generator drawn from by two or more subsystems — the isolation
    violation.  Suppress at the construction site when the sharing is
    deliberate (a documented single-stream helper).
``rng-unseeded-escape``
    An unseeded ``default_rng()`` whose value escapes its constructing
    function (stored on an attribute, returned, or passed on) — a
    nondeterministic stream leaking across a function boundary.
``rng-in-library-signature``
    A generator constructed in a ``def`` signature default — evaluated
    once at import time, silently shared by every call.

Like everything on the call graph, this is an under-approximation: flows
through containers, closures or ``**kwargs`` are not tracked, so a clean
report means "no crossing *found*", not "provably isolated".
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.callgraph import (
    CallGraph,
    SymbolTable,
    _attr_chain,
    project_graph,
    subsystem_of,
)
from repro.analysis.rules import _EXPLICIT_RNG_CONSTRUCTORS, ImportTracker, tracked_imports
from repro.analysis.visitor import (
    FileContext,
    ProjectContext,
    ProjectRule,
    Violation,
    register_project,
)

__all__ = [
    "RngOrigin",
    "RngFlowAnalysis",
    "RngStreamCrossingRule",
    "RngUnseededEscapeRule",
    "RngInLibrarySignatureRule",
]

#: upper bound on global fixpoint sweeps — flows converge in 2-3 passes on
#: this tree; the cap only guards against a pathological cyclic project
_MAX_FIXPOINT_PASSES = 12


@dataclass
class RngOrigin:
    """One generator construction site and everything that reaches it."""

    origin_id: int
    ctx: FileContext
    node: ast.Call
    fn_qname: str
    seeded: bool
    key: Optional[str]
    #: subsystem -> sorted set of functions that draw from this generator
    draws: Dict[str, Set[str]] = field(default_factory=dict)
    escapes: bool = False

    def describe_key(self) -> str:
        return f"stream key {self.key}" if self.key else (
            "seeded" if self.seeded else "UNSEEDED"
        )


def _render_key_elt(value: object) -> str:
    if isinstance(value, int) and value > 9:
        return hex(value)
    return repr(value) if isinstance(value, str) else str(value)


class RngFlowAnalysis:
    """The stream-flow fixpoint over one project."""

    def __init__(self, project: ProjectContext) -> None:
        self.project = project
        self.table: SymbolTable
        self.graph: CallGraph
        self.table, self.graph = project_graph(project)
        self._trackers: Dict[str, ImportTracker] = {}
        self.origins: List[RngOrigin] = []
        self._origin_by_site: Dict[Tuple[str, int, int], RngOrigin] = {}
        #: (class qname, attr) -> origin ids stored on that attribute
        self._attr_origins: Dict[Tuple[str, str], Set[int]] = {}
        #: (fn qname, param name) -> origin ids flowing in through the param
        self._param_origins: Dict[Tuple[str, str], Set[int]] = {}
        #: fn qname -> origin ids the function can return
        self._return_origins: Dict[str, Set[int]] = {}
        self._run_fixpoint()

    # ------------------------------------------------------------------
    # construction-site detection
    # ------------------------------------------------------------------
    def _tracker(self, ctx: FileContext) -> ImportTracker:
        tracker = self._trackers.get(ctx.path)
        if tracker is None:
            tracker = tracked_imports(ctx)
            self._trackers[ctx.path] = tracker
        return tracker

    def is_construction(self, ctx: FileContext, call: ast.Call) -> bool:
        resolved = self._tracker(ctx).resolve_call(call.func)
        if resolved is None:
            return False
        module, func = resolved
        return module == "numpy.random" and func in _EXPLICIT_RNG_CONSTRUCTORS

    def _origin_for(self, ctx: FileContext, call: ast.Call, fn_qname: str) -> RngOrigin:
        site = (ctx.path, call.lineno, call.col_offset)
        origin = self._origin_by_site.get(site)
        if origin is not None:
            return origin
        module = self.table.functions[fn_qname].module
        seeded = bool(call.args or call.keywords)
        key: Optional[str] = None
        if call.args:
            seed = call.args[0]
            if isinstance(seed, (ast.List, ast.Tuple)):
                parts = []
                for elt in seed.elts:
                    value = self.table.resolve_constant(module, elt)
                    if value is not None:
                        parts.append(_render_key_elt(value))
                    else:
                        chain = _attr_chain(elt)
                        parts.append(".".join(chain) if chain else "?")
                key = "[" + ", ".join(parts) + "]"
            else:
                value = self.table.resolve_constant(module, seed)
                if value is not None:
                    key = _render_key_elt(value)
                elif isinstance(seed, ast.Name):
                    key = seed.id
        origin = RngOrigin(
            origin_id=len(self.origins),
            ctx=ctx,
            node=call,
            fn_qname=fn_qname,
            seeded=seeded,
            key=key,
        )
        self.origins.append(origin)
        self._origin_by_site[site] = origin
        return origin

    # ------------------------------------------------------------------
    # flow fixpoint
    # ------------------------------------------------------------------
    def _run_fixpoint(self) -> None:
        functions = [
            fn
            for fn in self.graph.iter_functions()
            if fn.ctx.path in {ctx.path for ctx in self.project.files}
        ]
        for _ in range(_MAX_FIXPOINT_PASSES):
            self._changed = False
            for fn in functions:
                self._analyze_function(fn.qname)
            if not self._changed:
                break

    def _record(self, store: Dict, key: object, values: Set[int]) -> None:
        if not values:
            return
        bucket = store.setdefault(key, set())
        before = len(bucket)
        bucket.update(values)
        if len(bucket) != before:
            self._changed = True

    def origins_of(
        self, fn_qname: str, node: ast.AST, env: Dict[str, Set[int]]
    ) -> Set[int]:
        """Origin ids an expression can evaluate to."""
        fn = self.table.functions[fn_qname]
        if isinstance(node, ast.Name):
            return set(env.get(node.id, ()))
        if isinstance(node, ast.Attribute):
            base = self.graph.expr_type(fn_qname, node.value)
            if base is not None and base.cls is not None:
                found: Set[int] = set()
                for ancestor in self.table.ancestors(base.cls) or [base.cls]:
                    found |= self._attr_origins.get((ancestor, node.attr), set())
                return found
            return set()
        if isinstance(node, ast.Call):
            if self.is_construction(fn.ctx, node):
                return {self._origin_for(fn.ctx, node, fn_qname).origin_id}
            result: Set[int] = set()
            for callee in self.graph.resolve_call(fn_qname, node):
                result |= self._return_origins.get(callee, set())
            return result
        if isinstance(node, ast.IfExp):
            return self.origins_of(fn_qname, node.body, env) | self.origins_of(
                fn_qname, node.orelse, env
            )
        return set()

    def _mark_escape(self, ids: Set[int]) -> None:
        for origin_id in ids:
            if not self.origins[origin_id].escapes:
                self.origins[origin_id].escapes = True
                self._changed = True

    def _analyze_function(self, fn_qname: str) -> None:
        fn = self.table.functions[fn_qname]
        subsystem = subsystem_of(fn.module)
        env: Dict[str, Set[int]] = {}
        args = fn.node.args
        named = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        for arg in named:
            flowing = self._param_origins.get((fn_qname, arg.arg))
            if flowing:
                env[arg.arg] = set(flowing)
        # two local passes: late bindings (self.x set after use sites in
        # other methods) still converge through the global fixpoint
        for _ in range(2):
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Assign):
                    ids = self.origins_of(fn_qname, node.value, env)
                    if not ids:
                        continue
                    for target in node.targets:
                        self._bind_target(fn_qname, target, ids, env)
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    ids = self.origins_of(fn_qname, node.value, env)
                    if ids:
                        self._bind_target(fn_qname, node.target, ids, env)
                elif isinstance(node, ast.Return) and node.value is not None:
                    ids = self.origins_of(fn_qname, node.value, env)
                    if ids:
                        self._mark_escape(ids)
                        self._record(self._return_origins, fn_qname, ids)
                elif isinstance(node, ast.Call):
                    self._analyze_call(fn_qname, subsystem, node, env)

    def _bind_target(
        self,
        fn_qname: str,
        target: ast.AST,
        ids: Set[int],
        env: Dict[str, Set[int]],
    ) -> None:
        if isinstance(target, ast.Name):
            bucket = env.setdefault(target.id, set())
            if not ids <= bucket:
                bucket.update(ids)
                self._changed = True
        elif isinstance(target, ast.Attribute):
            base = self.graph.expr_type(fn_qname, target.value)
            if base is not None and base.cls is not None:
                self._mark_escape(ids)
                self._record(self._attr_origins, (base.cls, target.attr), ids)

    def _analyze_call(
        self,
        fn_qname: str,
        subsystem: str,
        call: ast.Call,
        env: Dict[str, Set[int]],
    ) -> None:
        fn = self.table.functions[fn_qname]
        # a method call *on* a tracked generator is a draw in this subsystem
        if isinstance(call.func, ast.Attribute):
            holder = self.origins_of(fn_qname, call.func.value, env)
            for origin_id in holder:
                users = self.origins[origin_id].draws.setdefault(subsystem, set())
                if fn_qname not in users:
                    users.add(fn_qname)
                    self._changed = True
        # generator-valued arguments flow into resolvable callees' params
        callees = self.graph.resolve_call(fn_qname, call)
        arg_origins: List[Tuple[Optional[str], Set[int]]] = []
        for arg in call.args:
            arg_origins.append((None, self.origins_of(fn_qname, arg, env)))
        for kw in call.keywords:
            arg_origins.append((kw.arg, self.origins_of(fn_qname, kw.value, env)))
        if not any(ids for _, ids in arg_origins):
            return
        for _, ids in arg_origins:
            self._mark_escape(ids)
        for callee in callees:
            callee_fn = self.table.functions[callee]
            cargs = callee_fn.node.args
            named = list(cargs.posonlyargs) + list(cargs.args) + list(cargs.kwonlyargs)
            names = [a.arg for a in named]
            if callee_fn.cls is not None and names and names[0] in ("self", "cls"):
                names = names[1:]
            positional = [ids for name, ids in arg_origins if name is None]
            for index, ids in enumerate(positional):
                if index < len(names):
                    self._record(self._param_origins, (callee, names[index]), ids)
            for name, ids in arg_origins:
                if name is not None and name in names:
                    self._record(self._param_origins, (callee, name), ids)


def _analysis_for(project: ProjectContext) -> RngFlowAnalysis:
    return RngFlowAnalysis(project)


@register_project
class RngStreamCrossingRule(ProjectRule):
    name = "rng-stream-crossing"
    description = (
        "one np.random.Generator drawn from by two or more subsystems — "
        "seeded streams must stay within their owning subsystem"
    )
    roles = ("src",)

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        analysis = _analysis_for(project)
        for origin in analysis.origins:
            drawing = sorted(sub for sub, users in origin.draws.items() if users)
            if len(drawing) < 2:
                continue
            users = "; ".join(
                f"{sub} via {', '.join(sorted(origin.draws[sub]))}" for sub in drawing
            )
            yield self.violation(
                origin.ctx,
                origin.node,
                f"generator ({origin.describe_key()}) constructed in "
                f"{origin.fn_qname} is drawn from by {len(drawing)} subsystems "
                f"({users}) — draws in one subsystem perturb the other's "
                "event sequence; give each subsystem its own stream key",
                fingerprint=(
                    f"rng-stream-crossing::{origin.fn_qname}::{'+'.join(drawing)}"
                ),
            )


@register_project
class RngUnseededEscapeRule(ProjectRule):
    name = "rng-unseeded-escape"
    description = (
        "an unseeded default_rng() escapes its constructing function — "
        "a nondeterministic stream crossing a function boundary"
    )
    roles = ("src",)

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        analysis = _analysis_for(project)
        for origin in analysis.origins:
            if origin.seeded or not origin.escapes:
                continue
            yield self.violation(
                origin.ctx,
                origin.node,
                f"unseeded generator constructed in {origin.fn_qname} escapes "
                "the function (stored, returned or passed on) — every run "
                "draws a different stream; construct it from an explicit "
                "seeded stream key",
                fingerprint=f"rng-unseeded-escape::{origin.fn_qname}",
            )


@register_project
class RngInLibrarySignatureRule(ProjectRule):
    name = "rng-in-library-signature"
    description = (
        "a generator constructed in a def signature default is evaluated "
        "once at import and silently shared by every call"
    )
    roles = ("src",)

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        analysis = _analysis_for(project)
        for ctx in project.files:
            for node in ast.walk(ctx.tree):
                if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                    continue
                args = node.args
                defaults = list(args.defaults) + [
                    d for d in args.kw_defaults if d is not None
                ]
                for default in defaults:
                    if isinstance(default, ast.Call) and analysis.is_construction(
                        ctx, default
                    ):
                        name = getattr(node, "name", "<lambda>")
                        yield self.violation(
                            ctx,
                            default,
                            f"def {name}() constructs a generator in its "
                            "signature — the default is built once at import "
                            "and shared by every call; take a Generator "
                            "parameter (no default) instead",
                            fingerprint=(
                                f"rng-in-library-signature::{ctx.path}::{name}"
                            ),
                        )
