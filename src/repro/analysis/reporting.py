"""Reporters for ``repro-lint`` findings (text and JSON)."""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.analysis.visitor import Violation

__all__ = ["render_text", "render_json"]


def render_text(violations: Sequence[Violation]) -> str:
    """Human-readable ``path:line:col: rule: message`` lines + summary."""
    lines = [v.render() for v in violations]
    if violations:
        per_rule: Dict[str, int] = {}
        for v in violations:
            per_rule[v.rule] = per_rule.get(v.rule, 0) + 1
        breakdown = ", ".join(
            f"{name}: {count}" for name, count in sorted(per_rule.items())
        )
        lines.append("")
        lines.append(f"{len(violations)} violation(s) ({breakdown})")
    else:
        lines.append("repro-lint: clean")
    return "\n".join(lines)


def render_json(violations: Sequence[Violation]) -> str:
    """Machine-readable report: ``{"violations": [...], "summary": {...}}``."""
    per_rule: Dict[str, int] = {}
    records: List[Dict[str, object]] = []
    for v in violations:
        per_rule[v.rule] = per_rule.get(v.rule, 0) + 1
        records.append(
            {
                "rule": v.rule,
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "message": v.message,
            }
        )
    return json.dumps(
        {
            "violations": records,
            "summary": {"total": len(records), "by_rule": per_rule},
        },
        indent=2,
        sort_keys=True,
    )
