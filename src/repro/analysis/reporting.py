"""Reporters for ``repro-lint`` findings (text, JSON, GitHub Actions)."""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.analysis.visitor import Violation

__all__ = ["render_text", "render_json", "render_github"]


def render_text(violations: Sequence[Violation]) -> str:
    """Human-readable ``path:line:col: rule: message`` lines + summary."""
    lines = [v.render() for v in violations]
    if violations:
        per_rule: Dict[str, int] = {}
        for v in violations:
            per_rule[v.rule] = per_rule.get(v.rule, 0) + 1
        breakdown = ", ".join(
            f"{name}: {count}" for name, count in sorted(per_rule.items())
        )
        lines.append("")
        lines.append(f"{len(violations)} violation(s) ({breakdown})")
    else:
        lines.append("repro-lint: clean")
    return "\n".join(lines)


def render_json(violations: Sequence[Violation]) -> str:
    """Machine-readable report: ``{"violations": [...], "summary": {...}}``."""
    per_rule: Dict[str, int] = {}
    records: List[Dict[str, object]] = []
    for v in violations:
        per_rule[v.rule] = per_rule.get(v.rule, 0) + 1
        records.append(
            {
                "rule": v.rule,
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "message": v.message,
            }
        )
    return json.dumps(
        {
            "violations": records,
            "summary": {"total": len(records), "by_rule": per_rule},
        },
        indent=2,
        sort_keys=True,
    )


def _gh_escape(value: str, *, property_value: bool = False) -> str:
    """GitHub Actions workflow-command escaping (``%``, CR, LF — and
    property delimiters inside ``key=value`` properties)."""
    out = value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    if property_value:
        out = out.replace(":", "%3A").replace(",", "%2C")
    return out


def render_github(violations: Sequence[Violation]) -> str:
    """``::error`` workflow commands — findings surface inline on the PR.

    One annotation per finding plus a trailing plain-text summary line
    (workflow commands are swallowed by the runner, so the summary keeps
    the raw log readable too).
    """
    lines = [
        "::error file={file},line={line},col={col},title={title}::{message}".format(
            file=_gh_escape(v.path, property_value=True),
            line=v.line,
            col=v.col,
            title=_gh_escape(f"repro-lint {v.rule}", property_value=True),
            message=_gh_escape(v.render()),
        )
        for v in violations
    ]
    lines.append(
        f"{len(violations)} violation(s)" if violations else "repro-lint: clean"
    )
    return "\n".join(lines)
