"""``repro-lint`` — simulation-safety static analysis for the Q-graph repo.

The reproduction's correctness claims rest on invariants the interpreter
cannot enforce: deterministic event orderings (no ambient RNG, no wall
clock in simulated code), lossless STOP/START migration, immutable cached
CSR views, invariant checks that survive ``python -O``.  This package is
an AST-based checker that turns those project rules into machine-checked
lint, the same way race detectors gate concurrent systems.

Layout
------
:mod:`repro.analysis.visitor`
    File loading, suppression-comment handling, the :class:`Rule` /
    :class:`ProjectRule` base classes and the rule registries.
:mod:`repro.analysis.rules`
    The built-in per-file rule catalog (see ``docs/analysis.md``).
:mod:`repro.analysis.callgraph`
    Project-wide symbol table and call graph (the substrate for every
    whole-program rule).
:mod:`repro.analysis.rngflow`
    Interprocedural RNG stream-flow rules (stream crossing, unseeded
    escape, generator-in-signature).
:mod:`repro.analysis.effects` / :mod:`repro.analysis.races`
    Event-handler effect summaries and the virtual-time race rules.
:mod:`repro.analysis.lifecycle`
    State-lifecycle rules over the handler-written state inventory
    (checkpoint completeness, restore symmetry, finish-path reset
    coverage, atomic invariant-group mutation).
:mod:`repro.analysis.protocol`
    Protocol-liveness rules over the extracted barrier automata
    (barrier liveness, ack completeness, epoch-fence coverage,
    event-kind closure).
:mod:`repro.analysis.baseline`
    The checked-in ``analysis_baseline.json`` (effect summaries +
    accepted-finding fingerprints + state manifest + protocol automata).
:mod:`repro.analysis.reporting`
    Text and JSON reporters.
:mod:`repro.analysis.cli`
    The ``python -m repro.analysis`` entry point.

Usage::

    PYTHONPATH=src python -m repro.analysis            # full pipeline
    PYTHONPATH=src python -m repro.analysis --jobs 4 --format json src/repro/engine
    PYTHONPATH=src python -m repro.analysis --select rng-stream-crossing,virtual-time-race

Suppressing a finding (the reason is mandatory)::

    t0 = time.perf_counter()  # repro-lint: disable=wall-clock -- bench harness timing
"""

from repro.analysis.visitor import (
    FileContext,
    ProjectContext,
    ProjectRule,
    Rule,
    Violation,
    all_project_rules,
    all_rules,
    lint_file,
    lint_paths,
    lint_project,
    lint_source,
    lint_sources,
    load_project,
    register,
    register_project,
)
from repro.analysis import rules as _rules  # noqa: F401  (registers the catalog)
from repro.analysis import rngflow as _rngflow  # noqa: F401  (project rules)
from repro.analysis import races as _races  # noqa: F401  (project rules)
from repro.analysis import lifecycle as _lifecycle  # noqa: F401  (project rules)
from repro.analysis import protocol as _protocol  # noqa: F401  (project rules)
from repro.analysis.reporting import render_json, render_text

__all__ = [
    "FileContext",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "Violation",
    "all_project_rules",
    "all_rules",
    "lint_file",
    "lint_paths",
    "lint_project",
    "lint_source",
    "lint_sources",
    "load_project",
    "register",
    "register_project",
    "render_json",
    "render_text",
]
