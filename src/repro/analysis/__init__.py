"""``repro-lint`` — simulation-safety static analysis for the Q-graph repo.

The reproduction's correctness claims rest on invariants the interpreter
cannot enforce: deterministic event orderings (no ambient RNG, no wall
clock in simulated code), lossless STOP/START migration, immutable cached
CSR views, invariant checks that survive ``python -O``.  This package is
an AST-based checker that turns those project rules into machine-checked
lint, the same way race detectors gate concurrent systems.

Layout
------
:mod:`repro.analysis.visitor`
    File loading, suppression-comment handling, the :class:`Rule` base
    class and the rule registry.
:mod:`repro.analysis.rules`
    The built-in rule catalog (see ``docs/analysis.md``).
:mod:`repro.analysis.reporting`
    Text and JSON reporters.
:mod:`repro.analysis.cli`
    The ``python -m repro.analysis`` entry point.

Usage::

    PYTHONPATH=src python -m repro.analysis            # lint src/ + tests/
    PYTHONPATH=src python -m repro.analysis --format json src/repro/engine

Suppressing a finding (the reason is mandatory)::

    t0 = time.perf_counter()  # repro-lint: disable=wall-clock -- bench harness timing
"""

from repro.analysis.visitor import (
    FileContext,
    Rule,
    Violation,
    all_rules,
    lint_file,
    lint_paths,
    lint_source,
    register,
)
from repro.analysis import rules as _rules  # noqa: F401  (registers the catalog)
from repro.analysis.reporting import render_json, render_text

__all__ = [
    "FileContext",
    "Rule",
    "Violation",
    "all_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "register",
    "render_json",
    "render_text",
]
